//! §5 in miniature: when does lowering the P-state improve
//! energy-efficiency (Perf/Energy)?
//!
//! ```text
//! cargo run --release --example pstate_tuning
//! ```

use microjoule::prelude::*;

/// A CPU-bound kernel: ALU work over an L1-resident buffer.
fn cpu_bound(cpu: &mut Cpu, buf: simcore::Region) {
    for i in 0..200_000u64 {
        cpu.load(buf.addr + (i % 256) * 64, Dep::Stream);
        cpu.exec_n(ExecOp::Add, 4);
    }
}

/// A memory-bound kernel: pointer chases over 32 MB.
fn memory_bound(cpu: &mut Cpu, buf: simcore::Region) {
    let lines = buf.len / 64;
    let mut pos = 7u64;
    for _ in 0..30_000u64 {
        cpu.load(buf.addr + pos * 64, Dep::Chase);
        pos = (pos * 1103515245 + 12345) % lines;
    }
}

fn run(kind: &str, ps: PState) -> (f64, f64) {
    let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
    cpu.set_pstate(ps);
    cpu.set_prefetch(true);
    let buf = cpu.alloc(32 << 20).expect("alloc");
    let m = cpu.measure(|c| match kind {
        "cpu" => cpu_bound(c, buf),
        _ => memory_bound(c, buf),
    });
    (m.time_s, m.rapl.package_j + m.rapl.memory_j)
}

fn main() {
    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>14}",
        "workload", "P-state", "time (s)", "energy (J)", "Perf/Energy"
    );
    for kind in ["cpu", "memory"] {
        let mut base: Option<f64> = None;
        for ps in [PState::P36, PState::P24, PState::P12] {
            let (t, e) = run(kind, ps);
            let eff = 1.0 / (t * e);
            let rel = base.map_or(100.0, |b| eff / b * 100.0);
            base.get_or_insert(eff);
            println!(
                "{:<14} {:>8} {:>12.5} {:>12.5} {:>12.1}%",
                if kind == "cpu" {
                    "CPU-bound"
                } else {
                    "memory-bound"
                },
                ps.to_string(),
                t,
                e,
                rel
            );
        }
    }
    println!("\nDownclocking pays off only when the bottleneck is off-chip (§5):");
    println!("memory-bound work keeps its speed while the CPU's stall cycles get cheaper.");
}
