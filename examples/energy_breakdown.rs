//! Break down the Active energy of TPC-H queries on all three engine
//! personalities — a miniature of the paper's Fig. 7.
//!
//! ```text
//! cargo run --release --example energy_breakdown
//! ```

use microjoule::prelude::*;
use workloads::tpch::gen::build_tpch_db;
use workloads::TpchScale;

fn main() {
    let table = CalibrationBuilder::quick()
        .calibrate()
        .expect("calibration");

    for kind in EngineKind::ALL {
        println!("== {} ==", kind.name());
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        cpu.set_prefetch(true);
        let mut db = build_tpch_db(&mut cpu, kind, KnobLevel::Baseline, TpchScale::tiny())
            .expect("load TPC-H");

        for qn in [1u8, 3, 6] {
            let q = TpchQuery(qn);
            let plan = q.plan();
            db.session().run(&mut cpu, &plan).expect("warm run");
            let m = cpu.measure(|c| {
                db.session().run(c, &plan).expect("measured run");
            });
            let bd = table.breakdown(&m);
            println!(
                "  {:<4} Eactive {:>9.6} J | L1D+stores {:>5.1}% | movement {:>5.1}% | stall {:>5.1}%",
                q.name(),
                bd.active_j(),
                bd.l1d_share() * 100.0,
                bd.movement_share() * 100.0,
                bd.share(MicroOp::Stall) * 100.0,
            );
        }
        println!();
    }
    println!("The L1D cache is the energy bottleneck on every engine — the paper's core finding.");
}
