//! Run SQL against the three engines and profile each execution.
//!
//! ```text
//! cargo run --release --example sql_query
//! ```

use microjoule::prelude::*;
use workloads::tpch::gen::build_tpch_db;
use workloads::TpchScale;

fn main() {
    let table = CalibrationBuilder::quick()
        .calibrate()
        .expect("calibration");
    let sql = "SELECT n_name, COUNT(*) AS customers, SUM(c_acctbal) AS balance \
               FROM customer JOIN nation ON c_nationkey = n_nationkey \
               WHERE c_acctbal > 1000.0 \
               GROUP BY n_name ORDER BY customers DESC LIMIT 5";
    println!("SQL> {sql}\n");

    for kind in EngineKind::ALL {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        cpu.set_prefetch(true);
        let mut db = build_tpch_db(&mut cpu, kind, KnobLevel::Baseline, TpchScale::tiny())
            .expect("load TPC-H");
        let Planned::Query(plan) = compile(sql, db.catalog()).expect("compile") else {
            unreachable!("a SELECT compiles to a query");
        };
        db.session().run(&mut cpu, &plan).expect("warm");
        let tok = cpu.begin_measure();
        let rows = db.session().run(&mut cpu, &plan).expect("run");
        let m = cpu.end_measure(tok);
        let bd = table.breakdown(&m);
        println!(
            "== {} — {:.3} ms, {:.6} J active, L1D share {:.1}% ==",
            kind.name(),
            m.time_s * 1e3,
            bd.active_j(),
            bd.l1d_share() * 100.0
        );
        for r in &rows {
            println!(
                "  {:<16} {:>6} {:>14}",
                r[0].to_string(),
                r[1].to_string(),
                r[2].to_string()
            );
        }
        println!();
    }

    // EXPLAIN ANALYZE attributes the query's measured energy to its plan
    // operators — same frontend, same session, annotated tree out.
    let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
    let mut db = build_tpch_db(
        &mut cpu,
        EngineKind::Pg,
        KnobLevel::Baseline,
        TpchScale::tiny(),
    )
    .expect("load");
    let ea = format!("EXPLAIN ANALYZE {sql}");
    let Planned::Explain {
        analyze: true,
        plan,
    } = compile(&ea, db.catalog()).expect("compile")
    else {
        unreachable!("EXPLAIN ANALYZE compiles to Planned::Explain");
    };
    let profile = db
        .session()
        .explain_analyze(&mut cpu, &plan, &table)
        .expect("profile");
    println!("SQL> EXPLAIN ANALYZE ...\n\n{}", profile.render());

    // DML works through the same frontend.
    let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
    let mut db = build_tpch_db(
        &mut cpu,
        EngineKind::Lite,
        KnobLevel::Baseline,
        TpchScale::tiny(),
    )
    .expect("load");
    for stmt in [
        "INSERT INTO region VALUES (77, 'OCEANIA')",
        "UPDATE region SET r_name = 'OCEANIA-2' WHERE r_regionkey = 77",
        "DELETE FROM region WHERE r_regionkey = 77",
    ] {
        let Planned::Write(dml) = compile(stmt, db.catalog()).expect("compile") else {
            unreachable!()
        };
        let n = db.session().execute(&mut cpu, &dml).expect("execute");
        println!("SQL> {stmt}  -- {n} row(s)");
    }
}
