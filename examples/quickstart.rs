//! Quickstart: calibrate the per-micro-op energy table on the simulated
//! i7-4790, then break down a workload's Active energy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use microjoule::prelude::*;

fn main() {
    // 1. Calibrate: run the paper's micro-benchmark set MBS and solve ΔE_m
    //    (§2.5). `quick()` uses a reduced loop budget; CalibrationBuilder::new
    //    + target_ops gives publication-grade runs.
    let table = CalibrationBuilder::quick()
        .calibrate()
        .expect("calibration");
    println!("solved per-micro-op energies at {}:", table.pstate);
    for op in MicroOp::MS {
        println!("  dE_{:<8} = {:>7.2} nJ", op.symbol(), table.de_nj(op));
    }

    // 2. Run any workload on the simulated machine...
    let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
    cpu.set_prefetch(true);
    let buf = cpu.alloc(24 * 1024).expect("alloc");
    let lines = buf.len / 64;
    // Warm up, then measure a streaming scan with a little compute.
    for i in 0..lines {
        cpu.load(buf.addr + i * 64, Dep::Stream);
    }
    let m = cpu.measure(|c| {
        for pass in 0..64u64 {
            for i in 0..lines {
                c.load(buf.addr + i * 64, Dep::Stream);
                if (i + pass) % 4 == 0 {
                    c.exec(ExecOp::Add);
                }
            }
        }
    });

    // 3. ...and break its Active energy down into micro-operation shares.
    let bd = table.breakdown(&m);
    println!(
        "\nActive energy {:.6} J over {:.6} s:",
        bd.active_j(),
        bd.time_s
    );
    for op in MicroOp::MS {
        println!("  E_{:<8} {:>5.1}%", op.symbol(), bd.share(op) * 100.0);
    }
    println!("  E_other    {:>5.1}%", bd.other_share() * 100.0);
    println!(
        "\nL1D load/store share: {:.1}% (the paper's bottleneck quantity)",
        bd.l1d_share() * 100.0
    );
}
