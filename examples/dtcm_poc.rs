//! The §4 proof of concept in miniature: the Lite engine on the
//! ARM1176JZF-S-like machine, with and without the DTCM co-design.
//!
//! ```text
//! cargo run --release --example dtcm_poc
//! ```

use engines::{DtcmConfig, DtcmDatabase};
use microjoule::prelude::*;
use workloads::tpch::gen::build_tpch_db;
use workloads::TpchScale;

fn main() {
    let scale = TpchScale(2.0);
    let queries = [1u8, 3, 6, 10];

    // Baseline: unmodified Lite on the ARM part.
    let mut base_cpu = Cpu::new(ArchConfig::arm1176jzf_s());
    base_cpu.set_prefetch(true);
    let mut base = build_tpch_db(&mut base_cpu, EngineKind::Lite, KnobLevel::Small, scale)
        .expect("load baseline");
    base.knobs = engines::Knobs::arm_small();

    // Co-designed: DB buffer + special variables + B-tree tops in DTCM.
    let mut opt_cpu = Cpu::new(ArchConfig::arm1176jzf_s());
    opt_cpu.set_prefetch(true);
    let mut db = build_tpch_db(&mut opt_cpu, EngineKind::Lite, KnobLevel::Small, scale)
        .expect("load optimised");
    db.knobs = engines::Knobs::arm_small();
    let hot = ["lineitem", "orders", "customer", "nation", "region"];
    let mut opt = DtcmDatabase::configure(&mut opt_cpu, db, &hot, DtcmConfig::default())
        .expect("configure DTCM");
    println!("pinned {} pages in DTCM\n", opt.pinned_pages());

    for qn in queries {
        let q = TpchQuery(qn);
        let plan = q.plan();
        base.session().run(&mut base_cpu, &plan).expect("warm base");
        let mb = base_cpu.measure(|c| {
            base.session().run(c, &plan).expect("base");
        });
        opt.run(&mut opt_cpu, &plan).expect("warm dtcm");
        let mo = opt_cpu.measure(|c| {
            opt.run(c, &plan).expect("dtcm");
        });
        println!(
            "{:<4} energy saving {:>6.2}% | performance {:>+6.2}%",
            q.name(),
            (1.0 - mo.rapl.total_j() / mb.rapl.total_j()) * 100.0,
            (1.0 - mo.time_s / mb.time_s) * 100.0,
        );
    }
    println!("\nDTCM saves energy without losing performance — the §4.3 headline.");
}
