//! Name resolution and plan construction.

use crate::ast::*;
use crate::SqlError;
use engines::{Dml, Plan};
use storage::{AggFn, AggSpec, BinOp, Catalog, CmpOp, Expr, Row, Schema, Ty, Value};

/// A compiled statement.
#[derive(Debug, Clone)]
pub enum Planned {
    /// A read query.
    Query(Plan),
    /// A write statement.
    Write(Dml),
    /// An EXPLAIN over a read query: render the plan instead of returning
    /// rows; with `analyze`, execute it and annotate per-operator costs.
    Explain {
        /// True for `EXPLAIN ANALYZE`.
        analyze: bool,
        /// The compiled (and optimized) query plan.
        plan: Plan,
    },
}

/// Plan a parsed statement against a catalog.
pub fn plan_statement(stmt: &Statement, catalog: &Catalog) -> Result<Planned, SqlError> {
    match stmt {
        Statement::Select(sel) => Ok(Planned::Query(plan_select(sel, catalog)?)),
        Statement::Explain { analyze, query } => Ok(Planned::Explain {
            analyze: *analyze,
            plan: plan_select(query, catalog)?,
        }),
        Statement::Insert { table, rows } => {
            let schema = &catalog
                .table(table)
                .map_err(|e| SqlError::Plan(e.to_string()))?
                .schema;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                if row.len() != schema.arity() {
                    return Err(SqlError::Plan(format!(
                        "INSERT arity {} != table arity {}",
                        row.len(),
                        schema.arity()
                    )));
                }
                let vals: Result<Row, SqlError> = row
                    .iter()
                    .zip(&schema.columns)
                    .map(|(e, col)| literal_value(e, col.ty))
                    .collect();
                out.push(vals?);
            }
            Ok(Planned::Write(Dml::Insert {
                table: table.clone(),
                rows: out,
            }))
        }
        Statement::Update { table, set, filter } => {
            let schema = catalog
                .table(table)
                .map_err(|e| SqlError::Plan(e.to_string()))?
                .schema
                .clone();
            let resolve = single_table_resolver(&schema);
            let mut assignments = Vec::new();
            for (col, e) in set {
                let idx = schema
                    .col(col)
                    .ok_or_else(|| SqlError::Plan(format!("no column `{col}`")))?;
                assignments.push((idx, to_expr(e, &resolve)?));
            }
            let filter = filter.as_ref().map(|f| to_expr(f, &resolve)).transpose()?;
            Ok(Planned::Write(Dml::Update {
                table: table.clone(),
                filter,
                set: assignments,
            }))
        }
        Statement::Delete { table, filter } => {
            let schema = catalog
                .table(table)
                .map_err(|e| SqlError::Plan(e.to_string()))?
                .schema
                .clone();
            let resolve = single_table_resolver(&schema);
            let filter = filter.as_ref().map(|f| to_expr(f, &resolve)).transpose()?;
            Ok(Planned::Write(Dml::Delete {
                table: table.clone(),
                filter,
            }))
        }
    }
}

type Resolver<'a> = Box<dyn Fn(&ColRef) -> Result<usize, SqlError> + 'a>;

fn single_table_resolver(schema: &Schema) -> Resolver<'_> {
    Box::new(move |cr: &ColRef| {
        schema
            .col(&cr.column)
            .ok_or_else(|| SqlError::Plan(format!("no column `{}`", cr.column)))
    })
}

/// One FROM/JOIN source with its offset in the concatenated row.
struct Source {
    name: String,
    schema: Schema,
    offset: usize,
}

struct Scope {
    sources: Vec<Source>,
}

impl Scope {
    /// Resolve to `(global index, source index)`.
    fn resolve(&self, cr: &ColRef) -> Result<(usize, usize), SqlError> {
        if let Some(t) = &cr.table {
            let (si, src) = self
                .sources
                .iter()
                .enumerate()
                .find(|(_, s)| s.name.eq_ignore_ascii_case(t))
                .ok_or_else(|| SqlError::Plan(format!("unknown table qualifier `{t}`")))?;
            let ci = src
                .schema
                .col(&cr.column)
                .ok_or_else(|| SqlError::Plan(format!("no column `{t}.{}`", cr.column)))?;
            return Ok((src.offset + ci, si));
        }
        let mut hit = None;
        for (si, src) in self.sources.iter().enumerate() {
            if let Some(ci) = src.schema.col(&cr.column) {
                if hit.is_some() {
                    return Err(SqlError::Plan(format!("ambiguous column `{}`", cr.column)));
                }
                hit = Some((src.offset + ci, si));
            }
        }
        hit.ok_or_else(|| SqlError::Plan(format!("no column `{}`", cr.column)))
    }
}

/// Which sources an expression references.
fn referenced_sources(e: &SExpr, scope: &Scope, acc: &mut Vec<usize>) -> Result<(), SqlError> {
    match e {
        SExpr::Col(cr) => {
            let (_, si) = scope.resolve(cr)?;
            if !acc.contains(&si) {
                acc.push(si);
            }
            Ok(())
        }
        SExpr::Bin(_, l, r) => {
            referenced_sources(l, scope, acc)?;
            referenced_sources(r, scope, acc)
        }
        SExpr::Not(x) => referenced_sources(x, scope, acc),
        SExpr::Between(x, lo, hi) => {
            referenced_sources(x, scope, acc)?;
            referenced_sources(lo, scope, acc)?;
            referenced_sources(hi, scope, acc)
        }
        SExpr::InList(x, list) => {
            referenced_sources(x, scope, acc)?;
            for i in list {
                referenced_sources(i, scope, acc)?;
            }
            Ok(())
        }
        SExpr::Like(x, _) => referenced_sources(x, scope, acc),
        SExpr::Agg(_, Some(x)) => referenced_sources(x, scope, acc),
        _ => Ok(()),
    }
}

fn split_conjuncts(e: SExpr, out: &mut Vec<SExpr>) {
    match e {
        SExpr::Bin(BinSym::And, l, r) => {
            split_conjuncts(*l, out);
            split_conjuncts(*r, out);
        }
        other => out.push(other),
    }
}

fn plan_select(sel: &Select, catalog: &Catalog) -> Result<Plan, SqlError> {
    // Build the scope.
    let mut sources = Vec::new();
    let mut offset = 0usize;
    for name in std::iter::once(&sel.from).chain(sel.joins.iter().map(|j| &j.table)) {
        let schema = catalog
            .table(name)
            .map_err(|e| SqlError::Plan(e.to_string()))?
            .schema
            .clone();
        let arity = schema.arity();
        sources.push(Source {
            name: name.clone(),
            schema,
            offset,
        });
        offset += arity;
    }
    let scope = Scope { sources };

    // Classify WHERE conjuncts: single-source ones are pushed onto that
    // source's scan; the rest are applied at the earliest join level where
    // every referenced source is in scope.
    let mut pushed: Vec<Vec<SExpr>> = scope.sources.iter().map(|_| Vec::new()).collect();
    let mut at_level: Vec<Vec<SExpr>> = scope.sources.iter().map(|_| Vec::new()).collect();
    if let Some(f) = &sel.filter {
        let mut conjuncts = Vec::new();
        split_conjuncts(f.clone(), &mut conjuncts);
        for c in conjuncts {
            let mut refs = Vec::new();
            referenced_sources(&c, &scope, &mut refs)?;
            match refs.as_slice() {
                [] | [_] => {
                    let si = refs.first().copied().unwrap_or(0);
                    pushed[si].push(c);
                }
                many => {
                    let level = *many.iter().max().expect("non-empty");
                    at_level[level].push(c);
                }
            }
        }
    }

    // Scans with pushed-down filters (column indices are table-local).
    let scan_of = |si: usize, pushed: &[SExpr]| -> Result<Plan, SqlError> {
        let src = &scope.sources[si];
        let local = |cr: &ColRef| -> Result<usize, SqlError> {
            // Table-local resolution for the pushed filter.
            if let Some(t) = &cr.table {
                if !src.name.eq_ignore_ascii_case(t) {
                    return Err(SqlError::Plan(format!(
                        "`{t}` out of scope in pushed filter"
                    )));
                }
            }
            src.schema
                .col(&cr.column)
                .ok_or_else(|| SqlError::Plan(format!("no column `{}`", cr.column)))
        };
        let filter = match pushed {
            [] => None,
            parts => {
                let exprs: Result<Vec<Expr>, SqlError> =
                    parts.iter().map(|c| to_expr(c, &local)).collect();
                Some(Expr::and_all(exprs?))
            }
        };
        Ok(Plan::Scan {
            table: src.name.clone(),
            filter,
            project: None,
        })
    };

    // Left-deep join chain.
    let mut plan = scan_of(0, &pushed[0])?;
    for (ji, j) in sel.joins.iter().enumerate() {
        let level = ji + 1;
        let (lg, _) = scope.resolve(&j.on_left)?;
        let (rg, rs) = scope.resolve(&j.on_right)?;
        // Normalise: the ON side living in the new table is the right key.
        let (left_col, right_col) = if rs == level {
            (lg, rg - scope.sources[level].offset)
        } else {
            // on_left references the new table instead.
            (rg, lg - scope.sources[level].offset)
        };
        let global = |cr: &ColRef| scope.resolve(cr).map(|(g, _)| g);
        let filter = match at_level[level].as_slice() {
            [] => None,
            parts => {
                let exprs: Result<Vec<Expr>, SqlError> =
                    parts.iter().map(|c| to_expr(c, &global)).collect();
                Some(Expr::and_all(exprs?))
            }
        };
        plan = Plan::Join {
            left: Box::new(plan),
            right: Box::new(scan_of(level, &pushed[level])?),
            left_col,
            right_col,
            filter,
            project: None,
        };
    }

    // Aggregation.
    let global = |cr: &ColRef| scope.resolve(cr).map(|(g, _)| g);
    let has_agg = sel
        .items
        .as_ref()
        .is_some_and(|items| items.iter().any(|i| contains_agg(&i.expr)));
    let mut output_aliases: Vec<Option<String>> = Vec::new();

    if has_agg || !sel.group_by.is_empty() {
        let items = sel.items.as_ref().ok_or_else(|| {
            SqlError::Plan("aggregate queries need an explicit select list".into())
        })?;
        // Group columns must be plain column references.
        let mut group_cols = Vec::new();
        for g in &sel.group_by {
            match g {
                SExpr::Col(cr) => group_cols.push(global(cr)?),
                _ => {
                    return Err(SqlError::Plan(
                        "GROUP BY supports plain column references".into(),
                    ))
                }
            }
        }
        // Collect aggregates in select-list order.
        let mut aggs = Vec::new();
        let mut projections: Vec<Expr> = Vec::new();
        for item in items {
            match &item.expr {
                SExpr::Agg(name, arg) => {
                    let f = match (name, arg) {
                        (AggName::Count, None) => AggSpec::count_star(),
                        (AggName::Count, Some(a)) => {
                            AggSpec::over(AggFn::Count, to_expr(a, &global)?)
                        }
                        (AggName::Sum, Some(a)) => AggSpec::over(AggFn::Sum, to_expr(a, &global)?),
                        (AggName::Avg, Some(a)) => AggSpec::over(AggFn::Avg, to_expr(a, &global)?),
                        (AggName::Min, Some(a)) => AggSpec::over(AggFn::Min, to_expr(a, &global)?),
                        (AggName::Max, Some(a)) => AggSpec::over(AggFn::Max, to_expr(a, &global)?),
                        _ => return Err(SqlError::Plan("aggregate needs an argument".into())),
                    };
                    aggs.push(f);
                    projections.push(Expr::col(group_cols.len() + aggs.len() - 1));
                }
                SExpr::Col(cr) => {
                    let g = global(cr)?;
                    let pos = group_cols.iter().position(|&c| c == g).ok_or_else(|| {
                        SqlError::Plan(format!("`{}` must appear in GROUP BY", cr.column))
                    })?;
                    projections.push(Expr::col(pos));
                }
                _ => {
                    return Err(SqlError::Plan(
                        "select items in aggregates must be columns or aggregate calls".into(),
                    ))
                }
            }
            output_aliases.push(item.alias.clone());
        }
        plan = plan.aggregate(group_cols, aggs);
        plan = plan.project(projections);
    } else if let Some(items) = &sel.items {
        let exprs: Result<Vec<Expr>, SqlError> =
            items.iter().map(|i| to_expr(&i.expr, &global)).collect();
        plan = plan.project(exprs?);
        output_aliases = items.iter().map(|i| i.alias.clone()).collect();
    } else {
        // SELECT *: aliases are the flattened column names.
        for src in &scope.sources {
            for c in &src.schema.columns {
                output_aliases.push(Some(c.name.clone()));
            }
        }
    }

    // ORDER BY: positions (1-based), aliases, or output column names.
    if !sel.order_by.is_empty() {
        let mut keys = Vec::new();
        for (e, desc) in &sel.order_by {
            let idx = match e {
                SExpr::Int(n) if *n >= 1 => (*n - 1) as usize,
                SExpr::Col(cr) => {
                    let by_alias = output_aliases.iter().position(|a| {
                        a.as_deref()
                            .is_some_and(|al| al.eq_ignore_ascii_case(&cr.column))
                    });
                    match by_alias {
                        Some(i) => i,
                        None => {
                            return Err(SqlError::Plan(format!(
                                "ORDER BY `{}` is not an output column; use a position or alias",
                                cr.column
                            )))
                        }
                    }
                }
                _ => {
                    return Err(SqlError::Plan(
                        "ORDER BY supports positions and output columns".into(),
                    ))
                }
            };
            if idx >= output_aliases.len() {
                return Err(SqlError::Plan(format!(
                    "ORDER BY position {} exceeds the {} output column(s)",
                    idx + 1,
                    output_aliases.len()
                )));
            }
            keys.push((idx, *desc));
        }
        plan = Plan::Sort {
            input: Box::new(plan),
            keys,
            limit: sel.limit,
        };
    } else if let Some(n) = sel.limit {
        plan = Plan::Limit {
            input: Box::new(plan),
            n,
        };
    }
    Ok(plan)
}

fn contains_agg(e: &SExpr) -> bool {
    match e {
        SExpr::Agg(..) => true,
        SExpr::Bin(_, l, r) => contains_agg(l) || contains_agg(r),
        SExpr::Not(x) | SExpr::Like(x, _) => contains_agg(x),
        SExpr::Between(a, b, c) => contains_agg(a) || contains_agg(b) || contains_agg(c),
        SExpr::InList(x, list) => contains_agg(x) || list.iter().any(contains_agg),
        _ => false,
    }
}

/// Convert an AST expression to an executable one, resolving columns with
/// `resolve`.
fn to_expr<F: Fn(&ColRef) -> Result<usize, SqlError>>(
    e: &SExpr,
    resolve: &F,
) -> Result<Expr, SqlError> {
    Ok(match e {
        SExpr::Col(cr) => Expr::col(resolve(cr)?),
        SExpr::Int(v) => Expr::Lit(Value::Int(*v)),
        SExpr::Float(v) => Expr::Lit(Value::Float(*v)),
        SExpr::Str(s) => Expr::Lit(Value::Str(s.clone())),
        SExpr::Date(d) => Expr::Lit(Value::Date(*d)),
        SExpr::Null => Expr::Lit(Value::Null),
        SExpr::Not(x) => Expr::Not(Box::new(to_expr(x, resolve)?)),
        SExpr::Between(x, lo, hi) => {
            let lo = literal_only(lo)?;
            let hi = literal_only(hi)?;
            Expr::Between(Box::new(to_expr(x, resolve)?), lo, hi)
        }
        SExpr::InList(x, list) => {
            let vals: Result<Vec<Value>, SqlError> = list.iter().map(literal_only).collect();
            Expr::InList(Box::new(to_expr(x, resolve)?), vals?)
        }
        SExpr::Like(x, pat) => like_expr(to_expr(x, resolve)?, pat)?,
        SExpr::Agg(..) => {
            return Err(SqlError::Plan(
                "aggregate call outside the select list".into(),
            ))
        }
        SExpr::Bin(sym, l, r) => {
            let l = Box::new(to_expr(l, resolve)?);
            let r = Box::new(to_expr(r, resolve)?);
            match sym {
                BinSym::Add => Expr::Bin(BinOp::Add, l, r),
                BinSym::Sub => Expr::Bin(BinOp::Sub, l, r),
                BinSym::Mul => Expr::Bin(BinOp::Mul, l, r),
                BinSym::Div => Expr::Bin(BinOp::Div, l, r),
                BinSym::Eq => Expr::Cmp(CmpOp::Eq, l, r),
                BinSym::Ne => Expr::Cmp(CmpOp::Ne, l, r),
                BinSym::Lt => Expr::Cmp(CmpOp::Lt, l, r),
                BinSym::Le => Expr::Cmp(CmpOp::Le, l, r),
                BinSym::Gt => Expr::Cmp(CmpOp::Gt, l, r),
                BinSym::Ge => Expr::Cmp(CmpOp::Ge, l, r),
                BinSym::And => Expr::And(l, r),
                BinSym::Or => Expr::Or(l, r),
            }
        }
    })
}

fn like_expr(target: Expr, pat: &str) -> Result<Expr, SqlError> {
    let inner = pat.trim_matches('%');
    if inner.contains('%') || inner.contains('_') {
        return Err(SqlError::Plan(format!(
            "unsupported LIKE pattern `{pat}` (prefix and containment only)"
        )));
    }
    Ok(match (pat.starts_with('%'), pat.ends_with('%')) {
        (true, _) => Expr::Contains(Box::new(target), inner.to_owned()),
        (false, true) => Expr::StartsWith(Box::new(target), inner.to_owned()),
        (false, false) => Expr::Cmp(
            CmpOp::Eq,
            Box::new(target),
            Box::new(Expr::Lit(Value::Str(pat.into()))),
        ),
    })
}

fn literal_only(e: &SExpr) -> Result<Value, SqlError> {
    match e {
        SExpr::Int(v) => Ok(Value::Int(*v)),
        SExpr::Float(v) => Ok(Value::Float(*v)),
        SExpr::Str(s) => Ok(Value::Str(s.clone())),
        SExpr::Date(d) => Ok(Value::Date(*d)),
        SExpr::Null => Ok(Value::Null),
        other => Err(SqlError::Plan(format!(
            "expected a literal, found {other:?}"
        ))),
    }
}

/// Literal with coercion to the target column type (INSERT).
fn literal_value(e: &SExpr, ty: Ty) -> Result<Value, SqlError> {
    let v = literal_only(e)?;
    Ok(match (ty, v) {
        (Ty::Float, Value::Int(i)) => Value::Float(i as f64),
        (Ty::Date, Value::Int(i)) => Value::Date(i as i32),
        (_, v) => v,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table(
            "items",
            Schema::new([("id", Ty::Int), ("cat", Ty::Int), ("price", Ty::Float)]),
        )
        .unwrap();
        c.create_table("cats", Schema::new([("cid", Ty::Int), ("name", Ty::Str)]))
            .unwrap();
        c
    }

    fn plan(sql: &str) -> Plan {
        let cat = catalog();
        match plan_statement(&parse(sql).unwrap(), &cat).unwrap() {
            Planned::Query(p) => p,
            _ => panic!("expected a query"),
        }
    }

    #[test]
    fn explain_plans_the_inner_select() {
        let cat = catalog();
        let planned =
            plan_statement(&parse("EXPLAIN ANALYZE SELECT * FROM items").unwrap(), &cat).unwrap();
        let Planned::Explain {
            analyze: true,
            plan,
        } = planned
        else {
            panic!("expected Planned::Explain");
        };
        assert!(matches!(plan, Plan::Scan { .. }));
    }

    #[test]
    fn pushes_single_table_filters_below_joins() {
        let p =
            plan("SELECT * FROM items JOIN cats ON cat = cid WHERE price > 2.0 AND name = 'cat-1'");
        let Plan::Join {
            left,
            right,
            filter,
            ..
        } = p
        else {
            panic!("expected join")
        };
        assert!(filter.is_none(), "all conjuncts should have been pushed");
        assert!(matches!(
            *left,
            Plan::Scan {
                filter: Some(_),
                ..
            }
        ));
        assert!(matches!(
            *right,
            Plan::Scan {
                filter: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn cross_table_predicates_stay_on_the_join() {
        let p = plan("SELECT * FROM items JOIN cats ON cat = cid WHERE id + cid > 4");
        let Plan::Join { filter, .. } = p else {
            panic!()
        };
        assert!(filter.is_some());
    }

    #[test]
    fn aggregates_build_aggregate_plus_projection() {
        let p = plan("SELECT cat, COUNT(*), SUM(price) FROM items GROUP BY cat ORDER BY 2 DESC");
        let Plan::Sort { input, keys, .. } = p else {
            panic!()
        };
        assert_eq!(keys, vec![(1, true)]);
        let Plan::Project { input, exprs } = *input else {
            panic!()
        };
        assert_eq!(exprs.len(), 3);
        assert!(matches!(*input, Plan::Aggregate { .. }));
    }

    #[test]
    fn order_by_alias() {
        let p = plan("SELECT cat AS c, COUNT(*) AS n FROM items GROUP BY cat ORDER BY n");
        assert!(matches!(p, Plan::Sort { keys, .. } if keys == vec![(1, false)]));
    }

    #[test]
    fn select_star_orders_by_column_name() {
        let p = plan("SELECT * FROM items ORDER BY price DESC LIMIT 3");
        assert!(matches!(p, Plan::Sort { keys, limit: Some(3), .. } if keys == vec![(2, true)]));
    }

    #[test]
    fn ambiguous_and_missing_columns_error() {
        let cat = catalog();
        let s = parse("SELECT * FROM items WHERE nope = 1").unwrap();
        assert!(plan_statement(&s, &cat).is_err());
        let s = parse("SELECT missing FROM items JOIN cats ON cat = cid").unwrap();
        assert!(plan_statement(&s, &cat).is_err());
    }

    #[test]
    fn non_grouped_column_in_aggregate_errors() {
        let cat = catalog();
        let s = parse("SELECT price, COUNT(*) FROM items GROUP BY cat").unwrap();
        let e = plan_statement(&s, &cat).unwrap_err();
        assert!(matches!(e, SqlError::Plan(msg) if msg.contains("GROUP BY")));
    }

    #[test]
    fn insert_coerces_ints_to_floats() {
        let cat = catalog();
        let s = parse("INSERT INTO items VALUES (1, 2, 3)").unwrap();
        let Planned::Write(Dml::Insert { rows, .. }) = plan_statement(&s, &cat).unwrap() else {
            panic!()
        };
        assert_eq!(rows[0][2], Value::Float(3.0));
    }

    #[test]
    fn update_and_delete_compile() {
        let cat = catalog();
        let s = parse("UPDATE items SET price = price * 1.1 WHERE cat IN (1, 2)").unwrap();
        assert!(matches!(
            plan_statement(&s, &cat).unwrap(),
            Planned::Write(Dml::Update { .. })
        ));
        let s = parse("DELETE FROM items WHERE id BETWEEN 5 AND 9").unwrap();
        assert!(matches!(
            plan_statement(&s, &cat).unwrap(),
            Planned::Write(Dml::Delete { .. })
        ));
    }

    fn plan_err(sql: &str) -> SqlError {
        let cat = catalog();
        let stmt = match parse(sql) {
            Ok(s) => s,
            Err(e) => return e, // rejected earlier, still an error not a panic
        };
        match plan_statement(&stmt, &cat) {
            Err(e) => e,
            Ok(_) => panic!("expected a planning error for {sql:?}"),
        }
    }

    #[test]
    fn order_by_position_past_output_arity_is_an_error() {
        // Pre-fix this compiled to Sort { keys: [(2, _)] } over 2-column
        // rows and panicked the executor at `row[2]`.
        let e = plan_err("SELECT id, cat FROM items ORDER BY 3");
        assert!(matches!(e, SqlError::Plan(_)), "{e:?}");
        let e = plan_err("SELECT cat, COUNT(*) FROM items GROUP BY cat ORDER BY 5");
        assert!(matches!(e, SqlError::Plan(_)), "{e:?}");
        // In-range positions still plan.
        plan("SELECT id, cat FROM items ORDER BY 2");
    }

    #[test]
    fn malformed_but_parseable_sql_errors_do_not_panic() {
        // Non-grouped column in an aggregate query.
        plan_err("SELECT price, COUNT(*) FROM items GROUP BY cat");
        // Unknown column in ORDER BY.
        plan_err("SELECT id FROM items ORDER BY nope");
        // Unknown column in WHERE.
        plan_err("SELECT id FROM items WHERE ghost = 1");
        // Ambiguous unqualified column across a join.
        plan_err(
            "SELECT * FROM items JOIN cats ON cat = cid WHERE id > 0 AND cid = id ORDER BY zzz",
        );
        // Aggregate with a missing argument.
        plan_err("SELECT SUM() FROM items");
    }

    #[test]
    fn like_patterns_map_to_string_predicates() {
        let p = plan("SELECT * FROM cats WHERE name LIKE 'cat%' AND name LIKE '%-1%'");
        let Plan::Scan {
            filter: Some(f), ..
        } = p
        else {
            panic!()
        };
        let s = format!("{f:?}");
        assert!(s.contains("StartsWith") && s.contains("Contains"));
    }
}
