//! SQL abstract syntax.

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A SELECT query.
    Select(Select),
    /// INSERT INTO … VALUES.
    Insert {
        /// Target table.
        table: String,
        /// Value rows.
        rows: Vec<Vec<SExpr>>,
    },
    /// UPDATE … SET … WHERE.
    Update {
        /// Target table.
        table: String,
        /// `(column, value expression)` assignments.
        set: Vec<(String, SExpr)>,
        /// Predicate.
        filter: Option<SExpr>,
    },
    /// DELETE FROM … WHERE.
    Delete {
        /// Target table.
        table: String,
        /// Predicate.
        filter: Option<SExpr>,
    },
    /// EXPLAIN [ANALYZE] SELECT …
    Explain {
        /// True for `EXPLAIN ANALYZE`: execute the query and annotate the
        /// plan with measured per-operator costs.
        analyze: bool,
        /// The explained query.
        query: Select,
    },
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// Select list (`None` = `*`).
    pub items: Option<Vec<SelectItem>>,
    /// First FROM table.
    pub from: String,
    /// `JOIN table ON left = right` clauses, applied left-deep.
    pub joins: Vec<JoinClause>,
    /// WHERE predicate.
    pub filter: Option<SExpr>,
    /// GROUP BY expressions.
    pub group_by: Vec<SExpr>,
    /// ORDER BY `(expr, descending)`.
    pub order_by: Vec<(SExpr, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
}

/// One select-list entry.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression (aggregates appear as [`SExpr::Agg`]).
    pub expr: SExpr,
    /// Optional `AS` alias.
    pub alias: Option<String>,
}

/// One JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// Joined table.
    pub table: String,
    /// Left side of the ON equality.
    pub on_left: ColRef,
    /// Right side of the ON equality.
    pub on_right: ColRef,
}

/// A possibly-qualified column reference.
#[derive(Debug, Clone, PartialEq)]
pub struct ColRef {
    /// Optional table qualifier.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

/// Aggregate functions in the AST.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggName {
    /// COUNT(*) / COUNT(expr)
    Count,
    /// SUM
    Sum,
    /// AVG
    Avg,
    /// MIN
    Min,
    /// MAX
    Max,
}

/// Scalar / boolean expression AST.
#[derive(Debug, Clone, PartialEq)]
pub enum SExpr {
    /// Column reference.
    Col(ColRef),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `DATE 'yyyy-mm-dd'` literal, resolved to days since epoch.
    Date(i32),
    /// NULL.
    Null,
    /// Binary operation (arithmetic or comparison or AND/OR).
    Bin(BinSym, Box<SExpr>, Box<SExpr>),
    /// NOT.
    Not(Box<SExpr>),
    /// `expr BETWEEN lo AND hi`.
    Between(Box<SExpr>, Box<SExpr>, Box<SExpr>),
    /// `expr IN (…)`.
    InList(Box<SExpr>, Vec<SExpr>),
    /// `expr LIKE 'pattern'`.
    Like(Box<SExpr>, String),
    /// Aggregate call; `None` argument = `COUNT(*)`.
    Agg(AggName, Option<Box<SExpr>>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinSym {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// AND
    And,
    /// OR
    Or,
}
