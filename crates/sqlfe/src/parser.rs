//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::lexer::{lex, Tok, Token};
use crate::SqlError;

/// Parse one statement (a trailing `;` is allowed).
pub fn parse(src: &str) -> Result<Statement, SqlError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_opt(&Tok::Semi);
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn at(&self) -> usize {
        self.tokens[self.pos].at
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, SqlError> {
        Err(SqlError::Parse {
            at: self.at(),
            msg: msg.into(),
        })
    }

    /// Case-insensitive keyword check (does not consume).
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {:?}", self.peek()))
        }
    }

    fn eat_opt(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), SqlError> {
        if self.eat_opt(t) {
            Ok(())
        } else {
            self.err(format!("expected {t:?}, found {:?}", self.peek()))
        }
    }

    fn expect_eof(&mut self) -> Result<(), SqlError> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            self.err(format!("trailing input: {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn statement(&mut self) -> Result<Statement, SqlError> {
        if self.peek_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("EXPLAIN") {
            let analyze = self.eat_kw("ANALYZE");
            if !self.peek_kw("SELECT") {
                return self.err("EXPLAIN supports only SELECT queries");
            }
            return Ok(Statement::Explain {
                analyze,
                query: self.select()?,
            });
        }
        if self.eat_kw("INSERT") {
            self.expect_kw("INTO")?;
            let table = self.ident()?;
            self.expect_kw("VALUES")?;
            let mut rows = Vec::new();
            loop {
                self.expect(&Tok::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.eat_opt(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RParen)?;
                rows.push(row);
                if !self.eat_opt(&Tok::Comma) {
                    break;
                }
            }
            return Ok(Statement::Insert { table, rows });
        }
        if self.eat_kw("UPDATE") {
            let table = self.ident()?;
            self.expect_kw("SET")?;
            let mut set = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect(&Tok::Eq)?;
                set.push((col, self.expr()?));
                if !self.eat_opt(&Tok::Comma) {
                    break;
                }
            }
            let filter = self.opt_where()?;
            return Ok(Statement::Update { table, set, filter });
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let filter = self.opt_where()?;
            return Ok(Statement::Delete { table, filter });
        }
        self.err("expected SELECT, INSERT, UPDATE, or DELETE")
    }

    fn opt_where(&mut self) -> Result<Option<SExpr>, SqlError> {
        if self.eat_kw("WHERE") {
            Ok(Some(self.expr()?))
        } else {
            Ok(None)
        }
    }

    fn select(&mut self) -> Result<Select, SqlError> {
        self.expect_kw("SELECT")?;
        let items = if self.eat_opt(&Tok::Star) {
            None
        } else {
            let mut items = Vec::new();
            loop {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem { expr, alias });
                if !self.eat_opt(&Tok::Comma) {
                    break;
                }
            }
            Some(items)
        };
        self.expect_kw("FROM")?;
        let from = self.ident()?;
        let mut joins = Vec::new();
        while self.eat_kw("JOIN") {
            let table = self.ident()?;
            self.expect_kw("ON")?;
            let on_left = self.colref()?;
            self.expect(&Tok::Eq)?;
            let on_right = self.colref()?;
            joins.push(JoinClause {
                table,
                on_left,
                on_right,
            });
        }
        let filter = self.opt_where()?;
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_opt(&Tok::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push((e, desc));
                if !self.eat_opt(&Tok::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.bump() {
                Tok::Int(n) if n >= 0 => Some(n as usize),
                other => return self.err(format!("expected LIMIT count, found {other:?}")),
            }
        } else {
            None
        };
        Ok(Select {
            items,
            from,
            joins,
            filter,
            group_by,
            order_by,
            limit,
        })
    }

    fn colref(&mut self) -> Result<ColRef, SqlError> {
        let first = self.ident()?;
        if self.eat_opt(&Tok::Dot) {
            let column = self.ident()?;
            Ok(ColRef {
                table: Some(first),
                column,
            })
        } else {
            Ok(ColRef {
                table: None,
                column: first,
            })
        }
    }

    // Expression grammar: or_expr > and_expr > not > predicate > add > mul > atom.
    fn expr(&mut self) -> Result<SExpr, SqlError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = SExpr::Bin(BinSym::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<SExpr, SqlError> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = SExpr::Bin(BinSym::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<SExpr, SqlError> {
        if self.eat_kw("NOT") {
            Ok(SExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.predicate()
        }
    }

    fn predicate(&mut self) -> Result<SExpr, SqlError> {
        let left = self.add_expr()?;
        // NOT BETWEEN / NOT IN / NOT LIKE
        if self.eat_kw("NOT") {
            let inner = self.postfix_predicate(left)?;
            return Ok(SExpr::Not(Box::new(inner)));
        }
        if self.peek_kw("BETWEEN") || self.peek_kw("IN") || self.peek_kw("LIKE") {
            return self.postfix_predicate(left);
        }
        let sym = match self.peek() {
            Tok::Eq => BinSym::Eq,
            Tok::Ne => BinSym::Ne,
            Tok::Lt => BinSym::Lt,
            Tok::Le => BinSym::Le,
            Tok::Gt => BinSym::Gt,
            Tok::Ge => BinSym::Ge,
            _ => return Ok(left),
        };
        self.bump();
        let right = self.add_expr()?;
        Ok(SExpr::Bin(sym, Box::new(left), Box::new(right)))
    }

    fn postfix_predicate(&mut self, left: SExpr) -> Result<SExpr, SqlError> {
        if self.eat_kw("BETWEEN") {
            let lo = self.add_expr()?;
            self.expect_kw("AND")?;
            let hi = self.add_expr()?;
            return Ok(SExpr::Between(Box::new(left), Box::new(lo), Box::new(hi)));
        }
        if self.eat_kw("IN") {
            self.expect(&Tok::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_opt(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
            return Ok(SExpr::InList(Box::new(left), list));
        }
        if self.eat_kw("LIKE") {
            match self.bump() {
                Tok::Str(p) => return Ok(SExpr::Like(Box::new(left), p)),
                other => return self.err(format!("expected LIKE pattern, found {other:?}")),
            }
        }
        self.err("expected BETWEEN, IN, or LIKE")
    }

    fn add_expr(&mut self) -> Result<SExpr, SqlError> {
        let mut left = self.mul_expr()?;
        loop {
            let sym = match self.peek() {
                Tok::Plus => BinSym::Add,
                Tok::Minus => BinSym::Sub,
                _ => break,
            };
            self.bump();
            let right = self.mul_expr()?;
            left = SExpr::Bin(sym, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<SExpr, SqlError> {
        let mut left = self.atom()?;
        loop {
            let sym = match self.peek() {
                Tok::Star => BinSym::Mul,
                Tok::Slash => BinSym::Div,
                _ => break,
            };
            self.bump();
            let right = self.atom()?;
            left = SExpr::Bin(sym, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn atom(&mut self) -> Result<SExpr, SqlError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(SExpr::Int(v))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(SExpr::Float(v))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(SExpr::Str(s))
            }
            Tok::Minus => {
                self.bump();
                match self.atom()? {
                    SExpr::Int(v) => Ok(SExpr::Int(-v)),
                    SExpr::Float(v) => Ok(SExpr::Float(-v)),
                    e => Ok(SExpr::Bin(
                        BinSym::Sub,
                        Box::new(SExpr::Int(0)),
                        Box::new(e),
                    )),
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                let upper = name.to_ascii_uppercase();
                match upper.as_str() {
                    "NULL" => {
                        self.bump();
                        Ok(SExpr::Null)
                    }
                    "DATE" => {
                        self.bump();
                        match self.bump() {
                            Tok::Str(s) => parse_date(&s)
                                .map(SExpr::Date)
                                .ok_or(())
                                .or_else(|_| self.err(format!("bad date literal `{s}`"))),
                            other => self.err(format!("expected date string, found {other:?}")),
                        }
                    }
                    "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" => {
                        self.bump();
                        self.expect(&Tok::LParen)?;
                        let agg = match upper.as_str() {
                            "COUNT" => AggName::Count,
                            "SUM" => AggName::Sum,
                            "AVG" => AggName::Avg,
                            "MIN" => AggName::Min,
                            _ => AggName::Max,
                        };
                        let arg = if self.eat_opt(&Tok::Star) {
                            if agg != AggName::Count {
                                return self.err("only COUNT accepts `*`");
                            }
                            None
                        } else {
                            Some(Box::new(self.expr()?))
                        };
                        self.expect(&Tok::RParen)?;
                        Ok(SExpr::Agg(agg, arg))
                    }
                    _ => {
                        let cr = self.colref()?;
                        Ok(SExpr::Col(cr))
                    }
                }
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

/// `yyyy-mm-dd` → days since 1970-01-01.
fn parse_date(s: &str) -> Option<i32> {
    let mut parts = s.split('-');
    let y: i32 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    // Howard Hinnant's days_from_civil.
    let yy = if m <= 2 { y - 1 } else { y };
    let era = if yy >= 0 { yy } else { yy - 399 } / 400;
    let yoe = (yy - era * 400) as i64;
    let mp = ((m + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    Some((era as i64 * 146_097 + doe - 719_468) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let s = parse("SELECT * FROM t WHERE a > 3 ORDER BY b DESC LIMIT 5;").unwrap();
        let Statement::Select(sel) = s else {
            panic!("not a select")
        };
        assert!(sel.items.is_none());
        assert_eq!(sel.from, "t");
        assert_eq!(sel.limit, Some(5));
        assert!(sel.order_by[0].1);
        assert!(matches!(sel.filter, Some(SExpr::Bin(BinSym::Gt, _, _))));
    }

    #[test]
    fn parses_joins_and_group_by() {
        let s = parse(
            "SELECT c.name, COUNT(*) FROM customer JOIN orders ON c_custkey = o_custkey \
             GROUP BY c.name",
        )
        .unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert_eq!(sel.joins.len(), 1);
        assert_eq!(sel.group_by.len(), 1);
        let items = sel.items.unwrap();
        assert!(matches!(items[1].expr, SExpr::Agg(AggName::Count, None)));
    }

    #[test]
    fn precedence_and_arithmetic() {
        let s = parse("SELECT a + b * 2 FROM t WHERE x = 1 OR y = 2 AND z = 3").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let item = &sel.items.unwrap()[0].expr;
        // a + (b * 2)
        assert!(
            matches!(item, SExpr::Bin(BinSym::Add, _, r) if matches!(**r, SExpr::Bin(BinSym::Mul, _, _)))
        );
        // x=1 OR (y=2 AND z=3)
        assert!(
            matches!(sel.filter, Some(SExpr::Bin(BinSym::Or, _, ref r)) if matches!(**r, SExpr::Bin(BinSym::And, _, _)))
        );
    }

    #[test]
    fn date_literals() {
        let s = parse("SELECT * FROM t WHERE d <= DATE '1998-09-02'").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        let Some(SExpr::Bin(_, _, r)) = sel.filter else {
            panic!()
        };
        assert_eq!(*r, SExpr::Date(10471));
    }

    #[test]
    fn between_in_like_and_not() {
        parse("SELECT * FROM t WHERE a BETWEEN 1 AND 2 AND b IN (1,2,3) AND c LIKE 'x%'").unwrap();
        parse("SELECT * FROM t WHERE a NOT IN (1) AND NOT b = 2").unwrap();
    }

    #[test]
    fn dml_statements() {
        assert!(matches!(
            parse("INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap(),
            Statement::Insert { rows, .. } if rows.len() == 2
        ));
        assert!(matches!(
            parse("UPDATE t SET a = a + 1 WHERE b < 3").unwrap(),
            Statement::Update { set, .. } if set.len() == 1
        ));
        assert!(matches!(
            parse("DELETE FROM t").unwrap(),
            Statement::Delete { filter: None, .. }
        ));
    }

    #[test]
    fn explain_statements() {
        assert!(matches!(
            parse("EXPLAIN SELECT * FROM t").unwrap(),
            Statement::Explain { analyze: false, .. }
        ));
        assert!(matches!(
            parse("explain analyze SELECT a FROM t WHERE a > 1").unwrap(),
            Statement::Explain { analyze: true, .. }
        ));
        // Only SELECT can be explained; ANALYZE alone is not a statement.
        assert!(parse("EXPLAIN DELETE FROM t").is_err());
        assert!(parse("EXPLAIN ANALYZE").is_err());
    }

    #[test]
    fn limit_rejects_non_integers() {
        assert!(parse("SELECT * FROM t LIMIT x").is_err());
        assert!(parse("SELECT * FROM t LIMIT 1.5").is_err());
    }

    #[test]
    fn count_star_only_for_count() {
        assert!(parse("SELECT SUM(*) FROM t").is_err());
        assert!(parse("SELECT COUNT(*) FROM t").is_ok());
    }

    #[test]
    fn negative_literals_parse() {
        let s = parse("SELECT * FROM t WHERE a > -5 AND b < -1.25").unwrap();
        let Statement::Select(sel) = s else { panic!() };
        assert!(sel.filter.is_some());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(parse("SELECT * FROM t garbage garbage").is_err());
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse("SELECT FROM").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }));
        let err = parse("SELECT * FROM t WHERE ^").unwrap_err();
        assert!(matches!(err, SqlError::Lex { .. }));
    }
}
