#![warn(missing_docs)]

//! # sqlfe — a SQL frontend for the microjoule engines
//!
//! Parses a practical SQL subset into [`engines::Plan`] /
//! [`engines::Dml`], so workloads can be written as text instead of
//! hand-built plan trees:
//!
//! ```sql
//! SELECT l_returnflag, COUNT(*), SUM(l_extendedprice * (1 - l_discount))
//! FROM lineitem
//! WHERE l_shipdate <= DATE '1998-09-02'
//! GROUP BY l_returnflag
//! ORDER BY 1;
//! ```
//!
//! Supported:
//! * `SELECT` list: `*`, expressions with `AS` aliases, aggregates
//!   (`COUNT(*)`, `COUNT/SUM/AVG/MIN/MAX(expr)`),
//! * `FROM t [JOIN u ON a = b]…` (left-deep equi-joins),
//! * `WHERE` with `AND/OR/NOT`, comparisons, arithmetic, `BETWEEN`,
//!   `IN (…)`, `LIKE` (prefix `'x%'` and containment `'%x%'` patterns),
//!   `DATE 'yyyy-mm-dd'` literals,
//! * `GROUP BY`, `ORDER BY` (expression positions or select aliases,
//!   `ASC`/`DESC`), `LIMIT`,
//! * `INSERT INTO … VALUES`, `UPDATE … SET … [WHERE …]`,
//!   `DELETE FROM … [WHERE …]`.
//!
//! Single-table `WHERE` conjuncts are pushed below joins onto their source
//! scans (a small but real optimizer step), so SQL-built plans execute with
//! the same early filtering as the hand-built workload plans.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod planner;

pub use ast::Statement;
pub use parser::parse;
pub use planner::{plan_statement, Planned};

/// Parse, plan, and optimize a statement against a catalog in one call.
///
/// Queries additionally go through [`engines::optimizer::optimize`] (index
/// selection, top-N fusion); use [`plan_statement`] directly for the raw
/// plan.
pub fn compile(sql: &str, catalog: &storage::Catalog) -> Result<Planned, SqlError> {
    let stmt = parse(sql)?;
    match plan_statement(&stmt, catalog)? {
        Planned::Query(p) => Ok(Planned::Query(engines::optimizer::optimize(p, catalog))),
        Planned::Explain { analyze, plan } => Ok(Planned::Explain {
            analyze,
            plan: engines::optimizer::optimize(plan, catalog),
        }),
        w => Ok(w),
    }
}

/// Frontend errors, with byte positions where available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Tokenizer rejected the input.
    Lex {
        /// Byte offset.
        at: usize,
        /// What went wrong.
        msg: String,
    },
    /// Parser rejected the token stream.
    Parse {
        /// Byte offset of the offending token.
        at: usize,
        /// What went wrong.
        msg: String,
    },
    /// Name resolution / planning failure.
    Plan(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex { at, msg } => write!(f, "lex error at byte {at}: {msg}"),
            SqlError::Parse { at, msg } => write!(f, "parse error at byte {at}: {msg}"),
            SqlError::Plan(msg) => write!(f, "planning error: {msg}"),
        }
    }
}

impl std::error::Error for SqlError {}
