//! SQL tokenizer.

use crate::SqlError;

/// One token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset in the source.
    pub at: usize,
    /// Token payload.
    pub kind: Tok,
}

/// Token kinds. Keywords are case-insensitive and normalised to upper-case
/// identifiers at parse time.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (original spelling preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (unescaped; `''` = quote).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

/// Tokenize `src`.
pub fn lex(src: &str) -> Result<Vec<Token>, SqlError> {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if b.get(i + 1) == Some(&b'-') => {
                // line comment
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push(&mut out, i, Tok::LParen, &mut i),
            ')' => push(&mut out, i, Tok::RParen, &mut i),
            ',' => push(&mut out, i, Tok::Comma, &mut i),
            ';' => push(&mut out, i, Tok::Semi, &mut i),
            '.' => push(&mut out, i, Tok::Dot, &mut i),
            '*' => push(&mut out, i, Tok::Star, &mut i),
            '+' => push(&mut out, i, Tok::Plus, &mut i),
            '-' => push(&mut out, i, Tok::Minus, &mut i),
            '/' => push(&mut out, i, Tok::Slash, &mut i),
            '=' => push(&mut out, i, Tok::Eq, &mut i),
            '!' if b.get(i + 1) == Some(&b'=') => {
                out.push(Token {
                    at: i,
                    kind: Tok::Ne,
                });
                i += 2;
            }
            '<' => match b.get(i + 1) {
                Some(&b'=') => {
                    out.push(Token {
                        at: i,
                        kind: Tok::Le,
                    });
                    i += 2;
                }
                Some(&b'>') => {
                    out.push(Token {
                        at: i,
                        kind: Tok::Ne,
                    });
                    i += 2;
                }
                _ => {
                    out.push(Token {
                        at: i,
                        kind: Tok::Lt,
                    });
                    i += 1;
                }
            },
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        at: i,
                        kind: Tok::Ge,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        at: i,
                        kind: Tok::Gt,
                    });
                    i += 1;
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match b.get(i) {
                        None => {
                            return Err(SqlError::Lex {
                                at: start,
                                msg: "unterminated string literal".into(),
                            })
                        }
                        Some(&b'\'') if b.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(&b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token {
                    at: start,
                    kind: Tok::Str(s),
                });
            }
            '0'..='9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    is_float = true;
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = &src[start..i];
                let kind = if is_float {
                    Tok::Float(text.parse().map_err(|_| SqlError::Lex {
                        at: start,
                        msg: format!("bad float literal `{text}`"),
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| SqlError::Lex {
                        at: start,
                        msg: format!("bad integer literal `{text}`"),
                    })?)
                };
                out.push(Token { at: start, kind });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Token {
                    at: start,
                    kind: Tok::Ident(src[start..i].to_owned()),
                });
            }
            other => {
                return Err(SqlError::Lex {
                    at: i,
                    msg: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    out.push(Token {
        at: src.len(),
        kind: Tok::Eof,
    });
    Ok(out)
}

fn push(out: &mut Vec<Token>, at: usize, kind: Tok, i: &mut usize) {
    out.push(Token { at, kind });
    *i += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn operators_and_idents() {
        assert_eq!(
            kinds("a <= b <> c >= 1.5"),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::Ne,
                Tok::Ident("c".into()),
                Tok::Ge,
                Tok::Float(1.5),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escaped_quote() {
        assert_eq!(kinds("'it''s'"), vec![Tok::Str("it's".into()), Tok::Eof]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("1 -- comment\n 2"),
            vec![Tok::Int(1), Tok::Int(2), Tok::Eof]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn lexer_never_panics_on_printable_ascii() {
        // Cheap fuzz: every 3-byte printable-ASCII combination either
        // tokenizes or returns a positioned error — no panics.
        let chars: Vec<char> = (b' '..=b'~').map(|b| b as char).step_by(7).collect();
        for &a in &chars {
            for &b in &chars {
                let s: String = [a, b, 'x'].iter().collect();
                let _ = lex(&s);
            }
        }
    }

    #[test]
    fn minus_vs_comment() {
        assert_eq!(
            kinds("1 - 2"),
            vec![Tok::Int(1), Tok::Minus, Tok::Int(2), Tok::Eof]
        );
    }
}
