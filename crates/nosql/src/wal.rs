//! Write-ahead log: sequential record appends into a ring region, with a
//! group-commit fsync every `group` records.

use simcore::{Cpu, Region};

/// Simulated fsync latency (SSD-class).
pub const FSYNC_S: f64 = 60e-6;

/// The log writer.
pub struct Wal {
    region: Region,
    off: u64,
    since_sync: u32,
    group: u32,
    /// Records appended (diagnostic).
    pub appended: u64,
    /// fsyncs issued (diagnostic).
    pub syncs: u64,
}

impl Wal {
    /// A WAL with a `cap`-byte ring and `group`-record group commit.
    pub fn new(cpu: &mut Cpu, cap: u64, group: u32) -> crate::Result<Wal> {
        let region = cpu.alloc(cap.max(4096))?;
        Ok(Wal {
            region,
            off: 0,
            since_sync: 0,
            group: group.max(1),
            appended: 0,
            syncs: 0,
        })
    }

    /// Append one record: header + payload stores, plus a group fsync.
    pub fn append(&mut self, cpu: &mut Cpu, key: &[u8], value: &[u8]) {
        let len = 12 + key.len() as u64 + value.len() as u64;
        let start = self.off % self.region.len;
        let end = (start + len).min(self.region.len);
        storage::page::touch_store(cpu, self.region.addr + start, end - start);
        self.off = (self.off + len) % self.region.len;
        self.appended += 1;
        self.since_sync += 1;
        if self.since_sync >= self.group {
            cpu.idle_c0(FSYNC_S);
            self.syncs += 1;
            self.since_sync = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::ArchConfig;

    #[test]
    fn group_commit_amortises_fsyncs() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut wal = Wal::new(&mut cpu, 1 << 20, 8).unwrap();
        for i in 0..64u64 {
            wal.append(&mut cpu, &i.to_le_bytes(), b"value");
        }
        assert_eq!(wal.appended, 64);
        assert_eq!(wal.syncs, 8);
    }

    #[test]
    fn appends_are_store_traffic() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut wal = Wal::new(&mut cpu, 1 << 20, 1024).unwrap();
        let before = cpu.pmu_snapshot();
        wal.append(&mut cpu, b"k", &[0u8; 100]);
        let d = cpu.pmu_snapshot().delta(&before);
        assert!(d.get(simcore::Event::StoreIssued) >= 2);
        assert_eq!(d.get(simcore::Event::LoadIssued), 0);
    }
}
