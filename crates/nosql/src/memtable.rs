//! The mutable in-memory table.
//!
//! Contents live in a host `BTreeMap` (correctness); the simulated access
//! pattern is a skip list: ~log₂(n) pointer chases per operation through a
//! node arena, plus entry stores on insert.

use simcore::{Cpu, Dep, ExecOp, Region};
use std::collections::BTreeMap;

/// The memtable.
pub struct Memtable {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    arena: Region,
    bytes: u64,
    next_node: u64,
}

impl Memtable {
    /// A memtable whose node arena covers `cap` bytes.
    pub fn new(cpu: &mut Cpu, cap: u64) -> crate::Result<Memtable> {
        let arena = cpu.alloc(cap.max(4096))?;
        Ok(Memtable {
            map: BTreeMap::new(),
            arena,
            bytes: 0,
            next_node: 0,
        })
    }

    /// Approximate resident bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn skiplist_descent(&self, cpu: &mut Cpu) {
        let levels = (64 - (self.map.len() as u64).leading_zeros() as u64).max(1);
        let nodes = (self.arena.len / 64).max(1);
        // Pseudo-random but deterministic node path.
        let mut h = self.next_node.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        for _ in 0..levels {
            cpu.access_run(self.arena.addr + (h % nodes) * 64, 1, false, Dep::Chase);
            cpu.exec(ExecOp::Branch);
            h = h
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
    }

    /// Insert or overwrite.
    pub fn put(&mut self, cpu: &mut Cpu, key: &[u8], value: &[u8]) {
        self.skiplist_descent(cpu);
        // New node: key+value copy into the arena.
        let len = (key.len() + value.len() + 32) as u64;
        let at = (self.next_node * 64) % self.arena.len;
        let end = (at + len).min(self.arena.len);
        storage::page::touch_store(cpu, self.arena.addr + at, end - at);
        self.next_node += len.div_ceil(64);
        if let Some(old) = self.map.insert(key.to_vec(), value.to_vec()) {
            self.bytes -= (key.len() + old.len()) as u64;
        }
        self.bytes += (key.len() + value.len()) as u64;
    }

    /// Point lookup.
    pub fn get(&mut self, cpu: &mut Cpu, key: &[u8]) -> Option<Vec<u8>> {
        self.skiplist_descent(cpu);
        let hit = self.map.get(key).cloned();
        if let Some(v) = &hit {
            // Read the node's value bytes.
            let at = (key.len() as u64 * 131) % self.arena.len;
            let end = (at + v.len() as u64).min(self.arena.len);
            storage::page::touch(cpu, self.arena.addr + at, end - at, Dep::Stream);
        }
        hit
    }

    /// Stream in key order without draining (range scans).
    pub fn scan_sorted(&self, cpu: &mut Cpu) -> Vec<(Vec<u8>, Vec<u8>)> {
        let n = self.map.len() as u64;
        storage::page::touch(
            cpu,
            self.arena.addr,
            (n * 64).min(self.arena.len).max(64),
            Dep::Stream,
        );
        self.map
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Drain in key order (flush to an SSTable): streaming reads.
    pub fn drain_sorted(&mut self, cpu: &mut Cpu) -> Vec<(Vec<u8>, Vec<u8>)> {
        let n = self.map.len() as u64;
        storage::page::touch(
            cpu,
            self.arena.addr,
            (n * 64).min(self.arena.len),
            Dep::Stream,
        );
        self.bytes = 0;
        self.next_node = 0;
        std::mem::take(&mut self.map).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::ArchConfig;

    #[test]
    fn put_get_overwrite() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut m = Memtable::new(&mut cpu, 1 << 20).unwrap();
        m.put(&mut cpu, b"a", b"1");
        m.put(&mut cpu, b"b", b"2");
        m.put(&mut cpu, b"a", b"3");
        assert_eq!(m.get(&mut cpu, b"a"), Some(b"3".to_vec()));
        assert_eq!(m.get(&mut cpu, b"missing"), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn drain_is_sorted_and_resets() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut m = Memtable::new(&mut cpu, 1 << 20).unwrap();
        for k in [b"c".to_vec(), b"a".to_vec(), b"b".to_vec()] {
            m.put(&mut cpu, &k, b"v");
        }
        let drained = m.drain_sorted(&mut cpu);
        let keys: Vec<&[u8]> = drained.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![b"a".as_slice(), b"b", b"c"]);
        assert!(m.is_empty());
        assert_eq!(m.bytes(), 0);
    }

    #[test]
    fn lookups_chase_pointers() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut m = Memtable::new(&mut cpu, 1 << 20).unwrap();
        for i in 0..1000u64 {
            m.put(&mut cpu, &i.to_le_bytes(), b"v");
        }
        let before = cpu.pmu_snapshot();
        m.get(&mut cpu, &500u64.to_le_bytes());
        let d = cpu.pmu_snapshot().delta(&before);
        assert!(
            d.get(simcore::Event::StallCycles) > 0,
            "skip-list descent must stall"
        );
    }
}
