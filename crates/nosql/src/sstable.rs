//! Immutable sorted runs.
//!
//! An SSTable's records are encoded into a contiguous simulated region in
//! 4 KB blocks; a sparse index (first key per block) and a bloom filter make
//! point reads one bloom probe + one index binary search + one block scan.

use crate::bloom::Bloom;
use simcore::{Cpu, Dep, ExecOp, Region};

const BLOCK: u64 = 4096;

/// One immutable sorted run.
pub struct SsTable {
    region: Region,
    /// `(first_key, block_offset)` per block.
    index: Vec<(Vec<u8>, u64)>,
    /// Records: `(key, value, offset_in_region)` — host-side mirror.
    records: Vec<(Vec<u8>, Vec<u8>, u64)>,
    bloom: Bloom,
    /// Total encoded bytes.
    pub bytes: u64,
}

impl SsTable {
    /// Build from key-sorted pairs, writing every block through the CPU.
    pub fn build(cpu: &mut Cpu, pairs: &[(Vec<u8>, Vec<u8>)]) -> crate::Result<SsTable> {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 <= w[1].0),
            "SSTable input must be sorted"
        );
        let total: u64 = pairs
            .iter()
            .map(|(k, v)| 12 + k.len() as u64 + v.len() as u64)
            .sum();
        let region = cpu.alloc(total.max(BLOCK))?;
        let mut bloom = Bloom::new(cpu, pairs.len() as u64)?;

        let mut index = Vec::new();
        let mut records = Vec::with_capacity(pairs.len());
        let mut off = 0u64;
        let mut block_start = None::<u64>;
        for (k, v) in pairs {
            let len = 12 + k.len() as u64 + v.len() as u64;
            if block_start.is_none() || off - block_start.expect("set") + len > BLOCK {
                index.push((k.clone(), off));
                block_start = Some(off);
            }
            // Write the record.
            let end = (off + len).min(region.len);
            storage::page::touch_store(
                cpu,
                region.addr + off.min(region.len - 1),
                end - off.min(region.len - 1),
            );
            bloom.insert(cpu, k);
            records.push((k.clone(), v.clone(), off));
            off += len;
        }
        Ok(SsTable {
            region,
            index,
            records,
            bloom,
            bytes: off,
        })
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the run is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Point lookup: bloom probe → sparse-index binary search → block scan.
    pub fn get(&mut self, cpu: &mut Cpu, key: &[u8]) -> Option<Vec<u8>> {
        if !self.bloom.may_contain(cpu, key) {
            return None;
        }
        // Binary search over the sparse index (in-memory, chase-y).
        let mut lo = 0usize;
        let mut hi = self.index.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            cpu.access_run(
                self.region.addr + (self.index[mid].1 % self.region.len),
                1,
                false,
                Dep::Chase,
            );
            cpu.exec(ExecOp::Branch);
            if self.index[mid].0.as_slice() <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let block = lo.checked_sub(1)?;
        let block_off = self.index[block].1;
        // Scan the block.
        let end = self
            .index
            .get(block + 1)
            .map(|(_, o)| *o)
            .unwrap_or(self.bytes)
            .min(self.region.len);
        storage::page::touch(
            cpu,
            self.region.addr + block_off.min(self.region.len - 1),
            end.saturating_sub(block_off).max(1),
            Dep::Stream,
        );
        cpu.exec_n(ExecOp::Branch, 8);
        // Host-side answer.
        match self
            .records
            .binary_search_by(|(k, _, _)| k.as_slice().cmp(key))
        {
            Ok(i) => Some(self.records[i].1.clone()),
            Err(_) => None,
        }
    }

    /// Stream every record in key order (compaction input / range scans).
    pub fn scan_all(&self, cpu: &mut Cpu) -> impl Iterator<Item = (Vec<u8>, Vec<u8>)> + '_ {
        storage::page::touch(
            cpu,
            self.region.addr,
            self.bytes.min(self.region.len),
            Dep::Stream,
        );
        self.records.iter().map(|(k, v, _)| (k.clone(), v.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::ArchConfig;

    fn pairs(n: u64) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..n)
            .map(|i| (format!("key{i:08}").into_bytes(), vec![7u8; 40]))
            .collect()
    }

    #[test]
    fn build_and_point_lookups() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut t = SsTable::build(&mut cpu, &pairs(5000)).unwrap();
        assert_eq!(t.len(), 5000);
        assert!(t.index.len() > 1, "multiple blocks expected");
        assert_eq!(t.get(&mut cpu, b"key00000042"), Some(vec![7u8; 40]));
        assert_eq!(t.get(&mut cpu, b"key99999999"), None);
        assert_eq!(t.get(&mut cpu, b"aaa"), None);
    }

    #[test]
    fn scan_streams_in_order() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let t = SsTable::build(&mut cpu, &pairs(100)).unwrap();
        let keys: Vec<Vec<u8>> = t.scan_all(&mut cpu).map(|(k, _)| k).collect();
        assert_eq!(keys.len(), 100);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn bloom_short_circuits_missing_keys() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut t = SsTable::build(&mut cpu, &pairs(2000)).unwrap();
        // A definitely-absent key: most probes should end at the bloom.
        let before = cpu.pmu_snapshot();
        for i in 0..100u64 {
            t.get(&mut cpu, format!("zzz{i}").as_bytes());
        }
        let d = cpu.pmu_snapshot().delta(&before);
        // Bloom-only negative lookups issue ~k loads, far fewer than a
        // block scan (64 lines) would.
        assert!(
            d.get(simcore::Event::LoadIssued) < 100 * 40,
            "negative lookups should be bloom-bounded: {}",
            d.get(simcore::Event::LoadIssued)
        );
    }
}
