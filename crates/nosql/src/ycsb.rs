//! YCSB-like workload driver with Zipfian key popularity.

use crate::lsm::LsmStore;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simcore::Cpu;

/// The classic YCSB mixes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YcsbMix {
    /// 50% reads / 50% updates.
    A,
    /// 95% reads / 5% updates.
    B,
    /// 100% reads.
    C,
    /// Read-latest: 95% reads skewed to recent inserts / 5% inserts.
    D,
    /// Short scans (95%) + inserts (5%).
    E,
    /// Read-modify-write.
    F,
}

impl YcsbMix {
    /// All mixes.
    pub const ALL: [YcsbMix; 6] = [
        YcsbMix::A,
        YcsbMix::B,
        YcsbMix::C,
        YcsbMix::D,
        YcsbMix::E,
        YcsbMix::F,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            YcsbMix::A => "YCSB-A",
            YcsbMix::B => "YCSB-B",
            YcsbMix::C => "YCSB-C",
            YcsbMix::D => "YCSB-D",
            YcsbMix::E => "YCSB-E",
            YcsbMix::F => "YCSB-F",
        }
    }
}

/// A loaded key space + driver state.
pub struct Workload {
    mix: YcsbMix,
    keys: u64,
    inserted: u64,
    rng: SmallRng,
    zipf: Zipf,
    value: Vec<u8>,
}

impl Workload {
    /// Load `keys` records of `value_bytes` each into the store.
    pub fn load(
        cpu: &mut Cpu,
        store: &mut LsmStore,
        mix: YcsbMix,
        keys: u64,
        value_bytes: usize,
    ) -> crate::Result<Workload> {
        let value = vec![0xabu8; value_bytes];
        for i in 0..keys {
            store.put(cpu, &key_of(i), &value)?;
        }
        Ok(Workload {
            mix,
            keys,
            inserted: keys,
            rng: SmallRng::seed_from_u64(0x5eed1),
            zipf: Zipf::new(keys, 0.99),
            value,
        })
    }

    /// Attach a driver to an *already-loaded* key space with its own RNG
    /// stream.
    ///
    /// A multi-session server loads the store once ([`Workload::load`]) and
    /// then attaches one driver per client stream with a distinct `seed`, so
    /// the streams issue different (but per-seed deterministic) op
    /// sequences against shared data.
    pub fn attach(mix: YcsbMix, keys: u64, value_bytes: usize, seed: u64) -> Workload {
        Workload {
            mix,
            keys,
            inserted: keys,
            rng: SmallRng::seed_from_u64(seed),
            zipf: Zipf::new(keys, 0.99),
            value: vec![0xabu8; value_bytes],
        }
    }

    /// Run `ops` operations; returns `(reads, writes, misses)`.
    pub fn run(
        &mut self,
        cpu: &mut Cpu,
        store: &mut LsmStore,
        ops: u64,
    ) -> crate::Result<(u64, u64, u64)> {
        let (mut reads, mut writes, mut misses) = (0u64, 0u64, 0u64);
        for _ in 0..ops {
            let roll: f64 = self.rng.gen();
            match self.mix {
                YcsbMix::A | YcsbMix::B | YcsbMix::C => {
                    let read_frac = match self.mix {
                        YcsbMix::A => 0.5,
                        YcsbMix::B => 0.95,
                        _ => 1.0,
                    };
                    let k = key_of(self.zipf.next(&mut self.rng));
                    if roll < read_frac {
                        reads += 1;
                        if store.get(cpu, &k).is_none() {
                            misses += 1;
                        }
                    } else {
                        writes += 1;
                        let v = self.value.clone();
                        store.put(cpu, &k, &v)?;
                    }
                }
                YcsbMix::D => {
                    if roll < 0.95 {
                        // Read-latest: bias toward the most recent inserts.
                        // With nothing inserted yet there is no "latest" —
                        // reading key 0 anyway would count a phantom miss
                        // and skew the mix's hit rate, so skip the op.
                        if self.inserted == 0 {
                            continue;
                        }
                        let back = self.zipf.next(&mut self.rng) % self.inserted;
                        let k = key_of(self.inserted - 1 - back);
                        reads += 1;
                        if store.get(cpu, &k).is_none() {
                            misses += 1;
                        }
                    } else {
                        let k = key_of(self.inserted);
                        self.inserted += 1;
                        writes += 1;
                        let v = self.value.clone();
                        store.put(cpu, &k, &v)?;
                    }
                }
                YcsbMix::E => {
                    if roll < 0.95 {
                        let start = key_of(self.zipf.next(&mut self.rng));
                        let got = store.scan(cpu, &start, 20);
                        reads += got.len() as u64;
                    } else {
                        let k = key_of(self.inserted);
                        self.inserted += 1;
                        writes += 1;
                        let v = self.value.clone();
                        store.put(cpu, &k, &v)?;
                    }
                }
                YcsbMix::F => {
                    let k = key_of(self.zipf.next(&mut self.rng));
                    reads += 1;
                    let old = store.get(cpu, &k);
                    if old.is_none() {
                        misses += 1;
                    }
                    writes += 1;
                    let v = self.value.clone();
                    store.put(cpu, &k, &v)?;
                }
            }
        }
        Ok((reads, writes, misses))
    }

    /// Keys loaded initially.
    pub fn key_count(&self) -> u64 {
        self.keys
    }
}

fn key_of(i: u64) -> Vec<u8> {
    format!("user{i:012}").into_bytes()
}

/// Approximate Zipfian sampler (Gray et al. rejection-free approximation).
struct Zipf {
    n: u64,
    theta: f64,
    zetan: f64,
    alpha: f64,
    eta: f64,
}

impl Zipf {
    fn new(n: u64, theta: f64) -> Zipf {
        let n = n.max(1);
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2: f64 = (1..=2u64.min(n))
            .map(|i| 1.0 / (i as f64).powf(theta))
            .sum();
        Zipf {
            n,
            theta,
            zetan,
            alpha: 1.0 / (1.0 - theta),
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    fn next(&mut self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let v = ((self.eta * u - self.eta + 1.0).powf(self.alpha) * self.n as f64) as u64;
        v.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsm::LsmConfig;
    use simcore::ArchConfig;

    fn rig() -> (Cpu, LsmStore) {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let store = LsmStore::open(
            &mut cpu,
            LsmConfig {
                memtable_bytes: 32 * 1024,
                fanout: 4,
                wal_group: 16,
            },
        )
        .unwrap();
        (cpu, store)
    }

    #[test]
    fn every_mix_runs_without_misses_on_loaded_keys() {
        for mix in YcsbMix::ALL {
            let (mut cpu, mut store) = rig();
            let mut w = Workload::load(&mut cpu, &mut store, mix, 500, 64).unwrap();
            let (reads, writes, misses) = w.run(&mut cpu, &mut store, 300).unwrap();
            assert!(reads + writes > 0, "{}", mix.name());
            assert_eq!(misses, 0, "{}: all loaded keys must be found", mix.name());
        }
    }

    #[test]
    fn read_latest_on_empty_store_skips_instead_of_phantom_missing() {
        // YCSB-D starting from an empty key space: until the first insert
        // lands there is no latest key to read. Pre-fix the driver read
        // `user000000000000` (never inserted) and piled up spurious misses.
        let (mut cpu, mut store) = rig();
        let mut w = Workload::load(&mut cpu, &mut store, YcsbMix::D, 0, 64).unwrap();
        let (reads, writes, misses) = w.run(&mut cpu, &mut store, 400).unwrap();
        assert_eq!(misses, 0, "reads must target only inserted keys");
        assert!(writes > 0, "the 5% insert arm still runs");
        // Once keys exist, read-latest resumes (some reads happen).
        assert!(reads > 0, "reads resume after the first insert");
    }

    #[test]
    fn zipf_is_skewed_toward_small_ranks() {
        let mut z = Zipf::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut head = 0u64;
        const N: u64 = 10_000;
        for _ in 0..N {
            if z.next(&mut rng) < 100 {
                head += 1;
            }
        }
        // Top 10% of keys should absorb well over half the draws.
        assert!(head > N / 2, "zipf skew too weak: {head}/{N}");
    }

    #[test]
    fn mix_c_is_read_only() {
        let (mut cpu, mut store) = rig();
        let mut w = Workload::load(&mut cpu, &mut store, YcsbMix::C, 200, 64).unwrap();
        let (_, writes, _) = w.run(&mut cpu, &mut store, 200).unwrap();
        assert_eq!(writes, 0);
    }
}
