//! The LSM tree: WAL → memtable → levelled SSTable runs with size-tiered
//! compaction.

use crate::memtable::Memtable;
use crate::sstable::SsTable;
use crate::wal::Wal;
use simcore::Cpu;
use std::collections::BTreeMap;

/// The tombstone sentinel (empty values are reserved for deletions).
const TOMBSTONE: &[u8] = b"";

#[inline]
fn live(v: Vec<u8>) -> Option<Vec<u8>> {
    if v == TOMBSTONE {
        None
    } else {
        Some(v)
    }
}

/// Tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct LsmConfig {
    /// Memtable flush threshold (bytes).
    pub memtable_bytes: u64,
    /// Runs per tier before compaction merges them.
    pub fanout: usize,
    /// WAL group-commit size.
    pub wal_group: u32,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_bytes: 256 * 1024,
            fanout: 4,
            wal_group: 16,
        }
    }
}

/// The store.
pub struct LsmStore {
    cfg: LsmConfig,
    wal: Wal,
    mem: Memtable,
    /// Newest-first runs.
    runs: Vec<SsTable>,
    /// Flushes performed (diagnostic).
    pub flushes: u64,
    /// Compactions performed (diagnostic).
    pub compactions: u64,
}

impl LsmStore {
    /// Open an empty store.
    pub fn open(cpu: &mut Cpu, cfg: LsmConfig) -> crate::Result<LsmStore> {
        Ok(LsmStore {
            cfg,
            wal: Wal::new(cpu, 1 << 20, cfg.wal_group)?,
            mem: Memtable::new(cpu, cfg.memtable_bytes * 2)?,
            runs: Vec::new(),
            flushes: 0,
            compactions: 0,
        })
    }

    /// Write a key/value pair.
    pub fn put(&mut self, cpu: &mut Cpu, key: &[u8], value: &[u8]) -> crate::Result<()> {
        if key.len() > 1024 || value.len() > 16 * 1024 {
            return Err(crate::KvError::TooLarge("key/value"));
        }
        self.wal.append(cpu, key, value);
        self.mem.put(cpu, key, value);
        if self.mem.bytes() >= self.cfg.memtable_bytes {
            self.flush(cpu)?;
        }
        Ok(())
    }

    /// Point read (memtable first, then runs newest→oldest). Tombstones
    /// read as absent.
    pub fn get(&mut self, cpu: &mut Cpu, key: &[u8]) -> Option<Vec<u8>> {
        if let Some(v) = self.mem.get(cpu, key) {
            return live(v);
        }
        for run in self.runs.iter_mut() {
            if let Some(v) = run.get(cpu, key) {
                return live(v);
            }
        }
        None
    }

    /// Delete a key: a tombstone write (LSM deletes are writes); the value
    /// disappears from reads immediately and physically at compaction.
    pub fn delete(&mut self, cpu: &mut Cpu, key: &[u8]) -> crate::Result<()> {
        self.wal.append(cpu, key, TOMBSTONE);
        self.mem.put(cpu, key, TOMBSTONE);
        if self.mem.bytes() >= self.cfg.memtable_bytes {
            self.flush(cpu)?;
        }
        Ok(())
    }

    /// Inclusive range scan from `from`, up to `limit` results: merges the
    /// memtable (not drained) and every run, newest version winning.
    pub fn scan(&mut self, cpu: &mut Cpu, from: &[u8], limit: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut merged: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        // Oldest first so newer versions overwrite.
        for run in self.runs.iter().rev() {
            for (k, v) in run.scan_all(cpu) {
                if k.as_slice() >= from {
                    merged.insert(k, v);
                }
            }
        }
        for (k, v) in self.mem.scan_sorted(cpu) {
            if k.as_slice() >= from {
                merged.insert(k, v);
            }
        }
        merged
            .into_iter()
            .filter(|(_, v)| v != TOMBSTONE)
            .take(limit)
            .collect()
    }

    /// Flush the memtable into a new run; maybe compact.
    pub fn flush(&mut self, cpu: &mut Cpu) -> crate::Result<()> {
        let pairs = self.mem.drain_sorted(cpu);
        if pairs.is_empty() {
            return Ok(());
        }
        let run = SsTable::build(cpu, &pairs)?;
        self.runs.insert(0, run);
        self.flushes += 1;
        if self.runs.len() > self.cfg.fanout {
            self.compact(cpu)?;
        }
        Ok(())
    }

    /// Merge every run into one (size-tiered major compaction): streaming
    /// reads of all inputs, streaming writes of the output. Tombstones are
    /// dropped — this is where deleted space is reclaimed.
    pub fn compact(&mut self, cpu: &mut Cpu) -> crate::Result<()> {
        let mut merged: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for run in self.runs.iter().rev() {
            for (k, v) in run.scan_all(cpu) {
                merged.insert(k, v);
            }
        }
        let pairs: Vec<(Vec<u8>, Vec<u8>)> =
            merged.into_iter().filter(|(_, v)| v != TOMBSTONE).collect();
        let out = SsTable::build(cpu, &pairs)?;
        self.runs = vec![out];
        self.compactions += 1;
        Ok(())
    }

    /// Total live keys (diagnostic; scans every run).
    pub fn approximate_keys(&self) -> usize {
        self.runs.iter().map(|r| r.len()).sum::<usize>() + self.mem.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::ArchConfig;

    fn store(cpu: &mut Cpu) -> LsmStore {
        LsmStore::open(
            cpu,
            LsmConfig {
                memtable_bytes: 4 * 1024,
                fanout: 3,
                wal_group: 8,
            },
        )
        .unwrap()
    }

    #[test]
    fn put_get_across_flushes() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut s = store(&mut cpu);
        for i in 0..2000u64 {
            s.put(&mut cpu, format!("k{i:06}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        assert!(s.flushes > 0, "memtable should have flushed");
        for i in (0..2000u64).step_by(97) {
            let v = s.get(&mut cpu, format!("k{i:06}").as_bytes());
            assert_eq!(v, Some(i.to_le_bytes().to_vec()), "key {i}");
        }
        assert_eq!(s.get(&mut cpu, b"nope"), None);
    }

    #[test]
    fn newer_versions_win_after_compaction() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut s = store(&mut cpu);
        for round in 0..5u64 {
            for i in 0..300u64 {
                let mut v = vec![b'x'; 64];
                v[0] = b'0' + round as u8;
                s.put(&mut cpu, format!("k{i:04}").as_bytes(), &v).unwrap();
            }
        }
        assert!(s.compactions > 0, "fanout should have forced compaction");
        let got = s.get(&mut cpu, b"k0042").expect("key present");
        assert_eq!(got[0], b'4', "newest version must win");
    }

    #[test]
    fn delete_hides_immediately_and_compaction_reclaims() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut s = store(&mut cpu);
        for i in 0..500u64 {
            s.put(&mut cpu, format!("k{i:04}").as_bytes(), &[9u8; 40])
                .unwrap();
        }
        s.delete(&mut cpu, b"k0100").unwrap();
        assert_eq!(s.get(&mut cpu, b"k0100"), None);
        assert!(s.get(&mut cpu, b"k0101").is_some());
        // Scans skip tombstones too.
        let scanned = s.scan(&mut cpu, b"k0099", 5);
        assert!(scanned.iter().all(|(k, _)| k != b"k0100"));
        // Major compaction physically drops the key.
        s.flush(&mut cpu).unwrap();
        s.compact(&mut cpu).unwrap();
        assert_eq!(s.get(&mut cpu, b"k0100"), None);
        assert_eq!(s.approximate_keys(), 499);
    }

    #[test]
    fn compaction_bounds_run_count() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut s = store(&mut cpu);
        for i in 0..5000u64 {
            s.put(&mut cpu, format!("k{i:08}").as_bytes(), &[1u8; 32])
                .unwrap();
        }
        assert!(
            s.runs.len() <= 4,
            "runs must stay bounded, got {}",
            s.runs.len()
        );
        assert_eq!(s.approximate_keys(), 5000);
    }
}
