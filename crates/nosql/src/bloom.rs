//! Blocked bloom filter over a simulated bit array.

use simcore::{Cpu, Dep, ExecOp, Region};

/// A bloom filter with `k` hash probes into a simulated bit region.
pub struct Bloom {
    region: Region,
    bits: u64,
    k: u32,
    /// Host-side mirror for correctness (the simulated region prices the
    /// accesses; the mirror answers them).
    words: Vec<u64>,
}

impl Bloom {
    /// ~10 bits per expected key, k = 7 (RocksDB defaults).
    pub fn new(cpu: &mut Cpu, expected_keys: u64) -> crate::Result<Bloom> {
        let bits = (expected_keys.max(8) * 10).next_power_of_two();
        let region = cpu.alloc(bits / 8)?;
        Ok(Bloom {
            region,
            bits,
            k: 7,
            words: vec![0; (bits / 64) as usize],
        })
    }

    fn probes(&self, key: &[u8]) -> impl Iterator<Item = u64> + '_ {
        let mut h1 = 0xcbf2_9ce4_8422_2325u64;
        for &b in key {
            h1 ^= b as u64;
            h1 = h1.wrapping_mul(0x1000_0000_01b3);
        }
        let h2 = h1.rotate_left(17) | 1;
        let bits = self.bits;
        (0..self.k as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % bits)
    }

    /// Insert a key: `k` bit sets (hash ALU + one store per distinct word).
    pub fn insert(&mut self, cpu: &mut Cpu, key: &[u8]) {
        cpu.exec_n(ExecOp::Mul, self.k as u64);
        let probes: Vec<u64> = self.probes(key).collect();
        for bit in probes {
            let word = bit / 64;
            cpu.store(self.region.addr + word * 8);
            self.words[word as usize] |= 1 << (bit % 64);
        }
    }

    /// Probe: `k` dependent bit reads; early-out on the first zero bit.
    pub fn may_contain(&self, cpu: &mut Cpu, key: &[u8]) -> bool {
        cpu.exec_n(ExecOp::Mul, self.k as u64);
        for bit in self.probes(key) {
            let word = bit / 64;
            cpu.load(self.region.addr + word * 8, Dep::Chase);
            cpu.exec(ExecOp::Branch);
            if self.words[word as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::ArchConfig;

    #[test]
    fn no_false_negatives() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut b = Bloom::new(&mut cpu, 1000).unwrap();
        for i in 0..1000u64 {
            b.insert(&mut cpu, &i.to_le_bytes());
        }
        for i in 0..1000u64 {
            assert!(b.may_contain(&mut cpu, &i.to_le_bytes()));
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut b = Bloom::new(&mut cpu, 1000).unwrap();
        for i in 0..1000u64 {
            b.insert(&mut cpu, &i.to_le_bytes());
        }
        let fp = (10_000..20_000u64)
            .filter(|i| b.may_contain(&mut cpu, &i.to_le_bytes()))
            .count();
        assert!(fp < 300, "false-positive rate too high: {fp}/10000");
    }

    #[test]
    fn probes_charge_simulated_work() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut b = Bloom::new(&mut cpu, 100).unwrap();
        b.insert(&mut cpu, b"key");
        let before = cpu.pmu_snapshot();
        b.may_contain(&mut cpu, b"key");
        let d = cpu.pmu_snapshot().delta(&before);
        assert!(d.get(simcore::Event::LoadIssued) >= 7);
        assert!(d.get(simcore::Event::MulOps) >= 7);
    }
}
