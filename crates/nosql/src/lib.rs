#![warn(missing_docs)]

//! # nosql — an LSM-tree key-value store on the simulated CPU
//!
//! The paper closes with "we will try to profile the energy cost of other
//! typical database systems, such as NoSQL systems, to identify their energy
//! distribution feature on CPU and check if our method can be employed"
//! (§7). This crate is that future work: a write-optimised LSM store in the
//! RocksDB/LevelDB family —
//!
//! * a **write-ahead log** (sequential appends + group-commit fsyncs),
//! * a **memtable** (skip-list-shaped simulated accesses, host-side ordered
//!   map for correctness),
//! * immutable **SSTables** with block-sparse indexes and **bloom filters**,
//! * size-tiered **compaction**,
//! * a **YCSB-like workload driver** (A/B/C/D/F mixes, Zipfian keys).
//!
//! Every access runs through [`simcore::Cpu`], so the §2 methodology breaks
//! a YCSB run down exactly like a TPC-H query (see the `future_nosql`
//! harness). The expected contrast: point reads are dominated by bloom-probe
//! and index pointer chases (stall + DRAM heavy) while scans and compactions
//! stream (L1D/prefetch heavy) — NoSQL sits between the paper's query
//! workloads and its CPU-bound workloads.

pub mod bloom;
pub mod lsm;
pub mod memtable;
pub mod sstable;
pub mod wal;
pub mod ycsb;

pub use lsm::{LsmConfig, LsmStore};
pub use ycsb::{Workload, YcsbMix};

/// Errors from the KV store.
#[derive(Debug)]
pub enum KvError {
    /// Simulated memory exhausted.
    Mem(simcore::MemError),
    /// Keys/values over the size limits.
    TooLarge(&'static str),
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Mem(e) => write!(f, "memory: {e}"),
            KvError::TooLarge(what) => write!(f, "{what} exceeds the size limit"),
        }
    }
}

impl std::error::Error for KvError {}

impl From<simcore::MemError> for KvError {
    fn from(e: simcore::MemError) -> Self {
        KvError::Mem(e)
    }
}

/// Crate-wide result.
pub type Result<T> = std::result::Result<T, KvError>;
