#![warn(missing_docs)]

//! # engines — the database personalities plus the DTCM proof of concept
//!
//! The paper profiles PostgreSQL 9.5, SQLite 3.14 and MySQL 8.0 and
//! attributes their energy-distribution differences to *implementation
//! style* (§3.3): SQLite leans on sequential scanning and simple structures
//! (highest `E_L1D + E_Reg2L1D` share), PostgreSQL and MySQL build complex
//! auxiliary structures (hash joins, sort runs, heavier buffer management)
//! that add stalls and calculation energy.
//!
//! This crate implements the paper's three row engines over the shared
//! [`storage`] substrate, differing in exactly those structural ways, plus
//! a vectorized columnar counterfactual (**Vec**, the [`batch`] executor):
//!
//! | | **Pg** | **Lite** | **My** | **Vec** |
//! |---|---|---|---|---|
//! | table scan | heap cursor | table B-tree walk | clustered B-tree walk | column-lane batches |
//! | equi-join | hash join | index nested loop (+ transient auto-index) | hash join | hash join |
//! | grouping | hash aggregation | sort-based | hash aggregation | hash aggregation |
//! | secondary index | key → tuple id | key → rowid → table B-tree | key → PK → clustered B-tree | key-lane selection |
//! | per-row overhead | slot abstraction | VM dispatch (state loads) | server layer + checksums | amortized per vector |
//!
//! All four execute the same logical [`plan::Plan`]s and must return
//! identical result sets (differential tests enforce this); they differ only
//! in which loads, stores, and ops they issue — which is the whole point.
//!
//! [`dtcm`] is the §4 proof of concept: the **Lite** engine on the
//! ARM1176JZF-S machine with three co-design strategies — a DTCM database
//! buffer, the VM's hot "special variables" in DTCM, and the top B-tree
//! layers of the queried tables pinned in DTCM.

pub mod advisor;
pub mod batch;
pub mod db;
pub mod dml;
pub mod dtcm;
pub mod executor;
pub mod knobs;
pub mod optimizer;
pub mod plan;
pub mod profile;
pub mod session;

pub use advisor::DvfsAdvisor;
pub use db::Database;
pub use dml::Dml;
pub use dtcm::{DtcmConfig, DtcmDatabase};
pub use knobs::{KnobLevel, Knobs};
pub use optimizer::optimize;
pub use plan::Plan;
pub use profile::{EngineKind, Profile};
pub use session::{Session, SessionCtx};
