//! Extension — the customized DVFS policy the paper proposes in §5.
//!
//! "A customized DVFS approach is expected for memory-bound query
//! scenarios. It should analyze the query plan, such as index-intensive or
//! not, and monitor the main memory access to employ a more radical DVFS
//! strategy." This module implements both signals:
//!
//! * a **static plan inspector** that scores how index-/chase-intensive a
//!   plan is before execution, and
//! * a **feedback controller** that watches the PMU's stall share and DRAM
//!   traffic from the previous execution window.
//!
//! The `ext_custom_dvfs` harness shows the pay-off: memory-bound plans run
//! at the low P-state (large Active-energy saving, small slowdown) while
//! CPU-bound plans stay at the top (no 43–80%-class performance cliff).

use crate::plan::Plan;
use crate::profile::Profile;
use simcore::{Event, Measurement, PState};

/// The advisor's operating points.
#[derive(Debug, Clone, Copy)]
pub struct DvfsAdvisor {
    /// P-state for memory-bound work.
    pub low: PState,
    /// P-state for CPU-bound work.
    pub high: PState,
    /// Stall-share threshold for the feedback path (fraction of cycles).
    pub stall_threshold: f64,
}

impl Default for DvfsAdvisor {
    fn default() -> Self {
        DvfsAdvisor {
            low: PState::P24,
            high: PState::P36,
            stall_threshold: 0.35,
        }
    }
}

/// What the static inspector concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanClass {
    /// Sequential-scan/aggregate shaped: scales with frequency.
    CpuBound,
    /// Index-intensive / chase-heavy: partially latency-bound.
    MemoryBound,
}

impl DvfsAdvisor {
    /// Score a plan: random-access operators (index ranges, non-hash joins
    /// resolved through indexes) push toward memory-bound; sequential scans
    /// and aggregations toward CPU-bound.
    pub fn classify(&self, plan: &Plan, profile: &Profile) -> PlanClass {
        let mut chase = 0f64;
        let mut stream = 0f64;
        score(plan, profile, &mut chase, &mut stream);
        if chase > stream {
            PlanClass::MemoryBound
        } else {
            PlanClass::CpuBound
        }
    }

    /// Static recommendation from the plan alone.
    pub fn recommend(&self, plan: &Plan, profile: &Profile) -> PState {
        match self.classify(plan, profile) {
            PlanClass::MemoryBound => self.low,
            PlanClass::CpuBound => self.high,
        }
    }

    /// Feedback recommendation from the previous window's counters: high
    /// stall share or heavy DRAM traffic ⇒ downclock.
    pub fn recommend_from_feedback(&self, m: &Measurement) -> PState {
        let stall = m.pmu.get(Event::StallCycles) as f64;
        let total = m.cycles.max(1.0);
        let dram = (m.pmu.get(Event::L3Miss) + m.pmu.get(Event::PrefetchL3)) as f64;
        let loads = m.pmu.get(Event::LoadIssued).max(1) as f64;
        if stall / total > self.stall_threshold || dram / loads > 0.02 {
            self.low
        } else {
            self.high
        }
    }
}

fn score(plan: &Plan, profile: &Profile, chase: &mut f64, stream: &mut f64) {
    match plan {
        Plan::Scan { .. } => *stream += 1.0,
        Plan::IndexRange { .. } => {
            // Secondary-index fetches are random; double-lookup engines pay
            // a second descent per row.
            *chase += if profile.secondary_via_pk { 2.0 } else { 1.5 };
        }
        Plan::Join { left, right, .. } => {
            // Hash joins stream both sides but probe chains chase a little;
            // index nested loops descend per outer row.
            if profile.hash_join {
                *chase += 0.5;
            } else {
                *chase += 1.5;
            }
            score(left, profile, chase, stream);
            score(right, profile, chase, stream);
        }
        Plan::Aggregate { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::Project { input, .. } => {
            *stream += 0.25;
            score(input, profile, chase, stream);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::EngineKind;

    #[test]
    fn table_scans_are_cpu_bound_index_ranges_memory_bound() {
        let a = DvfsAdvisor::default();
        let pg = EngineKind::Pg.profile();
        let scan = Plan::scan("t").aggregate(vec![], vec![storage::AggSpec::count_star()]);
        assert_eq!(a.classify(&scan, pg), PlanClass::CpuBound);
        let index = Plan::IndexRange {
            table: "t".into(),
            col: "c".into(),
            lo: None,
            hi: None,
            filter: None,
            project: None,
        };
        assert_eq!(a.classify(&index, pg), PlanClass::MemoryBound);
        assert_eq!(a.recommend(&index, pg), PState::P24);
    }

    #[test]
    fn nested_loop_engines_score_joins_as_chasier() {
        let a = DvfsAdvisor::default();
        let join = Plan::scan("t").join(Plan::scan("u"), 0, 0);
        // Lite: index NL joins chase; one scan each side still streams.
        let lite_class = a.classify(&join, EngineKind::Lite.profile());
        let pg_class = a.classify(&join, EngineKind::Pg.profile());
        assert_eq!(pg_class, PlanClass::CpuBound);
        assert_eq!(lite_class, PlanClass::CpuBound); // 2 streams vs 1.5 chase
                                                     // Deep NL pipelines tip over.
        let deep = Plan::scan("t")
            .join(Plan::scan("u"), 0, 0)
            .join(Plan::scan("v"), 0, 0)
            .join(Plan::scan("w"), 0, 0);
        assert_eq!(
            a.classify(&deep, EngineKind::Lite.profile()),
            PlanClass::MemoryBound
        );
    }

    #[test]
    fn feedback_downclocks_on_stall_share() {
        use simcore::{ArchConfig, Cpu, Dep};
        let a = DvfsAdvisor::default();
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        cpu.set_prefetch(false);
        let r = cpu.alloc(32 << 20).unwrap();
        let lines = r.len / 64;
        // Memory-bound: random chases.
        let m = cpu.measure(|c| {
            let mut pos = 1u64;
            for _ in 0..5000 {
                c.load(r.addr + pos * 64, Dep::Chase);
                pos = (pos * 1103515245 + 12345) % lines;
            }
        });
        assert_eq!(a.recommend_from_feedback(&m), PState::P24);
        // CPU-bound: ALU work.
        let m = cpu.measure(|c| c.exec_n(simcore::ExecOp::Add, 100_000));
        assert_eq!(a.recommend_from_feedback(&m), PState::P36);
    }
}
