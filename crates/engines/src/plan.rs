//! The logical plan IR shared by all engines.
//!
//! Plans are *logical*: they say what to compute, and each engine picks its
//! physical strategy (scan method, join algorithm, grouping method) from its
//! [`crate::Profile`]. The workloads crate builds one plan per TPC-H query
//! and per basic operation; differential tests run the same plan through all
//! three engines and require identical results.

use storage::{AggSpec, Catalog, Expr, Schema, Ty};

/// A logical query plan node.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Full scan of a base table, with optional filter and projection.
    Scan {
        /// Table name.
        table: String,
        /// Residual predicate over the base row.
        filter: Option<Expr>,
        /// Output expressions over the base row (`None` = all columns).
        project: Option<Vec<Expr>>,
    },
    /// Range scan over an indexed integer/date column: `lo <= col <= hi`.
    IndexRange {
        /// Table name.
        table: String,
        /// Indexed column name.
        col: String,
        /// Inclusive lower bound.
        lo: Option<i64>,
        /// Inclusive upper bound.
        hi: Option<i64>,
        /// Residual predicate over the base row.
        filter: Option<Expr>,
        /// Output expressions (`None` = all columns).
        project: Option<Vec<Expr>>,
    },
    /// Equi-join on one column pair; `filter`/`project` apply to the
    /// concatenated (left ++ right) row.
    Join {
        /// Outer/probe side.
        left: Box<Plan>,
        /// Inner/build side (workload plans put the smaller input here).
        right: Box<Plan>,
        /// Join column in the left child's output.
        left_col: usize,
        /// Join column in the right child's output.
        right_col: usize,
        /// Residual predicate over the concatenated row.
        filter: Option<Expr>,
        /// Output expressions over the concatenated row.
        project: Option<Vec<Expr>>,
    },
    /// Grouped (or scalar, when `group_by` is empty) aggregation.
    /// Output row = group values ++ aggregate results.
    Aggregate {
        /// Input.
        input: Box<Plan>,
        /// Group-key columns (indices into the input's output).
        group_by: Vec<usize>,
        /// Aggregates over the input row.
        aggs: Vec<AggSpec>,
    },
    /// Sort by key columns; `desc[i]` flips component `i`.
    Sort {
        /// Input.
        input: Box<Plan>,
        /// `(column, descending)` sort keys.
        keys: Vec<(usize, bool)>,
        /// Keep only the first `n` rows after sorting.
        limit: Option<usize>,
    },
    /// Keep the first `n` input rows.
    Limit {
        /// Input.
        input: Box<Plan>,
        /// Row budget.
        n: usize,
    },
    /// Map each input row through expressions.
    Project {
        /// Input.
        input: Box<Plan>,
        /// Output expressions over the input row.
        exprs: Vec<Expr>,
    },
}

impl Plan {
    /// Convenience full-table scan.
    pub fn scan(table: &str) -> Plan {
        Plan::Scan {
            table: table.into(),
            filter: None,
            project: None,
        }
    }

    /// Scan with a filter.
    pub fn scan_where(table: &str, filter: Expr) -> Plan {
        Plan::Scan {
            table: table.into(),
            filter: Some(filter),
            project: None,
        }
    }

    /// Wrap in a sort.
    pub fn sort(self, keys: Vec<(usize, bool)>) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            keys,
            limit: None,
        }
    }

    /// Wrap in a sort with a row limit (top-N).
    pub fn top_n(self, keys: Vec<(usize, bool)>, n: usize) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            keys,
            limit: Some(n),
        }
    }

    /// Wrap in a projection.
    pub fn project(self, exprs: Vec<Expr>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            exprs,
        }
    }

    /// Wrap in an aggregation.
    pub fn aggregate(self, group_by: Vec<usize>, aggs: Vec<AggSpec>) -> Plan {
        Plan::Aggregate {
            input: Box::new(self),
            group_by,
            aggs,
        }
    }

    /// Equi-join with another plan.
    pub fn join(self, right: Plan, left_col: usize, right_col: usize) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            left_col,
            right_col,
            filter: None,
            project: None,
        }
    }

    /// Output arity of this plan against a catalog.
    pub fn arity(&self, catalog: &Catalog) -> storage::Result<usize> {
        Ok(match self {
            Plan::Scan { table, project, .. } | Plan::IndexRange { table, project, .. } => {
                match project {
                    Some(p) => p.len(),
                    None => catalog.table(table)?.schema.arity(),
                }
            }
            Plan::Join {
                left,
                right,
                project,
                ..
            } => match project {
                Some(p) => p.len(),
                None => left.arity(catalog)? + right.arity(catalog)?,
            },
            Plan::Aggregate { group_by, aggs, .. } => group_by.len() + aggs.len(),
            Plan::Project { exprs, .. } => exprs.len(),
            Plan::Sort { input, .. } | Plan::Limit { input, .. } => input.arity(catalog)?,
        })
    }

    /// All base tables this plan reads, deduplicated in first-use order
    /// (the vectorized personality attaches columnar images per table).
    pub fn tables(&self) -> Vec<String> {
        fn walk(p: &Plan, out: &mut Vec<String>) {
            match p {
                Plan::Scan { table, .. } | Plan::IndexRange { table, .. } => {
                    if !out.iter().any(|t| t == table) {
                        out.push(table.clone());
                    }
                }
                Plan::Join { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
                Plan::Aggregate { input, .. }
                | Plan::Sort { input, .. }
                | Plan::Limit { input, .. }
                | Plan::Project { input, .. } => walk(input, out),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// A best-effort output schema (column names are synthesised for
    /// computed expressions); used by harnesses for labelling only.
    pub fn schema(&self, catalog: &Catalog) -> storage::Result<Schema> {
        Ok(match self {
            Plan::Scan { table, project, .. } | Plan::IndexRange { table, project, .. } => {
                let base = &catalog.table(table)?.schema;
                match project {
                    None => base.clone(),
                    Some(p) => synth(p.len()),
                }
            }
            Plan::Join {
                left,
                right,
                project,
                ..
            } => match project {
                Some(p) => synth(p.len()),
                None => left.schema(catalog)?.join(&right.schema(catalog)?),
            },
            Plan::Aggregate { group_by, aggs, .. } => synth(group_by.len() + aggs.len()),
            Plan::Project { exprs, .. } => synth(exprs.len()),
            Plan::Sort { input, .. } | Plan::Limit { input, .. } => input.schema(catalog)?,
        })
    }
}

impl Plan {
    /// Render the plan as an indented EXPLAIN-style tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            Plan::Scan {
                table,
                filter,
                project,
            } => {
                out.push_str(&format!(
                    "{pad}Scan {table}{}{}\n",
                    fmt_filter(filter),
                    fmt_project(project)
                ));
            }
            Plan::IndexRange {
                table,
                col,
                lo,
                hi,
                filter,
                project,
            } => {
                out.push_str(&format!(
                    "{pad}IndexRange {table}.{col} [{}, {}]{}{}\n",
                    lo.map_or("-inf".into(), |v| v.to_string()),
                    hi.map_or("+inf".into(), |v| v.to_string()),
                    fmt_filter(filter),
                    fmt_project(project)
                ));
            }
            Plan::Join {
                left,
                right,
                left_col,
                right_col,
                filter,
                project,
            } => {
                out.push_str(&format!(
                    "{pad}Join on L#{left_col} = R#{right_col}{}{}\n",
                    fmt_filter(filter),
                    fmt_project(project)
                ));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Plan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                out.push_str(&format!(
                    "{pad}Aggregate group_by={group_by:?} aggs={}\n",
                    aggs.len()
                ));
                input.explain_into(out, depth + 1);
            }
            Plan::Sort { input, keys, limit } => {
                let lim = limit.map_or(String::new(), |n| format!(" limit={n}"));
                out.push_str(&format!("{pad}Sort keys={keys:?}{lim}\n"));
                input.explain_into(out, depth + 1);
            }
            Plan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit {n}\n"));
                input.explain_into(out, depth + 1);
            }
            Plan::Project { input, exprs } => {
                out.push_str(&format!("{pad}Project cols={}\n", exprs.len()));
                input.explain_into(out, depth + 1);
            }
        }
    }
}

fn fmt_filter(f: &Option<Expr>) -> String {
    match f {
        Some(_) => " filter=yes".into(),
        None => String::new(),
    }
}

fn fmt_project(p: &Option<Vec<Expr>>) -> String {
    match p {
        Some(e) => format!(" project={}", e.len()),
        None => String::new(),
    }
}

fn synth(n: usize) -> Schema {
    Schema::new((0..n).map(|i| (format!("c{i}"), Ty::Float)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use storage::{CmpOp, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create_table("t", Schema::new([("a", Ty::Int), ("b", Ty::Float)]))
            .unwrap();
        c.create_table("u", Schema::new([("x", Ty::Int)])).unwrap();
        c
    }

    #[test]
    fn arity_flows_through_operators() {
        let cat = catalog();
        let p = Plan::scan("t").join(Plan::scan("u"), 0, 0);
        assert_eq!(p.arity(&cat).unwrap(), 3);
        let agg = Plan::scan("t").aggregate(vec![0], vec![AggSpec::count_star()]);
        assert_eq!(agg.arity(&cat).unwrap(), 2);
        let proj = Plan::Scan {
            table: "t".into(),
            filter: Some(Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::Lit(Value::Int(3)))),
            project: Some(vec![Expr::col(1)]),
        };
        assert_eq!(proj.arity(&cat).unwrap(), 1);
    }

    #[test]
    fn explain_renders_a_tree() {
        let plan = Plan::scan("t")
            .join(Plan::scan("u"), 0, 0)
            .aggregate(vec![0], vec![AggSpec::count_star()])
            .top_n(vec![(1, true)], 10);
        let text = plan.explain();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("Sort"));
        assert!(lines[1].trim_start().starts_with("Aggregate"));
        assert!(lines[2].trim_start().starts_with("Join"));
        assert!(lines[3].trim_start().starts_with("Scan t"));
        assert!(lines[4].trim_start().starts_with("Scan u"));
    }

    #[test]
    fn unknown_table_errors() {
        let cat = catalog();
        assert!(Plan::scan("nope").arity(&cat).is_err());
    }
}
