//! Write queries — INSERT / UPDATE / DELETE.
//!
//! The paper explicitly scopes writes out ("the energy breakdown of
//! update/write queries is a totally different problem", §2.3) and lists
//! them as future work. This module implements them anyway, because seeing
//! *why* they are different is instructive: the write path is dominated by
//! store traffic, index-maintenance descents, and dirty-line write-backs —
//! micro-operations the read-side model `MS` does not isolate (write-backs
//! land in the unexplained remainder).
//!
//! Semantics follow a PostgreSQL-flavoured append model:
//! * INSERT appends to the heap and inserts into every index.
//! * UPDATE rewrites in place when the new tuple has the same encoded
//!   length; otherwise it appends a new version and tombstones the old one
//!   (no vacuum), fixing up every index.
//! * DELETE tombstones the tuple and removes its index entries (lazy leaf
//!   deletion — pages may underflow, as before a vacuum).

use crate::db::tid_to_u64;
use crate::session::Session;
use simcore::{Cpu, Dep, ExecOp};
use storage::heap::TupleId;
use storage::{decode_row, encode_row, Expr, Row, StorageError, Value};

/// A data-modification statement.
#[derive(Debug, Clone)]
pub enum Dml {
    /// Insert literal rows.
    Insert {
        /// Target table.
        table: String,
        /// Rows to insert (must match the table schema).
        rows: Vec<Row>,
    },
    /// Update matching rows: each `(column, expr)` assignment is evaluated
    /// against the *old* row.
    Update {
        /// Target table.
        table: String,
        /// Row predicate (`None` = all rows).
        filter: Option<Expr>,
        /// Assignments.
        set: Vec<(usize, Expr)>,
    },
    /// Delete matching rows.
    Delete {
        /// Target table.
        table: String,
        /// Row predicate (`None` = all rows).
        filter: Option<Expr>,
    },
}

impl Dml {
    /// The target table of this statement.
    pub fn table(&self) -> &str {
        match self {
            Dml::Insert { table, .. } | Dml::Update { table, .. } | Dml::Delete { table, .. } => {
                table
            }
        }
    }
}

impl Session<'_> {
    /// Execute a DML statement; returns the affected-row count.
    pub fn execute(&mut self, cpu: &mut Cpu, dml: &Dml) -> storage::Result<u64> {
        // Any write staleness-invalidates the table's columnar image; the
        // next vec query rebuilds it (`Session::run`'s ensure-columnar).
        self.catalog.table_mut(dml.table())?.columnar = None;
        match dml {
            Dml::Insert { table, rows } => self.dml_insert(cpu, table, rows),
            Dml::Update { table, filter, set } => self.dml_update(cpu, table, filter, set),
            Dml::Delete { table, filter } => self.dml_delete(cpu, table, filter),
        }
    }

    fn dml_insert(&mut self, cpu: &mut Cpu, table: &str, rows: &[Row]) -> storage::Result<u64> {
        let schema = self.catalog.table(table)?.schema.clone();
        let mut buf = Vec::new();
        for row in rows {
            encode_row(&schema, row, &mut buf)?;
            let tid = {
                let t = self.catalog.table_mut(table)?;
                t.heap
                    .insert(cpu, &mut *self.store, &mut *self.pool, &buf)?
            };
            self.index_insert(cpu, table, row, tid)?;
        }
        Ok(rows.len() as u64)
    }

    fn dml_update(
        &mut self,
        cpu: &mut Cpu,
        table: &str,
        filter: &Option<Expr>,
        set: &[(usize, Expr)],
    ) -> storage::Result<u64> {
        let schema = self.catalog.table(table)?.schema.clone();
        let victims = self.matching_rows(cpu, table, filter)?;
        let mut buf = Vec::new();
        let mut old_buf = Vec::new();
        for (tid, old_row) in &victims {
            let mut new_row = old_row.clone();
            for (col, e) in set {
                if *col >= new_row.len() {
                    return Err(StorageError::Schema("SET column out of range"));
                }
                new_row[*col] = e.eval(cpu, old_row);
            }
            schema.check(&new_row)?;
            encode_row(&schema, &new_row, &mut buf)?;
            encode_row(&schema, old_row, &mut old_buf)?;

            if buf.len() == old_buf.len() {
                // Same-length version: rewrite in place (heap-only I/O
                // unless an indexed column changed).
                let page = self.pool.access(cpu, &*self.store, tid.0);
                page.overwrite(cpu, tid.1, &buf)?;
                self.index_fixup(cpu, table, old_row, &new_row, *tid, *tid)?;
            } else {
                // New version elsewhere + tombstone, PG-style.
                let new_tid = {
                    let t = self.catalog.table_mut(table)?;
                    t.heap
                        .insert(cpu, &mut *self.store, &mut *self.pool, &buf)?
                };
                let page = self.pool.access(cpu, &*self.store, tid.0);
                page.mark_dead(cpu, tid.1)?;
                self.index_remove(cpu, table, old_row, *tid)?;
                self.index_insert(cpu, table, &new_row, new_tid)?;
            }
        }
        Ok(victims.len() as u64)
    }

    fn dml_delete(
        &mut self,
        cpu: &mut Cpu,
        table: &str,
        filter: &Option<Expr>,
    ) -> storage::Result<u64> {
        let victims = self.matching_rows(cpu, table, filter)?;
        for (tid, row) in &victims {
            let page = self.pool.access(cpu, &*self.store, tid.0);
            page.mark_dead(cpu, tid.1)?;
            self.index_remove(cpu, table, row, *tid)?;
        }
        Ok(victims.len() as u64)
    }

    /// Sequentially scan for matching live rows (the write path's read
    /// side), charging the scan like any query.
    fn matching_rows(
        &mut self,
        cpu: &mut Cpu,
        table: &str,
        filter: &Option<Expr>,
    ) -> storage::Result<Vec<(TupleId, Row)>> {
        let t = self.catalog.table(table)?;
        let schema = t.schema.clone();
        let heap = t.heap.clone();
        let mut out = Vec::new();
        let mut cur = heap.cursor();
        while let Some(tid) = cur.next(cpu, &heap, &*self.store, &mut *self.pool)? {
            let page = self.pool.access(cpu, &*self.store, tid.0);
            let (addr, len) = page.tuple_bounds(cpu, tid.1, Dep::Stream)?;
            if len == 0 {
                continue; // dead version
            }
            storage::page::touch(cpu, addr, len as u64, Dep::Stream);
            let row = decode_row(&schema, cpu.arena().bytes(addr, len as usize)?)?;
            cpu.exec_n(ExecOp::Generic, schema.arity() as u64);
            let keep = match filter {
                Some(f) => f.matches(cpu, &row),
                None => true,
            };
            if keep {
                out.push((tid, row));
            }
        }
        Ok(out)
    }

    fn indexed_columns(&self, table: &str) -> storage::Result<Vec<(usize, bool)>> {
        let t = self.catalog.table(table)?;
        let mut cols = Vec::new();
        if let Some(pk) = t.pk_col {
            if t.pk_index.is_some() {
                cols.push((pk, true));
            }
        }
        for (c, _) in &t.secondary {
            cols.push((*c, false));
        }
        Ok(cols)
    }

    fn index_insert(
        &mut self,
        cpu: &mut Cpu,
        table: &str,
        row: &Row,
        tid: TupleId,
    ) -> storage::Result<()> {
        for (col, is_pk) in self.indexed_columns(table)? {
            let Some(key) = row[col].as_int() else {
                continue;
            };
            let t = self.catalog.table_mut(table)?;
            let tree = if is_pk {
                t.pk_index.as_mut().expect("pk checked")
            } else {
                &mut t
                    .secondary
                    .iter_mut()
                    .find(|(c, _)| *c == col)
                    .expect("sec checked")
                    .1
            };
            tree.insert(cpu, &mut *self.store, &mut *self.pool, key, tid_to_u64(tid))?;
        }
        Ok(())
    }

    fn index_remove(
        &mut self,
        cpu: &mut Cpu,
        table: &str,
        row: &Row,
        tid: TupleId,
    ) -> storage::Result<()> {
        for (col, is_pk) in self.indexed_columns(table)? {
            let Some(key) = row[col].as_int() else {
                continue;
            };
            let t = self.catalog.table_mut(table)?;
            let tree = if is_pk {
                t.pk_index.as_mut().expect("pk checked")
            } else {
                &mut t
                    .secondary
                    .iter_mut()
                    .find(|(c, _)| *c == col)
                    .expect("sec checked")
                    .1
            };
            tree.delete(cpu, &*self.store, &mut *self.pool, key, tid_to_u64(tid));
        }
        Ok(())
    }

    /// After an in-place update, fix indexes whose key changed.
    fn index_fixup(
        &mut self,
        cpu: &mut Cpu,
        table: &str,
        old_row: &Row,
        new_row: &Row,
        old_tid: TupleId,
        new_tid: TupleId,
    ) -> storage::Result<()> {
        for (col, is_pk) in self.indexed_columns(table)? {
            let old_key = old_row[col].as_int();
            let new_key = new_row[col].as_int();
            if old_key == new_key && old_tid == new_tid {
                continue;
            }
            let t = self.catalog.table_mut(table)?;
            let tree = if is_pk {
                t.pk_index.as_mut().expect("pk checked")
            } else {
                &mut t
                    .secondary
                    .iter_mut()
                    .find(|(c, _)| *c == col)
                    .expect("sec checked")
                    .1
            };
            if let Some(k) = old_key {
                tree.delete(cpu, &*self.store, &mut *self.pool, k, tid_to_u64(old_tid));
            }
            if let Some(k) = new_key {
                tree.insert(
                    cpu,
                    &mut *self.store,
                    &mut *self.pool,
                    k,
                    tid_to_u64(new_tid),
                )?;
            }
        }
        Ok(())
    }
}

impl Session<'_> {
    /// VACUUM: rebuild a table's heap without dead versions and rebuild its
    /// indexes. Reclaims the space UPDATE/DELETE tombstones leave behind;
    /// charged like the maintenance scan + bulk rewrite it is.
    pub fn vacuum(&mut self, cpu: &mut Cpu, table: &str) -> storage::Result<u64> {
        let live = self.matching_rows(cpu, table, &None)?;
        let schema = self.catalog.table(table)?.schema.clone();
        let pk = self.catalog.table(table)?.pk_col;
        let sec_cols: Vec<usize> = self
            .catalog
            .table(table)?
            .secondary
            .iter()
            .map(|(c, _)| *c)
            .collect();

        // Fresh heap, rows re-encoded in (cluster-)order.
        let mut rows: Vec<Row> = live.into_iter().map(|(_, r)| r).collect();
        if self.kind() != crate::profile::EngineKind::Pg {
            if let Some(pk) = pk {
                rows.sort_by_key(|r| r[pk].as_int().unwrap_or(i64::MAX));
            }
        }
        let mut heap = storage::HeapFile::new();
        let mut buf = Vec::new();
        let mut pk_pairs: Vec<(i64, u64)> = Vec::new();
        let mut sec_pairs: Vec<Vec<(i64, u64)>> = sec_cols.iter().map(|_| Vec::new()).collect();
        for r in &rows {
            encode_row(&schema, r, &mut buf)?;
            let tid = heap.insert(cpu, &mut *self.store, &mut *self.pool, &buf)?;
            if let Some(pk) = pk {
                if let Some(k) = r[pk].as_int() {
                    pk_pairs.push((k, tid_to_u64(tid)));
                }
            }
            for (si, &c) in sec_cols.iter().enumerate() {
                if let Some(k) = r[c].as_int() {
                    sec_pairs[si].push((k, tid_to_u64(tid)));
                }
            }
        }
        pk_pairs.sort_by_key(|&(k, _)| k);
        let pk_index = if pk.is_some() {
            Some(storage::BTree::bulk_load(cpu, &mut *self.store, &pk_pairs)?)
        } else {
            None
        };
        let mut secondary = Vec::new();
        for (si, &c) in sec_cols.iter().enumerate() {
            sec_pairs[si].sort_by_key(|&(k, _)| k);
            secondary.push((
                c,
                storage::BTree::bulk_load(cpu, &mut *self.store, &sec_pairs[si])?,
            ));
        }
        let t = self.catalog.table_mut(table)?;
        t.heap = heap;
        t.pk_index = pk_index;
        t.secondary = secondary;
        t.columnar = None;
        Ok(rows.len() as u64)
    }
}

/// Helper: a literal value expression for SET lists.
pub fn lit(v: Value) -> Expr {
    Expr::Lit(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{demo_database, Database};
    use crate::plan::Plan;
    use crate::profile::EngineKind;
    use simcore::ArchConfig;
    use storage::CmpOp;

    fn count_items(cpu: &mut Cpu, db: &mut Database) -> i64 {
        let plan = Plan::scan("items").aggregate(vec![], vec![storage::AggSpec::count_star()]);
        db.session().run(cpu, &plan).unwrap()[0][0]
            .as_int()
            .unwrap()
    }

    #[test]
    fn insert_appears_in_scans_and_index_lookups() {
        for kind in EngineKind::ALL {
            let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
            let mut db = demo_database(&mut cpu, kind).unwrap();
            assert_eq!(count_items(&mut cpu, &mut db), 200);
            let n = db
                .session()
                .execute(
                    &mut cpu,
                    &Dml::Insert {
                        table: "items".into(),
                        rows: vec![vec![Value::Int(777), Value::Int(3), Value::Float(9.5)]],
                    },
                )
                .unwrap();
            assert_eq!(n, 1);
            assert_eq!(count_items(&mut cpu, &mut db), 201);
            // Via the secondary index on `cat` too.
            let via_index = Plan::IndexRange {
                table: "items".into(),
                col: "cat".into(),
                lo: Some(3),
                hi: Some(3),
                filter: None,
                project: None,
            };
            let rows = db.session().run(&mut cpu, &via_index).unwrap();
            assert!(rows.iter().any(|r| r[0] == Value::Int(777)), "{kind:?}");
        }
    }

    #[test]
    fn delete_removes_from_scans_and_indexes() {
        for kind in EngineKind::ALL {
            let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
            let mut db = demo_database(&mut cpu, kind).unwrap();
            let n = db
                .session()
                .execute(
                    &mut cpu,
                    &Dml::Delete {
                        table: "items".into(),
                        filter: Some(Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(50))),
                    },
                )
                .unwrap();
            assert_eq!(n, 50);
            assert_eq!(count_items(&mut cpu, &mut db), 150);
            let via_index = Plan::IndexRange {
                table: "items".into(),
                col: "cat".into(),
                lo: Some(0),
                hi: Some(9),
                filter: None,
                project: None,
            };
            let rows = db.session().run(&mut cpu, &via_index).unwrap();
            assert_eq!(rows.len(), 150, "{kind:?}: index must drop deleted rows");
            assert!(rows.iter().all(|r| r[0].as_int().unwrap() >= 50));
        }
    }

    #[test]
    fn update_in_place_same_length() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut db = demo_database(&mut cpu, EngineKind::Pg).unwrap();
        // price is fixed-width: same encoded length, in-place path.
        let n = db
            .session()
            .execute(
                &mut cpu,
                &Dml::Update {
                    table: "items".into(),
                    filter: Some(Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::int(7))),
                    set: vec![(2, lit(Value::Float(99.0)))],
                },
            )
            .unwrap();
        assert_eq!(n, 1);
        let rows = db
            .session()
            .run(
                &mut cpu,
                &Plan::scan_where("items", Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::int(7))),
            )
            .unwrap();
        assert_eq!(rows[0][2], Value::Float(99.0));
        assert_eq!(
            count_items(&mut cpu, &mut db),
            200,
            "no version bloat in place"
        );
    }

    #[test]
    fn update_of_indexed_key_moves_index_entry() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut db = demo_database(&mut cpu, EngineKind::Lite).unwrap();
        let n = db
            .session()
            .execute(
                &mut cpu,
                &Dml::Update {
                    table: "items".into(),
                    filter: Some(Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::int(12))),
                    set: vec![(1, lit(Value::Int(42)))],
                },
            )
            .unwrap();
        assert_eq!(n, 1);
        let at_42 = Plan::IndexRange {
            table: "items".into(),
            col: "cat".into(),
            lo: Some(42),
            hi: Some(42),
            filter: None,
            project: None,
        };
        let rows = db.session().run(&mut cpu, &at_42).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(12));
        // Old key no longer finds it.
        let old_cat = Plan::IndexRange {
            table: "items".into(),
            col: "cat".into(),
            lo: Some(2),
            hi: Some(2),
            filter: None,
            project: None,
        };
        let rows = db.session().run(&mut cpu, &old_cat).unwrap();
        assert!(rows.iter().all(|r| r[0] != Value::Int(12)));
    }

    #[test]
    fn growing_update_appends_new_version() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut db = Database::new(EngineKind::Pg, crate::knobs::KnobLevel::Baseline);
        db.create_table(
            "t",
            storage::Schema::new([("k", storage::Ty::Int), ("s", storage::Ty::Str)]),
            Some("k"),
        )
        .unwrap();
        db.load_rows(
            &mut cpu,
            "t",
            vec![vec![Value::Int(1), Value::Str("ab".into())]],
        )
        .unwrap();
        db.session()
            .execute(
                &mut cpu,
                &Dml::Update {
                    table: "t".into(),
                    filter: None,
                    set: vec![(1, lit(Value::Str("a much longer string".into())))],
                },
            )
            .unwrap();
        let rows = db.session().run(&mut cpu, &Plan::scan("t")).unwrap();
        assert_eq!(rows.len(), 1, "old version must be dead");
        assert_eq!(rows[0][1], Value::Str("a much longer string".into()));
        // And the PK index follows the new version.
        let via_pk = Plan::IndexRange {
            table: "t".into(),
            col: "k".into(),
            lo: Some(1),
            hi: Some(1),
            filter: None,
            project: None,
        };
        assert_eq!(db.session().run(&mut cpu, &via_pk).unwrap().len(), 1);
    }

    #[test]
    fn vacuum_reclaims_dead_versions_and_preserves_results() {
        for kind in EngineKind::ALL {
            let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
            let mut db = demo_database(&mut cpu, kind).unwrap();
            // Create garbage: delete a third, grow-update another third.
            db.session()
                .execute(
                    &mut cpu,
                    &Dml::Delete {
                        table: "items".into(),
                        filter: Some(Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(60))),
                    },
                )
                .unwrap();
            let before = db
                .session()
                .run(
                    &mut cpu,
                    &Plan::scan("items").aggregate(vec![], vec![storage::AggSpec::count_star()]),
                )
                .unwrap();
            let pages_before = db.catalog.table("items").unwrap().heap.n_pages();
            let live = db.session().vacuum(&mut cpu, "items").unwrap();
            assert_eq!(live, 140);
            let after = db
                .session()
                .run(
                    &mut cpu,
                    &Plan::scan("items").aggregate(vec![], vec![storage::AggSpec::count_star()]),
                )
                .unwrap();
            assert_eq!(before, after, "{kind:?}: vacuum changed results");
            let pages_after = db.catalog.table("items").unwrap().heap.n_pages();
            assert!(pages_after <= pages_before, "{kind:?}");
            // Index still works.
            let via_index = Plan::IndexRange {
                table: "items".into(),
                col: "cat".into(),
                lo: Some(0),
                hi: Some(9),
                filter: None,
                project: None,
            };
            assert_eq!(
                db.session().run(&mut cpu, &via_index).unwrap().len(),
                140,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn write_path_is_store_and_writeback_heavy() {
        // The §2.3 scoping rationale, shown empirically: per affected row,
        // writes issue far more stores than a read scan.
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut db = demo_database(&mut cpu, EngineKind::Pg).unwrap();
        let read = cpu.measure(|c| {
            db.session().run(c, &Plan::scan("items")).unwrap();
        });
        let write = cpu.measure(|c| {
            db.session()
                .execute(
                    c,
                    &Dml::Update {
                        table: "items".into(),
                        filter: None,
                        set: vec![(2, lit(Value::Float(1.0)))],
                    },
                )
                .unwrap();
        });
        let ratio = |m: &simcore::Measurement| {
            m.pmu.get(simcore::Event::StoreIssued) as f64
                / m.pmu.get(simcore::Event::LoadIssued).max(1) as f64
        };
        assert!(
            ratio(&write) > ratio(&read),
            "write store/load ratio {} must exceed read {}",
            ratio(&write),
            ratio(&read)
        );
    }
}
