//! Engine personalities.

/// Which engine a database instance emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// PostgreSQL-like: heap scans, hash join/agg, work_mem spills.
    Pg,
    /// SQLite-like: B-tree everything, index nested loops, VM dispatch.
    Lite,
    /// MySQL/InnoDB-like: clustered index, double-lookup secondaries,
    /// heavier server layer.
    My,
}

impl EngineKind {
    /// Display name (matches the paper's labels).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Pg => "PostgreSQL",
            EngineKind::Lite => "SQLite",
            EngineKind::My => "MySQL",
        }
    }

    /// All engines, in the paper's presentation order.
    pub const ALL: [EngineKind; 3] = [EngineKind::Pg, EngineKind::Lite, EngineKind::My];

    /// The execution profile for this engine.
    pub fn profile(self) -> &'static Profile {
        match self {
            EngineKind::Pg => &PG,
            EngineKind::Lite => &LITE,
            EngineKind::My => &MY,
        }
    }
}

/// Structural execution parameters of one personality. The executor is
/// generic over this — every difference in the table below changes *which
/// simulated accesses are issued*, not some scalar fudge factor.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Engine label.
    pub kind: EngineKind,
    /// Full scans walk the table B-tree (Lite/My) instead of the raw heap
    /// (Pg).
    pub scan_via_btree: bool,
    /// Equi-joins build a hash table (Pg/My); otherwise index nested loop
    /// with a transient auto-index fallback (Lite).
    pub hash_join: bool,
    /// Grouping uses hash aggregation (Pg/My); otherwise sort-based (Lite).
    pub hash_agg: bool,
    /// Secondary index payloads point at the PK and require a second
    /// descent through the clustered tree (Lite/My); Pg's point straight at
    /// tuple ids.
    pub secondary_via_pk: bool,
    /// Bookkeeping ops charged per row flowing through an operator
    /// (executor abstraction cost).
    pub per_row_ops: u64,
    /// Multiply-class ops per fetched row (checksums, format conversion).
    pub per_row_mul: u64,
    /// Loads of executor state (VM registers, cursor structs, interpreter
    /// locals) per row — real engines execute thousands of instructions per
    /// tuple, and this hot traffic is SQLite's `sqlite3VdbeExec` working
    /// set, which the DTCM build moves into TCM (§4.2 "special variables").
    /// Stores are ¼ of this; ALU/bookkeeping ops are `ops_factor` × this
    /// (the paper's measured store:load ratio for query workloads is ~0.66
    /// by count; energy-wise EReg2L1D lands at roughly half EL1D).
    pub state_loads_per_row: u64,
    /// Non-load instructions per state load: the source of `E_other`.
    /// SQLite's lean VM has the least calculation energy; MySQL's server
    /// layer the most (§3.3, §5).
    pub ops_factor: f64,
}

/// PostgreSQL-like profile.
pub static PG: Profile = Profile {
    kind: EngineKind::Pg,
    scan_via_btree: false,
    hash_join: true,
    hash_agg: true,
    secondary_via_pk: false,
    per_row_ops: 2,
    per_row_mul: 0,
    state_loads_per_row: 120,
    ops_factor: 2.0,
};

/// SQLite-like profile.
pub static LITE: Profile = Profile {
    kind: EngineKind::Lite,
    scan_via_btree: true,
    hash_join: false,
    hash_agg: false,
    secondary_via_pk: true,
    per_row_ops: 1,
    per_row_mul: 0,
    state_loads_per_row: 330,
    ops_factor: 0.6,
};

/// MySQL-like profile.
pub static MY: Profile = Profile {
    kind: EngineKind::My,
    scan_via_btree: true,
    hash_join: true,
    hash_agg: true,
    secondary_via_pk: true,
    per_row_ops: 4,
    per_row_mul: 1,
    state_loads_per_row: 170,
    ops_factor: 1.9,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_structurally() {
        let pg = EngineKind::Pg.profile();
        let lite = EngineKind::Lite.profile();
        let my = EngineKind::My.profile();
        assert!(!pg.scan_via_btree && lite.scan_via_btree && my.scan_via_btree);
        assert!(pg.hash_join && !lite.hash_join && my.hash_join);
        assert!(my.per_row_ops > pg.per_row_ops);
        assert!(lite.state_loads_per_row > pg.state_loads_per_row);
    }
}
