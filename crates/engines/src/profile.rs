//! Engine personalities.
//!
//! [`EngineKind::ALL`] is the single source of truth for "every engine":
//! sweeps, difftest variants, and registries all derive from it, and the
//! const assertions below make a personality that is added to the enum but
//! not to the list a compile error — a new engine cannot silently vanish
//! from an experiment.

/// Which engine a database instance emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// PostgreSQL-like: heap scans, hash join/agg, work_mem spills.
    Pg,
    /// SQLite-like: B-tree everything, index nested loops, VM dispatch.
    Lite,
    /// MySQL/InnoDB-like: clustered index, double-lookup secondaries,
    /// heavier server layer.
    My,
    /// Vectorized columnar: batch-at-a-time execution over column chunks,
    /// late materialization, hash join/agg.
    Vec,
}

impl EngineKind {
    /// Display name (matches the paper's labels; `Vec` is the repo's
    /// architectural-counterfactual extension).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Pg => "PostgreSQL",
            EngineKind::Lite => "SQLite",
            EngineKind::My => "MySQL",
            EngineKind::Vec => "Columnar",
        }
    }

    /// Dense index of this kind within [`EngineKind::ALL`]. Exhaustive by
    /// construction: adding a variant without extending this match (and
    /// [`EngineKind::ALL`]) fails to compile.
    pub const fn index(self) -> usize {
        match self {
            EngineKind::Pg => 0,
            EngineKind::Lite => 1,
            EngineKind::My => 2,
            EngineKind::Vec => 3,
        }
    }

    /// Number of engine personalities. Derived from an exhaustive match so
    /// the compiler, not a hand count, ties it to the enum.
    pub const COUNT: usize = {
        // Forces a compile error on a new variant until it is counted here.
        match EngineKind::Pg {
            EngineKind::Pg | EngineKind::Lite | EngineKind::My | EngineKind::Vec => 4,
        }
    };

    /// All engines, in presentation order: the paper's trio, then the
    /// columnar counterfactual.
    pub const ALL: [EngineKind; EngineKind::COUNT] = [
        EngineKind::Pg,
        EngineKind::Lite,
        EngineKind::My,
        EngineKind::Vec,
    ];

    /// The paper's three tuple-at-a-time engines (§3's measured trio) —
    /// for results that are claims *about the paper's engines*, e.g. the
    /// 39–67% L1D band the columnar personality exists to move.
    pub const ROW: [EngineKind; 3] = [EngineKind::Pg, EngineKind::Lite, EngineKind::My];

    /// The execution profile for this engine.
    pub fn profile(self) -> &'static Profile {
        match self {
            EngineKind::Pg => &PG,
            EngineKind::Lite => &LITE,
            EngineKind::My => &MY,
            EngineKind::Vec => &VEC,
        }
    }
}

// `ALL` must be a permutation-free, index-ordered enumeration: every kind
// appears exactly once, at the slot `index()` names. Checked at compile
// time so the list and the enum cannot drift.
const _: () = {
    assert!(EngineKind::ALL.len() == EngineKind::COUNT);
    let mut i = 0;
    while i < EngineKind::ALL.len() {
        assert!(EngineKind::ALL[i].index() == i);
        i += 1;
    }
};

/// Structural execution parameters of one personality. The executor is
/// generic over this — every difference in the table below changes *which
/// simulated accesses are issued*, not some scalar fudge factor.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Engine label.
    pub kind: EngineKind,
    /// Full scans walk the table B-tree (Lite/My) instead of the raw heap
    /// (Pg) or column chunks (Vec).
    pub scan_via_btree: bool,
    /// Equi-joins build a hash table (Pg/My/Vec); otherwise index nested
    /// loop with a transient auto-index fallback (Lite).
    pub hash_join: bool,
    /// Grouping uses hash aggregation (Pg/My/Vec); otherwise sort-based
    /// (Lite).
    pub hash_agg: bool,
    /// Secondary index payloads point at the PK and require a second
    /// descent through the clustered tree (Lite/My); Pg's point straight at
    /// tuple ids.
    pub secondary_via_pk: bool,
    /// Bookkeeping ops charged per row flowing through an operator
    /// (executor abstraction cost). The vectorized engine amortizes its
    /// dispatch over whole batches, so per-row bookkeeping is minimal.
    pub per_row_ops: u64,
    /// Multiply-class ops per fetched row (checksums, format conversion).
    pub per_row_mul: u64,
    /// Loads of executor state (VM registers, cursor structs, interpreter
    /// locals) per row — real engines execute thousands of instructions per
    /// tuple, and this hot traffic is SQLite's `sqlite3VdbeExec` working
    /// set, which the DTCM build moves into TCM (§4.2 "special variables").
    /// Stores are ¼ of this; ALU/bookkeeping ops are `ops_factor` × this
    /// (the paper's measured store:load ratio for query workloads is ~0.66
    /// by count; energy-wise EReg2L1D lands at roughly half EL1D).
    /// Batch executors touch operator state once per *vector*, not per
    /// tuple — `Vec`'s value is per-row-amortized and tiny by design.
    pub state_loads_per_row: u64,
    /// Non-load instructions per state load: the source of `E_other`.
    /// SQLite's lean VM has the least calculation energy; MySQL's server
    /// layer the most (§3.3, §5).
    pub ops_factor: f64,
    /// Batch-at-a-time columnar execution: scans read column lanes with
    /// late materialization instead of fetching whole tuples.
    pub vectorized: bool,
}

/// PostgreSQL-like profile.
pub static PG: Profile = Profile {
    kind: EngineKind::Pg,
    scan_via_btree: false,
    hash_join: true,
    hash_agg: true,
    secondary_via_pk: false,
    per_row_ops: 2,
    per_row_mul: 0,
    state_loads_per_row: 120,
    ops_factor: 2.0,
    vectorized: false,
};

/// SQLite-like profile.
pub static LITE: Profile = Profile {
    kind: EngineKind::Lite,
    scan_via_btree: true,
    hash_join: false,
    hash_agg: false,
    secondary_via_pk: true,
    per_row_ops: 1,
    per_row_mul: 0,
    state_loads_per_row: 330,
    ops_factor: 0.6,
    vectorized: false,
};

/// MySQL-like profile.
pub static MY: Profile = Profile {
    kind: EngineKind::My,
    scan_via_btree: true,
    hash_join: true,
    hash_agg: true,
    secondary_via_pk: true,
    per_row_ops: 4,
    per_row_mul: 1,
    state_loads_per_row: 170,
    ops_factor: 1.9,
    vectorized: false,
};

/// Vectorized columnar profile: batch operators amortize interpretation
/// and operator state over ~1024-row vectors, so the per-row charges
/// collapse; what remains is dominated by the lane streaming itself.
pub static VEC: Profile = Profile {
    kind: EngineKind::Vec,
    scan_via_btree: false,
    hash_join: true,
    hash_agg: true,
    secondary_via_pk: false,
    per_row_ops: 1,
    per_row_mul: 0,
    state_loads_per_row: 4,
    ops_factor: 1.0,
    vectorized: true,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_structurally() {
        let pg = EngineKind::Pg.profile();
        let lite = EngineKind::Lite.profile();
        let my = EngineKind::My.profile();
        let vec = EngineKind::Vec.profile();
        assert!(!pg.scan_via_btree && lite.scan_via_btree && my.scan_via_btree);
        assert!(pg.hash_join && !lite.hash_join && my.hash_join);
        assert!(my.per_row_ops > pg.per_row_ops);
        assert!(lite.state_loads_per_row > pg.state_loads_per_row);
        assert!(vec.vectorized && !pg.vectorized && !lite.vectorized && !my.vectorized);
        assert!(vec.state_loads_per_row < pg.state_loads_per_row);
    }

    #[test]
    fn all_is_exhaustive_and_index_ordered() {
        // Runtime witness of the const assertions: every kind is reachable
        // from ALL at its own index, the profile round-trips the kind, and
        // names are unique. The match below must be extended for any new
        // variant, which in turn forces ALL/COUNT/index() updates.
        let mut names = std::collections::HashSet::new();
        for (i, k) in EngineKind::ALL.into_iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(k.profile().kind, k);
            assert!(names.insert(k.name()));
            match k {
                EngineKind::Pg | EngineKind::Lite | EngineKind::My | EngineKind::Vec => {}
            }
        }
        assert_eq!(names.len(), EngineKind::COUNT);
        // The paper trio is a strict subset of ALL.
        for k in EngineKind::ROW {
            assert!(EngineKind::ALL.contains(&k));
            assert!(!k.profile().vectorized);
        }
    }
}
