//! The batch-at-a-time columnar executor (the `vec` personality).
//!
//! Where the row executor ([`crate::executor`]) fetches and decodes one
//! tuple at a time — paying slot/header/decode loads and `state_loads_per_row`
//! interpreter traffic per row — this executor processes ~[`BATCH_ROWS`]-row
//! vectors over the columnar images built by
//! [`storage::ColumnChunks`]:
//!
//! * **Scans** stream only the column lanes a predicate references, select
//!   host-side, and *late-materialize*: output lanes are gathered only for
//!   surviving rows.
//! * **Operator state** (the row engines' per-tuple VM/cursor traffic) is
//!   charged once per vector, amortized to `state_loads_per_row` (= 4 for
//!   [`crate::profile::VEC`]) per row instead of the row engines' 120–330.
//! * **Joins and aggregation** keep their inherently per-row random
//!   accesses (hash-bucket chases) but batch the hashing and bookkeeping.
//!
//! Results are bit-for-bit identical to the row engines (the differential
//! harness runs `vec` as a fifth variant); only the issued loads/stores/ops
//! differ — which is the whole point of the architectural counterfactual:
//! how much of the paper's 39–67% L1D energy share is *implementation
//! style* rather than workload?

use crate::executor::{canon_key, col, hash_bytes, key_of_row, span_name, update_states};
use crate::plan::Plan;
use crate::profile::Profile;
use simcore::{Cpu, Dep, ExecOp, Region, LINE};
use std::collections::HashMap;
use storage::expr::AggState;
use storage::{
    Catalog, CmpOp, ColumnChunks, Expr, Row, SimHashTable, SimSorter, StorageError, Value,
};

/// Vector width: rows processed per batch.
pub const BATCH_ROWS: usize = 1024;

/// Per-query execution environment of the batch executor. Unlike the row
/// executor's [`crate::executor::Env`] it needs no buffer pool: batch
/// operators read column lanes directly, not heap pages.
pub struct BatchEnv<'a> {
    /// Catalog (the columnar images live on [`storage::TableInfo`]).
    pub catalog: &'a Catalog,
    /// Engine personality (must have [`Profile::vectorized`] set).
    pub profile: &'a Profile,
    /// Per-operation memory budget.
    pub work_mem: u64,
    scratch: Region,
    scratch_off: u64,
    temp_base: Option<Region>,
    temp_off: u64,
}

impl<'a> BatchEnv<'a> {
    /// Build an environment over `catalog`. `temp` is the session's
    /// reusable scratch region for sort runs and hash tables.
    pub fn new(
        cpu: &mut Cpu,
        catalog: &'a Catalog,
        profile: &'a Profile,
        work_mem: u64,
        temp: Option<Region>,
    ) -> storage::Result<BatchEnv<'a>> {
        let scratch = cpu.alloc(crate::executor::SCRATCH_BYTES)?;
        Ok(BatchEnv {
            catalog,
            profile,
            work_mem,
            scratch,
            scratch_off: 0,
            temp_base: temp,
            temp_off: 0,
        })
    }

    /// Carve `len` bytes out of the reusable temp region (same policy as
    /// the row executor: line-aligned bump allocation, wrap on exhaustion).
    fn temp_alloc(&mut self, cpu: &mut Cpu, len: u64) -> storage::Result<Region> {
        if let Some(base) = self.temp_base {
            let len = len.min(base.len);
            if self.temp_off + len <= base.len {
                let r = Region {
                    addr: base.addr + self.temp_off,
                    len,
                };
                self.temp_off += len.div_ceil(LINE) * LINE;
                return Ok(r);
            }
            self.temp_off = 0;
            if len <= base.len {
                let r = Region {
                    addr: base.addr,
                    len,
                };
                self.temp_off = len.div_ceil(LINE) * LINE;
                return Ok(r);
            }
        }
        Ok(cpu.alloc(len)?)
    }

    /// Batched bookkeeping ops: `per_row_ops` per row, issued once per
    /// vector (the amortized interpretation dispatch).
    fn per_batch_ops(&mut self, cpu: &mut Cpu, rows: u64) {
        if rows > 0 {
            cpu.exec_n(ExecOp::Generic, self.profile.per_row_ops * rows);
        }
    }

    /// Batched operator-state traffic: the row engines charge
    /// `state_loads_per_row` per *tuple*; here the whole vector shares one
    /// operator-state visit, so the per-row charge collapses to the
    /// profile's (tiny) amortized value.
    fn state_touch(&mut self, cpu: &mut Cpu, rows: u64) {
        let n = self.profile.state_loads_per_row * rows;
        if n == 0 {
            return;
        }
        let lines = (self.scratch.len / LINE).clamp(1, 8);
        let per_line = n / lines;
        for l in 0..lines {
            cpu.load_repeat(self.scratch.addr + l * LINE, per_line.max(1));
        }
        cpu.store_repeat(self.scratch.addr, (n / 4).max(1));
        cpu.exec_n(ExecOp::Generic, (n as f64 * self.profile.ops_factor) as u64);
    }

    /// Charge the stores of materializing `rows` output tuples of `arity`
    /// columns into the scratch ring (whole-vector volume, ring-wrapped).
    fn materialize_rows(&mut self, cpu: &mut Cpu, arity: usize, rows: u64) {
        let mut remaining = arity as u64 * 16 * rows;
        let target = self.scratch;
        while remaining > 0 {
            let start = self.scratch_off % target.len;
            let chunk = remaining.min(target.len - start);
            storage::page::touch_store(cpu, target.addr + start, chunk);
            self.scratch_off = (self.scratch_off + chunk) % target.len;
            remaining -= chunk;
        }
    }
}

/// Execute `plan` batch-at-a-time and return its rows.
///
/// Operators emit the same `mjobs` spans as the row executor (names carry a
/// `v` prefix via [`span_name`]), so traced vec queries flame-graph and
/// EXPLAIN ANALYZE exactly like the row engines.
pub fn run(cpu: &mut Cpu, env: &mut BatchEnv<'_>, plan: &Plan) -> storage::Result<Vec<Row>> {
    mjobs::span::enter(cpu, || span_name(plan, env.profile));
    let rows = run_op(cpu, env, plan);
    if let Ok(r) = &rows {
        mjobs::span::annotate_rows(r.len() as u64);
    }
    mjobs::span::exit(cpu);
    rows
}

fn run_op(cpu: &mut Cpu, env: &mut BatchEnv<'_>, plan: &Plan) -> storage::Result<Vec<Row>> {
    match plan {
        Plan::Scan {
            table,
            filter,
            project,
        } => scan(cpu, env, table, filter, project),
        Plan::IndexRange {
            table,
            col,
            lo,
            hi,
            filter,
            project,
        } => index_range(cpu, env, table, col, *lo, *hi, filter, project),
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
            filter,
            project,
        } => join(
            cpu, env, left, right, *left_col, *right_col, filter, project,
        ),
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => aggregate(cpu, env, input, group_by, aggs),
        Plan::Sort { input, keys, limit } => sort(cpu, env, input, keys, *limit),
        Plan::Limit { input, n } => {
            let mut rows = run(cpu, env, input)?;
            rows.truncate(*n);
            Ok(rows)
        }
        Plan::Project { input, exprs } => {
            let rows = run(cpu, env, input)?;
            let mut out = Vec::with_capacity(rows.len());
            for batch in rows.chunks(BATCH_ROWS) {
                for row in batch {
                    out.push(exprs.iter().map(|e| e.eval(cpu, row)).collect::<Row>());
                }
                env.materialize_rows(cpu, exprs.len(), batch.len() as u64);
            }
            Ok(out)
        }
    }
}

/// Collect the column indices an expression references.
fn expr_cols(e: &Expr, out: &mut Vec<usize>) {
    match e {
        Expr::Col(i) => out.push(*i),
        Expr::Lit(_) => {}
        Expr::Cmp(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) | Expr::Bin(_, l, r) => {
            expr_cols(l, out);
            expr_cols(r, out);
        }
        Expr::Not(x)
        | Expr::Contains(x, _)
        | Expr::StartsWith(x, _)
        | Expr::Between(x, _, _)
        | Expr::InList(x, _) => expr_cols(x, out),
    }
}

/// Which lanes the output needs (project-referenced columns, or all of
/// them), plus the output arity.
fn output_cols(arity: usize, project: &Option<Vec<Expr>>) -> (Vec<usize>, usize) {
    match project {
        Some(p) => {
            let mut v = Vec::new();
            for e in p {
                expr_cols(e, &mut v);
            }
            v.sort_unstable();
            v.dedup();
            (v, p.len())
        }
        None => ((0..arity).collect(), arity),
    }
}

/// Assemble the full host row at chunk position `r`.
fn row_at(chunks: &ColumnChunks, r: usize) -> Row {
    (0..chunks.arity())
        .map(|c| chunks.value(c, r).clone())
        .collect()
}

fn chunks_of<'c>(catalog: &'c Catalog, table: &str) -> storage::Result<&'c ColumnChunks> {
    catalog
        .table(table)?
        .columnar
        .as_ref()
        .ok_or(StorageError::Schema("columnar image not attached"))
}

fn scan(
    cpu: &mut Cpu,
    env: &mut BatchEnv<'_>,
    table: &str,
    filter: &Option<Expr>,
    project: &Option<Vec<Expr>>,
) -> storage::Result<Vec<Row>> {
    let chunks = chunks_of(env.catalog, table)?;
    let arity = chunks.arity();
    let mut pred_cols = Vec::new();
    if let Some(f) = filter {
        expr_cols(f, &mut pred_cols);
    }
    pred_cols.sort_unstable();
    pred_cols.dedup();
    let (out_cols, out_arity) = output_cols(arity, project);

    let rows = chunks.rows();
    let mut out = Vec::new();
    let mut lo = 0usize;
    while lo < rows {
        let hi = (lo + BATCH_ROWS).min(rows);
        let n = (hi - lo) as u64;
        // Predicate lanes stream once over the whole vector.
        for &c in &pred_cols {
            chunks.col(c).touch_range(cpu, lo, hi, Dep::Stream);
        }
        env.per_batch_ops(cpu, n);
        let mut survivors: Vec<usize> = Vec::with_capacity(hi - lo);
        match filter {
            Some(f) => {
                for r in lo..hi {
                    let row = row_at(chunks, r);
                    if f.matches(cpu, &row) {
                        survivors.push(r);
                    }
                }
            }
            None => survivors.extend(lo..hi),
        }
        // Late materialization: output lanes are only read for survivors.
        let k = survivors.len();
        for &c in &out_cols {
            if !pred_cols.contains(&c) {
                chunks.col(c).touch_range(cpu, lo, lo + k, Dep::Stream);
            }
        }
        env.state_touch(cpu, n);
        for &r in &survivors {
            let row = row_at(chunks, r);
            match project {
                Some(p) => out.push(p.iter().map(|e| e.eval(cpu, &row)).collect()),
                None => out.push(row),
            }
        }
        env.materialize_rows(cpu, out_arity, k as u64);
        lo = hi;
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn index_range(
    cpu: &mut Cpu,
    env: &mut BatchEnv<'_>,
    table: &str,
    colname: &str,
    lo_b: Option<i64>,
    hi_b: Option<i64>,
    filter: &Option<Expr>,
    project: &Option<Vec<Expr>>,
) -> storage::Result<Vec<Row>> {
    let catalog = env.catalog;
    let t = catalog.table(table)?;
    let ci = t
        .schema
        .col(colname)
        .ok_or(StorageError::Schema("unknown index column"))?;
    if t.index_on(ci).is_none() {
        // Mirror the row executor's no-index fallback *exactly* (the range
        // folds into Ge/Le expressions, so float keys compare un-truncated)
        // — the personalities must keep agreeing bit for bit.
        let mut range_filter = Vec::new();
        if let Some(l) = lo_b {
            range_filter.push(Expr::cmp(CmpOp::Ge, Expr::col(ci), Expr::int(l)));
        }
        if let Some(h) = hi_b {
            range_filter.push(Expr::cmp(CmpOp::Le, Expr::col(ci), Expr::int(h)));
        }
        if let Some(f) = filter {
            range_filter.push(f.clone());
        }
        let combined = if range_filter.is_empty() {
            None
        } else {
            Some(Expr::and_all(range_filter))
        };
        return scan(cpu, env, table, &combined, project);
    }

    // Columnar "index scan": stream the key lane once and select in
    // register, then emit in (key asc, row order) — the same order and the
    // same integral-key semantics (floats truncate, non-integral rows drop
    // out) as the row engines' B-tree emission.
    let chunks = chunks_of(catalog, table)?;
    let rows = chunks.rows();
    chunks.col(ci).touch_range(cpu, 0, rows, Dep::Stream);
    cpu.exec_n(ExecOp::Generic, rows as u64);
    let mut hits: Vec<(i64, usize)> = Vec::new();
    for r in 0..rows {
        if let Some(k) = chunks.value(ci, r).as_int() {
            if lo_b.is_none_or(|l| k >= l) && hi_b.is_none_or(|h| k <= h) {
                hits.push((k, r));
            }
        }
    }
    hits.sort_unstable();

    let (out_cols, out_arity) = output_cols(chunks.arity(), project);
    let mut out = Vec::new();
    for batch in hits.chunks(BATCH_ROWS) {
        let n = batch.len() as u64;
        env.per_batch_ops(cpu, n);
        // Selected rows are scattered: gather each hit's output lanes.
        for &(_, r) in batch {
            for &c in &out_cols {
                chunks.col(c).touch_range(cpu, r, r + 1, Dep::Stream);
            }
        }
        env.state_touch(cpu, n);
        let mut emitted = 0u64;
        for &(_, r) in batch {
            let row = row_at(chunks, r);
            if let Some(f) = filter {
                if !f.matches(cpu, &row) {
                    continue;
                }
            }
            emitted += 1;
            match project {
                Some(p) => out.push(p.iter().map(|e| e.eval(cpu, &row)).collect()),
                None => out.push(row),
            }
        }
        env.materialize_rows(cpu, out_arity, emitted);
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn join(
    cpu: &mut Cpu,
    env: &mut BatchEnv<'_>,
    left: &Plan,
    right: &Plan,
    left_col: usize,
    right_col: usize,
    filter: &Option<Expr>,
    project: &Option<Vec<Expr>>,
) -> storage::Result<Vec<Row>> {
    // The vectorized personality always hash-joins. Build on the right
    // child (workload plans put the smaller input there), with the same
    // sizing and grace-spill model as the row executor.
    let build_rows = run(cpu, env, right)?;
    let arity = build_rows.first().map(|r| r.len()).unwrap_or(1);
    let entry_bytes = 24 + 16 * arity as u64;
    let n = build_rows.len() as u64;
    let region = env.temp_alloc(
        cpu,
        n.max(16).next_power_of_two() * 8 + n.max(16) * 2 * entry_bytes,
    )?;
    let mut ht = SimHashTable::new_in(region, n, entry_bytes);
    for row in build_rows {
        let key = col(&row, right_col)?.clone();
        ht.insert(cpu, key, row);
    }
    if ht.footprint() > env.work_mem && env.work_mem > 0 {
        let batches = ht.footprint().div_ceil(env.work_mem);
        cpu.idle_c0(200e-6 * batches as f64);
        cpu.exec_n(ExecOp::Generic, ht.len() * 2);
    }

    let probe_rows = run(cpu, env, left)?;
    let mut out = Vec::new();
    for batch in probe_rows.chunks(BATCH_ROWS) {
        env.state_touch(cpu, batch.len() as u64);
        let mut cands: Vec<Row> = Vec::new();
        for lrow in batch {
            let key = col(lrow, left_col)?;
            if matches!(key, Value::Null) {
                continue;
            }
            for (_, rrow) in ht.probe(cpu, key).iter().filter(|(k, _)| k.group_eq(key)) {
                let mut row = lrow.clone();
                row.extend(rrow.iter().cloned());
                cands.push(row);
            }
        }
        env.per_batch_ops(cpu, cands.len() as u64);
        let mut emitted = 0u64;
        let mut out_arity = 0usize;
        for row in cands {
            if let Some(f) = filter {
                if !f.matches(cpu, &row) {
                    continue;
                }
            }
            let row: Row = match project {
                Some(p) => p.iter().map(|e| e.eval(cpu, &row)).collect(),
                None => row,
            };
            out_arity = row.len();
            emitted += 1;
            out.push(row);
        }
        env.materialize_rows(cpu, out_arity, emitted);
    }
    Ok(out)
}

fn aggregate(
    cpu: &mut Cpu,
    env: &mut BatchEnv<'_>,
    input: &Plan,
    group_by: &[usize],
    aggs: &[storage::AggSpec],
) -> storage::Result<Vec<Row>> {
    let rows = run(cpu, env, input)?;

    // Scalar aggregation: one state vector folded batch-at-a-time.
    if group_by.is_empty() {
        let mut states: Vec<AggState> = aggs.iter().map(|_| AggState::new()).collect();
        for batch in rows.chunks(BATCH_ROWS) {
            env.state_touch(cpu, batch.len() as u64);
            for row in batch {
                update_states(cpu, &mut states, aggs, row);
            }
        }
        let result: Row = aggs
            .iter()
            .zip(&states)
            .map(|(a, s)| s.result(a.f))
            .collect();
        env.materialize_rows(cpu, result.len(), 1);
        return Ok(vec![result]);
    }

    // Hash aggregation, batch-at-a-time: the group-state slot is still a
    // random (chase) access per row — vectorization cannot batch that — but
    // key hashing and bookkeeping amortize over the vector.
    let region = env.temp_alloc(cpu, (rows.len().max(16) as u64 * 64).min(1 << 22))?;
    let slots = region.len / 64;
    let mut groups: HashMap<Vec<u8>, (Row, Vec<AggState>)> = HashMap::new();
    for batch in rows.chunks(BATCH_ROWS) {
        let n = batch.len() as u64;
        env.state_touch(cpu, n);
        env.per_batch_ops(cpu, n);
        cpu.exec_n(ExecOp::Mul, n);
        for row in batch {
            let key_vals: Row = key_of_row(row, group_by.iter().copied())?;
            let key = canon_key(&key_vals);
            let h = hash_bytes(&key);
            let state_addr = region.addr + (h % slots) * 64;
            cpu.load(state_addr, Dep::Chase);
            cpu.store(state_addr);
            let entry = groups
                .entry(key)
                .or_insert_with(|| (key_vals, aggs.iter().map(|_| AggState::new()).collect()));
            update_states(cpu, &mut entry.1, aggs, row);
        }
    }
    // Drain in canonical key order (deterministic, same as the row hash
    // aggregate).
    let mut entries: Vec<(Vec<u8>, Row, Vec<AggState>)> = groups
        .into_iter()
        .map(|(k, (kv, st))| (k, kv, st))
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = Vec::with_capacity(entries.len());
    for (_, key_vals, states) in entries {
        let mut r = key_vals;
        r.extend(aggs.iter().zip(&states).map(|(a, s)| s.result(a.f)));
        out.push(r);
    }
    if let Some(r0) = out.first() {
        let a = r0.len();
        env.materialize_rows(cpu, a, out.len() as u64);
    }
    Ok(out)
}

fn sort(
    cpu: &mut Cpu,
    env: &mut BatchEnv<'_>,
    input: &Plan,
    keys: &[(usize, bool)],
    limit: Option<usize>,
) -> storage::Result<Vec<Row>> {
    let rows = run(cpu, env, input)?;
    let row_bytes = rows.first().map(|r| r.len() as u64 * 16 + 16).unwrap_or(32);
    let region = env.temp_alloc(
        cpu,
        (rows.len().max(16) as u64 * row_bytes).min(env.work_mem.max(row_bytes * 16)),
    )?;
    let mut sorter = SimSorter::new_in(region, row_bytes, env.work_mem);
    for row in rows {
        let key: Vec<Value> = key_of_row(&row, keys.iter().map(|&(c, _)| c))?;
        sorter.push(cpu, key, row);
    }
    let desc: Vec<bool> = keys.iter().map(|&(_, d)| d).collect();
    let mut sorted = sorter.finish(cpu, &desc);
    if let Some(n) = limit {
        sorted.truncate(n);
    }
    Ok(sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::demo_database;
    use crate::dml::lit;
    use crate::profile::EngineKind;
    use crate::Dml;
    use simcore::{ArchConfig, Cpu, Event};
    use storage::{AggFn, AggSpec};

    fn cpu() -> Cpu {
        Cpu::new(ArchConfig::intel_i7_4790())
    }

    #[test]
    fn vec_scan_issues_fewer_loads_than_row_scan() {
        // A selective single-column query: the row engines decode every
        // tuple and pay per-row interpreter traffic; the columnar engine
        // streams two lanes and late-materializes. Load counts must reflect
        // that — this is the energy argument the personality exists for.
        let plan = Plan::Scan {
            table: "items".into(),
            filter: Some(Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(20))),
            project: Some(vec![Expr::col(2)]),
        };
        let loads = |kind: EngineKind| {
            let mut c = cpu();
            let mut db = demo_database(&mut c, kind).unwrap();
            // Warm attach outside the measurement.
            db.session().run(&mut c, &plan).unwrap();
            let m = c.measure(|c| {
                db.session().run(c, &plan).unwrap();
            });
            m.pmu.get(Event::LoadIssued)
        };
        let row = loads(EngineKind::Pg);
        let vec = loads(EngineKind::Vec);
        assert!(
            vec * 4 < row,
            "columnar scan should load far less: vec={vec} row={row}"
        );
    }

    #[test]
    fn vec_results_match_row_results_on_each_operator_shape() {
        let plans = [
            Plan::scan("items"),
            Plan::scan_where(
                "items",
                Expr::cmp(CmpOp::Ge, Expr::col(2), Expr::float(3.0)),
            ),
            Plan::IndexRange {
                table: "items".into(),
                col: "cat".into(),
                lo: Some(2),
                hi: Some(5),
                filter: Some(Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(100))),
                project: None,
            },
            Plan::IndexRange {
                table: "items".into(),
                col: "price".into(), // no index on price: Expr fallback
                lo: Some(1),
                hi: Some(4),
                filter: None,
                project: None,
            },
            Plan::scan("items").join(Plan::scan("cats"), 1, 0),
            Plan::scan("items").aggregate(
                vec![1],
                vec![
                    AggSpec::count_star(),
                    AggSpec::over(AggFn::Sum, Expr::col(2)),
                ],
            ),
            Plan::scan("items").aggregate(vec![], vec![AggSpec::over(AggFn::Avg, Expr::col(2))]),
            Plan::scan("items").top_n(vec![(2, true), (0, false)], 9),
            Plan::Limit {
                input: Box::new(Plan::scan("items")),
                n: 13,
            },
            Plan::scan("cats").project(vec![Expr::col(1), Expr::col(0)]),
        ];
        for plan in &plans {
            let run_kind = |kind: EngineKind| {
                let mut c = cpu();
                let mut db = demo_database(&mut c, kind).unwrap();
                db.session().run(&mut c, plan).unwrap()
            };
            let pg = run_kind(EngineKind::Pg);
            let vec = run_kind(EngineKind::Vec);
            assert_eq!(pg, vec, "vec disagrees with Pg on {}", plan.explain());
        }
    }

    #[test]
    fn vec_spans_are_v_prefixed() {
        let plan = Plan::scan("items").aggregate(vec![1], vec![AggSpec::count_star()]);
        let mut c = cpu();
        let mut db = demo_database(&mut c, EngineKind::Vec).unwrap();
        db.session().run(&mut c, &plan).unwrap();
        mjobs::span::install();
        db.session().run(&mut c, &plan).unwrap();
        let spans = mjobs::span::take();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"vagg(hash)"), "{names:?}");
        assert!(names.contains(&"vscan(items)"), "{names:?}");
    }

    #[test]
    fn columnar_image_is_invalidated_by_dml_and_rebuilt() {
        let mut c = cpu();
        let mut db = demo_database(&mut c, EngineKind::Vec).unwrap();
        let count = |c: &mut Cpu, db: &mut crate::Database| {
            let plan = Plan::scan("items").aggregate(vec![], vec![AggSpec::count_star()]);
            db.session().run(c, &plan).unwrap()[0][0].as_int().unwrap()
        };
        assert_eq!(count(&mut c, &mut db), 200);
        assert!(db.catalog().table("items").unwrap().columnar.is_some());
        db.session()
            .execute(
                &mut c,
                &Dml::Insert {
                    table: "items".into(),
                    rows: vec![vec![Value::Int(900), Value::Int(1), Value::Float(2.5)]],
                },
            )
            .unwrap();
        // The write dropped the stale image...
        assert!(db.catalog().table("items").unwrap().columnar.is_none());
        // ...and the next query rebuilds it with the new row visible.
        assert_eq!(count(&mut c, &mut db), 201);
        assert!(db.catalog().table("items").unwrap().columnar.is_some());
        // Updates and vacuum invalidate too.
        db.session()
            .execute(
                &mut c,
                &Dml::Update {
                    table: "items".into(),
                    filter: Some(Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::int(900))),
                    set: vec![(2, lit(Value::Float(9.0)))],
                },
            )
            .unwrap();
        assert!(db.catalog().table("items").unwrap().columnar.is_none());
        assert_eq!(count(&mut c, &mut db), 201);
        db.session().vacuum(&mut c, "items").unwrap();
        assert!(db.catalog().table("items").unwrap().columnar.is_none());
        assert_eq!(count(&mut c, &mut db), 201);
    }

    #[test]
    fn missing_columnar_image_is_a_typed_error() {
        let mut c = cpu();
        let db = demo_database(&mut c, EngineKind::Vec).unwrap();
        let profile = EngineKind::Vec.profile();
        let mut env = BatchEnv::new(&mut c, db.catalog(), profile, 1 << 20, None).unwrap();
        // Direct executor use without the session's ensure-columnar step.
        let err = run(&mut c, &mut env, &Plan::scan("items")).unwrap_err();
        assert!(matches!(err, StorageError::Schema(_)), "{err:?}");
    }
}
