//! Session-scoped query execution.
//!
//! [`Database`] used to conflate two lifetimes: per-instance state (the
//! page store, buffer pool, catalog, knobs) and per-query scratch state
//! (the reusable temp region sorts and hash tables spill into). One shared
//! `temp` field meant two interleaved clients on the same instance would
//! silently alias each other's sort areas — the exact hazard that blocked
//! the concurrent OLTP serving scenario (ROADMAP item 2).
//!
//! The split:
//!
//! * [`Database`] keeps schema/storage/knob state and the setup paths
//!   (`create_table`, `load_rows`, `create_index`).
//! * [`SessionCtx`] is the owned, per-client scratch state: the lazily
//!   allocated temp region plus a checkout flag. A server keeps one per
//!   client stream, so each stream re-runs on its own warm scratch memory.
//! * [`Session`] is a short-lived execution handle binding a `Database`
//!   and a `SessionCtx` for one or more requests. All query entry points
//!   (`run`, `execute`, `vacuum`) live here.
//!
//! Rust's borrow rules make the interleaving model explicit: a `Session`
//! borrows the instance exclusively while a request executes, and the
//! virtual-time server in `mjserve` serialises requests exactly that way —
//! per-client `SessionCtx` values persist across requests while the
//! instance is borrowed once per request.
//!
//! Double-checkout of one session's scratch region is a typed
//! [`StorageError::ScratchBusy`] instead of silent aliasing; see
//! [`Session::checkout_scratch`].

use crate::db::Database;
use crate::executor;
use crate::knobs::Knobs;
use crate::plan::Plan;
use crate::profile::EngineKind;
use simcore::{Cpu, Region};
use storage::{BufferPool, Catalog, PageStore, Row, StorageError};

/// Owned per-client scratch state: the reusable temp region (sized from
/// `work_mem`, allocated lazily so a stream's second request onwards works
/// on warm memory) plus the checkout flag that turns double-borrow into a
/// typed error.
#[derive(Debug, Default)]
pub struct SessionCtx {
    temp: Option<Region>,
    checked_out: bool,
}

impl SessionCtx {
    /// Fresh scratch state (no region allocated yet).
    pub fn new() -> SessionCtx {
        SessionCtx::default()
    }

    /// Check the temp region out, allocating it on first use. Returns
    /// [`StorageError::ScratchBusy`] if it is already checked out.
    pub(crate) fn checkout(&mut self, cpu: &mut Cpu, work_mem: u64) -> storage::Result<Region> {
        if self.checked_out {
            return Err(StorageError::ScratchBusy);
        }
        let r = match self.temp {
            Some(r) => r,
            None => {
                let len = work_mem.clamp(1 << 20, 64 << 20);
                let r = cpu.alloc(len)?;
                self.temp = Some(r);
                r
            }
        };
        self.checked_out = true;
        Ok(r)
    }

    /// Return the region (idempotent).
    pub(crate) fn release(&mut self) {
        self.checked_out = false;
    }

    /// Whether the scratch region is currently checked out.
    pub fn is_checked_out(&self) -> bool {
        self.checked_out
    }
}

/// A session: the per-client execution handle over one engine instance.
///
/// Obtained from [`Database::session`] (the instance's built-in default
/// scratch state — the one-shot/single-client case) or
/// [`Database::session_in`] (caller-owned [`SessionCtx`], one per client
/// stream). All query execution goes through here.
pub struct Session<'a> {
    kind: EngineKind,
    knobs: Knobs,
    pub(crate) store: &'a mut PageStore,
    pub(crate) pool: &'a mut BufferPool,
    pub(crate) catalog: &'a mut Catalog,
    ctx: &'a mut SessionCtx,
}

impl Database {
    /// A session over this instance's default scratch state — the one-shot
    /// and single-client path. Concurrent client streams should each hold
    /// their own [`SessionCtx`] and use [`Database::session_in`].
    pub fn session(&mut self) -> Session<'_> {
        let kind = self.kind;
        let knobs = self.knobs;
        Session {
            kind,
            knobs,
            store: &mut self.store,
            pool: &mut self.pool,
            catalog: &mut self.catalog,
            ctx: &mut self.default_ctx,
        }
    }

    /// A session executing with caller-owned scratch state (`ctx`), so N
    /// client streams can interleave on one instance without aliasing each
    /// other's temp regions.
    pub fn session_in<'a>(&'a mut self, ctx: &'a mut SessionCtx) -> Session<'a> {
        let kind = self.kind;
        let knobs = self.knobs;
        Session {
            kind,
            knobs,
            store: &mut self.store,
            pool: &mut self.pool,
            catalog: &mut self.catalog,
            ctx,
        }
    }
}

impl<'a> Session<'a> {
    /// The engine personality this session executes with.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// The instance's resolved knobs.
    pub fn knobs(&self) -> Knobs {
        self.knobs
    }

    /// The instance catalog.
    pub fn catalog(&self) -> &Catalog {
        self.catalog
    }

    /// Check this session's scratch region out (allocating lazily). A
    /// second checkout before [`Session::release_scratch`] is the
    /// double-borrow hazard and fails with [`StorageError::ScratchBusy`].
    pub fn checkout_scratch(&mut self, cpu: &mut Cpu) -> storage::Result<Region> {
        self.ctx.checkout(cpu, self.knobs.work_mem)
    }

    /// Return the scratch region checked out by
    /// [`Session::checkout_scratch`].
    pub fn release_scratch(&mut self) {
        self.ctx.release();
    }

    /// Execute a logical plan with this engine's personality.
    pub fn run(&mut self, cpu: &mut Cpu, plan: &Plan) -> storage::Result<Vec<Row>> {
        let profile = self.kind.profile();
        if profile.vectorized {
            self.ensure_columnar(cpu, plan)?;
            let temp = self.ctx.checkout(cpu, self.knobs.work_mem)?;
            let result = (|| {
                let mut env = crate::batch::BatchEnv::new(
                    cpu,
                    self.catalog,
                    profile,
                    self.knobs.work_mem,
                    Some(temp),
                )?;
                crate::batch::run(cpu, &mut env, plan)
            })();
            self.ctx.release();
            return result;
        }
        let temp = self.ctx.checkout(cpu, self.knobs.work_mem)?;
        let result = (|| {
            let mut env = executor::Env::new(
                cpu,
                self.store,
                self.pool,
                self.catalog,
                profile,
                self.knobs.work_mem,
                None,
                Some(temp),
            )?;
            executor::run(cpu, &mut env, plan)
        })();
        self.ctx.release();
        result
    }

    /// Build the columnar image of every table `plan` reads, if missing —
    /// unsimulated attach-time setup, like index builds. DML and vacuum
    /// invalidate the images; the next vec query lands here and rebuilds.
    fn ensure_columnar(&mut self, cpu: &mut Cpu, plan: &Plan) -> storage::Result<()> {
        for name in plan.tables() {
            let t = self.catalog.table(&name)?;
            if t.columnar.is_some() {
                continue;
            }
            let heap = t.heap.clone();
            let schema = t.schema.clone();
            let chunks = storage::ColumnChunks::build(cpu, &heap, self.store, &schema)?;
            self.catalog.table_mut(&name)?.columnar = Some(chunks);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::demo_database;
    use crate::dml::lit;
    use crate::Dml;
    use simcore::ArchConfig;
    use storage::{CmpOp, Expr, Value};

    #[test]
    fn session_runs_and_executes_like_the_database_did() {
        for kind in EngineKind::ALL {
            let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
            let mut db = demo_database(&mut cpu, kind).unwrap();
            let mut s = db.session();
            let rows = s.run(&mut cpu, &Plan::scan("items")).unwrap();
            assert_eq!(rows.len(), 200, "{kind:?}");
            let n = s
                .execute(
                    &mut cpu,
                    &Dml::Update {
                        table: "items".into(),
                        filter: Some(Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::int(3))),
                        set: vec![(2, lit(Value::Float(1.5)))],
                    },
                )
                .unwrap();
            assert_eq!(n, 1, "{kind:?}");
        }
    }

    #[test]
    fn scratch_double_checkout_is_a_typed_error() {
        // Regression: `temp_region` used to hand the one shared scratch
        // region to anyone who asked, silently aliasing concurrent users'
        // sort areas. Now the second checkout is a typed refusal.
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut db = demo_database(&mut cpu, EngineKind::Pg).unwrap();
        let mut s = db.session();
        let r = s.checkout_scratch(&mut cpu).unwrap();
        assert!(r.len > 0);
        assert!(matches!(
            s.checkout_scratch(&mut cpu),
            Err(StorageError::ScratchBusy)
        ));
        // Execution needs the scratch region too, so it refuses as well
        // instead of aliasing the checked-out region.
        assert!(matches!(
            s.run(&mut cpu, &Plan::scan("items")),
            Err(StorageError::ScratchBusy)
        ));
        s.release_scratch();
        // Released: the same region comes back (warm memory, same address).
        let r2 = s.checkout_scratch(&mut cpu).unwrap();
        assert_eq!((r.addr, r.len), (r2.addr, r2.len));
        s.release_scratch();
        assert!(s.run(&mut cpu, &Plan::scan("items")).is_ok());
    }

    #[test]
    fn run_releases_scratch_on_error() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut db = demo_database(&mut cpu, EngineKind::Pg).unwrap();
        let mut s = db.session();
        assert!(s.run(&mut cpu, &Plan::scan("no_such_table")).is_err());
        // The failed run must not leak the checkout.
        assert!(s.run(&mut cpu, &Plan::scan("items")).is_ok());
    }

    #[test]
    fn per_client_session_ctxs_do_not_alias() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut db = demo_database(&mut cpu, EngineKind::Lite).unwrap();
        let mut a = SessionCtx::new();
        let mut b = SessionCtx::new();
        let ra = db
            .session_in(&mut a)
            .checkout_scratch(&mut cpu)
            .expect("client A scratch");
        // Client B checks out while A still holds its region: allowed, and
        // the regions are disjoint.
        let rb = db
            .session_in(&mut b)
            .checkout_scratch(&mut cpu)
            .expect("client B scratch");
        assert!(
            ra.addr + ra.len <= rb.addr || rb.addr + rb.len <= ra.addr,
            "per-client scratch regions must not overlap: {ra:?} vs {rb:?}"
        );
        a.release();
        b.release();
        // Both clients can run interleaved requests on their own ctx.
        assert_eq!(
            db.session_in(&mut a)
                .run(&mut cpu, &Plan::scan("items"))
                .unwrap()
                .len(),
            200
        );
        assert_eq!(
            db.session_in(&mut b)
                .run(&mut cpu, &Plan::scan("cats"))
                .unwrap()
                .len(),
            10
        );
    }

    #[test]
    fn one_shot_sessions_cover_query_and_dml() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut db = demo_database(&mut cpu, EngineKind::My).unwrap();
        let rows = db.session().run(&mut cpu, &Plan::scan("items")).unwrap();
        assert_eq!(rows.len(), 200);
        let n = db
            .session()
            .execute(
                &mut cpu,
                &Dml::Delete {
                    table: "items".into(),
                    filter: Some(Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(10))),
                },
            )
            .unwrap();
        assert_eq!(n, 10);
    }
}
