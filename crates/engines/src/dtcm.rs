//! The §4 proof of concept: the Lite engine, system-level co-designed for
//! an L1D-energy-efficient architecture with data TCM (ARM1176JZF-S-like).
//!
//! Three strategies from §4.2, with the paper's DTCM budget split:
//!
//! 1. **Database buffer (16 KB).** The hottest table pages (smallest tables
//!    first — "more B-tree data of small tables are loaded into DTCM") are
//!    pinned in DTCM; reads of those pages bypass the cache hierarchy.
//! 2. **Special variables (4 KB).** The VM's hot execution structures (our
//!    executor scratch ring: registers, cursors, plan state) live in DTCM —
//!    the paper found ~70% of L1D loads are issued by `sqlite3VdbeExec`.
//! 3. **B-tree tops (12 KB).** The root and first layers of the queried
//!    tables' B-trees are pinned, divided evenly across tables.
//!
//! Pinning copies page bytes into the TCM window once at configuration time
//! (setup, unsimulated — the paper's port does this at open time); queries
//! are read-only, so no write-back path is needed.

use crate::db::Database;
use crate::executor::{self, Env};
use crate::knobs::Knobs;
use crate::plan::Plan;
use crate::profile::{EngineKind, LITE};
use simcore::{Cpu, Region};
use std::collections::HashMap;
use storage::buffer::{BufferPool, PageAccess};
use storage::page::{PageId, PageRef};
use storage::{PageStore, Row};

/// DTCM budget split (bytes), per §4.2.
#[derive(Debug, Clone, Copy)]
pub struct DtcmConfig {
    /// Budget for pinned hot data pages.
    pub buffer_bytes: u64,
    /// Budget for the VM's special variables (scratch ring).
    pub vars_bytes: u64,
    /// Budget for pinned B-tree top layers.
    pub btree_bytes: u64,
}

impl Default for DtcmConfig {
    fn default() -> Self {
        DtcmConfig {
            buffer_bytes: 16 * 1024,
            vars_bytes: 4 * 1024,
            btree_bytes: 12 * 1024,
        }
    }
}

/// A buffer pool wrapper that serves pinned pages from TCM.
pub struct TcmPool {
    inner: BufferPool,
    pinned: HashMap<PageId, u64>,
    /// Pages served from TCM so far (diagnostic).
    pub tcm_hits: u64,
}

impl TcmPool {
    /// Wrap a pool with a pin map (page id → TCM address).
    pub fn new(inner: BufferPool, pinned: HashMap<PageId, u64>) -> TcmPool {
        TcmPool {
            inner,
            pinned,
            tcm_hits: 0,
        }
    }
}

impl PageAccess for TcmPool {
    fn access(&mut self, cpu: &mut Cpu, store: &PageStore, id: PageId) -> PageRef {
        if let Some(&tcm_addr) = self.pinned.get(&id) {
            self.tcm_hits += 1;
            return PageRef {
                addr: tcm_addr,
                size: store.page_size(),
            };
        }
        self.inner.access(cpu, store, id)
    }
}

/// A Lite database co-designed for the TCM architecture.
pub struct DtcmDatabase {
    /// The underlying (Lite) database.
    pub db: Database,
    /// TCM-aware page residency.
    pub pool: TcmPool,
    /// TCM region for the VM's special variables (absent when the budget
    /// assigns it zero bytes).
    pub scratch: Option<Region>,
    /// Budget split used.
    pub config: DtcmConfig,
}

impl DtcmDatabase {
    /// Apply the §4.2 co-design to a loaded Lite database.
    ///
    /// `hot_tables` lists the tables the workload queries (the paper pins
    /// "the current tables"); budgets are divided evenly across them.
    ///
    /// # Panics
    /// Panics if `db` is not a Lite instance (the paper optimises SQLite).
    pub fn configure(
        cpu: &mut Cpu,
        db: Database,
        hot_tables: &[&str],
        config: DtcmConfig,
    ) -> storage::Result<DtcmDatabase> {
        assert_eq!(
            db.kind,
            EngineKind::Lite,
            "the proof of concept optimises the Lite engine"
        );
        let page_size = db.store.page_size() as u64;
        let mut pinned: HashMap<PageId, u64> = HashMap::new();

        // (2) Special variables: hot VM registers/cursors in DTCM.
        let scratch = if config.vars_bytes > 0 {
            Some(cpu.alloc_tcm(config.vars_bytes)?)
        } else {
            None
        };

        // (3) B-tree tops: divide the budget evenly across queried tables,
        // breadth-first from each root.
        if !hot_tables.is_empty() {
            let per_table_pages = (config.btree_bytes / page_size) / hot_tables.len() as u64;
            for name in hot_tables {
                let t = db.catalog.table(name)?;
                let Some(tree) = &t.pk_index else { continue };
                let tops = tree.top_pages(cpu, &db.store, 3);
                for pid in tops.into_iter().take(per_table_pages.max(1) as usize) {
                    if pinned.contains_key(&pid) {
                        continue;
                    }
                    if let Ok(region) = cpu.alloc_tcm(page_size) {
                        copy_page_to_tcm(cpu, &db.store, pid, region.addr, page_size);
                        pinned.insert(pid, region.addr);
                    }
                }
            }
        }

        // (1) Database buffer: pin hot data pages, smallest tables first.
        let mut tables: Vec<&str> = hot_tables.to_vec();
        tables.sort_by_key(|n| {
            db.catalog
                .table(n)
                .map(|t| t.heap.len())
                .unwrap_or(u64::MAX)
        });
        let mut budget = config.buffer_bytes;
        'outer: for name in tables {
            let t = db.catalog.table(name)?;
            // Pin the table's heap pages, plus leaf pages of tiny B-trees.
            for pid in heap_page_ids(t) {
                if budget < page_size {
                    break 'outer;
                }
                if pinned.contains_key(&pid) {
                    continue;
                }
                let Ok(region) = cpu.alloc_tcm(page_size) else {
                    break 'outer;
                };
                copy_page_to_tcm(cpu, &db.store, pid, region.addr, page_size);
                pinned.insert(pid, region.addr);
                budget -= page_size;
            }
        }

        let pool = TcmPool::new(
            BufferPool::new(db.knobs.buffer_bytes, db.store.page_size()),
            pinned,
        );
        Ok(DtcmDatabase {
            db,
            pool,
            scratch,
            config,
        })
    }

    /// Execute a plan through the Lite personality with the TCM pins active.
    pub fn run(&mut self, cpu: &mut Cpu, plan: &Plan) -> storage::Result<Vec<Row>> {
        let temp = self.db.default_ctx.checkout(cpu, self.db.knobs.work_mem)?;
        let result = (|| {
            let mut env = Env::new(
                cpu,
                &self.db.store,
                &mut self.pool,
                &self.db.catalog,
                &LITE,
                self.db.knobs.work_mem,
                self.scratch,
                Some(temp),
            )?;
            executor::run(cpu, &mut env, plan)
        })();
        self.db.default_ctx.release();
        result
    }

    /// Number of pages pinned in DTCM.
    pub fn pinned_pages(&self) -> usize {
        self.pool.pinned.len()
    }
}

/// Build an un-optimised baseline with identical storage for A/B comparison
/// (§4.3 compares "whether SQLite uses DTCM on ARM", not across machines).
pub fn baseline_lite(knobs: Knobs) -> Database {
    Database::with_knobs(EngineKind::Lite, knobs)
}

fn heap_page_ids(t: &storage::TableInfo) -> Vec<PageId> {
    // HeapFile doesn't expose its page list directly; walk page ids by
    // fetching bounds through the store-level metadata.
    (0..t.heap.n_pages() as u32)
        .map(|i| t.heap.page_id(i as usize))
        .collect()
}

fn copy_page_to_tcm(cpu: &mut Cpu, store: &PageStore, pid: PageId, tcm_addr: u64, page_size: u64) {
    let src = store.page(pid).addr;
    let mut buf = vec![0u8; page_size as usize];
    cpu.arena().read(src, &mut buf).expect("source page");
    cpu.arena_mut().write(tcm_addr, &buf).expect("tcm copy");
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{ArchConfig, Event};
    use storage::{Schema, Ty, Value};

    fn arm_db(cpu: &mut Cpu) -> Database {
        let mut db = baseline_lite(Knobs::arm_small());
        db.create_table(
            "t",
            Schema::new([("k", Ty::Int), ("v", Ty::Int)]),
            Some("k"),
        )
        .unwrap();
        let rows: Vec<Row> = (0..300)
            .map(|i| vec![Value::Int(i), Value::Int(i * 2)])
            .collect();
        db.load_rows(cpu, "t", rows).unwrap();
        db
    }

    #[test]
    fn dtcm_results_match_baseline() {
        let plan = Plan::scan_where(
            "t",
            storage::Expr::cmp(
                storage::CmpOp::Lt,
                storage::Expr::col(0),
                storage::Expr::int(50),
            ),
        );
        let mut cpu1 = Cpu::new(ArchConfig::arm1176jzf_s());
        let mut base = arm_db(&mut cpu1);
        let want = base.session().run(&mut cpu1, &plan).unwrap();

        let mut cpu2 = Cpu::new(ArchConfig::arm1176jzf_s());
        let db = arm_db(&mut cpu2);
        let mut dtcm =
            DtcmDatabase::configure(&mut cpu2, db, &["t"], DtcmConfig::default()).unwrap();
        let got = dtcm.run(&mut cpu2, &plan).unwrap();
        assert_eq!(want, got);
        assert!(dtcm.pinned_pages() > 0);
    }

    #[test]
    fn dtcm_run_issues_tcm_loads() {
        let plan = Plan::scan("t");
        let mut cpu = Cpu::new(ArchConfig::arm1176jzf_s());
        let db = arm_db(&mut cpu);
        let mut dtcm =
            DtcmDatabase::configure(&mut cpu, db, &["t"], DtcmConfig::default()).unwrap();
        let m = cpu.measure(|c| {
            dtcm.run(c, &plan).unwrap();
        });
        assert!(
            m.pmu.get(Event::TcmLoad) > 0,
            "pinned pages must be read from TCM"
        );
        assert!(
            m.pmu.get(Event::TcmStore) > 0,
            "scratch ring must live in TCM"
        );
    }

    #[test]
    fn dtcm_saves_energy_without_losing_performance() {
        // The §4.3 headline on a B-tree-heavy workload.
        let plan = Plan::scan("t").aggregate(vec![], vec![storage::AggSpec::count_star()]);

        let mut cpu1 = Cpu::new(ArchConfig::arm1176jzf_s());
        let mut base = arm_db(&mut cpu1);
        base.session().run(&mut cpu1, &plan).unwrap(); // warm
        let m_base = cpu1.measure(|c| {
            base.session().run(c, &plan).unwrap();
        });

        let mut cpu2 = Cpu::new(ArchConfig::arm1176jzf_s());
        let db = arm_db(&mut cpu2);
        let mut dtcm =
            DtcmDatabase::configure(&mut cpu2, db, &["t"], DtcmConfig::default()).unwrap();
        dtcm.run(&mut cpu2, &plan).unwrap(); // warm
        let m_dtcm = cpu2.measure(|c| {
            dtcm.run(c, &plan).unwrap();
        });

        let e_base = m_base.rapl.total_j();
        let e_dtcm = m_dtcm.rapl.total_j();
        assert!(
            e_dtcm < e_base,
            "DTCM must save energy: {e_dtcm} !< {e_base}"
        );
        assert!(
            m_dtcm.time_s <= m_base.time_s * 1.01,
            "DTCM must not lose performance: {} vs {}",
            m_dtcm.time_s,
            m_base.time_s
        );
    }
}
