//! The profile-driven physical executor.
//!
//! One executor, three personalities: every structural switch in
//! [`Profile`] changes which simulated loads/stores/ops a query issues.
//! Operators materialize their outputs (filters and projections are fused
//! into scans and joins, so selective predicates still prune early); the
//! energy-relevant store traffic of tuple materialization is charged
//! explicitly against a scratch "register file" ring that stays
//! L1D-resident — the paper's observation that read-only queries still
//! issue ~⅔ as many stores as loads, 99.86% of which hit L1D (§3.2).

use crate::db::u64_to_tid;
use crate::plan::Plan;
use crate::profile::Profile;
use simcore::{Cpu, Dep, ExecOp, Region};
use std::collections::HashMap;
use storage::buffer::{BufferPool, PageAccess};
use storage::catalog::TableInfo;
use storage::expr::AggState;
use storage::{
    AggFn, AggSpec, BTree, Catalog, Expr, PageStore, Row, SimHashTable, SimSorter, StorageError,
    Value,
};

/// Fetch column `c` of `row`. A plan whose join/sort/group column index
/// exceeds the row arity is malformed input, not an executor invariant —
/// surface it as a schema error instead of panicking the scheduler shard.
pub(crate) fn col(row: &Row, c: usize) -> storage::Result<&Value> {
    row.get(c)
        .ok_or(StorageError::Schema("plan column index out of row bounds"))
}

/// Clone the `cols`-indexed values out of `row` (group/sort keys), with the
/// same bounds policy as [`col`].
pub(crate) fn key_of_row(row: &Row, cols: impl Iterator<Item = usize>) -> storage::Result<Row> {
    cols.map(|c| col(row, c).cloned()).collect()
}

/// Per-query execution environment.
pub struct Env<'a, P: PageAccess> {
    /// The database file.
    pub store: &'a PageStore,
    /// Page residency provider (plain pool, or the DTCM pin-map wrapper).
    pub pool: &'a mut P,
    /// Catalog.
    pub catalog: &'a Catalog,
    /// Engine personality.
    pub profile: &'a Profile,
    /// Per-operation memory budget.
    pub work_mem: u64,
    scratch: Region,
    /// TCM sub-region for the hottest VM variables (§4.2 "special
    /// variables"); `None` on ordinary builds.
    hot_vars: Option<Region>,
    scratch_off: u64,
    temp_store: PageStore,
    temp_pool: BufferPool,
    temp_base: Option<Region>,
    temp_off: u64,
}

/// Size of the executor's scratch "register file" ring.
pub const SCRATCH_BYTES: u64 = 8 * 1024;

impl<'a, P: PageAccess> Env<'a, P> {
    /// Build an environment. `hot_vars` points the hottest VM state at a TCM
    /// region (the DTCM build, §4.2 "special variables").
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cpu: &mut Cpu,
        store: &'a PageStore,
        pool: &'a mut P,
        catalog: &'a Catalog,
        profile: &'a Profile,
        work_mem: u64,
        hot_vars: Option<Region>,
        temp: Option<Region>,
    ) -> storage::Result<Env<'a, P>> {
        let scratch = cpu.alloc(SCRATCH_BYTES)?;
        Ok(Env {
            store,
            pool,
            catalog,
            profile,
            work_mem,
            scratch,
            hot_vars,
            scratch_off: 0,
            temp_store: PageStore::new(4096),
            temp_pool: BufferPool::new_memory_resident(1 << 22, 4096),
            temp_base: temp,
            temp_off: 0,
        })
    }

    /// Carve `len` bytes out of the reusable temp region (falls back to a
    /// fresh allocation when no region was provided or it is exhausted).
    fn temp_alloc(&mut self, cpu: &mut Cpu, len: u64) -> storage::Result<Region> {
        if let Some(base) = self.temp_base {
            let len = len.min(base.len);
            if self.temp_off + len <= base.len {
                let r = Region {
                    addr: base.addr + self.temp_off,
                    len,
                };
                self.temp_off += len.div_ceil(simcore::LINE) * simcore::LINE;
                return Ok(r);
            }
            // Exhausted: wrap (temp structures from earlier operators of the
            // same query are already drained).
            self.temp_off = 0;
            if len <= base.len {
                let r = Region {
                    addr: base.addr,
                    len,
                };
                self.temp_off = len.div_ceil(simcore::LINE) * simcore::LINE;
                return Ok(r);
            }
        }
        Ok(cpu.alloc(len)?)
    }

    /// Charge the per-row interpreter traffic (VM registers / cursor
    /// structs / locals): `state_loads_per_row` loads, a quarter as many
    /// stores, a third as many bookkeeping ops, spread over a handful of
    /// hot lines. On the DTCM build these are served from TCM — the §4.2
    /// "special variables", which the paper measured as ~70% of all L1D
    /// loads in `sqlite3VdbeExec`.
    fn state_touch(&mut self, cpu: &mut Cpu) {
        let n = self.profile.state_loads_per_row;
        // On the DTCM build, the 4 KB special-variable budget covers the VM
        // registers and the hottest cursor fields — roughly 70% of this
        // traffic, per the paper's profiling of `sqlite3VdbeExec`; the rest
        // (deep cursor state, page-cache headers) stays in ordinary memory.
        let (hot_n, cold_n) = match self.hot_vars {
            Some(_) => ((n * 7) / 10, n - (n * 7) / 10),
            None => (0, n),
        };
        let touch = |cpu: &mut Cpu, region: Region, count: u64| {
            if count == 0 {
                return;
            }
            // Rotate across a few hot lines (compact structs, not one word).
            let lines = (region.len / simcore::LINE).clamp(1, 8);
            let per_line = count / lines;
            for l in 0..lines {
                cpu.load_repeat(region.addr + l * simcore::LINE, per_line.max(1));
            }
        };
        if let Some(hot) = self.hot_vars {
            touch(cpu, hot, hot_n);
        }
        let scratch = self.scratch;
        touch(cpu, scratch, cold_n);
        let store_target = self.hot_vars.unwrap_or(self.scratch);
        cpu.store_repeat(store_target.addr, n / 4);
        cpu.exec_n(ExecOp::Generic, (n as f64 * self.profile.ops_factor) as u64);
    }

    /// Charge the stores of materialising an `arity`-column tuple into the
    /// register/record ring (the TCM special-variable region on the DTCM
    /// build — SQLite's VM registers are both read and written there).
    fn materialize(&mut self, cpu: &mut Cpu, arity: usize) {
        let target = self.hot_vars.unwrap_or(self.scratch);
        let bytes = (arity as u64 * 16).min(target.len);
        let start = self.scratch_off % target.len;
        let end = (start + bytes).min(target.len);
        storage::page::touch_store(cpu, target.addr + start, end - start);
        self.scratch_off = (self.scratch_off + bytes) % target.len;
    }
}

/// The trace-span name of one plan operator: the variant, plus the detail
/// that distinguishes instances in a flame graph (table, index column,
/// join algorithm). Public so the profiler (mjprof) can map span streams
/// back onto plan nodes; only called when a span collector is installed.
pub fn span_name(plan: &Plan, profile: &Profile) -> String {
    let name = match plan {
        Plan::Scan { table, .. } => format!("scan({table})"),
        Plan::IndexRange { table, col, .. } => format!("index_range({table}.{col})"),
        Plan::Join { .. } => {
            if profile.hash_join {
                "hash_join".to_owned()
            } else {
                "index_nl_join".to_owned()
            }
        }
        Plan::Aggregate { group_by, .. } if group_by.is_empty() => "agg(scalar)".to_owned(),
        Plan::Aggregate { .. } if profile.hash_agg => "agg(hash)".to_owned(),
        Plan::Aggregate { .. } => "agg(tree)".to_owned(),
        Plan::Sort { .. } => "sort".to_owned(),
        Plan::Limit { .. } => "limit".to_owned(),
        Plan::Project { .. } => "project".to_owned(),
    };
    // Batch operators carry a `v` prefix so flame graphs and EXPLAIN
    // ANALYZE distinguish the executors at a glance.
    if profile.vectorized {
        format!("v{name}")
    } else {
        name
    }
}

/// Execute `plan` and return its rows.
///
/// Every operator is bracketed by an `mjobs` span (a no-op unless the
/// harness enabled `--trace`), so a traced query renders as a flame graph
/// of its plan tree with per-operator simulated time, cycles and energy.
/// Span capture only snapshots counters — it never advances the simulated
/// machine — so tracing cannot change measured results.
pub fn run<P: PageAccess>(
    cpu: &mut Cpu,
    env: &mut Env<'_, P>,
    plan: &Plan,
) -> storage::Result<Vec<Row>> {
    mjobs::span::enter(cpu, || span_name(plan, env.profile));
    let rows = run_op(cpu, env, plan);
    if let Ok(r) = &rows {
        mjobs::span::annotate_rows(r.len() as u64);
    }
    mjobs::span::exit(cpu);
    rows
}

/// Operator dispatch (the body of [`run`], outside its trace span).
fn run_op<P: PageAccess>(
    cpu: &mut Cpu,
    env: &mut Env<'_, P>,
    plan: &Plan,
) -> storage::Result<Vec<Row>> {
    match plan {
        Plan::Scan {
            table,
            filter,
            project,
        } => scan(cpu, env, table, filter, project),
        Plan::IndexRange {
            table,
            col,
            lo,
            hi,
            filter,
            project,
        } => index_range(cpu, env, table, col, *lo, *hi, filter, project),
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
            filter,
            project,
        } => join(
            cpu, env, left, right, *left_col, *right_col, filter, project,
        ),
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => aggregate(cpu, env, input, group_by, aggs),
        Plan::Sort { input, keys, limit } => sort(cpu, env, input, keys, *limit),
        Plan::Limit { input, n } => {
            let mut rows = run(cpu, env, input)?;
            rows.truncate(*n);
            Ok(rows)
        }
        Plan::Project { input, exprs } => {
            let rows = run(cpu, env, input)?;
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let projected: Row = exprs.iter().map(|e| e.eval(cpu, &row)).collect();
                env.materialize(cpu, projected.len());
                out.push(projected);
            }
            Ok(out)
        }
    }
}

/// Fetch + decode one heap row, charging per-row personality costs.
/// Returns `None` for tombstoned (dead) tuples.
fn fetch_row<P: PageAccess>(
    cpu: &mut Cpu,
    env: &mut Env<'_, P>,
    t: &TableInfo,
    tid: storage::heap::TupleId,
    dep: Dep,
) -> storage::Result<Option<Row>> {
    let page = env.pool.access(cpu, env.store, tid.0);
    let (addr, len) = page.tuple_bounds(cpu, tid.1, dep)?;
    if len == 0 {
        return Ok(None);
    }
    // First touch of the tuple's line(s) with the access-path dependency...
    storage::page::touch(cpu, addr, len as u64, dep);
    // ...then one load per column access, as real row decoders issue: these
    // hit the now-resident line(s) in L1D (or TCM, if the page is pinned),
    // which is precisely where the paper's scan energy concentrates (§3.2).
    let arity = t.schema.arity() as u64;
    let span = (len as u64).max(1);
    for i in 0..arity {
        cpu.load(addr + (i * 13) % span, Dep::Stream);
        cpu.exec(ExecOp::Generic); // decode dispatch
    }
    let row = storage::decode_row(&t.schema, cpu.arena().bytes(addr, len as usize)?)?;
    if env.profile.per_row_mul > 0 {
        cpu.exec_n(ExecOp::Mul, env.profile.per_row_mul);
    }
    env.state_touch(cpu);
    env.materialize(cpu, row.len());
    Ok(Some(row))
}

/// Apply per-row overhead + filter + projection; push survivors.
fn emit<P: PageAccess>(
    cpu: &mut Cpu,
    env: &mut Env<'_, P>,
    row: Row,
    filter: &Option<Expr>,
    project: &Option<Vec<Expr>>,
    out: &mut Vec<Row>,
) {
    cpu.exec_n(ExecOp::Generic, env.profile.per_row_ops);
    if let Some(f) = filter {
        if !f.matches(cpu, &row) {
            return;
        }
    }
    match project {
        Some(p) => {
            let projected: Row = p.iter().map(|e| e.eval(cpu, &row)).collect();
            env.materialize(cpu, projected.len());
            out.push(projected);
        }
        None => out.push(row),
    }
}

fn scan<P: PageAccess>(
    cpu: &mut Cpu,
    env: &mut Env<'_, P>,
    table: &str,
    filter: &Option<Expr>,
    project: &Option<Vec<Expr>>,
) -> storage::Result<Vec<Row>> {
    let catalog = env.catalog;
    let t = catalog.table(table)?;
    let mut out = Vec::new();
    if let (true, Some(pk)) = (env.profile.scan_via_btree, &t.pk_index) {
        // Lite/My: walk the table/clustered B-tree in key order; heap rows
        // are physically in that order, so fetches stream.
        let tree = pk.clone();
        let mut cur = tree.seek_first(cpu, env.store, env.pool);
        while let Some((_, payload)) = cur.next(cpu, env.store, env.pool) {
            if let Some(row) = fetch_row(cpu, env, t, u64_to_tid(payload), Dep::Stream)? {
                emit(cpu, env, row, filter, project, &mut out);
            }
        }
    } else {
        // Pg: raw sequential heap scan.
        let mut cur = t.heap.cursor();
        while let Some(tid) = cur.next(cpu, &t.heap, env.store, env.pool)? {
            if let Some(row) = fetch_row(cpu, env, t, tid, Dep::Stream)? {
                emit(cpu, env, row, filter, project, &mut out);
            }
        }
    }
    Ok(out)
}

/// Resolve a secondary-index payload to a heap row. Personalities with
/// `secondary_via_pk` pay an extra clustered-tree descent (the
/// SQLite-rowid / InnoDB-PK double lookup); the payload itself carries the
/// tuple id so results stay exact even for non-unique cluster keys.
fn fetch_via_index<P: PageAccess>(
    cpu: &mut Cpu,
    env: &mut Env<'_, P>,
    t: &TableInfo,
    payload: u64,
    is_pk_index: bool,
    dep: Dep,
) -> storage::Result<Option<Row>> {
    if env.profile.secondary_via_pk && !is_pk_index {
        if let Some(pk) = &t.pk_index {
            // Descend the clustered tree (cost of the second lookup).
            let pseudo_key = (payload >> 4) as i64;
            let _ = pk.seek(cpu, env.store, env.pool, pseudo_key);
        }
    }
    fetch_row(cpu, env, t, u64_to_tid(payload), dep)
}

#[allow(clippy::too_many_arguments)]
fn index_range<P: PageAccess>(
    cpu: &mut Cpu,
    env: &mut Env<'_, P>,
    table: &str,
    col: &str,
    lo: Option<i64>,
    hi: Option<i64>,
    filter: &Option<Expr>,
    project: &Option<Vec<Expr>>,
) -> storage::Result<Vec<Row>> {
    let catalog = env.catalog;
    let t = catalog.table(table)?;
    let ci = t
        .schema
        .col(col)
        .ok_or(StorageError::Schema("unknown index column"))?;
    let Some(tree) = t.index_on(ci) else {
        // No index: fall back to a filtered scan with the range folded in.
        let mut range_filter = Vec::new();
        if let Some(l) = lo {
            range_filter.push(Expr::cmp(storage::CmpOp::Ge, Expr::col(ci), Expr::int(l)));
        }
        if let Some(h) = hi {
            range_filter.push(Expr::cmp(storage::CmpOp::Le, Expr::col(ci), Expr::int(h)));
        }
        if let Some(f) = filter {
            range_filter.push(f.clone());
        }
        let combined = if range_filter.is_empty() {
            None
        } else {
            Some(Expr::and_all(range_filter))
        };
        return scan(cpu, env, table, &combined, project);
    };
    let is_pk = t.pk_col == Some(ci);
    let tree = tree.clone();
    let mut cur = tree.seek(cpu, env.store, env.pool, lo.unwrap_or(i64::MIN));
    let mut out = Vec::new();
    while let Some((k, payload)) = cur.next(cpu, env.store, env.pool) {
        if let Some(h) = hi {
            if k > h {
                break;
            }
        }
        // Fetches of successive index entries are mutually independent:
        // the leaf supplies all tuple ids up front, so the heap reads
        // pipeline (MLP) instead of serialising.
        if let Some(row) = fetch_via_index(cpu, env, t, payload, is_pk, Dep::Stream)? {
            emit(cpu, env, row, filter, project, &mut out);
        }
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn join<P: PageAccess>(
    cpu: &mut Cpu,
    env: &mut Env<'_, P>,
    left: &Plan,
    right: &Plan,
    left_col: usize,
    right_col: usize,
    filter: &Option<Expr>,
    project: &Option<Vec<Expr>>,
) -> storage::Result<Vec<Row>> {
    if env.profile.hash_join {
        hash_join(cpu, env, left, right, left_col, right_col, filter, project)
    } else {
        index_nl_join(cpu, env, left, right, left_col, right_col, filter, project)
    }
}

#[allow(clippy::too_many_arguments)]
fn hash_join<P: PageAccess>(
    cpu: &mut Cpu,
    env: &mut Env<'_, P>,
    left: &Plan,
    right: &Plan,
    left_col: usize,
    right_col: usize,
    filter: &Option<Expr>,
    project: &Option<Vec<Expr>>,
) -> storage::Result<Vec<Row>> {
    // Build on the right child (workload plans put the smaller input there).
    let build_rows = run(cpu, env, right)?;
    let arity = build_rows.first().map(|r| r.len()).unwrap_or(1);
    let entry_bytes = 24 + 16 * arity as u64;
    let n = build_rows.len() as u64;
    let region = env.temp_alloc(
        cpu,
        n.max(16).next_power_of_two() * 8 + n.max(16) * 2 * entry_bytes,
    )?;
    let mut ht = SimHashTable::new_in(region, n, entry_bytes);
    for row in build_rows {
        let key = col(&row, right_col)?.clone();
        ht.insert(cpu, key, row);
    }
    // Grace-style spill when the table exceeds work_mem: batches re-read.
    if ht.footprint() > env.work_mem && env.work_mem > 0 {
        let batches = ht.footprint().div_ceil(env.work_mem);
        cpu.idle_c0(200e-6 * batches as f64);
        cpu.exec_n(ExecOp::Generic, ht.len() * 2);
    }

    let probe_rows = run(cpu, env, left)?;
    let mut out = Vec::new();
    for lrow in probe_rows {
        let key = col(&lrow, left_col)?;
        if matches!(key, Value::Null) {
            continue;
        }
        let matches: Vec<Row> = ht
            .probe(cpu, key)
            .iter()
            .filter(|(k, _)| k.group_eq(key))
            .map(|(_, r)| r.clone())
            .collect();
        for rrow in matches {
            let mut row = lrow.clone();
            row.extend(rrow);
            env.materialize(cpu, row.len());
            emit(cpu, env, row, filter, project, &mut out);
        }
    }
    Ok(out)
}

/// Whether `plan` is a bare scan whose output columns are the base table's —
/// the precondition for driving a nested-loop join through a base index.
fn as_indexable<'c>(
    catalog: &'c Catalog,
    plan: &Plan,
    join_col: usize,
) -> Option<(&'c TableInfo, Option<Expr>, bool)> {
    let Plan::Scan {
        table,
        filter,
        project: None,
    } = plan
    else {
        return None;
    };
    let t = catalog.table(table).ok()?;
    let tree_exists = t.index_on(join_col).is_some();
    tree_exists.then(|| (t, filter.clone(), t.pk_col == Some(join_col)))
}

#[allow(clippy::too_many_arguments)]
fn index_nl_join<P: PageAccess>(
    cpu: &mut Cpu,
    env: &mut Env<'_, P>,
    left: &Plan,
    right: &Plan,
    left_col: usize,
    right_col: usize,
    filter: &Option<Expr>,
    project: &Option<Vec<Expr>>,
) -> storage::Result<Vec<Row>> {
    let outer_rows = run(cpu, env, left)?;
    let mut out = Vec::new();

    let catalog = env.catalog;
    if let Some((t, rfilter, is_pk)) = as_indexable(catalog, right, right_col) {
        // Index nested loop: descend the inner index once per outer row.
        let tree = t.index_on(right_col).expect("checked").clone();
        for lrow in outer_rows {
            let Some(key) = col(&lrow, left_col)?.as_int() else {
                continue;
            };
            let mut cur = tree.seek(cpu, env.store, env.pool, key);
            while let Some((k, payload)) = cur.next(cpu, env.store, env.pool) {
                if k != key {
                    break;
                }
                let Some(rrow) = fetch_via_index(cpu, env, t, payload, is_pk, Dep::Stream)? else {
                    continue;
                };
                if let Some(rf) = &rfilter {
                    if !rf.matches(cpu, &rrow) {
                        continue;
                    }
                }
                let mut row = lrow.clone();
                row.extend(rrow);
                env.materialize(cpu, row.len());
                emit(cpu, env, row, filter, project, &mut out);
            }
        }
        return Ok(out);
    }

    // SQLite-style transient automatic index: materialise the inner child
    // into temp pages and build a B-tree over the join column (simulated
    // inserts — this is real work the engine does).
    let inner_rows = run(cpu, env, right)?;
    let mut auto = BTree::create(cpu, &mut env.temp_store)?;
    for (i, row) in inner_rows.iter().enumerate() {
        let key = join_key_i64(col(row, right_col)?);
        auto.insert(cpu, &mut env.temp_store, &mut env.temp_pool, key, i as u64)?;
    }
    for lrow in outer_rows {
        if matches!(col(&lrow, left_col)?, Value::Null) {
            continue;
        }
        let key = join_key_i64(col(&lrow, left_col)?);
        let mut cur = auto.seek(cpu, &env.temp_store, &mut env.temp_pool, key);
        while let Some((k, idx)) = cur.next(cpu, &env.temp_store, &mut env.temp_pool) {
            if k != key {
                break;
            }
            let rrow = &inner_rows[idx as usize];
            // Hash keys can collide for strings: verify real equality.
            cpu.exec(ExecOp::Branch);
            if !col(rrow, right_col)?.group_eq(col(&lrow, left_col)?) {
                continue;
            }
            let mut row = lrow.clone();
            row.extend(rrow.iter().cloned());
            env.materialize(cpu, row.len());
            emit(cpu, env, row, filter, project, &mut out);
        }
    }
    Ok(out)
}

/// Map any value to an i64 B-tree key (ints/dates directly; other types via
/// their stable hash — equality is re-verified after the probe).
fn join_key_i64(v: &Value) -> i64 {
    match v {
        Value::Int(x) => *x,
        Value::Date(d) => *d as i64,
        other => other.hash64() as i64,
    }
}

fn aggregate<P: PageAccess>(
    cpu: &mut Cpu,
    env: &mut Env<'_, P>,
    input: &Plan,
    group_by: &[usize],
    aggs: &[AggSpec],
) -> storage::Result<Vec<Row>> {
    let rows = run(cpu, env, input)?;

    // Scalar aggregation.
    if group_by.is_empty() {
        let mut states: Vec<AggState> = aggs.iter().map(|_| AggState::new()).collect();
        for row in &rows {
            update_states(cpu, &mut states, aggs, row);
        }
        let result: Row = aggs
            .iter()
            .zip(&states)
            .map(|(a, s)| s.result(a.f))
            .collect();
        env.materialize(cpu, result.len());
        return Ok(vec![result]);
    }

    if env.profile.hash_agg {
        // Hash aggregation over a simulated group-state area.
        let region = env.temp_alloc(cpu, (rows.len().max(16) as u64 * 64).min(1 << 22))?;
        let slots = region.len / 64;
        let mut groups: HashMap<Vec<u8>, (Row, Vec<AggState>)> = HashMap::new();
        for row in &rows {
            let key_vals: Row = key_of_row(row, group_by.iter().copied())?;
            let key = canon_key(&key_vals);
            // Bucket chase + state write-back.
            let h = hash_bytes(&key);
            cpu.exec(ExecOp::Mul);
            let state_addr = region.addr + (h % slots) * 64;
            cpu.load(state_addr, Dep::Chase);
            cpu.store(state_addr);
            let entry = groups
                .entry(key)
                .or_insert_with(|| (key_vals, aggs.iter().map(|_| AggState::new()).collect()));
            update_states(cpu, &mut entry.1, aggs, row);
        }
        // Drain in canonical key order so executions are bit-for-bit
        // deterministic (HashMap iteration order is seeded per process).
        let mut entries: Vec<(Vec<u8>, Row, Vec<AggState>)> = groups
            .into_iter()
            .map(|(k, (kv, st))| (k, kv, st))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = Vec::with_capacity(entries.len());
        for (_, key_vals, states) in entries {
            let mut r = key_vals;
            r.extend(aggs.iter().zip(&states).map(|(a, s)| s.result(a.f)));
            env.materialize(cpu, r.len());
            out.push(r);
        }
        return Ok(out);
    }

    // Lite: ephemeral B-tree keyed by the group key (SQLite's transient
    // index for GROUP BY). With few groups the tree stays one or two
    // L1D-resident nodes, so grouping is load/store-dominated, not
    // movement-dominated.
    let region = env.temp_alloc(cpu, 1 << 16)?;
    let slots = region.len / 64;
    let mut gt = BTree::create(cpu, &mut env.temp_store)?;
    let mut groups: HashMap<Vec<u8>, (Row, Vec<AggState>, u64)> = HashMap::new();
    let mut next_idx = 0u64;
    for row in &rows {
        let key_vals: Row = key_of_row(row, group_by.iter().copied())?;
        let key = canon_key(&key_vals);
        let h = hash_bytes(&key) as i64;
        let idx = match groups.get(&key) {
            Some((_, _, idx)) => {
                // Existing group: one descent to find its row.
                let _ = gt.seek(cpu, &env.temp_store, &mut env.temp_pool, h);
                *idx
            }
            None => {
                let idx = next_idx;
                next_idx += 1;
                gt.insert(cpu, &mut env.temp_store, &mut env.temp_pool, h, idx)?;
                groups.insert(
                    key.clone(),
                    (
                        key_vals,
                        aggs.iter().map(|_| AggState::new()).collect(),
                        idx,
                    ),
                );
                idx
            }
        };
        // Aggregate-state read-modify-write.
        let state_addr = region.addr + (idx % slots) * 64;
        cpu.load(state_addr, Dep::Stream);
        cpu.store(state_addr);
        let entry = groups.get_mut(&key).expect("group exists");
        update_states(cpu, &mut entry.1, aggs, row);
    }
    // Emit in transient-tree order (deterministic: by hash, then key).
    let mut collected: Vec<(i64, Vec<u8>, Row, Vec<AggState>)> = groups
        .into_iter()
        .map(|(key, (key_vals, states, _))| (hash_bytes(&key) as i64, key, key_vals, states))
        .collect();
    collected.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    let mut out = Vec::with_capacity(collected.len());
    for (_, _, key_vals, states) in collected {
        let mut r = key_vals;
        r.extend(aggs.iter().zip(&states).map(|(a, s)| s.result(a.f)));
        env.materialize(cpu, r.len());
        out.push(r);
    }
    Ok(out)
}

pub(crate) fn update_states(cpu: &mut Cpu, states: &mut [AggState], aggs: &[AggSpec], row: &Row) {
    for (state, spec) in states.iter_mut().zip(aggs) {
        match (&spec.f, &spec.arg) {
            (AggFn::CountStar, _) | (_, None) => state.bump(cpu),
            (_, Some(e)) => {
                let v = e.eval(cpu, row);
                state.update(cpu, &v);
            }
        }
    }
}

fn sort<P: PageAccess>(
    cpu: &mut Cpu,
    env: &mut Env<'_, P>,
    input: &Plan,
    keys: &[(usize, bool)],
    limit: Option<usize>,
) -> storage::Result<Vec<Row>> {
    let rows = run(cpu, env, input)?;
    let row_bytes = rows.first().map(|r| r.len() as u64 * 16 + 16).unwrap_or(32);
    let region = env.temp_alloc(
        cpu,
        (rows.len().max(16) as u64 * row_bytes).min(env.work_mem.max(row_bytes * 16)),
    )?;
    let mut sorter = SimSorter::new_in(region, row_bytes, env.work_mem);
    for row in rows {
        let key: Vec<Value> = key_of_row(&row, keys.iter().map(|&(c, _)| c))?;
        sorter.push(cpu, key, row);
    }
    let desc: Vec<bool> = keys.iter().map(|&(_, d)| d).collect();
    let mut sorted = sorter.finish(cpu, &desc);
    if let Some(n) = limit {
        sorted.truncate(n);
    }
    Ok(sorted)
}

/// Canonical byte encoding of a group key (type-tagged, order-preserving
/// enough for equality).
pub fn canon_key(vals: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 9);
    for v in vals {
        match v {
            Value::Int(x) => {
                out.push(1);
                out.extend_from_slice(&x.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(2);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(3);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Date(d) => {
                out.push(4);
                out.extend_from_slice(&d.to_le_bytes());
            }
            Value::Null => out.push(5),
        }
    }
    out
}

pub(crate) fn hash_bytes(b: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &x in b {
        h ^= x as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::demo_database;
    use crate::profile::EngineKind;
    use simcore::{ArchConfig, Cpu};
    use storage::CmpOp;

    fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        rows
    }

    fn run_all(plan: &Plan) -> Vec<Vec<Row>> {
        EngineKind::ALL
            .into_iter()
            .map(|kind| {
                let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
                let mut db = demo_database(&mut cpu, kind).unwrap();
                sorted(db.session().run(&mut cpu, plan).unwrap())
            })
            .collect()
    }

    fn assert_engines_agree(plan: &Plan) -> Vec<Row> {
        let results = run_all(plan);
        for (i, kind) in EngineKind::ALL.into_iter().enumerate().skip(1) {
            assert_eq!(results[0], results[i], "Pg vs {kind:?} disagree");
        }
        results[0].clone()
    }

    #[test]
    fn filtered_scan_agrees_and_is_correct() {
        let plan = Plan::scan_where("items", Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(5)));
        let rows = assert_engines_agree(&plan);
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn projection_evaluates_expressions() {
        let plan = Plan::Scan {
            table: "items".into(),
            filter: Some(Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::int(3))),
            project: Some(vec![Expr::Bin(
                storage::BinOp::Mul,
                Box::new(Expr::col(2)),
                Box::new(Expr::int(2)),
            )]),
        };
        let rows = assert_engines_agree(&plan);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Float(7.0)); // price(id=3)=3.5 * 2
    }

    #[test]
    fn index_range_matches_filtered_scan() {
        let range = Plan::IndexRange {
            table: "items".into(),
            col: "cat".into(),
            lo: Some(2),
            hi: Some(3),
            filter: None,
            project: None,
        };
        let scan = Plan::scan_where(
            "items",
            Expr::and_all([
                Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(2)),
                Expr::cmp(CmpOp::Le, Expr::col(1), Expr::int(3)),
            ]),
        );
        let a = assert_engines_agree(&range);
        let b = assert_engines_agree(&scan);
        assert_eq!(a, b);
        assert_eq!(a.len(), 40);
    }

    #[test]
    fn join_agrees_across_engines() {
        // items ⋈ cats on cat = cid.
        let plan = Plan::scan("items").join(Plan::scan("cats"), 1, 0);
        let rows = assert_engines_agree(&plan);
        assert_eq!(rows.len(), 200);
        assert_eq!(rows[0].len(), 5);
    }

    #[test]
    fn join_with_projected_inner_uses_auto_index_path() {
        // Projected inner disables the base-index fast path for Lite.
        let inner = Plan::Scan {
            table: "cats".into(),
            filter: None,
            project: Some(vec![Expr::col(0), Expr::col(1)]),
        };
        let plan = Plan::scan("items").join(inner, 1, 0);
        let rows = assert_engines_agree(&plan);
        assert_eq!(rows.len(), 200);
    }

    #[test]
    fn aggregate_group_by_agrees() {
        let plan = Plan::scan("items").aggregate(
            vec![1],
            vec![
                AggSpec::count_star(),
                AggSpec::over(AggFn::Sum, Expr::col(2)),
                AggSpec::over(AggFn::Max, Expr::col(0)),
            ],
        );
        let rows = assert_engines_agree(&plan);
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert_eq!(r[1], Value::Int(20)); // 20 items per category
        }
    }

    #[test]
    fn scalar_aggregate_on_empty_input() {
        let plan = Plan::scan_where(
            "items",
            Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(10_000)),
        )
        .aggregate(vec![], vec![AggSpec::count_star()]);
        let rows = assert_engines_agree(&plan);
        assert_eq!(rows, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn sort_with_limit_agrees() {
        let plan = Plan::Sort {
            input: Box::new(Plan::scan("items")),
            keys: vec![(2, true), (0, false)],
            limit: Some(7),
        };
        // Sorted output is order-sensitive: compare directly, not via
        // sorted().
        let results: Vec<Vec<Row>> = EngineKind::ALL
            .into_iter()
            .map(|kind| {
                let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
                let mut db = demo_database(&mut cpu, kind).unwrap();
                db.session().run(&mut cpu, &plan).unwrap()
            })
            .collect();
        assert_eq!(results[0].len(), 7);
        for (i, kind) in EngineKind::ALL.into_iter().enumerate().skip(1) {
            assert_eq!(results[0], results[i], "Pg vs {kind:?} disagree");
        }
        // Highest price first.
        assert_eq!(results[0][0][2], Value::Float(6.5));
    }

    #[test]
    fn limit_truncates() {
        let plan = Plan::Limit {
            input: Box::new(Plan::scan("items")),
            n: 3,
        };
        for kind in EngineKind::ALL {
            let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
            let mut db = demo_database(&mut cpu, kind).unwrap();
            assert_eq!(db.session().run(&mut cpu, &plan).unwrap().len(), 3);
        }
    }

    #[test]
    fn engines_issue_different_access_patterns() {
        // Same plan, different personalities: Lite must stall less per row
        // on a pure scan? Not necessarily — but the *instruction mixes* must
        // differ measurably.
        let plan = Plan::scan("items").aggregate(vec![1], vec![AggSpec::count_star()]);
        let mut counts = Vec::new();
        for kind in EngineKind::ALL {
            let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
            let mut db = demo_database(&mut cpu, kind).unwrap();
            let m = cpu.measure(|c| {
                db.session().run(c, &plan).unwrap();
            });
            counts.push((kind, m.pmu.get(simcore::Event::GenericOps)));
        }
        let pg = counts[0].1;
        let my = counts[2].1;
        assert!(my > pg, "My must execute more bookkeeping ops: {counts:?}");
    }

    #[test]
    fn operators_emit_nested_energy_spans_when_traced() {
        let plan = Plan::scan("items")
            .join(Plan::scan("cats"), 1, 0)
            .aggregate(vec![1], vec![AggSpec::count_star()]);
        // The same warm-up + measured run on two identical fresh machines,
        // one untraced and one traced: results and the simulated cost must
        // not change (the --trace hard guarantee). The simulator is
        // deterministic, so any divergence is tracing's fault.
        let measure = |traced: bool| {
            let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
            let mut db = demo_database(&mut cpu, EngineKind::Pg).unwrap();
            let rows = db.session().run(&mut cpu, &plan).unwrap();
            if traced {
                mjobs::span::install();
            }
            let m = cpu.measure(|c| {
                assert_eq!(db.session().run(c, &plan).unwrap(), rows);
            });
            (m, mjobs::span::take())
        };
        let (m_plain, none) = measure(false);
        let (m_traced, spans) = measure(true);
        assert!(none.is_empty());
        assert_eq!(
            m_plain.pmu, m_traced.pmu,
            "tracing must not perturb the machine"
        );
        assert_eq!(m_plain.cycles, m_traced.cycles);

        // The plan tree appears as nested spans: agg(hash) at the root
        // (Pg hash-aggregates), the join below it, the scans below that.
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"agg(hash)"), "{names:?}");
        assert!(names.contains(&"hash_join"), "{names:?}");
        assert!(names.contains(&"scan(items)"), "{names:?}");
        let root = spans.iter().find(|s| s.name == "agg(hash)").unwrap();
        let join = spans.iter().find(|s| s.name == "hash_join").unwrap();
        let scan = spans.iter().find(|s| s.name == "scan(items)").unwrap();
        assert_eq!(root.depth, 0);
        assert_eq!(join.parent_seq, Some(root.seq));
        assert_eq!(scan.parent_seq, Some(join.seq));
        assert!(root.delta.rapl.total_j() >= join.delta.rapl.total_j());
        assert!(join.delta.time_s >= scan.delta.time_s);
        assert!(spans.iter().all(|s| !s.forced));
    }

    #[test]
    fn canon_key_distinguishes_types_and_values() {
        assert_ne!(canon_key(&[Value::Int(7)]), canon_key(&[Value::Date(7)]));
        assert_ne!(canon_key(&[Value::Int(7)]), canon_key(&[Value::Int(8)]));
        assert_eq!(
            canon_key(&[Value::Str("a".into()), Value::Null]),
            canon_key(&[Value::Str("a".into()), Value::Null])
        );
    }
}
