//! A database instance: storage + catalog + knobs for one engine.
//!
//! Per-query execution state lives in [`crate::session`]: a [`Database`]
//! holds what is shared across clients (store, pool, catalog, knobs), and
//! every query entry point is on [`crate::session::Session`].

use crate::knobs::{KnobLevel, Knobs};
use crate::profile::EngineKind;
use crate::session::SessionCtx;
use simcore::Cpu;
use storage::{
    encode_row, BTree, BufferPool, Catalog, PageStore, Row, Schema, StorageError, Value,
};

/// Pack a tuple id into a B-tree payload.
pub fn tid_to_u64(tid: storage::heap::TupleId) -> u64 {
    ((tid.0 as u64) << 16) | tid.1 as u64
}

/// Unpack a B-tree payload into a tuple id.
pub fn u64_to_tid(p: u64) -> storage::heap::TupleId {
    ((p >> 16) as u32, (p & 0xffff) as u16)
}

/// One engine instance over simulated storage.
///
/// Holds only the state *shared* across client sessions. Per-query scratch
/// state (the reusable temp region) lives in [`SessionCtx`]; query
/// execution goes through [`crate::session::Session`]. The storage fields
/// are deliberately not `pub`: external code reads them through
/// [`Database::store`] / [`Database::catalog`] and mutates the pool through
/// [`Database::pool_mut`], so the set of mutation sites stays auditable.
pub struct Database {
    /// Which personality executes queries.
    pub kind: EngineKind,
    /// Resolved Table 4 knobs.
    pub knobs: Knobs,
    /// The "database file".
    pub(crate) store: PageStore,
    /// The buffer pool (sized by the buffer knob).
    pub(crate) pool: BufferPool,
    /// Tables and indexes.
    pub(crate) catalog: Catalog,
    /// Scratch state for the built-in default session
    /// ([`Database::session`]); per-client sessions own their own.
    pub(crate) default_ctx: SessionCtx,
}

impl Database {
    /// New instance at a Table 4 level.
    pub fn new(kind: EngineKind, level: KnobLevel) -> Database {
        Database::with_knobs(kind, Knobs::resolve(kind, level))
    }

    /// New instance with explicit knobs (the ARM/DTCM experiment uses this).
    pub fn with_knobs(kind: EngineKind, knobs: Knobs) -> Database {
        Database {
            kind,
            knobs,
            store: PageStore::new(knobs.page_size),
            pool: BufferPool::new(knobs.buffer_bytes, knobs.page_size),
            catalog: Catalog::new(),
            default_ctx: SessionCtx::new(),
        }
    }

    /// The "database file" (read access; mutation happens through sessions
    /// and the setup paths).
    pub fn store(&self) -> &PageStore {
        &self.store
    }

    /// The buffer pool.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Mutable buffer pool access (cache warm-up, DTCM pin setup).
    pub fn pool_mut(&mut self) -> &mut BufferPool {
        &mut self.pool
    }

    /// Tables and indexes.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (schema surgery in tests and tools; ordinary
    /// DDL goes through [`Database::create_table`] /
    /// [`Database::create_index`]).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Create a table. `cluster_col` names the integer column the engine
    /// clusters/indexes as primary key (non-unique allowed, e.g. lineitem's
    /// `l_orderkey`).
    pub fn create_table(
        &mut self,
        name: &str,
        schema: Schema,
        cluster_col: Option<&str>,
    ) -> storage::Result<()> {
        let pk = match cluster_col {
            Some(c) => Some(
                schema
                    .col(c)
                    .ok_or(StorageError::Schema("unknown cluster column"))?,
            ),
            None => None,
        };
        self.catalog.create_table(name, schema)?;
        self.catalog.table_mut(name)?.pk_col = pk;
        Ok(())
    }

    /// Bulk-load rows (setup: unsimulated heap writes + bulk-built index).
    ///
    /// Clustering engines (Lite/My) physically order rows by the cluster
    /// column, like SQLite's rowid order and InnoDB's PK order.
    pub fn load_rows(
        &mut self,
        cpu: &mut Cpu,
        table: &str,
        mut rows: Vec<Row>,
    ) -> storage::Result<()> {
        let t = self.catalog.table(table)?;
        let schema = t.schema.clone();
        let pk = t.pk_col;
        for r in &rows {
            schema.check(r)?;
        }
        if self.kind != EngineKind::Pg {
            if let Some(pk) = pk {
                rows.sort_by_key(|r| r[pk].as_int().unwrap_or(i64::MAX));
            }
        }

        let mut buf = Vec::new();
        let mut pairs: Vec<(i64, u64)> = Vec::with_capacity(rows.len());
        {
            let t = self.catalog.table_mut(table)?;
            for r in &rows {
                encode_row(&schema, r, &mut buf)?;
                let tid = t.heap.bulk_insert(cpu, &mut self.store, &buf)?;
                if let Some(pk) = pk {
                    let key = r[pk]
                        .as_int()
                        .ok_or(StorageError::Schema("cluster column must be integral"))?;
                    pairs.push((key, tid_to_u64(tid)));
                }
            }
        }
        if pk.is_some() {
            pairs.sort_by_key(|&(k, _)| k);
            let tree = BTree::bulk_load(cpu, &mut self.store, &pairs)?;
            self.catalog.table_mut(table)?.pk_index = Some(tree);
        }
        Ok(())
    }

    /// Build a secondary index on an integral column (setup: unsimulated).
    ///
    /// Payloads are tuple ids for every engine; personalities that resolve
    /// secondaries through the clustered tree (Lite/My) charge the extra
    /// descent at query time (see `executor`).
    pub fn create_index(&mut self, cpu: &mut Cpu, table: &str, col: &str) -> storage::Result<()> {
        let t = self.catalog.table(table)?;
        let ci = t
            .schema
            .col(col)
            .ok_or(StorageError::Schema("unknown index column"))?;
        let schema = t.schema.clone();
        let heap = t.heap.clone();
        let mut pairs: Vec<(i64, u64)> = Vec::with_capacity(heap.len() as usize);
        let store = &self.store;
        heap.for_each_unsimulated(cpu.arena(), store, |tid, bytes| {
            if let Ok(row) = storage::decode_row(&schema, bytes) {
                if let Some(k) = row[ci].as_int() {
                    pairs.push((k, tid_to_u64(tid)));
                }
            }
        })?;
        pairs.sort_by_key(|&(k, _)| k);
        let tree = BTree::bulk_load(cpu, &mut self.store, &pairs)?;
        self.catalog.table_mut(table)?.secondary.push((ci, tree));
        Ok(())
    }

    /// Total rows across all tables (diagnostic).
    pub fn total_rows(&self) -> u64 {
        self.catalog.tables().iter().map(|t| t.heap.len()).sum()
    }
}

/// Build a tiny two-table database for unit tests and doc examples.
pub fn demo_database(cpu: &mut Cpu, kind: EngineKind) -> storage::Result<Database> {
    use storage::Ty;
    let mut db = Database::new(kind, KnobLevel::Baseline);
    db.create_table(
        "items",
        Schema::new([("id", Ty::Int), ("cat", Ty::Int), ("price", Ty::Float)]),
        Some("id"),
    )?;
    db.create_table(
        "cats",
        Schema::new([("cid", Ty::Int), ("name", Ty::Str)]),
        Some("cid"),
    )?;
    let items: Vec<Row> = (0..200)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::Int(i % 10),
                Value::Float((i % 7) as f64 + 0.5),
            ]
        })
        .collect();
    let cats: Vec<Row> = (0..10)
        .map(|c| vec![Value::Int(c), Value::Str(format!("cat-{c}"))])
        .collect();
    db.load_rows(cpu, "items", items)?;
    db.load_rows(cpu, "cats", cats)?;
    db.create_index(cpu, "items", "cat")?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::ArchConfig;

    #[test]
    fn tid_roundtrip() {
        for tid in [(0u32, 0u16), (7, 3), (u32::MAX >> 17, u16::MAX)] {
            assert_eq!(u64_to_tid(tid_to_u64(tid)), tid);
        }
    }

    #[test]
    fn load_builds_pk_index_for_all_engines() {
        for kind in EngineKind::ALL {
            let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
            let db = demo_database(&mut cpu, kind).unwrap();
            let t = db.catalog.table("items").unwrap();
            assert_eq!(t.heap.len(), 200);
            assert!(t.pk_index.is_some());
            assert_eq!(t.pk_index.as_ref().unwrap().len, 200);
            assert_eq!(t.secondary.len(), 1);
        }
    }

    #[test]
    fn clustering_orders_heap_by_pk() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut db = Database::new(EngineKind::My, KnobLevel::Baseline);
        db.create_table("t", Schema::new([("k", storage::Ty::Int)]), Some("k"))
            .unwrap();
        db.load_rows(
            &mut cpu,
            "t",
            vec![
                vec![Value::Int(3)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
            ],
        )
        .unwrap();
        let t = db.catalog.table("t").unwrap();
        let mut seen = Vec::new();
        t.heap
            .for_each_unsimulated(cpu.arena(), &db.store, |_, bytes| {
                let row = storage::decode_row(&t.schema, bytes).unwrap();
                seen.push(row[0].as_int().unwrap());
            })
            .unwrap();
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn pg_preserves_insertion_order() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut db = Database::new(EngineKind::Pg, KnobLevel::Baseline);
        db.create_table("t", Schema::new([("k", storage::Ty::Int)]), Some("k"))
            .unwrap();
        db.load_rows(
            &mut cpu,
            "t",
            vec![
                vec![Value::Int(3)],
                vec![Value::Int(1)],
                vec![Value::Int(2)],
            ],
        )
        .unwrap();
        let t = db.catalog.table("t").unwrap();
        let mut seen = Vec::new();
        t.heap
            .for_each_unsimulated(cpu.arena(), &db.store, |_, bytes| {
                seen.push(
                    storage::decode_row(&t.schema, bytes).unwrap()[0]
                        .as_int()
                        .unwrap(),
                );
            })
            .unwrap();
        assert_eq!(seen, vec![3, 1, 2]);
    }
}
