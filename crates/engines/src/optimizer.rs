//! A small semantic-preserving plan optimizer.
//!
//! Two rewrites, applied bottom-up:
//!
//! 1. **Index selection** — a `Scan` whose filter constrains an indexed
//!    integer/date column by a range (`=`, `<`, `<=`, `>`, `>=`,
//!    `BETWEEN`) becomes an `IndexRange` with the consumed bounds removed
//!    from the residual filter. The executor falls back to a scan when the
//!    personality has no usable index, so the rewrite is always safe.
//! 2. **Sorted-limit fusion** — `Limit(Sort(x))` becomes a top-N sort.
//!
//! The SQL frontend applies this pass by default; hand-built plans opt in
//! via [`optimize`].

use crate::plan::Plan;
use storage::{Catalog, CmpOp, Expr, Value};

/// Optimize a plan against a catalog (semantics preserved).
pub fn optimize(plan: Plan, catalog: &Catalog) -> Plan {
    match plan {
        Plan::Scan {
            table,
            filter,
            project,
        } => rewrite_scan(table, filter, project, catalog),
        Plan::IndexRange { .. } => plan,
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
            filter,
            project,
        } => Plan::Join {
            left: Box::new(optimize(*left, catalog)),
            right: Box::new(optimize(*right, catalog)),
            left_col,
            right_col,
            filter,
            project,
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Plan::Aggregate {
            input: Box::new(optimize(*input, catalog)),
            group_by,
            aggs,
        },
        Plan::Sort { input, keys, limit } => Plan::Sort {
            input: Box::new(optimize(*input, catalog)),
            keys,
            limit,
        },
        Plan::Project { input, exprs } => Plan::Project {
            input: Box::new(optimize(*input, catalog)),
            exprs,
        },
        Plan::Limit { input, n } => match optimize(*input, catalog) {
            // Limit over a sort is a top-N sort.
            Plan::Sort { input, keys, limit } => {
                let n = limit.map_or(n, |l| l.min(n));
                Plan::Sort {
                    input,
                    keys,
                    limit: Some(n),
                }
            }
            other => Plan::Limit {
                input: Box::new(other),
                n,
            },
        },
    }
}

/// Per-column bounds harvested from a conjunct list.
#[derive(Debug, Clone, Copy, Default)]
struct Bounds {
    lo: Option<i64>,
    hi: Option<i64>,
}

impl Bounds {
    fn tighten_lo(&mut self, v: i64) {
        self.lo = Some(self.lo.map_or(v, |x| x.max(v)));
    }
    fn tighten_hi(&mut self, v: i64) {
        self.hi = Some(self.hi.map_or(v, |x| x.min(v)));
    }
    fn selectivity_score(&self) -> u32 {
        match (self.lo, self.hi) {
            (Some(l), Some(h)) if l == h => 3, // equality
            (Some(_), Some(_)) => 2,           // closed range
            (Some(_), None) | (None, Some(_)) => 1,
            (None, None) => 0,
        }
    }
}

fn int_lit(e: &Expr) -> Option<i64> {
    match e {
        Expr::Lit(Value::Int(v)) => Some(*v),
        Expr::Lit(Value::Date(d)) => Some(*d as i64),
        _ => None,
    }
}

/// `(column, bound)` from one conjunct, if it is a usable range constraint.
fn extract_bound(e: &Expr) -> Option<(usize, Bounds)> {
    let mut b = Bounds::default();
    match e {
        Expr::Cmp(op, l, r) => {
            // col <op> lit  or  lit <op> col (flip).
            let (col, lit, op) = match (&**l, &**r) {
                (Expr::Col(c), rhs) => (*c, int_lit(rhs)?, *op),
                (lhs, Expr::Col(c)) => {
                    let flipped = match op {
                        CmpOp::Lt => CmpOp::Gt,
                        CmpOp::Le => CmpOp::Ge,
                        CmpOp::Gt => CmpOp::Lt,
                        CmpOp::Ge => CmpOp::Le,
                        other => *other,
                    };
                    (*c, int_lit(lhs)?, flipped)
                }
                _ => return None,
            };
            match op {
                CmpOp::Eq => {
                    b.tighten_lo(lit);
                    b.tighten_hi(lit);
                }
                CmpOp::Lt => b.tighten_hi(lit - 1),
                CmpOp::Le => b.tighten_hi(lit),
                CmpOp::Gt => b.tighten_lo(lit + 1),
                CmpOp::Ge => b.tighten_lo(lit),
                CmpOp::Ne => return None,
            }
            Some((col, b))
        }
        Expr::Between(x, lo, hi) => {
            let Expr::Col(c) = &**x else { return None };
            let lo = match lo {
                Value::Int(v) => *v,
                Value::Date(d) => *d as i64,
                _ => return None,
            };
            let hi = match hi {
                Value::Int(v) => *v,
                Value::Date(d) => *d as i64,
                _ => return None,
            };
            b.tighten_lo(lo);
            b.tighten_hi(hi);
            Some((*c, b))
        }
        _ => None,
    }
}

fn split_and(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::And(l, r) => {
            split_and(*l, out);
            split_and(*r, out);
        }
        other => out.push(other),
    }
}

fn rewrite_scan(
    table: String,
    filter: Option<Expr>,
    project: Option<Vec<Expr>>,
    catalog: &Catalog,
) -> Plan {
    let Some(filter) = filter else {
        return Plan::Scan {
            table,
            filter: None,
            project,
        };
    };
    let Ok(t) = catalog.table(&table) else {
        return Plan::Scan {
            table,
            filter: Some(filter),
            project,
        };
    };

    let mut conjuncts = Vec::new();
    split_and(filter, &mut conjuncts);

    // Gather bounds per indexed column, remembering which conjuncts feed it.
    let mut best: Option<(usize, Bounds, Vec<usize>)> = None;
    let indexed: Vec<usize> = {
        let mut v = Vec::new();
        if t.pk_index.is_some() {
            if let Some(pk) = t.pk_col {
                v.push(pk);
            }
        }
        v.extend(t.secondary.iter().map(|(c, _)| *c));
        v
    };
    for &col in &indexed {
        let mut b = Bounds::default();
        let mut used = Vec::new();
        for (i, c) in conjuncts.iter().enumerate() {
            if let Some((cc, cb)) = extract_bound(c) {
                if cc == col {
                    if let Some(l) = cb.lo {
                        b.tighten_lo(l);
                    }
                    if let Some(h) = cb.hi {
                        b.tighten_hi(h);
                    }
                    used.push(i);
                }
            }
        }
        if b.selectivity_score() > best.as_ref().map_or(0, |(_, bb, _)| bb.selectivity_score()) {
            best = Some((col, b, used));
        }
    }

    let Some((col, bounds, used)) = best else {
        return Plan::Scan {
            table,
            filter: Some(Expr::and_all(conjuncts)),
            project,
        };
    };
    let residual: Vec<Expr> = conjuncts
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !used.contains(i))
        .map(|(_, c)| c)
        .collect();
    let col_name = t.schema.columns[col].name.clone();
    Plan::IndexRange {
        table,
        col: col_name,
        lo: bounds.lo,
        hi: bounds.hi,
        filter: if residual.is_empty() {
            None
        } else {
            Some(Expr::and_all(residual))
        },
        project,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::demo_database;
    use crate::profile::EngineKind;
    use simcore::{ArchConfig, Cpu};

    fn opt(plan: Plan) -> (Plan, engines_test::Ctx) {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let db = demo_database(&mut cpu, EngineKind::Pg).unwrap();
        let p = optimize(plan, &db.catalog);
        (p, engines_test::Ctx { cpu, db })
    }

    mod engines_test {
        pub struct Ctx {
            pub cpu: simcore::Cpu,
            pub db: crate::db::Database,
        }
    }

    #[test]
    fn range_filter_becomes_index_range() {
        let plan = Plan::scan_where(
            "items",
            Expr::and_all([
                Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(2)),
                Expr::cmp(CmpOp::Le, Expr::col(1), Expr::int(4)),
                Expr::cmp(CmpOp::Gt, Expr::col(2), Expr::float(1.0)),
            ]),
        );
        let (p, _) = opt(plan);
        let Plan::IndexRange {
            col,
            lo,
            hi,
            filter,
            ..
        } = p
        else {
            panic!("expected IndexRange, got {p:?}")
        };
        assert_eq!(col, "cat");
        assert_eq!((lo, hi), (Some(2), Some(4)));
        assert!(filter.is_some(), "float residual must remain");
    }

    #[test]
    fn equality_beats_open_range() {
        // id (pk) has an open bound; cat has equality → pick cat? No: both
        // indexed; equality scores higher.
        let plan = Plan::scan_where(
            "items",
            Expr::and_all([
                Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(10)),
                Expr::cmp(CmpOp::Eq, Expr::col(1), Expr::int(3)),
            ]),
        );
        let (p, _) = opt(plan);
        let Plan::IndexRange { col, lo, hi, .. } = p else {
            panic!()
        };
        assert_eq!(col, "cat");
        assert_eq!((lo, hi), (Some(3), Some(3)));
    }

    #[test]
    fn strict_bounds_are_tightened_correctly() {
        let plan = Plan::scan_where(
            "items",
            Expr::and_all([
                Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(5)),
                Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(9)),
            ]),
        );
        let (p, mut ctx) = opt(plan.clone());
        let Plan::IndexRange { lo, hi, .. } = &p else {
            panic!()
        };
        assert_eq!((*lo, *hi), (Some(6), Some(8)));
        // Equivalence check.
        let a = ctx.db.session().run(&mut ctx.cpu, &plan).unwrap();
        let b = ctx.db.session().run(&mut ctx.cpu, &p).unwrap();
        let canon = |mut v: Vec<storage::Row>| {
            v.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
            v
        };
        assert_eq!(canon(a), canon(b));
    }

    #[test]
    fn flipped_literal_comparisons_are_recognised() {
        let plan = Plan::scan_where(
            "items",
            Expr::cmp(CmpOp::Gt, Expr::int(5), Expr::col(0)), // 5 > id  ⇒  id < 5
        );
        let (p, _) = opt(plan);
        let Plan::IndexRange { lo, hi, .. } = p else {
            panic!()
        };
        assert_eq!((lo, hi), (None, Some(4)));
    }

    #[test]
    fn unindexed_or_unconstrained_scans_stay_scans() {
        let plan = Plan::scan_where(
            "items",
            Expr::cmp(CmpOp::Gt, Expr::col(2), Expr::float(3.0)), // price: no index
        );
        let (p, _) = opt(plan);
        assert!(matches!(p, Plan::Scan { .. }));
        let (p, _) = opt(Plan::scan("items"));
        assert!(matches!(p, Plan::Scan { .. }));
    }

    #[test]
    fn limit_over_sort_fuses_to_top_n() {
        let plan = Plan::Limit {
            input: Box::new(Plan::scan("items").sort(vec![(2, true)])),
            n: 5,
        };
        let (p, _) = opt(plan);
        assert!(matches!(p, Plan::Sort { limit: Some(5), .. }));
    }

    #[test]
    fn optimized_plans_agree_with_originals_on_all_engines() {
        let plan = Plan::scan_where(
            "items",
            Expr::and_all([
                Expr::Between(Box::new(Expr::col(1)), Value::Int(1), Value::Int(6)),
                Expr::cmp(CmpOp::Ne, Expr::col(0), Expr::int(33)),
            ]),
        )
        .aggregate(vec![1], vec![storage::AggSpec::count_star()]);
        for kind in EngineKind::ALL {
            let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
            let mut db = demo_database(&mut cpu, kind).unwrap();
            let optimized = optimize(plan.clone(), &db.catalog);
            let canon = |mut v: Vec<storage::Row>| {
                v.sort_by(|x, y| format!("{x:?}").cmp(&format!("{y:?}")));
                v
            };
            let a = canon(db.session().run(&mut cpu, &plan).unwrap());
            let b = canon(db.session().run(&mut cpu, &optimized).unwrap());
            assert_eq!(a, b, "{kind:?}");
        }
    }
}
