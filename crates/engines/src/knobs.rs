//! The Table 4 knob settings.
//!
//! Each system exposes two knobs; the three levels give the three engines
//! approximately equal resources at each level:
//!
//! | system | knobs | small | baseline | large |
//! |---|---|---|---|---|
//! | PostgreSQL | shared_buffers / work_mem | 8 MB / 4 MB | 128 MB / 64 MB | 1024 MB / 512 MB |
//! | SQLite | cache_size / page_size | 2000 / 4 KB | 16000 / 8 KB | 65000 / 16 KB |
//! | MySQL | inbuffer_size / inpage_size | 8 MB / 4 KB | 128 MB / 8 KB | 1024 MB / 16 KB |

use crate::profile::EngineKind;

const MB: u64 = 1024 * 1024;

/// The three Table 4 levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobLevel {
    /// Stringent resources.
    Small,
    /// The trunk configuration.
    Baseline,
    /// Relaxed resources.
    Large,
}

impl KnobLevel {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            KnobLevel::Small => "small",
            KnobLevel::Baseline => "baseline",
            KnobLevel::Large => "large",
        }
    }

    /// All levels in Table 4 order.
    pub const ALL: [KnobLevel; 3] = [KnobLevel::Small, KnobLevel::Baseline, KnobLevel::Large];
}

/// Resolved knob values for one engine at one level.
#[derive(Debug, Clone, Copy)]
pub struct Knobs {
    /// Buffer-pool budget in bytes.
    pub buffer_bytes: u64,
    /// Per-operation memory (sorts, hash tables) in bytes.
    pub work_mem: u64,
    /// Page size in bytes.
    pub page_size: u32,
}

impl Knobs {
    /// Table 4 settings for `kind` at `level`.
    pub fn resolve(kind: EngineKind, level: KnobLevel) -> Knobs {
        match (kind, level) {
            (EngineKind::Pg, KnobLevel::Small) => Knobs {
                buffer_bytes: 8 * MB,
                work_mem: 4 * MB,
                page_size: 8192,
            },
            (EngineKind::Pg, KnobLevel::Baseline) => Knobs {
                buffer_bytes: 128 * MB,
                work_mem: 64 * MB,
                page_size: 8192,
            },
            (EngineKind::Pg, KnobLevel::Large) => Knobs {
                buffer_bytes: 1024 * MB,
                work_mem: 512 * MB,
                page_size: 8192,
            },
            (EngineKind::Lite, KnobLevel::Small) => Knobs {
                buffer_bytes: 2000 * 4096,
                work_mem: 2000 * 4096 / 16,
                page_size: 4096,
            },
            (EngineKind::Lite, KnobLevel::Baseline) => Knobs {
                buffer_bytes: 16000 * 8192,
                work_mem: 16000 * 8192 / 16,
                page_size: 8192,
            },
            (EngineKind::Lite, KnobLevel::Large) => Knobs {
                buffer_bytes: 65000 * 16384,
                work_mem: 65000 * 16384 / 16,
                page_size: 16384,
            },
            (EngineKind::My, KnobLevel::Small) => Knobs {
                buffer_bytes: 8 * MB,
                work_mem: MB,
                page_size: 4096,
            },
            (EngineKind::My, KnobLevel::Baseline) => Knobs {
                buffer_bytes: 128 * MB,
                work_mem: 16 * MB,
                page_size: 8192,
            },
            (EngineKind::My, KnobLevel::Large) => Knobs {
                buffer_bytes: 1024 * MB,
                work_mem: 128 * MB,
                page_size: 16384,
            },
            // The columnar personality is not in Table 4; give it the PG
            // budgets so knob-level sweeps compare like against like.
            (EngineKind::Vec, KnobLevel::Small) => Knobs {
                buffer_bytes: 8 * MB,
                work_mem: 4 * MB,
                page_size: 8192,
            },
            (EngineKind::Vec, KnobLevel::Baseline) => Knobs {
                buffer_bytes: 128 * MB,
                work_mem: 64 * MB,
                page_size: 8192,
            },
            (EngineKind::Vec, KnobLevel::Large) => Knobs {
                buffer_bytes: 1024 * MB,
                work_mem: 512 * MB,
                page_size: 8192,
            },
        }
    }

    /// Reduced configuration used on the 256 MB ARM part for the §4.3
    /// experiment (10 MB of data, the *small* setting).
    pub fn arm_small() -> Knobs {
        Knobs {
            buffer_bytes: 2000 * 4096,
            work_mem: 512 * 1024,
            page_size: 4096,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_scale_monotonically() {
        for kind in EngineKind::ALL {
            let s = Knobs::resolve(kind, KnobLevel::Small);
            let b = Knobs::resolve(kind, KnobLevel::Baseline);
            let l = Knobs::resolve(kind, KnobLevel::Large);
            assert!(s.buffer_bytes < b.buffer_bytes);
            assert!(b.buffer_bytes < l.buffer_bytes);
            assert!(s.work_mem <= b.work_mem && b.work_mem <= l.work_mem);
        }
    }

    #[test]
    fn levels_are_comparable_across_engines() {
        // "The resource size provided to three database systems at each
        // setting is approximate" (§3.1): within 2× of each other.
        for level in KnobLevel::ALL {
            let sizes: Vec<u64> = EngineKind::ALL
                .into_iter()
                .map(|k| Knobs::resolve(k, level).buffer_bytes)
                .collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            assert!(max < min * 2, "{level:?}: {sizes:?}");
        }
    }

    #[test]
    fn page_size_knob_follows_table4() {
        assert_eq!(
            Knobs::resolve(EngineKind::Lite, KnobLevel::Small).page_size,
            4096
        );
        assert_eq!(
            Knobs::resolve(EngineKind::Lite, KnobLevel::Large).page_size,
            16384
        );
        assert_eq!(
            Knobs::resolve(EngineKind::My, KnobLevel::Baseline).page_size,
            8192
        );
        // PG's page size is compile-time fixed at 8 KB.
        for level in KnobLevel::ALL {
            assert_eq!(Knobs::resolve(EngineKind::Pg, level).page_size, 8192);
        }
    }
}
