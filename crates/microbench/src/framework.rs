//! The two micro-benchmark design frameworks (§2.5.1) and the Fig. 4 data
//! layouts.
//!
//! Construction happens through [`simcore::Cpu::arena_mut`] — setup is
//! architecturally invisible, so the measurement window sees only the
//! traversal behaviour (plus honest cold misses on the first pass unless the
//! caller warms up).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simcore::{Cpu, Dep, ExecOp, MemError, Region};

/// Size of one chain/array item: exactly one cache line (§2.5.1).
pub const ITEM: u64 = simcore::LINE;

/// A linked chain of cache-line-sized items (Fig. 4b/4d).
///
/// Each item stores a forward pointer `f` in its first 8 bytes and (for
/// permuted chains) a backward pointer `b` in the next 8; the remaining bytes
/// are payload. The chain is circular so it can be traversed any number of
/// passes.
#[derive(Debug, Clone, Copy)]
pub struct ListChain {
    /// Backing allocation.
    pub region: Region,
    /// Number of items.
    pub items: u64,
    /// Address of the first item in logical order.
    pub head: u64,
}

impl ListChain {
    /// Build a chain whose logical order equals its physical order
    /// (Algorithm 2 / Fig. 4b). Used for L1D-resident working sets, where
    /// physical sequentiality cannot leak data to lower levels anyway.
    pub fn sequential(cpu: &mut Cpu, smem: u64) -> Result<ListChain, MemError> {
        let items = smem / ITEM;
        assert!(items >= 2, "chain needs at least two items");
        let region = cpu.alloc(items * ITEM)?;
        let arena = cpu.arena_mut();
        for j in 0..items {
            let next = (j + 1) % items;
            arena.write_u64(region.addr + j * ITEM, region.addr + next * ITEM)?;
        }
        Ok(ListChain {
            region,
            items,
            head: region.addr,
        })
    }

    /// Build a chain in TCM with sequential logical order.
    pub fn sequential_tcm(cpu: &mut Cpu, smem: u64) -> Result<ListChain, MemError> {
        let items = smem / ITEM;
        assert!(items >= 2, "chain needs at least two items");
        let region = cpu.alloc_tcm(items * ITEM)?;
        let arena = cpu.arena_mut();
        for j in 0..items {
            let next = (j + 1) % items;
            arena.write_u64(region.addr + j * ITEM, region.addr + next * ITEM)?;
        }
        Ok(ListChain {
            region,
            items,
            head: region.addr,
        })
    }

    /// Build a chain whose logical order is a span-constrained random
    /// permutation (Algorithm 3 / Fig. 4d).
    ///
    /// Starting from sequential order, every position `z` is exchanged with a
    /// random position `e` at distance `> espan`, avoiding logical neighbours
    /// — this "jump access on a large span" breaks all spatial locality, so a
    /// working set bigger than a cache level misses that level on every
    /// access (reuse distance = working-set size under LRU).
    pub fn permuted(
        cpu: &mut Cpu,
        smem: u64,
        espan: u64,
        seed: u64,
    ) -> Result<ListChain, MemError> {
        let items = smem / ITEM;
        assert!(items >= 8, "permuted chain needs at least 8 items");
        assert!(espan < items / 2, "espan must leave room for exchanges");
        let region = cpu.alloc(items * ITEM)?;

        // Logical visit order, host-side (construction is not measured).
        let mut order: Vec<u64> = (0..items).collect();
        let mut rng = SmallRng::seed_from_u64(seed);
        for z in 1..items - 1 {
            // Find e with |z - e| > espan that is not a logical neighbour.
            let mut e;
            loop {
                e = rng.gen_range(1..items - 1);
                let far = z.abs_diff(e) > espan;
                if far && e != z {
                    break;
                }
            }
            order.swap(z as usize, e as usize);
        }

        // Write forward (f, offset 0) and backward (b, offset 8) pointers
        // following the logical order; circular in both directions.
        let arena = cpu.arena_mut();
        let n = items as usize;
        for k in 0..n {
            let cur = region.addr + order[k] * ITEM;
            let next = region.addr + order[(k + 1) % n] * ITEM;
            let prev = region.addr + order[(k + n - 1) % n] * ITEM;
            arena.write_u64(cur, next)?;
            arena.write_u64(cur + 8, prev)?;
        }
        Ok(ListChain {
            region,
            items,
            head: region.addr + order[0] * ITEM,
        })
    }

    /// Traverse the chain once through dependent loads, returning the final
    /// pointer (fed back in by multi-pass callers so the dependency is real).
    ///
    /// `per_item` is executed after each load — VMBS benchmarks insert
    /// `add`/`nop` work here.
    pub fn traverse_pass<F: FnMut(&mut Cpu)>(
        &self,
        cpu: &mut Cpu,
        mut ptr: u64,
        per_item: &mut F,
    ) -> Result<u64, MemError> {
        // The body is "unrolled": no per-item loop control, only a per-pass
        // counter update and backward branch (§2.5.2: unrolling keeps BLI
        // above 98%).
        for _ in 0..self.items {
            ptr = cpu.read_u64(ptr, Dep::Chase)?;
            per_item(cpu);
        }
        cpu.exec(ExecOp::Add);
        cpu.exec(ExecOp::Branch);
        Ok(ptr)
    }

    /// Traverse `passes` times with no per-item extra work.
    pub fn traverse(&self, cpu: &mut Cpu, passes: u64) -> Result<(), MemError> {
        let mut ptr = self.head;
        let mut noop = |_: &mut Cpu| {};
        for _ in 0..passes {
            ptr = self.traverse_pass(cpu, ptr, &mut noop)?;
        }
        Ok(())
    }
}

/// A flat array of cache-line-sized items (Fig. 4a).
#[derive(Debug, Clone, Copy)]
pub struct ArrayBuf {
    /// Backing allocation.
    pub region: Region,
    /// Number of 64-byte items.
    pub items: u64,
}

impl ArrayBuf {
    /// Allocate an array of `smem / 64` items in DRAM.
    pub fn new(cpu: &mut Cpu, smem: u64) -> Result<ArrayBuf, MemError> {
        let items = smem / ITEM;
        assert!(items >= 1);
        let region = cpu.alloc(items * ITEM)?;
        Ok(ArrayBuf { region, items })
    }

    /// Allocate the array in TCM (for `B_DTCM_array`, §4.3).
    pub fn new_tcm(cpu: &mut Cpu, smem: u64) -> Result<ArrayBuf, MemError> {
        let items = smem / ITEM;
        assert!(items >= 1);
        let region = cpu.alloc_tcm(items * ITEM)?;
        Ok(ArrayBuf { region, items })
    }

    /// One sequential pass of independent loads, with optional per-item work.
    pub fn traverse_pass<F: FnMut(&mut Cpu)>(&self, cpu: &mut Cpu, per_item: &mut F) {
        for i in 0..self.items {
            cpu.load(self.region.addr + i * ITEM, Dep::Stream);
            per_item(cpu);
        }
        cpu.exec(ExecOp::Add);
        cpu.exec(ExecOp::Branch);
    }

    /// `passes` sequential passes with no per-item work.
    pub fn traverse(&self, cpu: &mut Cpu, passes: u64) {
        let mut noop = |_: &mut Cpu| {};
        for _ in 0..passes {
            self.traverse_pass(cpu, &mut noop);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{ArchConfig, Event};

    fn cpu() -> Cpu {
        let mut c = Cpu::new(ArchConfig::intel_i7_4790());
        c.set_prefetch(false);
        c
    }

    /// Follow f-pointers host-side and check the chain is a single cycle
    /// visiting every item exactly once.
    fn assert_full_cycle(cpu: &Cpu, chain: &ListChain) {
        let mut seen = vec![false; chain.items as usize];
        let mut ptr = chain.head;
        for _ in 0..chain.items {
            let idx = ((ptr - chain.region.addr) / ITEM) as usize;
            assert!(!seen[idx], "chain revisited item {idx} early");
            seen[idx] = true;
            ptr = cpu.arena().read_u64(ptr).unwrap();
        }
        assert_eq!(ptr, chain.head, "chain is not circular");
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sequential_chain_is_a_cycle() {
        let mut c = cpu();
        let chain = ListChain::sequential(&mut c, 31 * 1024).unwrap();
        assert_eq!(chain.items, 496);
        assert_full_cycle(&c, &chain);
    }

    #[test]
    fn permuted_chain_is_a_cycle_with_long_jumps() {
        let mut c = cpu();
        let chain = ListChain::permuted(&mut c, 260 * 1024, 64, 42).unwrap();
        assert_full_cycle(&c, &chain);
        // Median physical jump distance should be large (locality broken).
        let mut jumps = Vec::new();
        let mut ptr = chain.head;
        for _ in 0..chain.items {
            let next = c.arena().read_u64(ptr).unwrap();
            jumps.push(ptr.abs_diff(next) / ITEM);
            ptr = next;
        }
        jumps.sort_unstable();
        let median = jumps[jumps.len() / 2];
        assert!(median > 64, "median jump {median} lines is too local");
    }

    #[test]
    fn backward_pointers_mirror_forward() {
        let mut c = cpu();
        let chain = ListChain::permuted(&mut c, 64 * 1024, 16, 7).unwrap();
        let mut ptr = chain.head;
        for _ in 0..chain.items {
            let next = c.arena().read_u64(ptr).unwrap();
            let back = c.arena().read_u64(next + 8).unwrap();
            assert_eq!(back, ptr);
            ptr = next;
        }
    }

    #[test]
    fn l1d_resident_chain_only_hits_l1d_after_warmup() {
        let mut c = cpu();
        let chain = ListChain::sequential(&mut c, 31 * 1024).unwrap();
        chain.traverse(&mut c, 1).unwrap(); // warm
        let m = c.measure(|c| chain.traverse(c, 4).unwrap());
        let miss = m.pmu.l1d_miss_rate().unwrap();
        assert!(miss < 0.001, "L1D-resident chain missed {miss}");
    }

    #[test]
    fn permuted_l2_chain_misses_l1d_and_hits_l2() {
        let mut c = cpu();
        // 240 KB: as close to L1D+L2 capacity as fits an inclusive L2 (the
        // paper's 260 KB relies on Haswell's non-inclusive L2).
        let chain = ListChain::permuted(&mut c, 240 * 1024, 64, 1).unwrap();
        chain.traverse(&mut c, 1).unwrap();
        let m = c.measure(|c| chain.traverse(c, 2).unwrap());
        assert!(
            m.pmu.l1d_miss_rate().unwrap() > 0.95,
            "l1 miss {:?}",
            m.pmu.l1d_miss_rate()
        );
        assert!(
            m.pmu.l2_miss_rate().unwrap() < 0.05,
            "l2 miss {:?}",
            m.pmu.l2_miss_rate()
        );
    }

    #[test]
    fn array_traversal_has_no_stalls_when_l1_resident() {
        let mut c = cpu();
        let arr = ArrayBuf::new(&mut c, 31 * 1024).unwrap();
        arr.traverse(&mut c, 1);
        let m = c.measure(|c| arr.traverse(c, 4));
        assert_eq!(m.pmu.get(Event::StallCycles), 0);
        assert!(m.pmu.ipc() > 1.9);
    }
}
