//! The measured micro-benchmark set `MBS` (§2.5.2, Algorithms 1–4), plus the
//! two instruction benchmarks `B_add`/`B_nop` (§2.5.5) and the ARM-only
//! `B_DTCM_array` (§4.3).

use crate::framework::{ArrayBuf, ListChain, ITEM};
use crate::runner::{l1d_smem, BenchRun, RunConfig};
use simcore::{ArchKind, Cpu, Event, ExecOp};

/// Working-set size for `B_L2` — as close as possible to L1D+L2 capacity
/// while still *fitting* the (inclusive) simulated L2. The paper uses 260 KB
/// on Haswell, whose L2 is non-inclusive; see EXPERIMENTS.md.
pub const L2_SMEM: u64 = 240 * 1024;
/// Working-set size for `B_L3` (paper: 6 MB on an 8 MB L3).
pub const L3_SMEM: u64 = 6 * 1024 * 1024;
/// Working-set size for `B_mem` (paper: 60 MB).
pub const MEM_SMEM: u64 = 60 * 1024 * 1024;

/// Identifier for one benchmark in `MBS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroBenchId {
    /// Algorithm 1: independent loads from an L1D-resident array.
    L1dArray,
    /// Algorithm 2: dependent loads from an L1D-resident chain.
    L1dList,
    /// Algorithm 3 with an L2-sized working set.
    L2,
    /// Algorithm 3 with an L3-sized working set.
    L3,
    /// Algorithm 3 with a DRAM-sized working set.
    Mem,
    /// Algorithm 4: repeated stores to one variable.
    Reg2L1d,
    /// A loop of add instructions.
    Add,
    /// A loop of nop instructions.
    Nop,
    /// `B_L1D_array` with the array in DTCM (ARM only, §4.3).
    DtcmArray,
}

impl MicroBenchId {
    /// The benchmark's paper name.
    pub fn name(self) -> &'static str {
        match self {
            MicroBenchId::L1dArray => "B_L1D_array",
            MicroBenchId::L1dList => "B_L1D_list",
            MicroBenchId::L2 => "B_L2",
            MicroBenchId::L3 => "B_L3",
            MicroBenchId::Mem => "B_mem",
            MicroBenchId::Reg2L1d => "B_Reg2L1D",
            MicroBenchId::Add => "B_add",
            MicroBenchId::Nop => "B_nop",
            MicroBenchId::DtcmArray => "B_DTCM_array",
        }
    }

    /// The full x86 set, in Table 1 order.
    pub const X86_SET: [MicroBenchId; 8] = [
        MicroBenchId::L1dList,
        MicroBenchId::L1dArray,
        MicroBenchId::L2,
        MicroBenchId::L3,
        MicroBenchId::Mem,
        MicroBenchId::Reg2L1d,
        MicroBenchId::Add,
        MicroBenchId::Nop,
    ];

    /// Which benchmarks exist on `kind` (the ARM part has no L2/L3; the x86
    /// part has no TCM).
    pub fn applicable(self, kind: ArchKind) -> bool {
        match self {
            MicroBenchId::L2 | MicroBenchId::L3 => kind == ArchKind::X86,
            MicroBenchId::DtcmArray => kind == ArchKind::Arm,
            _ => true,
        }
    }

    /// PMU events counted as "desired" for the BLI diagnostic.
    pub fn desired_events(self) -> &'static [Event] {
        match self {
            MicroBenchId::L1dArray
            | MicroBenchId::L1dList
            | MicroBenchId::L2
            | MicroBenchId::L3
            | MicroBenchId::Mem => &[Event::LoadIssued],
            MicroBenchId::DtcmArray => &[Event::TcmLoad],
            MicroBenchId::Reg2L1d => &[Event::StoreIssued],
            MicroBenchId::Add => &[Event::AddOps],
            MicroBenchId::Nop => &[Event::NopOps],
        }
    }

    /// Allocate the benchmark's working set, warm it, run it inside a
    /// measurement window and return the result.
    ///
    /// # Panics
    /// Panics if the benchmark is not applicable to the machine's
    /// architecture or the working set does not fit simulated memory.
    pub fn run(self, cpu: &mut Cpu, cfg: &RunConfig) -> BenchRun {
        assert!(
            self.applicable(cpu.arch().kind),
            "{} is not applicable to {}",
            self.name(),
            cpu.arch().name
        );
        cpu.set_pstate(cfg.pstate);
        cpu.set_prefetch(cfg.prefetch);

        let rounds = |items: u64| cfg.target_ops.div_ceil(items).max(1);

        match self {
            MicroBenchId::L1dArray => {
                let arr = ArrayBuf::new(cpu, l1d_smem(cpu.arch())).expect("alloc B_L1D_array");
                arr.traverse(cpu, cfg.warmup);
                let passes = rounds(arr.items);
                let m = cpu.measure(|c| arr.traverse(c, passes));
                BenchRun::new(self.name(), m, self.desired_events())
            }
            MicroBenchId::DtcmArray => {
                let smem = cpu.arch().dtcm_size.min(l1d_smem(cpu.arch()));
                let arr = ArrayBuf::new_tcm(cpu, smem).expect("alloc B_DTCM_array");
                arr.traverse(cpu, cfg.warmup);
                let passes = rounds(arr.items);
                let m = cpu.measure(|c| arr.traverse(c, passes));
                BenchRun::new(self.name(), m, self.desired_events())
            }
            MicroBenchId::L1dList => {
                let chain = ListChain::sequential(cpu, l1d_smem(cpu.arch())).expect("alloc");
                chain.traverse(cpu, cfg.warmup).expect("warmup");
                let passes = rounds(chain.items);
                let m = cpu.measure(|c| chain.traverse(c, passes).expect("traverse"));
                BenchRun::new(self.name(), m, self.desired_events())
            }
            MicroBenchId::L2 | MicroBenchId::L3 | MicroBenchId::Mem => {
                let smem = match self {
                    MicroBenchId::L2 => L2_SMEM,
                    MicroBenchId::L3 => L3_SMEM,
                    _ => MEM_SMEM,
                };
                let items = smem / ITEM;
                let espan = (items / 8).max(4);
                let chain = ListChain::permuted(cpu, smem, espan, 0x5eed).expect("alloc");
                chain.traverse(cpu, cfg.warmup).expect("warmup");
                let passes = rounds(chain.items);
                let m = cpu.measure(|c| chain.traverse(c, passes).expect("traverse"));
                BenchRun::new(self.name(), m, self.desired_events())
            }
            MicroBenchId::Reg2L1d => {
                // Algorithm 4: one 64 B variable, stored over and over. The
                // unrolling count matches the other benchmarks' pass length.
                let var = cpu.alloc(ITEM).expect("alloc B_Reg2L1D");
                let ut = l1d_smem(cpu.arch()) / ITEM;
                cpu.store(var.addr); // allocate the line (write-allocate miss)
                let passes = rounds(ut);
                let m = cpu.measure(|c| {
                    for _ in 0..passes {
                        for _ in 0..ut {
                            c.store(var.addr);
                        }
                        c.exec(ExecOp::Add);
                        c.exec(ExecOp::Branch);
                    }
                });
                BenchRun::new(self.name(), m, self.desired_events())
            }
            MicroBenchId::Add | MicroBenchId::Nop => {
                let op = if self == MicroBenchId::Add {
                    ExecOp::Add
                } else {
                    ExecOp::Nop
                };
                let ut = l1d_smem(cpu.arch()) / ITEM;
                let passes = rounds(ut);
                let m = cpu.measure(|c| {
                    for _ in 0..passes {
                        c.exec_n(op, ut);
                        c.exec(ExecOp::Add);
                        c.exec(ExecOp::Branch);
                    }
                });
                BenchRun::new(self.name(), m, self.desired_events())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::bench_cpu;
    use simcore::ArchConfig;

    fn run(id: MicroBenchId) -> BenchRun {
        let cfg = RunConfig::quick();
        let mut cpu = bench_cpu(ArchConfig::intel_i7_4790(), &cfg);
        id.run(&mut cpu, &cfg)
    }

    #[test]
    fn b_l1d_array_behaviour_matches_table1() {
        let r = run(MicroBenchId::L1dArray);
        assert!(r.bli > 0.98, "BLI {}", r.bli);
        assert!(r.measurement.pmu.l1d_miss_rate().unwrap() < 0.01);
        let ipc = r.ipc();
        assert!(ipc > 1.8 && ipc < 2.2, "IPC {ipc}");
    }

    #[test]
    fn b_l1d_list_behaviour_matches_table1() {
        let r = run(MicroBenchId::L1dList);
        assert!(r.bli > 0.98);
        assert!(r.measurement.pmu.l1d_miss_rate().unwrap() < 0.01);
        let ipc = r.ipc();
        assert!(ipc > 0.2 && ipc < 0.3, "IPC {ipc}");
    }

    #[test]
    fn b_l2_behaviour_matches_table1() {
        let r = run(MicroBenchId::L2);
        assert!(r.measurement.pmu.l1d_miss_rate().unwrap() > 0.99);
        assert!(r.measurement.pmu.l2_miss_rate().unwrap() < 0.01);
        let ipc = r.ipc();
        assert!(ipc < 0.12, "IPC {ipc}");
    }

    #[test]
    fn b_l3_behaviour_matches_table1() {
        let r = run(MicroBenchId::L3);
        assert!(r.measurement.pmu.l1d_miss_rate().unwrap() > 0.97);
        assert!(r.measurement.pmu.l2_miss_rate().unwrap() > 0.97);
        assert!(r.measurement.pmu.l3_miss_rate().unwrap() < 0.03);
        let ipc = r.ipc();
        assert!(ipc < 0.05, "IPC {ipc}");
    }

    #[test]
    fn b_mem_behaviour_matches_table1() {
        let r = run(MicroBenchId::Mem);
        assert!(r.measurement.pmu.l3_miss_rate().unwrap() > 0.95);
        let ipc = r.ipc();
        assert!(ipc < 0.01, "IPC {ipc}");
    }

    #[test]
    fn b_reg2l1d_behaviour_matches_table1() {
        let r = run(MicroBenchId::Reg2L1d);
        assert!(r.bli > 0.98);
        assert!(r.measurement.pmu.l1d_store_hit_rate().unwrap() > 0.999);
        let ipc = r.ipc();
        assert!(ipc > 0.9 && ipc < 1.1, "IPC {ipc}");
    }

    #[test]
    fn b_add_and_b_nop_ipc() {
        let add = run(MicroBenchId::Add);
        assert!(add.ipc() > 1.9 && add.ipc() < 2.1, "add IPC {}", add.ipc());
        let nop = run(MicroBenchId::Nop);
        assert!(nop.ipc() > 3.8 && nop.ipc() < 4.1, "nop IPC {}", nop.ipc());
    }

    #[test]
    fn dtcm_array_runs_on_arm_only() {
        assert!(!MicroBenchId::DtcmArray.applicable(simcore::ArchKind::X86));
        let cfg = RunConfig::quick();
        let mut cpu = bench_cpu(ArchConfig::arm1176jzf_s(), &cfg);
        let r = MicroBenchId::DtcmArray.run(&mut cpu, &cfg);
        assert!(r.bli > 0.98);
        assert_eq!(r.measurement.pmu.get(Event::L1dLoadMiss), 0);
    }

    #[test]
    fn dtcm_saves_energy_vs_l1d_array_on_arm() {
        // §4.3: B_DTCM_array reduces energy ~10% with no performance loss.
        let cfg = RunConfig::quick();
        let mut c1 = bench_cpu(ArchConfig::arm1176jzf_s(), &cfg);
        let l1d = MicroBenchId::L1dArray.run(&mut c1, &cfg);
        let mut c2 = bench_cpu(ArchConfig::arm1176jzf_s(), &cfg);
        let tcm = MicroBenchId::DtcmArray.run(&mut c2, &cfg);
        let e1 = l1d.measurement.rapl.total_j();
        let e2 = tcm.measurement.rapl.total_j();
        assert!(e2 < e1, "TCM should be cheaper: {e2} !< {e1}");
        assert!(tcm.measurement.time_s <= l1d.measurement.time_s * 1.001);
    }

    #[test]
    fn mem_bench_respects_pstate() {
        let cfg12 = RunConfig {
            pstate: simcore::PState::P12,
            ..RunConfig::quick()
        };
        let mut cpu = bench_cpu(ArchConfig::intel_i7_4790(), &cfg12);
        let r = MicroBenchId::L1dArray.run(&mut cpu, &cfg12);
        assert_eq!(r.measurement.pstate, simcore::PState::P12);
    }
}
