#![warn(missing_docs)]

//! # microbench — the paper's micro-benchmark sets (§2.5)
//!
//! Quantifying the energy of an individual micro-operation requires
//! benchmarks with a *single, known* performance behaviour. This crate
//! implements the paper's two design frameworks and both benchmark sets:
//!
//! * **List traversal** (Fig. 4b/4d): a pointer chain whose back-and-forth
//!   dependency defeats out-of-order execution, so every load's latency is
//!   exposed. For the L2/L3/DRAM variants the chain's *logical* order is a
//!   span-constrained random permutation (Algorithm 3), which makes the reuse
//!   distance equal to the working-set size — every access misses all levels
//!   smaller than the working set.
//! * **Array traversal** (Fig. 4a): sequential, address-independent loads
//!   that the pipeline dual-issues with no stalls.
//!
//! The measured set `MBS` (Algorithms 1–4) isolates the micro-ops in
//! `MS = {L1D, Reg2L1D, L2, L3, mem, pf, stall}`; the verification set
//! `VMBS` (Table 3) mixes data movement with `add`/`nop` work to check the
//! solved per-op energies on *complex* behaviours.
//!
//! Runtime configuration follows §2.5.3: fixed P-state, prefetcher off,
//! caches warmed before the measurement window opens.

pub mod framework;
pub mod mbs;
pub mod runner;
pub mod vmbs;

pub use framework::{ArrayBuf, ListChain};
pub use mbs::MicroBenchId;
pub use runner::{BenchRun, RunConfig};
pub use vmbs::VerifyBenchId;
