//! Run configuration (§2.5.3) and the measurement wrapper shared by MBS and
//! VMBS.

use simcore::{ArchConfig, ArchKind, Cpu, Event, Measurement, PState};

/// Runtime configuration for a micro-benchmark run.
///
/// Mirrors §2.5.3: compiler effects don't exist here (the benchmarks *are*
/// their instruction streams), thread pinning is implicit (one simulated
/// core), and the knobs that remain are the P-state, the prefetcher, and the
/// loop count.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Operating point (EIST off: the P-state is pinned).
    pub pstate: PState,
    /// Hardware prefetcher state (off for MBS/VMBS per the paper).
    pub prefetch: bool,
    /// Approximate number of desired micro-ops inside the measurement
    /// window. Benchmarks convert this into traversal passes. (The paper's
    /// `T = 1e9` is wall-clock insurance on real hardware, not a behavioural
    /// requirement; it notes `T` "can be reduced moderately".)
    pub target_ops: u64,
    /// Warm-up passes before the window opens (so "there will not be any
    /// miss after the initial set of loads").
    pub warmup: u64,
}

impl RunConfig {
    /// The paper's trunk configuration at a given P-state.
    pub fn at(pstate: PState) -> RunConfig {
        RunConfig {
            pstate,
            prefetch: false,
            target_ops: 300_000,
            warmup: 1,
        }
    }

    /// A fast configuration for unit tests.
    pub fn quick() -> RunConfig {
        RunConfig {
            target_ops: 20_000,
            ..RunConfig::p36()
        }
    }

    /// Default P36 configuration.
    pub fn p36() -> RunConfig {
        RunConfig::at(PState::P36)
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::p36()
    }
}

/// A completed micro-benchmark run: the raw measurement plus the behavioural
/// diagnostics the paper reports in Table 1.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Benchmark name (e.g. `B_L1D_list`).
    pub name: &'static str,
    /// Raw measurement window (PMU deltas + RAPL deltas + time).
    pub measurement: Measurement,
    /// Body-Loop-Instruction share: desired instructions / all instructions.
    pub bli: f64,
}

impl BenchRun {
    /// Build from a measurement, computing BLI for the given "desired"
    /// instruction events.
    pub(crate) fn new(name: &'static str, m: Measurement, desired: &[Event]) -> BenchRun {
        let instr = m.pmu.get(Event::Instructions);
        let want: u64 = desired.iter().map(|&e| m.pmu.get(e)).sum();
        let bli = if instr == 0 {
            0.0
        } else {
            want as f64 / instr as f64
        };
        BenchRun {
            name,
            measurement: m,
            bli,
        }
    }

    /// Instructions per cycle in the window.
    pub fn ipc(&self) -> f64 {
        self.measurement.pmu.ipc()
    }
}

/// Build a machine configured for micro-benchmarking.
pub fn bench_cpu(arch: ArchConfig, cfg: &RunConfig) -> Cpu {
    let mut cpu = Cpu::new(arch);
    cpu.set_governor(false);
    cpu.set_prefetch(cfg.prefetch);
    cpu.set_pstate(cfg.pstate);
    cpu
}

/// Default working-set size for L1D-resident benchmarks on `arch` (the paper
/// uses 31 KB on the 32 KB i7-4790 L1D; scaled for the 16 KB ARM L1D).
pub fn l1d_smem(arch: &ArchConfig) -> u64 {
    match arch.kind {
        ArchKind::X86 => 31 * 1024,
        ArchKind::Arm => 15 * 1024,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_paper_trunk() {
        let c = RunConfig::default();
        assert_eq!(c.pstate, PState::P36);
        assert!(!c.prefetch);
        assert!(c.warmup >= 1);
    }

    #[test]
    fn bench_cpu_honours_config() {
        let cfg = RunConfig::at(PState::P12);
        let cpu = bench_cpu(ArchConfig::intel_i7_4790(), &cfg);
        assert_eq!(cpu.pstate(), PState::P12);
    }

    #[test]
    fn l1d_smem_fits_l1d() {
        let x86 = ArchConfig::intel_i7_4790();
        let arm = ArchConfig::arm1176jzf_s();
        assert!(l1d_smem(&x86) <= x86.l1d.size);
        assert!(l1d_smem(&arm) <= arm.l1d.size);
    }
}
