//! The verification micro-benchmark set `VMBS` (§2.5.5, Table 3).
//!
//! Each benchmark mixes data movement with known quantities of `add`/`nop`
//! work so it shows a "clear and complex" performance behaviour. The analysis
//! layer estimates its Active energy from the solved `ΔEm` and compares
//! against the measured value to produce the accuracy score `acc(v)`.

use crate::framework::{ArrayBuf, ListChain, ITEM};
use crate::mbs::{L2_SMEM, L3_SMEM, MEM_SMEM};
use crate::runner::{l1d_smem, BenchRun, RunConfig};
use simcore::{ArchKind, Cpu, Dep, Event, ExecOp};

/// Identifier for one benchmark in `VMBS` (Table 3 order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyBenchId {
    /// L1D pointer chase with nops between loads.
    L1dListNop,
    /// L1D array scan with adds between loads.
    L1dArrayAdd,
    /// L2-resident chase with nops.
    L2Nop,
    /// L3-resident chase with adds.
    L3Add,
    /// DRAM-resident chase with nops.
    MemNop,
    /// Interleaved chases over an L1D-resident and an L2-resident chain.
    L1dListL2,
    /// L1D chase with both a nop and an add per item.
    L1dListNopAdd,
}

impl VerifyBenchId {
    /// The benchmark's paper name.
    pub fn name(self) -> &'static str {
        match self {
            VerifyBenchId::L1dListNop => "B_L1D_list_nop",
            VerifyBenchId::L1dArrayAdd => "B_L1D_array_add",
            VerifyBenchId::L2Nop => "B_L2_nop",
            VerifyBenchId::L3Add => "B_L3_add",
            VerifyBenchId::MemNop => "B_mem_nop",
            VerifyBenchId::L1dListL2 => "B_L1D_list_L2",
            VerifyBenchId::L1dListNopAdd => "B_L1D_list_nop_add",
        }
    }

    /// The full set, in Table 3 order.
    pub const SET: [VerifyBenchId; 7] = [
        VerifyBenchId::L1dListNop,
        VerifyBenchId::L1dArrayAdd,
        VerifyBenchId::L2Nop,
        VerifyBenchId::L3Add,
        VerifyBenchId::MemNop,
        VerifyBenchId::L1dListL2,
        VerifyBenchId::L1dListNopAdd,
    ];

    /// Which verification benchmarks exist on `kind`.
    pub fn applicable(self, kind: ArchKind) -> bool {
        match self {
            VerifyBenchId::L2Nop | VerifyBenchId::L3Add | VerifyBenchId::L1dListL2 => {
                kind == ArchKind::X86
            }
            _ => true,
        }
    }

    /// Run the verification benchmark (allocates, warms, measures).
    pub fn run(self, cpu: &mut Cpu, cfg: &RunConfig) -> BenchRun {
        assert!(self.applicable(cpu.arch().kind));
        cpu.set_pstate(cfg.pstate);
        cpu.set_prefetch(cfg.prefetch);
        let rounds = |items: u64| cfg.target_ops.div_ceil(items).max(1);
        let l1_smem = l1d_smem(cpu.arch());

        let chase_mix = |cpu: &mut Cpu, smem: u64, espan: Option<u64>, ops: &'static [ExecOp]| {
            let chain = match espan {
                None => ListChain::sequential(cpu, smem).expect("alloc"),
                Some(e) => ListChain::permuted(cpu, smem, e, 0xbeef).expect("alloc"),
            };
            chain.traverse(cpu, cfg.warmup).expect("warmup");
            let passes = rounds(chain.items);
            cpu.measure(|c| {
                let mut ptr = chain.head;
                for _ in 0..passes {
                    let mut work = |c: &mut Cpu| {
                        for &op in ops {
                            c.exec(op);
                        }
                    };
                    ptr = chain.traverse_pass(c, ptr, &mut work).expect("traverse");
                }
            })
        };

        let m = match self {
            VerifyBenchId::L1dListNop => chase_mix(cpu, l1_smem, None, &[ExecOp::Nop, ExecOp::Nop]),
            VerifyBenchId::L1dListNopAdd => {
                chase_mix(cpu, l1_smem, None, &[ExecOp::Nop, ExecOp::Add])
            }
            VerifyBenchId::L2Nop => {
                let items = L2_SMEM / ITEM;
                chase_mix(cpu, L2_SMEM, Some(items / 8), &[ExecOp::Nop, ExecOp::Nop])
            }
            VerifyBenchId::L3Add => {
                let items = L3_SMEM / ITEM;
                chase_mix(cpu, L3_SMEM, Some(items / 8), &[ExecOp::Add, ExecOp::Add])
            }
            VerifyBenchId::MemNop => {
                let items = MEM_SMEM / ITEM;
                chase_mix(
                    cpu,
                    MEM_SMEM,
                    Some(items / 8),
                    &[ExecOp::Nop, ExecOp::Nop, ExecOp::Nop, ExecOp::Nop],
                )
            }
            VerifyBenchId::L1dArrayAdd => {
                let arr = ArrayBuf::new(cpu, l1_smem).expect("alloc");
                arr.traverse(cpu, cfg.warmup);
                let passes = rounds(arr.items);
                cpu.measure(|c| {
                    let mut work = |c: &mut Cpu| {
                        c.exec(ExecOp::Add);
                        c.exec(ExecOp::Add);
                    };
                    for _ in 0..passes {
                        arr.traverse_pass(c, &mut work);
                    }
                })
            }
            VerifyBenchId::L1dListL2 => {
                // Two chains: a small one resident in L1D, a large one that
                // always misses to L2. Alternate one step on each.
                let small = ListChain::sequential(cpu, 8 * 1024).expect("alloc small");
                let big_smem: u64 = 200 * 1024;
                let big_items = big_smem / ITEM;
                let big =
                    ListChain::permuted(cpu, big_smem, big_items / 8, 0xcafe).expect("alloc big");
                small.traverse(cpu, cfg.warmup).expect("warm small");
                big.traverse(cpu, cfg.warmup).expect("warm big");
                let passes = rounds(big.items);
                cpu.measure(|c| {
                    let mut ps = small.head;
                    let mut pb = big.head;
                    for _ in 0..passes {
                        for _ in 0..big.items {
                            ps = c.read_u64(ps, Dep::Chase).expect("small");
                            pb = c.read_u64(pb, Dep::Chase).expect("big");
                        }
                        c.exec(ExecOp::Add);
                        c.exec(ExecOp::Branch);
                    }
                })
            }
        };
        BenchRun::new(self.name(), m, &[Event::LoadIssued])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::bench_cpu;
    use simcore::ArchConfig;

    fn run(id: VerifyBenchId) -> BenchRun {
        let cfg = RunConfig::quick();
        let mut cpu = bench_cpu(ArchConfig::intel_i7_4790(), &cfg);
        id.run(&mut cpu, &cfg)
    }

    #[test]
    fn list_nop_mixes_loads_and_nops_one_to_two() {
        let r = run(VerifyBenchId::L1dListNop);
        let loads = r.measurement.pmu.get(Event::LoadIssued);
        let nops = r.measurement.pmu.get(Event::NopOps);
        assert!(loads > 0);
        let ratio = nops as f64 / loads as f64;
        assert!((ratio - 2.0).abs() < 0.05, "nop/load ratio {ratio}");
    }

    #[test]
    fn nops_shrink_stall_relative_to_pure_list() {
        let cfg = RunConfig::quick();
        let mut c1 = bench_cpu(ArchConfig::intel_i7_4790(), &cfg);
        let pure = crate::mbs::MicroBenchId::L1dList.run(&mut c1, &cfg);
        let mixed = run(VerifyBenchId::L1dListNop);
        let stall_per_load = |r: &BenchRun| {
            r.measurement.pmu.get(Event::StallCycles) as f64
                / r.measurement.pmu.get(Event::LoadIssued) as f64
        };
        assert!(
            stall_per_load(&mixed) < stall_per_load(&pure),
            "filled shadow should reduce stall: {} !< {}",
            stall_per_load(&mixed),
            stall_per_load(&pure)
        );
    }

    #[test]
    fn l1d_list_l2_splits_hits_between_levels() {
        let r = run(VerifyBenchId::L1dListL2);
        let miss = r.measurement.pmu.l1d_miss_rate().unwrap();
        assert!(
            miss > 0.40 && miss < 0.60,
            "expected ~half L1D misses, got {miss}"
        );
        assert!(r.measurement.pmu.l2_miss_rate().unwrap() < 0.05);
    }

    #[test]
    fn mem_nop_still_reaches_dram() {
        let r = run(VerifyBenchId::MemNop);
        assert!(r.measurement.pmu.l3_miss_rate().unwrap() > 0.95);
        assert!(r.measurement.pmu.get(Event::NopOps) > 0);
    }

    #[test]
    fn every_vmbs_bench_runs_on_x86() {
        for id in VerifyBenchId::SET {
            let r = run(id);
            assert!(
                r.measurement.rapl.package_j > 0.0,
                "{} consumed no energy",
                id.name()
            );
        }
    }
}
