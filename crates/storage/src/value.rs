//! Typed values.

use std::cmp::Ordering;
use std::fmt;

/// A single column value.
///
/// The subset TPC-H needs: 64-bit integers (keys, quantities), floats
/// (prices, discounts), short strings (names, flags, comments), and dates
/// (days since 1970-01-01, which keeps date arithmetic integral).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Days since the epoch.
    Date(i32),
    /// SQL NULL.
    Null,
}

impl Value {
    /// Integer view (dates coerce; floats truncate). `None` for other types.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Date(v) => Some(*v as i64),
            Value::Float(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// Float view (ints/dates coerce).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            Value::Date(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL three-valued comparison: `None` when either side is NULL or the
    /// types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_float()?, b.as_float()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// A stable 64-bit hash (FxHash-style) for hash joins and group-by.
    pub fn hash64(&self) -> u64 {
        const K: u64 = 0x517c_c1b7_2722_0a95;
        fn mix(h: u64, w: u64) -> u64 {
            (h.rotate_left(5) ^ w).wrapping_mul(K)
        }
        match self {
            Value::Int(v) => mix(1, *v as u64),
            Value::Date(v) => mix(2, *v as u64),
            Value::Float(v) => mix(3, v.to_bits()),
            Value::Null => mix(4, 0),
            Value::Str(s) => {
                let mut h = mix(5, s.len() as u64);
                for chunk in s.as_bytes().chunks(8) {
                    let mut w = [0u8; 8];
                    w[..chunk.len()].copy_from_slice(chunk);
                    h = mix(h, u64::from_le_bytes(w));
                }
                h
            }
        }
    }

    /// Equality for grouping: NULLs group together (SQL GROUP BY semantics),
    /// unlike `sql_cmp`.
    pub fn group_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Null, _) | (_, Value::Null) => false,
            _ => self.sql_cmp(other) == Some(Ordering::Equal),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v:.4}"),
            Value::Str(s) => f.write_str(s),
            Value::Date(d) => write!(f, "@{d}"),
            Value::Null => f.write_str("NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).sql_cmp(&Value::Int(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn null_compares_as_none_but_groups_with_null() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert!(Value::Null.group_eq(&Value::Null));
        assert!(!Value::Null.group_eq(&Value::Int(0)));
    }

    #[test]
    fn strings_compare_lexicographically() {
        assert_eq!(
            Value::Str("apple".into()).sql_cmp(&Value::Str("banana".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn int_and_string_are_incomparable() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Str("1".into())), None);
    }

    #[test]
    fn accessor_views_reject_wrong_types() {
        assert_eq!(Value::Str("5".into()).as_int(), None);
        assert_eq!(Value::Null.as_float(), None);
        assert_eq!(Value::Int(5).as_str(), None);
        assert_eq!(Value::Date(10).as_int(), Some(10));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
    }

    #[test]
    fn display_formats_every_variant() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Str("x".into()).to_string(), "x");
        assert_eq!(Value::Date(7).to_string(), "@7");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert!(Value::Float(1.5).to_string().starts_with("1.5"));
    }

    #[test]
    fn empty_string_and_null_hash_differently() {
        assert_ne!(Value::Str(String::new()).hash64(), Value::Null.hash64());
    }

    #[test]
    fn nan_float_compares_as_incomparable() {
        assert_eq!(Value::Float(f64::NAN).sql_cmp(&Value::Float(1.0)), None);
    }

    #[test]
    fn hash_is_stable_and_spreads() {
        assert_eq!(Value::Int(42).hash64(), Value::Int(42).hash64());
        assert_ne!(Value::Int(42).hash64(), Value::Int(43).hash64());
        assert_ne!(
            Value::Str("a".into()).hash64(),
            Value::Str("b".into()).hash64()
        );
        // Int and Date with the same payload must not collide by type.
        assert_ne!(Value::Int(7).hash64(), Value::Date(7).hash64());
    }
}
