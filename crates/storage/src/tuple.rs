//! Row codec: schema-driven binary encoding of tuples.
//!
//! Layout, per column in schema order:
//! * `Int`   — 1 tag byte + 8 bytes LE (tag 0 = value, 1 = NULL),
//! * `Float` — 1 tag byte + 8 bytes LE bits,
//! * `Date`  — 1 tag byte + 4 bytes LE,
//! * `Str`   — 1 tag byte + 2-byte length + bytes.
//!
//! Decoding borrows from the arena; the caller simulates the loads.

use crate::schema::{Schema, Ty};
use crate::value::Value;
use crate::{Result, StorageError};

/// An owned, decoded row.
pub type Row = Vec<Value>;

const TAG_VAL: u8 = 0;
const TAG_NULL: u8 = 1;

/// Encode `row` against `schema` into `out` (cleared first). Errors if the
/// row does not match the schema or a string exceeds 64 KiB.
pub fn encode_row(schema: &Schema, row: &[Value], out: &mut Vec<u8>) -> Result<()> {
    schema.check(row)?;
    out.clear();
    for (col, v) in schema.columns.iter().zip(row) {
        if matches!(v, Value::Null) {
            out.push(TAG_NULL);
            // Fixed-width columns keep their width so offsets stay simple.
            match col.ty {
                Ty::Int | Ty::Float => out.extend_from_slice(&[0; 8]),
                Ty::Date => out.extend_from_slice(&[0; 4]),
                Ty::Str => out.extend_from_slice(&[0; 2]),
            }
            continue;
        }
        out.push(TAG_VAL);
        match (col.ty, v) {
            (Ty::Int, Value::Int(x)) => out.extend_from_slice(&x.to_le_bytes()),
            (Ty::Float, Value::Float(x)) => out.extend_from_slice(&x.to_le_bytes()),
            (Ty::Date, Value::Date(x)) => out.extend_from_slice(&x.to_le_bytes()),
            (Ty::Str, Value::Str(s)) => {
                let len = u16::try_from(s.len())
                    .map_err(|_| StorageError::Schema("string exceeds 64KiB"))?;
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            _ => return Err(StorageError::Schema("value/type mismatch")),
        }
    }
    Ok(())
}

/// Decode a row encoded by [`encode_row`].
pub fn decode_row(schema: &Schema, bytes: &[u8]) -> Result<Row> {
    let mut row = Row::with_capacity(schema.arity());
    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Result<&[u8]> {
        let s = bytes
            .get(*off..*off + n)
            .ok_or(StorageError::Corrupt("tuple truncated"))?;
        *off += n;
        Ok(s)
    };
    for col in &schema.columns {
        let tag = take(&mut off, 1)?[0];
        let null = match tag {
            TAG_VAL => false,
            TAG_NULL => true,
            _ => return Err(StorageError::Corrupt("bad tuple tag")),
        };
        let v = match col.ty {
            Ty::Int => {
                let b: [u8; 8] = take(&mut off, 8)?.try_into().expect("fixed width");
                if null {
                    Value::Null
                } else {
                    Value::Int(i64::from_le_bytes(b))
                }
            }
            Ty::Float => {
                let b: [u8; 8] = take(&mut off, 8)?.try_into().expect("fixed width");
                if null {
                    Value::Null
                } else {
                    Value::Float(f64::from_le_bytes(b))
                }
            }
            Ty::Date => {
                let b: [u8; 4] = take(&mut off, 4)?.try_into().expect("fixed width");
                if null {
                    Value::Null
                } else {
                    Value::Date(i32::from_le_bytes(b))
                }
            }
            Ty::Str => {
                let b: [u8; 2] = take(&mut off, 2)?.try_into().expect("fixed width");
                let len = u16::from_le_bytes(b) as usize;
                let s = take(&mut off, if null { 0 } else { len })?;
                if null {
                    Value::Null
                } else {
                    Value::Str(
                        std::str::from_utf8(s)
                            .map_err(|_| StorageError::Corrupt("non-utf8 string"))?
                            .to_owned(),
                    )
                }
            }
        };
        row.push(v);
    }
    if off != bytes.len() {
        return Err(StorageError::Corrupt("trailing bytes after tuple"));
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new([
            ("k", Ty::Int),
            ("p", Ty::Float),
            ("n", Ty::Str),
            ("d", Ty::Date),
        ])
    }

    fn roundtrip(row: Row) {
        let s = schema();
        let mut buf = Vec::new();
        encode_row(&s, &row, &mut buf).unwrap();
        assert_eq!(decode_row(&s, &buf).unwrap(), row);
    }

    #[test]
    fn roundtrip_plain() {
        roundtrip(vec![
            Value::Int(-5),
            Value::Float(1.25),
            Value::Str("héllo".into()),
            Value::Date(19000),
        ]);
    }

    #[test]
    fn roundtrip_nulls_everywhere() {
        roundtrip(vec![Value::Null, Value::Null, Value::Null, Value::Null]);
    }

    #[test]
    fn roundtrip_empty_string() {
        roundtrip(vec![
            Value::Int(0),
            Value::Float(0.0),
            Value::Str(String::new()),
            Value::Date(0),
        ]);
    }

    #[test]
    fn truncated_bytes_error() {
        let s = schema();
        let mut buf = Vec::new();
        encode_row(
            &s,
            &[
                Value::Int(1),
                Value::Float(2.0),
                Value::Str("abc".into()),
                Value::Date(3),
            ],
            &mut buf,
        )
        .unwrap();
        buf.pop();
        assert!(decode_row(&s, &buf).is_err());
    }

    #[test]
    fn trailing_bytes_error() {
        let s = schema();
        let mut buf = Vec::new();
        encode_row(
            &s,
            &[
                Value::Int(1),
                Value::Float(2.0),
                Value::Str("abc".into()),
                Value::Date(3),
            ],
            &mut buf,
        )
        .unwrap();
        buf.push(0);
        assert!(decode_row(&s, &buf).is_err());
    }

    #[test]
    fn wrong_value_type_rejected_at_encode() {
        let s = schema();
        let mut buf = Vec::new();
        let bad = vec![
            Value::Str("not an int".into()),
            Value::Float(0.0),
            Value::Str("x".into()),
            Value::Date(0),
        ];
        assert!(encode_row(&s, &bad, &mut buf).is_err());
    }
}
