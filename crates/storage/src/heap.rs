//! Heap files: unordered tuple storage over a page list.

use crate::buffer::{PageAccess, PageStore};
use crate::page::PageId;
use simcore::{Cpu, Dep};

/// A heap file: the ordered list of pages holding a table's tuples.
#[derive(Debug, Clone, Default)]
pub struct HeapFile {
    pages: Vec<PageId>,
    n_tuples: u64,
}

/// Position of a tuple: `(page, slot)`.
pub type TupleId = (PageId, u16);

impl HeapFile {
    /// Empty heap.
    pub fn new() -> HeapFile {
        HeapFile::default()
    }

    /// Number of tuples inserted.
    pub fn len(&self) -> u64 {
        self.n_tuples
    }

    /// Whether the heap holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.n_tuples == 0
    }

    /// Pages backing the heap.
    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    /// Page id at position `idx` in heap order.
    pub fn page_id(&self, idx: usize) -> PageId {
        self.pages[idx]
    }

    /// Insert an encoded tuple, growing the page list as needed.
    pub fn insert(
        &mut self,
        cpu: &mut Cpu,
        store: &mut PageStore,
        pool: &mut impl PageAccess,
        bytes: &[u8],
    ) -> crate::Result<TupleId> {
        if let Some(&last) = self.pages.last() {
            let page = pool.access(cpu, store, last);
            if let Some(slot) = page.insert(cpu, bytes)? {
                self.n_tuples += 1;
                return Ok((last, slot));
            }
        }
        let id = store.alloc_page(cpu)?;
        self.pages.push(id);
        let page = pool.access(cpu, store, id);
        let slot = page
            .insert(cpu, bytes)?
            .expect("fresh page must accept a tuple that fits a page");
        self.n_tuples += 1;
        Ok((id, slot))
    }

    /// Unsimulated full iteration (index builds): calls `f(tid, bytes)` for
    /// every tuple in heap order.
    pub fn for_each_unsimulated<F: FnMut(TupleId, &[u8])>(
        &self,
        arena: &simcore::Arena,
        store: &PageStore,
        mut f: F,
    ) -> crate::Result<()> {
        for &pid in &self.pages {
            let page = store.page(pid);
            let n = page.n_slots_unsimulated(arena)?;
            for slot in 0..n {
                f((pid, slot), page.read_tuple_unsimulated(arena, slot)?);
            }
        }
        Ok(())
    }

    /// Unsimulated insert for bulk data loading (setup, not workload).
    pub fn bulk_insert(
        &mut self,
        cpu: &mut Cpu,
        store: &mut PageStore,
        bytes: &[u8],
    ) -> crate::Result<TupleId> {
        if let Some(&last) = self.pages.last() {
            let page = store.page(last);
            if let Some(slot) = page.insert_unsimulated(cpu.arena_mut(), bytes)? {
                self.n_tuples += 1;
                return Ok((last, slot));
            }
        }
        let id = store.alloc_page(cpu)?;
        self.pages.push(id);
        let page = store.page(id);
        let slot = page
            .insert_unsimulated(cpu.arena_mut(), bytes)?
            .expect("fresh page must accept a tuple that fits a page");
        self.n_tuples += 1;
        Ok((id, slot))
    }

    /// Cursor positioned before the first tuple.
    pub fn cursor(&self) -> HeapCursor {
        HeapCursor {
            page_idx: 0,
            slot: 0,
            page_slots: None,
        }
    }

    /// Read one tuple by id (simulating the page + tuple accesses with the
    /// given dependency class — index lookups pass [`Dep::Chase`]).
    pub fn fetch<'a>(
        &self,
        cpu: &'a mut Cpu,
        store: &PageStore,
        pool: &mut impl PageAccess,
        tid: TupleId,
        dep: Dep,
    ) -> crate::Result<&'a [u8]> {
        let page = pool.access(cpu, store, tid.0);
        page.read_tuple(cpu, tid.1, dep)
    }
}

/// Pull-based sequential scan state.
#[derive(Debug, Clone)]
pub struct HeapCursor {
    page_idx: usize,
    slot: u16,
    page_slots: Option<u16>,
}

impl HeapCursor {
    /// Advance to the next tuple; returns its id, or `None` at end.
    ///
    /// Sequential scans stream: page headers and tuples are loaded with
    /// [`Dep::Stream`], which is exactly why table scans concentrate energy
    /// in L1D (§3.2). Header reads and the per-tuple touches in
    /// [`crate::page`] all route through `Cpu::access_run`, so a warm page
    /// scan is simulated on the batched L1D-hit fast path with counters
    /// identical to per-line loads.
    pub fn next(
        &mut self,
        cpu: &mut Cpu,
        heap: &HeapFile,
        store: &PageStore,
        pool: &mut impl PageAccess,
    ) -> crate::Result<Option<TupleId>> {
        loop {
            let Some(&pid) = heap.pages.get(self.page_idx) else {
                return Ok(None);
            };
            let page = pool.access(cpu, store, pid);
            let n = match self.page_slots {
                Some(n) => n,
                None => {
                    let n = page.n_slots(cpu, Dep::Stream)?;
                    self.page_slots = Some(n);
                    n
                }
            };
            if self.slot < n {
                let s = self.slot;
                self.slot += 1;
                return Ok(Some((pid, s)));
            }
            self.page_idx += 1;
            self.slot = 0;
            self.page_slots = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use simcore::ArchConfig;

    fn setup() -> (Cpu, PageStore, BufferPool) {
        let cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let store = PageStore::new(4096);
        let pool = BufferPool::new(64 * 4096, 4096);
        (cpu, store, pool)
    }

    #[test]
    fn insert_then_scan_in_order() {
        let (mut cpu, mut store, mut pool) = setup();
        let mut heap = HeapFile::new();
        for i in 0..500u64 {
            let bytes = i.to_le_bytes();
            heap.insert(&mut cpu, &mut store, &mut pool, &bytes)
                .unwrap();
        }
        assert_eq!(heap.len(), 500);
        assert!(heap.n_pages() > 1);

        let mut cur = heap.cursor();
        let mut seen = Vec::new();
        while let Some(tid) = cur.next(&mut cpu, &heap, &store, &mut pool).unwrap() {
            let b = heap
                .fetch(&mut cpu, &store, &mut pool, tid, Dep::Stream)
                .unwrap();
            seen.push(u64::from_le_bytes(b.try_into().unwrap()));
        }
        assert_eq!(seen, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn fetch_by_tid_random_access() {
        let (mut cpu, mut store, mut pool) = setup();
        let mut heap = HeapFile::new();
        let mut tids = Vec::new();
        for i in 0..100u64 {
            tids.push(
                heap.insert(&mut cpu, &mut store, &mut pool, &i.to_le_bytes())
                    .unwrap(),
            );
        }
        let b = heap
            .fetch(&mut cpu, &store, &mut pool, tids[57], Dep::Chase)
            .unwrap();
        assert_eq!(u64::from_le_bytes(b.try_into().unwrap()), 57);
    }

    #[test]
    fn empty_heap_scans_nothing() {
        let (mut cpu, store, mut pool) = setup();
        let heap = HeapFile::new();
        let mut cur = heap.cursor();
        assert!(cur
            .next(&mut cpu, &heap, &store, &mut pool)
            .unwrap()
            .is_none());
        assert!(heap.is_empty());
    }
}
