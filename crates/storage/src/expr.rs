//! Expressions and aggregates over decoded rows.
//!
//! Evaluation charges execution-unit work on the simulated CPU: comparisons
//! branch, arithmetic adds/multiplies, dispatch costs a generic op. This is
//! where the engines' "calculation" energy (part of `E_other`) comes from.

use crate::tuple::Row;
use crate::value::Value;
use simcore::{Cpu, ExecOp};
use std::cmp::Ordering;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A scalar expression tree.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Column reference by index.
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Comparison → Int(0/1) or Null.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical and (NULL-propagating).
    And(Box<Expr>, Box<Expr>),
    /// Logical or.
    Or(Box<Expr>, Box<Expr>),
    /// Logical not.
    Not(Box<Expr>),
    /// Arithmetic.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Substring containment (`LIKE '%pat%'`).
    Contains(Box<Expr>, String),
    /// String prefix (`LIKE 'pat%'`).
    StartsWith(Box<Expr>, String),
    /// `expr BETWEEN lo AND hi` (inclusive).
    Between(Box<Expr>, Value, Value),
    /// `expr IN (v, ...)`.
    InList(Box<Expr>, Vec<Value>),
}

impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }
    /// Integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Value::Int(v))
    }
    /// Float literal.
    pub fn float(v: f64) -> Expr {
        Expr::Lit(Value::Float(v))
    }
    /// Comparison.
    pub fn cmp(op: CmpOp, l: Expr, r: Expr) -> Expr {
        Expr::Cmp(op, Box::new(l), Box::new(r))
    }
    /// Conjunction of a list (must be non-empty).
    pub fn and_all<I: IntoIterator<Item = Expr>>(parts: I) -> Expr {
        let mut it = parts.into_iter();
        let first = it.next().expect("and_all needs at least one term");
        it.fold(first, |acc, e| Expr::And(Box::new(acc), Box::new(e)))
    }

    /// Evaluate against a row, charging simulated execution work.
    pub fn eval(&self, cpu: &mut Cpu, row: &Row) -> Value {
        match self {
            Expr::Col(i) => {
                cpu.exec(ExecOp::Generic);
                row.get(*i).cloned().unwrap_or(Value::Null)
            }
            Expr::Lit(v) => v.clone(),
            Expr::Cmp(op, l, r) => {
                let (a, b) = (l.eval(cpu, row), r.eval(cpu, row));
                cpu.exec(ExecOp::Branch);
                match a.sql_cmp(&b) {
                    Some(ord) => Value::Int(op.test(ord) as i64),
                    None => Value::Null,
                }
            }
            Expr::And(l, r) => {
                let a = l.eval(cpu, row);
                cpu.exec(ExecOp::Branch);
                // Short-circuit false.
                if a == Value::Int(0) {
                    return Value::Int(0);
                }
                let b = r.eval(cpu, row);
                match (truth(&a), truth(&b)) {
                    (Some(false), _) | (_, Some(false)) => Value::Int(0),
                    (Some(true), Some(true)) => Value::Int(1),
                    _ => Value::Null,
                }
            }
            Expr::Or(l, r) => {
                let a = l.eval(cpu, row);
                cpu.exec(ExecOp::Branch);
                if a == Value::Int(1) {
                    return Value::Int(1);
                }
                let b = r.eval(cpu, row);
                match (truth(&a), truth(&b)) {
                    (Some(true), _) | (_, Some(true)) => Value::Int(1),
                    (Some(false), Some(false)) => Value::Int(0),
                    _ => Value::Null,
                }
            }
            Expr::Not(e) => {
                cpu.exec(ExecOp::Branch);
                match truth(&e.eval(cpu, row)) {
                    Some(b) => Value::Int(!b as i64),
                    None => Value::Null,
                }
            }
            Expr::Bin(op, l, r) => {
                let (a, b) = (l.eval(cpu, row), r.eval(cpu, row));
                match op {
                    BinOp::Add | BinOp::Sub => cpu.exec(ExecOp::Add),
                    BinOp::Mul | BinOp::Div => cpu.exec(ExecOp::Mul),
                }
                bin_arith(*op, &a, &b)
            }
            Expr::Contains(e, pat) => {
                let v = e.eval(cpu, row);
                match v.as_str() {
                    Some(s) => {
                        // A find loop: one branch per scanned byte.
                        cpu.exec_n(ExecOp::Branch, s.len().max(1) as u64);
                        Value::Int(s.contains(pat.as_str()) as i64)
                    }
                    None => Value::Null,
                }
            }
            Expr::StartsWith(e, pat) => {
                let v = e.eval(cpu, row);
                match v.as_str() {
                    Some(s) => {
                        cpu.exec_n(ExecOp::Branch, pat.len().max(1) as u64);
                        Value::Int(s.starts_with(pat.as_str()) as i64)
                    }
                    None => Value::Null,
                }
            }
            Expr::Between(e, lo, hi) => {
                let v = e.eval(cpu, row);
                cpu.exec_n(ExecOp::Branch, 2);
                match (v.sql_cmp(lo), v.sql_cmp(hi)) {
                    (Some(a), Some(b)) => {
                        Value::Int((a != Ordering::Less && b != Ordering::Greater) as i64)
                    }
                    _ => Value::Null,
                }
            }
            Expr::InList(e, list) => {
                let v = e.eval(cpu, row);
                cpu.exec_n(ExecOp::Branch, list.len() as u64);
                if matches!(v, Value::Null) {
                    return Value::Null;
                }
                Value::Int(list.iter().any(|x| v.group_eq(x)) as i64)
            }
        }
    }

    /// Evaluate as a predicate: NULL counts as false (SQL WHERE semantics).
    pub fn matches(&self, cpu: &mut Cpu, row: &Row) -> bool {
        truth(&self.eval(cpu, row)).unwrap_or(false)
    }
}

fn truth(v: &Value) -> Option<bool> {
    match v {
        Value::Int(0) => Some(false),
        Value::Int(_) => Some(true),
        Value::Null => None,
        _ => Some(true),
    }
}

fn bin_arith(op: BinOp, a: &Value, b: &Value) -> Value {
    if matches!(a, Value::Null) || matches!(b, Value::Null) {
        return Value::Null;
    }
    if let (Value::Int(x), Value::Int(y)) = (a, b) {
        return match op {
            BinOp::Add => Value::Int(x.wrapping_add(*y)),
            BinOp::Sub => Value::Int(x.wrapping_sub(*y)),
            BinOp::Mul => Value::Int(x.wrapping_mul(*y)),
            BinOp::Div => {
                if *y == 0 {
                    Value::Null
                } else {
                    Value::Int(x / y)
                }
            }
        };
    }
    let (Some(x), Some(y)) = (a.as_float(), b.as_float()) else {
        return Value::Null;
    };
    match op {
        BinOp::Add => Value::Float(x + y),
        BinOp::Sub => Value::Float(x - y),
        BinOp::Mul => Value::Float(x * y),
        BinOp::Div => {
            if y == 0.0 {
                Value::Null
            } else {
                Value::Float(x / y)
            }
        }
    }
}

/// Aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// `COUNT(*)`
    CountStar,
    /// `COUNT(expr)` (non-NULL).
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

/// One aggregate in an aggregation's output.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// Which function.
    pub f: AggFn,
    /// The argument (ignored for `COUNT(*)`).
    pub arg: Option<Expr>,
}

impl AggSpec {
    /// `COUNT(*)`.
    pub fn count_star() -> AggSpec {
        AggSpec {
            f: AggFn::CountStar,
            arg: None,
        }
    }
    /// Aggregate over an expression.
    pub fn over(f: AggFn, e: Expr) -> AggSpec {
        AggSpec { f, arg: Some(e) }
    }
}

/// Running aggregate state.
#[derive(Debug, Clone)]
pub struct AggState {
    count: u64,
    sum: f64,
    int_sum: i64,
    int_only: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    /// Fresh state.
    pub fn new() -> AggState {
        AggState {
            count: 0,
            sum: 0.0,
            int_sum: 0,
            int_only: true,
            min: None,
            max: None,
        }
    }

    /// Fold one value in (charging an add on the CPU).
    pub fn update(&mut self, cpu: &mut Cpu, v: &Value) {
        cpu.exec(ExecOp::Add);
        if matches!(v, Value::Null) {
            return;
        }
        self.count += 1;
        if let Value::Int(x) = v {
            self.int_sum = self.int_sum.wrapping_add(*x);
        } else {
            self.int_only = false;
        }
        if let Some(f) = v.as_float() {
            self.sum += f;
        }
        let better_min = self
            .min
            .as_ref()
            .is_none_or(|m| v.sql_cmp(m) == Some(Ordering::Less));
        if better_min {
            self.min = Some(v.clone());
        }
        let better_max = self
            .max
            .as_ref()
            .is_none_or(|m| v.sql_cmp(m) == Some(Ordering::Greater));
        if better_max {
            self.max = Some(v.clone());
        }
    }

    /// Count-star update (no argument).
    pub fn bump(&mut self, cpu: &mut Cpu) {
        cpu.exec(ExecOp::Add);
        self.count += 1;
    }

    /// Finalise for a function.
    pub fn result(&self, f: AggFn) -> Value {
        match f {
            AggFn::CountStar | AggFn::Count => Value::Int(self.count as i64),
            AggFn::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.int_only {
                    Value::Int(self.int_sum)
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFn::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFn::Min => self.min.clone().unwrap_or(Value::Null),
            AggFn::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

impl Default for AggState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{ArchConfig, Cpu};

    fn cpu() -> Cpu {
        Cpu::new(ArchConfig::intel_i7_4790())
    }

    fn row() -> Row {
        vec![
            Value::Int(5),
            Value::Float(2.5),
            Value::Str("hello world".into()),
            Value::Null,
        ]
    }

    #[test]
    fn comparisons_and_logic() {
        let mut c = cpu();
        let r = row();
        let e = Expr::and_all([
            Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(3)),
            Expr::cmp(CmpOp::Le, Expr::col(1), Expr::float(2.5)),
        ]);
        assert!(e.matches(&mut c, &r));
        let e2 = Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::int(6));
        assert!(!e2.matches(&mut c, &r));
    }

    #[test]
    fn null_is_not_a_match() {
        let mut c = cpu();
        let r = row();
        let e = Expr::cmp(CmpOp::Eq, Expr::col(3), Expr::int(1));
        assert!(!e.matches(&mut c, &r));
        // NOT(NULL) is also not a match.
        assert!(!Expr::Not(Box::new(e)).matches(&mut c, &r));
    }

    #[test]
    fn arithmetic_types() {
        let mut c = cpu();
        let r = row();
        let e = Expr::Bin(BinOp::Mul, Box::new(Expr::col(0)), Box::new(Expr::int(4)));
        assert_eq!(e.eval(&mut c, &r), Value::Int(20));
        let f = Expr::Bin(BinOp::Add, Box::new(Expr::col(1)), Box::new(Expr::int(1)));
        assert_eq!(f.eval(&mut c, &r), Value::Float(3.5));
        let div0 = Expr::Bin(BinOp::Div, Box::new(Expr::int(1)), Box::new(Expr::int(0)));
        assert_eq!(div0.eval(&mut c, &r), Value::Null);
    }

    #[test]
    fn string_predicates() {
        let mut c = cpu();
        let r = row();
        assert!(Expr::Contains(Box::new(Expr::col(2)), "lo wo".into()).matches(&mut c, &r));
        assert!(Expr::StartsWith(Box::new(Expr::col(2)), "hell".into()).matches(&mut c, &r));
        assert!(!Expr::StartsWith(Box::new(Expr::col(2)), "world".into()).matches(&mut c, &r));
    }

    #[test]
    fn between_and_in_list() {
        let mut c = cpu();
        let r = row();
        assert!(
            Expr::Between(Box::new(Expr::col(0)), Value::Int(5), Value::Int(9)).matches(&mut c, &r)
        );
        assert!(
            !Expr::Between(Box::new(Expr::col(0)), Value::Int(6), Value::Int(9))
                .matches(&mut c, &r)
        );
        assert!(
            Expr::InList(Box::new(Expr::col(0)), vec![Value::Int(1), Value::Int(5)])
                .matches(&mut c, &r)
        );
    }

    #[test]
    fn eval_charges_cpu_work() {
        let mut c = cpu();
        let r = row();
        let before = c.pmu_snapshot();
        let e = Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(3));
        e.matches(&mut c, &r);
        let d = c.pmu_snapshot().delta(&before);
        assert!(d.get(simcore::Event::BranchOps) >= 1);
        assert!(d.get(simcore::Event::GenericOps) >= 1);
    }

    #[test]
    fn aggregates() {
        let mut c = cpu();
        let mut st = AggState::new();
        for v in [Value::Int(3), Value::Int(5), Value::Null, Value::Int(-2)] {
            st.update(&mut c, &v);
        }
        assert_eq!(st.result(AggFn::Count), Value::Int(3));
        assert_eq!(st.result(AggFn::Sum), Value::Int(6));
        assert_eq!(st.result(AggFn::Min), Value::Int(-2));
        assert_eq!(st.result(AggFn::Max), Value::Int(5));
        assert_eq!(st.result(AggFn::Avg), Value::Float(2.0));
    }

    #[test]
    fn empty_aggregates() {
        let st = AggState::new();
        assert_eq!(st.result(AggFn::Count), Value::Int(0));
        assert_eq!(st.result(AggFn::Sum), Value::Null);
        assert_eq!(st.result(AggFn::Min), Value::Null);
    }

    #[test]
    fn mixed_sum_becomes_float() {
        let mut c = cpu();
        let mut st = AggState::new();
        st.update(&mut c, &Value::Int(1));
        st.update(&mut c, &Value::Float(0.5));
        assert_eq!(st.result(AggFn::Sum), Value::Float(1.5));
    }
}
