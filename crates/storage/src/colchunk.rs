//! Column chunks: the columnar image of a heap table for the vectorized
//! engine personality.
//!
//! A [`ColumnChunks`] is built from a heap file at attach time (unsimulated
//! setup, like index builds) and holds, per column, a fixed-width **value
//! lane** (8 bytes per row in the simulated arena) plus a **validity
//! bitmap** (1 bit per row). Batch operators read whole lane ranges with
//! [`crate::page::touch`]-style line runs — exactly the homogeneous
//! sequential runs `Cpu::access_run` batches — instead of the row engines'
//! per-tuple slot/header/tuple touches. That is the entire point of the
//! `vec` personality: same answers, different (columnar) access pattern.
//!
//! Host-side correctness keeps the decoded [`Value`]s alongside the
//! simulated lanes (the repo's simstruct idiom): the lane bytes determine
//! *which lines the engine touches*, the `values` vectors determine *what
//! the query answers are*. Strings are represented in the lane by their
//! stable `hash64` (a dictionary-code stand-in with the right width); the
//! host value is authoritative for comparisons and output.

use crate::heap::HeapFile;
use crate::page::{touch, touch_store};
use crate::schema::Schema;
use crate::tuple::decode_row;
use crate::value::Value;
use simcore::{Cpu, Dep, Region, LINE};

/// One column's lane: an 8-byte-per-row value vector plus a validity bitmap
/// in the simulated arena, and the decoded host values.
#[derive(Debug, Clone)]
pub struct ColumnVec {
    /// Fixed-width value lane (8 B per row).
    pub data: Region,
    /// Validity bitmap (1 bit per row, byte-packed).
    pub valid: Region,
    /// Host-side decoded values (correctness source of truth).
    values: Vec<Value>,
}

impl ColumnVec {
    /// The value at `row`.
    pub fn value(&self, row: usize) -> &Value {
        &self.values[row]
    }

    /// All host values, in row order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Simulate reading rows `[lo, hi)` of this column: one streaming line
    /// run over the value lane plus the covering bitmap bytes.
    pub fn touch_range(&self, cpu: &mut Cpu, lo: usize, hi: usize, dep: Dep) {
        if hi <= lo {
            return;
        }
        touch(
            cpu,
            self.data.addr + 8 * lo as u64,
            8 * (hi - lo) as u64,
            dep,
        );
        let blo = lo as u64 / 8;
        let bhi = (hi as u64).div_ceil(8);
        touch(cpu, self.valid.addr + blo, (bhi - blo).max(1), dep);
    }

    /// Simulate writing rows `[lo, hi)` of this column (materialization
    /// into an output vector).
    pub fn touch_range_store(&self, cpu: &mut Cpu, lo: usize, hi: usize) {
        if hi <= lo {
            return;
        }
        touch_store(cpu, self.data.addr + 8 * lo as u64, 8 * (hi - lo) as u64);
    }
}

/// The columnar image of one table: per-column lanes over a shared row
/// count, in heap order (dead tuples excluded).
#[derive(Debug, Clone)]
pub struct ColumnChunks {
    rows: usize,
    cols: Vec<ColumnVec>,
}

/// Lane encoding of a value: `(lane_word, valid)`. Fixed 8-byte words keep
/// every column the same width; strings use their stable hash as a
/// dictionary-code stand-in.
fn lane_word(v: &Value) -> (u64, bool) {
    match v {
        Value::Int(x) => (*x as u64, true),
        Value::Float(x) => (x.to_bits(), true),
        Value::Date(x) => (*x as i64 as u64, true),
        Value::Str(s) => (Value::Str(s.clone()).hash64(), true),
        Value::Null => (0, false),
    }
}

impl ColumnChunks {
    /// Build the columnar image of `heap` (unsimulated — attach-time setup,
    /// like an index build). Dead (tombstoned) tuples are skipped, so row
    /// order equals live heap order.
    pub fn build(
        cpu: &mut Cpu,
        heap: &HeapFile,
        store: &crate::buffer::PageStore,
        schema: &Schema,
    ) -> crate::Result<ColumnChunks> {
        let arity = schema.arity();
        let mut host: Vec<Vec<Value>> = vec![Vec::new(); arity];
        let mut decode_err = None;
        heap.for_each_unsimulated(cpu.arena(), store, |_tid, bytes| {
            // Tombstoned slots read back as empty; they are not rows.
            if bytes.is_empty() || decode_err.is_some() {
                return;
            }
            match decode_row(schema, bytes) {
                Ok(row) => {
                    for (c, v) in row.into_iter().enumerate() {
                        host[c].push(v);
                    }
                }
                Err(e) => decode_err = Some(e),
            }
        })?;
        if let Some(e) = decode_err {
            return Err(e);
        }
        let rows = host.first().map_or(0, Vec::len);

        let mut cols = Vec::with_capacity(arity);
        for values in host {
            let lane_bytes = (8 * rows as u64).max(LINE);
            let bitmap_bytes = (rows as u64).div_ceil(8).max(LINE);
            let data = cpu.alloc(lane_bytes)?;
            let valid = cpu.alloc(bitmap_bytes)?;
            let mut lanes = Vec::with_capacity(8 * rows);
            let mut bits = vec![0u8; bitmap_bytes as usize];
            for (i, v) in values.iter().enumerate() {
                let (w, ok) = lane_word(v);
                lanes.extend_from_slice(&w.to_le_bytes());
                if ok {
                    bits[i / 8] |= 1 << (i % 8);
                }
            }
            let a = cpu.arena_mut();
            if !lanes.is_empty() {
                a.write(data.addr, &lanes)?;
            }
            a.write(valid.addr, &bits)?;
            cols.push(ColumnVec {
                data,
                valid,
                values,
            });
        }
        Ok(ColumnChunks { rows, cols })
    }

    /// Row count (live tuples at build time).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Column `c`.
    pub fn col(&self, c: usize) -> &ColumnVec {
        &self.cols[c]
    }

    /// The value at `(col, row)`.
    pub fn value(&self, col: usize, row: usize) -> &Value {
        self.cols[col].value(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::PageStore;
    use crate::schema::{Schema, Ty};
    use crate::tuple::encode_row;
    use simcore::ArchConfig;

    fn build_heap(cpu: &mut Cpu, store: &mut PageStore, schema: &Schema, n: usize) -> HeapFile {
        let mut heap = HeapFile::new();
        let mut buf = Vec::new();
        for i in 0..n {
            let row = vec![
                Value::Int(i as i64),
                Value::Float(i as f64 + 0.5),
                if i % 5 == 0 {
                    Value::Null
                } else {
                    Value::Str(format!("s{i}"))
                },
            ];
            encode_row(schema, &row, &mut buf).unwrap();
            heap.bulk_insert(cpu, store, &buf).unwrap();
        }
        heap
    }

    #[test]
    fn build_round_trips_values_and_validity() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut store = PageStore::new(4096);
        let schema = Schema::new([("k", Ty::Int), ("p", Ty::Float), ("n", Ty::Str)]);
        let heap = build_heap(&mut cpu, &mut store, &schema, 300);
        let chunks = ColumnChunks::build(&mut cpu, &heap, &store, &schema).unwrap();
        assert_eq!(chunks.rows(), 300);
        assert_eq!(chunks.arity(), 3);
        assert_eq!(chunks.value(0, 7), &Value::Int(7));
        assert_eq!(chunks.value(1, 7), &Value::Float(7.5));
        assert_eq!(chunks.value(2, 0), &Value::Null);
        assert_eq!(chunks.value(2, 1), &Value::Str("s1".into()));
        // Lane bytes mirror the host values.
        let lane = cpu
            .arena()
            .bytes(chunks.col(0).data.addr + 8 * 7, 8)
            .unwrap();
        assert_eq!(u64::from_le_bytes(lane.try_into().unwrap()), 7);
        // Validity bitmap: row 0 of column 2 is NULL, row 1 is set.
        let bits = cpu.arena().bytes(chunks.col(2).valid.addr, 1).unwrap()[0];
        assert_eq!(bits & 1, 0);
        assert_eq!(bits & 2, 2);
    }

    #[test]
    fn touch_range_streams_the_lane_lines() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut store = PageStore::new(4096);
        let schema = Schema::new([("k", Ty::Int), ("p", Ty::Float), ("n", Ty::Str)]);
        let heap = build_heap(&mut cpu, &mut store, &schema, 1024);
        let chunks = ColumnChunks::build(&mut cpu, &heap, &store, &schema).unwrap();
        let before = cpu.pmu_snapshot();
        chunks.col(0).touch_range(&mut cpu, 0, 1024, Dep::Stream);
        let d = cpu.pmu_snapshot().delta(&before);
        // 1024 rows × 8 B = 8192 B = 128 lines, plus the bitmap lines.
        assert!(d.get(simcore::Event::LoadIssued) >= 128);
    }

    #[test]
    fn empty_heap_builds_empty_chunks() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let store = PageStore::new(4096);
        let schema = Schema::new([("k", Ty::Int)]);
        let heap = HeapFile::new();
        let chunks = ColumnChunks::build(&mut cpu, &heap, &store, &schema).unwrap();
        assert_eq!(chunks.rows(), 0);
        assert_eq!(chunks.arity(), 1);
    }
}
