#![warn(missing_docs)]

//! # storage — the database storage substrate
//!
//! Everything the engine personalities share: typed values and
//! schemas, a row codec, slotted pages over the simulated arena, a buffer
//! pool with eviction and simulated disk I/O, heap files, B+trees, a
//! catalog, and an expression/aggregate evaluator.
//!
//! Every data access in this crate is *simulated*: the line(s) a tuple or
//! node spans are touched through [`simcore::Cpu::load`]/`store` (with the
//! right dependency class — sequential scans stream, B-tree descents chase
//! pointers) before the bytes are decoded from the arena. That is what makes
//! the engines' energy profiles faithful: a SQLite-style sequential scan and
//! a PG-style hash join differ in exactly the loads/stores/ops they issue.

pub mod btree;
pub mod buffer;
pub mod catalog;
pub mod colchunk;
pub mod expr;
pub mod heap;
pub mod page;
pub mod schema;
pub mod simstruct;
pub mod tuple;
pub mod value;

pub use btree::BTree;
pub use buffer::{BufferPool, PageStore};
pub use catalog::{Catalog, TableId, TableInfo};
pub use colchunk::{ColumnChunks, ColumnVec};
pub use expr::{AggFn, AggSpec, BinOp, CmpOp, Expr};
pub use heap::HeapFile;
pub use page::PageId;
pub use schema::{Column, Schema, Ty};
pub use simstruct::{SimHashTable, SimSorter};
pub use tuple::{decode_row, encode_row, Row};
pub use value::Value;

/// Errors from the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Simulated memory error.
    Mem(simcore::MemError),
    /// A tuple was too large for a page.
    TupleTooLarge {
        /// Encoded tuple size in bytes.
        tuple: usize,
        /// Page payload capacity in bytes.
        page: usize,
    },
    /// Malformed on-page bytes.
    Corrupt(&'static str),
    /// Catalog lookup failure.
    NoSuchTable(String),
    /// Schema mismatch (wrong arity/type).
    Schema(&'static str),
    /// A session's scratch (temp) region was requested while already
    /// checked out — the would-be silent-aliasing hazard, surfaced as a
    /// typed error instead.
    ScratchBusy,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Mem(e) => write!(f, "memory: {e}"),
            StorageError::TupleTooLarge { tuple, page } => {
                write!(f, "tuple of {tuple} B cannot fit a {page} B page")
            }
            StorageError::Corrupt(what) => write!(f, "corrupt page data: {what}"),
            StorageError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            StorageError::Schema(what) => write!(f, "schema error: {what}"),
            StorageError::ScratchBusy => {
                write!(f, "session scratch region is already checked out")
            }
        }
    }
}

impl std::error::Error for StorageError {}

impl From<simcore::MemError> for StorageError {
    fn from(e: simcore::MemError) -> Self {
        StorageError::Mem(e)
    }
}

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, StorageError>;
