//! Table schemas.

use crate::value::Value;

/// Column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Variable-length string.
    Str,
    /// Days since epoch.
    Date,
}

impl Ty {
    /// Whether `v` inhabits this type (NULL inhabits every type).
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (Ty::Int, Value::Int(_))
                | (Ty::Float, Value::Float(_))
                | (Ty::Str, Value::Str(_))
                | (Ty::Date, Value::Date(_))
        )
    }
}

/// One column: name + type.
#[derive(Debug, Clone)]
pub struct Column {
    /// Column name (lower-case by convention).
    pub name: String,
    /// Column type.
    pub ty: Ty,
}

/// An ordered set of columns.
#[derive(Debug, Clone)]
pub struct Schema {
    /// The columns, in tuple order.
    pub columns: Vec<Column>,
}

impl Schema {
    /// Build from `(name, type)` pairs.
    pub fn new<S: Into<String>, I: IntoIterator<Item = (S, Ty)>>(cols: I) -> Schema {
        Schema {
            columns: cols
                .into_iter()
                .map(|(name, ty)| Column {
                    name: name.into(),
                    ty,
                })
                .collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn col(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Index of a column by name, panicking with a useful message if absent
    /// (used by the fixed, known-good workload plans).
    pub fn col_expect(&self, name: &str) -> usize {
        self.col(name)
            .unwrap_or_else(|| panic!("schema has no column `{name}`: {:?}", self.names()))
    }

    /// All column names.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Validate a row against the schema.
    pub fn check(&self, row: &[Value]) -> crate::Result<()> {
        if row.len() != self.arity() {
            return Err(crate::StorageError::Schema("arity mismatch"));
        }
        for (c, v) in self.columns.iter().zip(row) {
            if !c.ty.admits(v) {
                return Err(crate::StorageError::Schema("type mismatch"));
            }
        }
        Ok(())
    }

    /// Concatenate two schemas (join output).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Schema {
        Schema::new([("id", Ty::Int), ("name", Ty::Str), ("price", Ty::Float)])
    }

    #[test]
    fn lookup_by_name() {
        let s = s();
        assert_eq!(s.col("name"), Some(1));
        assert_eq!(s.col("missing"), None);
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn check_accepts_valid_and_nulls() {
        let s = s();
        s.check(&[Value::Int(1), Value::Str("x".into()), Value::Float(0.5)])
            .unwrap();
        s.check(&[Value::Int(1), Value::Null, Value::Null]).unwrap();
    }

    #[test]
    fn check_rejects_bad_arity_and_types() {
        let s = s();
        assert!(s.check(&[Value::Int(1)]).is_err());
        assert!(s
            .check(&[
                Value::Str("no".into()),
                Value::Str("x".into()),
                Value::Float(0.0)
            ])
            .is_err());
    }

    #[test]
    fn join_concatenates() {
        let j = s().join(&Schema::new([("other", Ty::Date)]));
        assert_eq!(j.arity(), 4);
        assert_eq!(j.col("other"), Some(3));
    }
}
