//! B+trees with integer keys and 64-bit payloads.
//!
//! Used as primary-key indexes (payload = heap tuple id) and secondary
//! indexes (payload = heap tuple id keyed by a non-PK column). SQLite-style
//! engines organise every table as a B-tree (§3.3); the DTCM proof of
//! concept pins the root and first layers of the current tables' B-trees in
//! TCM (§4.2).
//!
//! Node layout inside a page:
//!
//! ```text
//! header (8 B): [ is_leaf: u8 | pad | n: u16 | right_sibling: u32 (id+1, 0 = none) ]
//! leaf entry  (16 B each, from offset 8):  key: i64, payload: u64
//! internal    (from offset 8): child0: u32, then (key: i64, child: u32) pairs
//! ```
//!
//! Descents are pointer chases ([`Dep::Chase`]); within-leaf entry walks
//! stream. Duplicate keys are allowed (secondary indexes need them).

use crate::buffer::{PageAccess, PageStore};
use crate::page::{touch_store, PageId};
use simcore::{Cpu, Dep, ExecOp};

const HDR: u64 = 8;
const LEAF_ENTRY: u64 = 16;
const INT_PAIR: u64 = 12;

/// A B+tree rooted at a page.
#[derive(Debug, Clone)]
pub struct BTree {
    root: PageId,
    /// Distance from root to leaves (0 = root is a leaf).
    pub height: u32,
    /// Entries stored.
    pub len: u64,
}

fn leaf_cap(page_size: u32) -> u64 {
    (page_size as u64 - HDR) / LEAF_ENTRY
}

fn int_cap(page_size: u32) -> u64 {
    (page_size as u64 - HDR - 4) / INT_PAIR
}

// --- raw node accessors -----------------------------------------------

// Node accesses go through `Cpu::access_run` as single-line runs: identical
// counters to scalar loads/stores, but within-leaf entry walks (4 entries
// per line) and hot-node re-probes take the batched L1D-hit path.

fn read_header(cpu: &mut Cpu, addr: u64, dep: Dep) -> (bool, u16, Option<PageId>) {
    cpu.access_run(addr, 1, false, dep);
    let b = cpu.arena().bytes(addr, 8).expect("node header");
    let is_leaf = b[0] == 1;
    let n = u16::from_le_bytes([b[2], b[3]]);
    let sib = u32::from_le_bytes([b[4], b[5], b[6], b[7]]);
    (is_leaf, n, sib.checked_sub(1))
}

fn write_header(cpu: &mut Cpu, addr: u64, is_leaf: bool, n: u16, sib: Option<PageId>) {
    cpu.store(addr);
    let mut b = [0u8; 8];
    b[0] = is_leaf as u8;
    b[2..4].copy_from_slice(&n.to_le_bytes());
    b[4..8].copy_from_slice(&sib.map_or(0, |s| s + 1).to_le_bytes());
    cpu.arena_mut().write(addr, &b).expect("node header write");
}

fn leaf_entry_addr(addr: u64, i: u64) -> u64 {
    addr + HDR + i * LEAF_ENTRY
}

fn read_leaf_entry(cpu: &mut Cpu, addr: u64, i: u64, dep: Dep) -> (i64, u64) {
    let ea = leaf_entry_addr(addr, i);
    cpu.access_run(ea, 1, false, dep);
    let b = cpu.arena().bytes(ea, 16).expect("leaf entry");
    (
        i64::from_le_bytes(b[..8].try_into().expect("key")),
        u64::from_le_bytes(b[8..].try_into().expect("payload")),
    )
}

fn write_leaf_entry(cpu: &mut Cpu, addr: u64, i: u64, key: i64, payload: u64) {
    let ea = leaf_entry_addr(addr, i);
    cpu.access_run(ea, 1, true, Dep::Stream);
    let mut b = [0u8; 16];
    b[..8].copy_from_slice(&key.to_le_bytes());
    b[8..].copy_from_slice(&payload.to_le_bytes());
    cpu.arena_mut().write(ea, &b).expect("leaf entry write");
}

fn int_key_addr(addr: u64, i: u64) -> u64 {
    addr + HDR + 4 + i * INT_PAIR
}

fn read_int_key(cpu: &mut Cpu, addr: u64, i: u64, dep: Dep) -> i64 {
    let ka = int_key_addr(addr, i);
    cpu.access_run(ka, 1, false, dep);
    let b = cpu.arena().bytes(ka, 8).expect("internal key");
    i64::from_le_bytes(b.try_into().expect("key"))
}

fn read_int_child(cpu: &mut Cpu, addr: u64, idx: u64, dep: Dep) -> PageId {
    // child idx 0 sits right after the header; child i>0 follows key i-1.
    let ca = if idx == 0 {
        addr + HDR
    } else {
        int_key_addr(addr, idx - 1) + 8
    };
    cpu.access_run(ca, 1, false, dep);
    let b = cpu.arena().bytes(ca, 4).expect("internal child");
    u32::from_le_bytes(b.try_into().expect("child"))
}

fn write_int_child(cpu: &mut Cpu, addr: u64, idx: u64, child: PageId) {
    let ca = if idx == 0 {
        addr + HDR
    } else {
        int_key_addr(addr, idx - 1) + 8
    };
    cpu.store(ca);
    cpu.arena_mut()
        .write(ca, &child.to_le_bytes())
        .expect("child write");
}

fn write_int_key(cpu: &mut Cpu, addr: u64, i: u64, key: i64) {
    let ka = int_key_addr(addr, i);
    cpu.store(ka);
    cpu.arena_mut()
        .write(ka, &key.to_le_bytes())
        .expect("key write");
}

/// Shift a byte range right by `by` bytes (entry insertion). Simulates the
/// loads + stores of the move.
fn shift_right(cpu: &mut Cpu, addr: u64, len: u64, by: u64) {
    if len == 0 {
        return;
    }
    crate::page::touch(cpu, addr, len, Dep::Stream);
    touch_store(cpu, addr + by, len);
    let bytes = cpu
        .arena()
        .bytes(addr, len as usize)
        .expect("shift src")
        .to_vec();
    cpu.arena_mut().write(addr + by, &bytes).expect("shift dst");
}

impl BTree {
    /// Create an empty tree (allocates the root leaf).
    pub fn create(cpu: &mut Cpu, store: &mut PageStore) -> crate::Result<BTree> {
        let root = store.alloc_page(cpu)?;
        let addr = store.page(root).addr;
        write_header(cpu, addr, true, 0, None);
        Ok(BTree {
            root,
            height: 0,
            len: 0,
        })
    }

    /// Root page id (the DTCM co-design pins the top layers).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Binary search: first index in `[0, n)` whose key is `>= key`;
    /// `n` if all keys are smaller. Charges a compare per probe.
    fn lower_bound_leaf(cpu: &mut Cpu, addr: u64, n: u64, key: i64, dep: Dep) -> u64 {
        let (mut lo, mut hi) = (0u64, n);
        let mut first = true;
        while lo < hi {
            let mid = (lo + hi) / 2;
            // The first probe waits for the node (dependent); later probes
            // are branch-predicted and speculatively issued, so the pipeline
            // keeps them moving (§2.5.1: speculation hides the bubble).
            let probe_dep = if first { dep } else { Dep::Stream };
            first = false;
            let (k, _) = read_leaf_entry(cpu, addr, mid, probe_dep);
            cpu.exec(ExecOp::Branch);
            if k < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Child index to follow for `key` in an internal node.
    ///
    /// Routes to the *leftmost* child that can hold `key`: on equality with
    /// a separator we descend left, because duplicates of the separator key
    /// may end in the left subtree (separators are copied-up first keys).
    /// The leaf chain walk then covers the right-side duplicates.
    fn route(cpu: &mut Cpu, addr: u64, n: u64, key: i64, dep: Dep) -> u64 {
        let (mut lo, mut hi) = (0u64, n);
        let mut first = true;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let probe_dep = if first { dep } else { Dep::Stream };
            first = false;
            let k = read_int_key(cpu, addr, mid, probe_dep);
            cpu.exec(ExecOp::Branch);
            if k < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Descend to the leaf that owns `key`, returning `(leaf_id, path)`
    /// where `path[i] = (node_id, child_idx taken)`.
    fn descend(
        &self,
        cpu: &mut Cpu,
        store: &PageStore,
        pool: &mut impl PageAccess,
        key: i64,
    ) -> (PageId, Vec<(PageId, u64)>) {
        let mut path = Vec::with_capacity(self.height as usize);
        let mut node = self.root;
        loop {
            let page = pool.access(cpu, store, node);
            let (is_leaf, n, _) = read_header(cpu, page.addr, Dep::Chase);
            if is_leaf {
                return (node, path);
            }
            let idx = Self::route(cpu, page.addr, n as u64, key, Dep::Chase);
            let child = read_int_child(cpu, page.addr, idx, Dep::Chase);
            path.push((node, idx));
            node = child;
        }
    }

    /// Insert `key → payload` (duplicates allowed).
    pub fn insert(
        &mut self,
        cpu: &mut Cpu,
        store: &mut PageStore,
        pool: &mut impl PageAccess,
        key: i64,
        payload: u64,
    ) -> crate::Result<()> {
        let (leaf, mut path) = self.descend(cpu, store, pool, key);
        let page_size = store.page_size();
        let addr = store.page(leaf).addr;
        let (_, n, sib) = read_header(cpu, addr, Dep::Chase);
        let n = n as u64;
        let pos = Self::lower_bound_leaf(cpu, addr, n, key, Dep::Chase);

        if n < leaf_cap(page_size) {
            shift_right(
                cpu,
                leaf_entry_addr(addr, pos),
                (n - pos) * LEAF_ENTRY,
                LEAF_ENTRY,
            );
            write_leaf_entry(cpu, addr, pos, key, payload);
            write_header(cpu, addr, true, (n + 1) as u16, sib);
            self.len += 1;
            return Ok(());
        }

        // Leaf split: move the upper half to a new right sibling.
        let new_id = store.alloc_page(cpu)?;
        let new_addr = store.page(new_id).addr;
        let split = n / 2;
        let moved = n - split;
        // Copy upper half entries.
        for i in 0..moved {
            let (k, p) = read_leaf_entry(cpu, addr, split + i, Dep::Stream);
            write_leaf_entry(cpu, new_addr, i, k, p);
        }
        write_header(cpu, new_addr, true, moved as u16, sib);
        write_header(cpu, addr, true, split as u16, Some(new_id));
        // Re-insert into the proper half.
        let (sep, _) = read_leaf_entry(cpu, new_addr, 0, Dep::Chase);
        let (taddr, tn, tsib) = if key < sep {
            (addr, split, Some(new_id))
        } else {
            (new_addr, moved, sib)
        };
        let pos = Self::lower_bound_leaf(cpu, taddr, tn, key, Dep::Chase);
        shift_right(
            cpu,
            leaf_entry_addr(taddr, pos),
            (tn - pos) * LEAF_ENTRY,
            LEAF_ENTRY,
        );
        write_leaf_entry(cpu, taddr, pos, key, payload);
        write_header(cpu, taddr, true, (tn + 1) as u16, tsib);
        self.len += 1;

        // Propagate the separator upward.
        self.insert_into_parent(cpu, store, pool, &mut path, sep, new_id)
    }

    fn insert_into_parent(
        &mut self,
        cpu: &mut Cpu,
        store: &mut PageStore,
        _pool: &mut impl PageAccess,
        path: &mut Vec<(PageId, u64)>,
        mut sep: i64,
        mut right: PageId,
    ) -> crate::Result<()> {
        let page_size = store.page_size();
        loop {
            let Some((parent, idx)) = path.pop() else {
                // Root split: new root with two children.
                let new_root = store.alloc_page(cpu)?;
                let ra = store.page(new_root).addr;
                write_header(cpu, ra, false, 1, None);
                let old_root = self.root;
                write_int_child(cpu, ra, 0, old_root);
                write_int_key(cpu, ra, 0, sep);
                write_int_child(cpu, ra, 1, right);
                self.root = new_root;
                self.height += 1;
                return Ok(());
            };
            let addr = store.page(parent).addr;
            let (_, n, _) = read_header(cpu, addr, Dep::Chase);
            let n = n as u64;
            if n < int_cap(page_size) {
                // Make room at key position `idx`, child position `idx+1`.
                let from = int_key_addr(addr, idx);
                let len = (n - idx) * INT_PAIR;
                shift_right(cpu, from, len, INT_PAIR);
                write_int_key(cpu, addr, idx, sep);
                write_int_child(cpu, addr, idx + 1, right);
                write_header(cpu, addr, false, (n + 1) as u16, None);
                return Ok(());
            }
            // Internal split. Gather (host-side) the keys/children, insert,
            // split around the median, write both halves (simulated writes).
            let mut keys = Vec::with_capacity(n as usize + 1);
            let mut children = Vec::with_capacity(n as usize + 2);
            children.push(read_int_child(cpu, addr, 0, Dep::Stream));
            for i in 0..n {
                keys.push(read_int_key(cpu, addr, i, Dep::Stream));
                children.push(read_int_child(cpu, addr, i + 1, Dep::Stream));
            }
            keys.insert(idx as usize, sep);
            children.insert(idx as usize + 1, right);

            let mid = keys.len() / 2;
            let up_key = keys[mid];
            let new_id = store.alloc_page(cpu)?;
            let na = store.page(new_id).addr;

            let left_keys = &keys[..mid];
            let right_keys = &keys[mid + 1..];
            let left_children = &children[..mid + 1];
            let right_children = &children[mid + 1..];

            write_header(cpu, addr, false, left_keys.len() as u16, None);
            write_int_child(cpu, addr, 0, left_children[0]);
            for (i, &k) in left_keys.iter().enumerate() {
                write_int_key(cpu, addr, i as u64, k);
                write_int_child(cpu, addr, i as u64 + 1, left_children[i + 1]);
            }
            write_header(cpu, na, false, right_keys.len() as u16, None);
            write_int_child(cpu, na, 0, right_children[0]);
            for (i, &k) in right_keys.iter().enumerate() {
                write_int_key(cpu, na, i as u64, k);
                write_int_child(cpu, na, i as u64 + 1, right_children[i + 1]);
            }
            sep = up_key;
            right = new_id;
        }
    }

    /// Remove one `key → payload` entry (lazy: the leaf may underflow but
    /// is never merged, like an index awaiting vacuum). Returns whether an
    /// entry was removed.
    pub fn delete(
        &mut self,
        cpu: &mut Cpu,
        store: &PageStore,
        pool: &mut impl PageAccess,
        key: i64,
        payload: u64,
    ) -> bool {
        let (mut leaf, _) = self.descend(cpu, store, pool, key);
        loop {
            let addr = store.page(leaf).addr;
            let (_, n, sib) = read_header(cpu, addr, Dep::Chase);
            let n = n as u64;
            let mut i = Self::lower_bound_leaf(cpu, addr, n, key, Dep::Chase);
            while i < n {
                let (k, p) = read_leaf_entry(cpu, addr, i, Dep::Stream);
                if k != key {
                    return false;
                }
                if p == payload {
                    // Shift the tail left over the removed entry.
                    let from = leaf_entry_addr(addr, i + 1);
                    let len = (n - i - 1) * LEAF_ENTRY;
                    if len > 0 {
                        crate::page::touch(cpu, from, len, Dep::Stream);
                        touch_store(cpu, from - LEAF_ENTRY, len);
                        let bytes = cpu
                            .arena()
                            .bytes(from, len as usize)
                            .expect("shift src")
                            .to_vec();
                        cpu.arena_mut()
                            .write(from - LEAF_ENTRY, &bytes)
                            .expect("shift dst");
                    }
                    write_header(cpu, addr, true, (n - 1) as u16, sib);
                    self.len -= 1;
                    return true;
                }
                i += 1;
            }
            // Duplicates may continue on the right sibling.
            match sib {
                Some(s) => leaf = s,
                None => return false,
            }
        }
    }

    /// First payload whose key equals `key`, if any.
    pub fn lookup(
        &self,
        cpu: &mut Cpu,
        store: &PageStore,
        pool: &mut impl PageAccess,
        key: i64,
    ) -> Option<u64> {
        let mut cur = self.seek(cpu, store, pool, key);
        match cur.next(cpu, store, pool) {
            Some((k, p)) if k == key => Some(p),
            _ => None,
        }
    }

    /// Cursor at the first entry with key `>= key`.
    pub fn seek(
        &self,
        cpu: &mut Cpu,
        store: &PageStore,
        pool: &mut impl PageAccess,
        key: i64,
    ) -> BTreeCursor {
        let (leaf, _) = self.descend(cpu, store, pool, key);
        let addr = store.page(leaf).addr;
        let (_, n, _) = read_header(cpu, addr, Dep::Chase);
        let pos = Self::lower_bound_leaf(cpu, addr, n as u64, key, Dep::Chase);
        BTreeCursor {
            page: Some(leaf),
            idx: pos,
            n: n as u64,
        }
    }

    /// Cursor at the smallest key.
    pub fn seek_first(
        &self,
        cpu: &mut Cpu,
        store: &PageStore,
        pool: &mut impl PageAccess,
    ) -> BTreeCursor {
        self.seek(cpu, store, pool, i64::MIN)
    }

    /// Bulk-load a tree from key-sorted pairs **without simulation** —
    /// construction of base data is setup, not measured workload.
    pub fn bulk_load(
        cpu: &mut Cpu,
        store: &mut PageStore,
        pairs: &[(i64, u64)],
    ) -> crate::Result<BTree> {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 <= w[1].0),
            "bulk_load needs sorted input"
        );
        let page_size = store.page_size();
        // Fill leaves to ~90% so later simulated inserts don't cascade.
        let per_leaf = ((leaf_cap(page_size) * 9) / 10).max(1);

        let mut leaves: Vec<(PageId, i64)> = Vec::new(); // (page, first key)
        let mut i = 0usize;
        while i < pairs.len() || leaves.is_empty() {
            let chunk = &pairs[i..(i + per_leaf as usize).min(pairs.len())];
            let id = store.alloc_page(cpu)?;
            let addr = store.page(id).addr;
            {
                let arena = cpu.arena_mut();
                let mut hdr = [0u8; 8];
                hdr[0] = 1;
                hdr[2..4].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
                arena.write(addr, &hdr)?;
                for (j, &(k, p)) in chunk.iter().enumerate() {
                    let ea = leaf_entry_addr(addr, j as u64);
                    arena.write(ea, &k.to_le_bytes())?;
                    arena.write(ea + 8, &p.to_le_bytes())?;
                }
            }
            leaves.push((id, chunk.first().map_or(i64::MIN, |e| e.0)));
            if chunk.is_empty() {
                break;
            }
            i += chunk.len();
        }
        // Chain sibling pointers.
        for w in 0..leaves.len().saturating_sub(1) {
            let addr = store.page(leaves[w].0).addr;
            let next = leaves[w + 1].0;
            cpu.arena_mut().write(addr + 4, &(next + 1).to_le_bytes())?;
        }

        // Build internal levels bottom-up.
        let mut level: Vec<(PageId, i64)> = leaves;
        let mut height = 0u32;
        let per_int = ((int_cap(page_size) * 9) / 10).max(2);
        while level.len() > 1 {
            height += 1;
            let mut next_level = Vec::new();
            for chunk in level.chunks(per_int as usize + 1) {
                let id = store.alloc_page(cpu)?;
                let addr = store.page(id).addr;
                let nkeys = chunk.len() - 1;
                let arena = cpu.arena_mut();
                let mut hdr = [0u8; 8];
                hdr[2..4].copy_from_slice(&(nkeys as u16).to_le_bytes());
                arena.write(addr, &hdr)?;
                arena.write(addr + HDR, &chunk[0].0.to_le_bytes())?;
                for (j, &(child, first_key)) in chunk.iter().enumerate().skip(1) {
                    let ka = int_key_addr(addr, j as u64 - 1);
                    arena.write(ka, &first_key.to_le_bytes())?;
                    arena.write(ka + 8, &child.to_le_bytes())?;
                }
                next_level.push((id, chunk[0].1));
            }
            level = next_level;
        }
        Ok(BTree {
            root: level[0].0,
            height,
            len: pairs.len() as u64,
        })
    }

    /// Page ids of the top `layers` levels (root = layer 1), breadth-first.
    /// Used by the DTCM co-design to pin hot B-tree nodes.
    pub fn top_pages(&self, cpu: &mut Cpu, store: &PageStore, layers: u32) -> Vec<PageId> {
        let mut out = Vec::new();
        let mut frontier = vec![self.root];
        for _ in 0..layers {
            out.extend_from_slice(&frontier);
            let mut next = Vec::new();
            for &id in &frontier {
                let addr = store.page(id).addr;
                // Unsimulated peek: planning step, not query execution.
                let b = cpu.arena().bytes(addr, 8).expect("header");
                if b[0] == 1 {
                    continue;
                }
                let n = u16::from_le_bytes([b[2], b[3]]) as u64;
                for idx in 0..=n {
                    let ca = if idx == 0 {
                        addr + HDR
                    } else {
                        int_key_addr(addr, idx - 1) + 8
                    };
                    let cb = cpu.arena().bytes(ca, 4).expect("child");
                    next.push(u32::from_le_bytes(cb.try_into().expect("child")));
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        out
    }
}

/// Forward leaf-chain cursor.
#[derive(Debug, Clone)]
pub struct BTreeCursor {
    page: Option<PageId>,
    idx: u64,
    n: u64,
}

impl BTreeCursor {
    /// Next `(key, payload)` in key order, or `None` at end.
    pub fn next(
        &mut self,
        cpu: &mut Cpu,
        store: &PageStore,
        pool: &mut impl PageAccess,
    ) -> Option<(i64, u64)> {
        loop {
            let pid = self.page?;
            if self.idx < self.n {
                let page = pool.access(cpu, store, pid);
                let e = read_leaf_entry(cpu, page.addr, self.idx, Dep::Stream);
                self.idx += 1;
                return Some(e);
            }
            // Hop to the right sibling: a pointer chase.
            let page = pool.access(cpu, store, pid);
            let (_, _, sib) = read_header(cpu, page.addr, Dep::Chase);
            self.page = sib;
            self.idx = 0;
            if let Some(s) = sib {
                let sp = pool.access(cpu, store, s);
                let (_, n, _) = read_header(cpu, sp.addr, Dep::Chase);
                self.n = n as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use simcore::ArchConfig;

    fn setup() -> (Cpu, PageStore, BufferPool) {
        let cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let store = PageStore::new(4096);
        let pool = BufferPool::new(1 << 22, 4096);
        (cpu, store, pool)
    }

    fn drain(
        cpu: &mut Cpu,
        store: &PageStore,
        pool: &mut impl PageAccess,
        mut cur: BTreeCursor,
    ) -> Vec<(i64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = cur.next(cpu, store, pool) {
            out.push(e);
        }
        out
    }

    #[test]
    fn insert_and_scan_sorted() {
        let (mut cpu, mut store, mut pool) = setup();
        let mut t = BTree::create(&mut cpu, &mut store).unwrap();
        // Insert in a scrambled order.
        let mut keys: Vec<i64> = (0..2000).collect();
        let n = keys.len();
        for i in 0..n {
            keys.swap(i, (i * 7919) % n);
        }
        for &k in &keys {
            t.insert(&mut cpu, &mut store, &mut pool, k, k as u64 * 10)
                .unwrap();
        }
        assert_eq!(t.len, 2000);
        assert!(t.height >= 1, "2000 entries must split");
        let cur = t.seek_first(&mut cpu, &store, &mut pool);
        let all = drain(&mut cpu, &store, &mut pool, cur);
        assert_eq!(all.len(), 2000);
        for (i, &(k, p)) in all.iter().enumerate() {
            assert_eq!(k, i as i64);
            assert_eq!(p, k as u64 * 10);
        }
    }

    #[test]
    fn lookup_hits_and_misses() {
        let (mut cpu, mut store, mut pool) = setup();
        let mut t = BTree::create(&mut cpu, &mut store).unwrap();
        for k in (0..1000).step_by(2) {
            t.insert(&mut cpu, &mut store, &mut pool, k, k as u64)
                .unwrap();
        }
        assert_eq!(t.lookup(&mut cpu, &store, &mut pool, 500), Some(500));
        assert_eq!(t.lookup(&mut cpu, &store, &mut pool, 501), None);
        assert_eq!(t.lookup(&mut cpu, &store, &mut pool, -1), None);
    }

    #[test]
    fn duplicates_are_kept() {
        let (mut cpu, mut store, mut pool) = setup();
        let mut t = BTree::create(&mut cpu, &mut store).unwrap();
        for p in 0..5u64 {
            t.insert(&mut cpu, &mut store, &mut pool, 42, p).unwrap();
        }
        t.insert(&mut cpu, &mut store, &mut pool, 41, 99).unwrap();
        let cur = t.seek(&mut cpu, &store, &mut pool, 42);
        let hits: Vec<u64> = drain(&mut cpu, &store, &mut pool, cur)
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        assert_eq!(hits.len(), 5);
        let mut sorted = hits.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn seek_positions_at_lower_bound() {
        let (mut cpu, mut store, mut pool) = setup();
        let mut t = BTree::create(&mut cpu, &mut store).unwrap();
        for k in [10i64, 20, 30, 40] {
            t.insert(&mut cpu, &mut store, &mut pool, k, k as u64)
                .unwrap();
        }
        let cur = t.seek(&mut cpu, &store, &mut pool, 25);
        let rest = drain(&mut cpu, &store, &mut pool, cur);
        assert_eq!(rest.iter().map(|e| e.0).collect::<Vec<_>>(), vec![30, 40]);
    }

    #[test]
    fn bulk_load_equals_incremental() {
        let (mut cpu, mut store, mut pool) = setup();
        let pairs: Vec<(i64, u64)> = (0..5000).map(|k| (k, (k * 3) as u64)).collect();
        let t = BTree::bulk_load(&mut cpu, &mut store, &pairs).unwrap();
        assert_eq!(t.len, 5000);
        assert!(t.height >= 1);
        let cur = t.seek_first(&mut cpu, &store, &mut pool);
        let all = drain(&mut cpu, &store, &mut pool, cur);
        assert_eq!(all, pairs);
        assert_eq!(t.lookup(&mut cpu, &store, &mut pool, 4321), Some(4321 * 3));
    }

    #[test]
    fn bulk_loaded_tree_accepts_inserts() {
        let (mut cpu, mut store, mut pool) = setup();
        let pairs: Vec<(i64, u64)> = (0..1000).map(|k| (k * 2, k as u64)).collect();
        let mut t = BTree::bulk_load(&mut cpu, &mut store, &pairs).unwrap();
        t.insert(&mut cpu, &mut store, &mut pool, 501, 777).unwrap();
        assert_eq!(t.lookup(&mut cpu, &store, &mut pool, 501), Some(777));
        assert_eq!(t.lookup(&mut cpu, &store, &mut pool, 500), Some(250));
    }

    #[test]
    fn top_pages_start_with_root() {
        let (mut cpu, mut store, _) = setup();
        let pairs: Vec<(i64, u64)> = (0..5000).map(|k| (k, k as u64)).collect();
        let t = BTree::bulk_load(&mut cpu, &mut store, &pairs).unwrap();
        let top = t.top_pages(&mut cpu, &store, 2);
        assert_eq!(top[0], t.root());
        assert!(top.len() > 1, "two layers should include children");
    }

    #[test]
    fn duplicates_straddling_leaf_boundaries_are_all_found() {
        // Bulk-load enough duplicates of one key that they span multiple
        // leaves; seek must start at the *leftmost* duplicate.
        let (mut cpu, mut store, mut pool) = setup();
        let mut pairs: Vec<(i64, u64)> = (0..300).map(|i| (10, i)).collect();
        pairs.splice(0..0, (0..100).map(|i| (5, 1000 + i)));
        pairs.extend((0..100).map(|i| (20, 2000 + i)));
        pairs.sort_by_key(|&(k, _)| k);
        let t = BTree::bulk_load(&mut cpu, &mut store, &pairs).unwrap();
        let cur = t.seek(&mut cpu, &store, &mut pool, 10);
        let hits: Vec<u64> = drain(&mut cpu, &store, &mut pool, cur)
            .into_iter()
            .take_while(|&(k, _)| k == 10)
            .map(|(_, p)| p)
            .collect();
        assert_eq!(hits.len(), 300, "must find every duplicate");
        // Same through incremental inserts.
        let (mut cpu, mut store, mut pool) = setup();
        let mut t = BTree::create(&mut cpu, &mut store).unwrap();
        for i in 0..600u64 {
            t.insert(&mut cpu, &mut store, &mut pool, (i % 3) as i64, i)
                .unwrap();
        }
        let cur = t.seek(&mut cpu, &store, &mut pool, 1);
        let ones = drain(&mut cpu, &store, &mut pool, cur)
            .into_iter()
            .take_while(|&(k, _)| k == 1)
            .count();
        assert_eq!(ones, 200);
    }

    #[test]
    fn descent_is_pointer_chasing() {
        let (mut cpu, mut store, mut pool) = setup();
        let pairs: Vec<(i64, u64)> = (0..20_000).map(|k| (k, k as u64)).collect();
        let t = BTree::bulk_load(&mut cpu, &mut store, &pairs).unwrap();
        assert!(t.height >= 1);
        // Random lookups should accumulate stall cycles (chases).
        let before = cpu.pmu_snapshot();
        for k in (0..20_000).step_by(997) {
            t.lookup(&mut cpu, &store, &mut pool, k);
        }
        let d = cpu.pmu_snapshot().delta(&before);
        assert!(d.get(simcore::Event::StallCycles) > 0);
    }
}
