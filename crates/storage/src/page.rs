//! Slotted pages over the simulated arena.
//!
//! Layout (`page_size` is a knob: 4/8/16 KiB, Table 4):
//!
//! ```text
//! [ n_slots: u16 | data_end: u16 | ...tuples grow forward... ]
//! [ ...slot array grows backward from the page end... ]
//! slot i = (offset: u16, len: u16) at page_end − 4·(i+1)
//! ```

use simcore::{Cpu, Dep};

/// Page identifier within a [`crate::buffer::PageStore`].
pub type PageId = u32;

/// Bytes of page header (`n_slots`, `data_end`).
pub const PAGE_HEADER: u64 = 4;
const SLOT_BYTES: u64 = 4;

/// A view of one page: base address + size. All operations simulate their
/// accesses on the given [`Cpu`].
#[derive(Debug, Clone, Copy)]
pub struct PageRef {
    /// Base simulated address.
    pub addr: u64,
    /// Page size in bytes.
    pub size: u32,
}

impl PageRef {
    /// Initialise an empty page (writes the header).
    pub fn init(&self, cpu: &mut Cpu) -> crate::Result<()> {
        cpu.store(self.addr);
        let a = cpu.arena_mut();
        a.write(self.addr, &0u16.to_le_bytes())?;
        a.write(self.addr + 2, &(PAGE_HEADER as u16).to_le_bytes())?;
        Ok(())
    }

    fn header(&self, cpu: &mut Cpu, dep: Dep) -> crate::Result<(u16, u16)> {
        // Single-line run: identical counters to a scalar load, but hot
        // header re-reads take the batched hit path.
        cpu.access_run(self.addr, 1, false, dep);
        let a = cpu.arena();
        let h = a.bytes(self.addr, 4)?;
        Ok((
            u16::from_le_bytes([h[0], h[1]]),
            u16::from_le_bytes([h[2], h[3]]),
        ))
    }

    /// Number of tuples on the page.
    pub fn n_slots(&self, cpu: &mut Cpu, dep: Dep) -> crate::Result<u16> {
        Ok(self.header(cpu, dep)?.0)
    }

    /// Validate a page header: `data_end` must sit inside the payload area
    /// and must not have crossed into the slot array. A header that fails
    /// this is *corrupt* — clamping it to "page looks full" would silently
    /// keep serving overlapping slot/tuple bytes.
    fn check_header(&self, n: u16, data_end: u16) -> crate::Result<()> {
        let slots_start = (self.size as u64).checked_sub(n as u64 * SLOT_BYTES);
        match slots_start {
            Some(s) if (PAGE_HEADER..=s).contains(&(data_end as u64)) => Ok(()),
            _ => Err(crate::StorageError::Corrupt(
                "page header: slot array and tuple data overlap",
            )),
        }
    }

    /// Free bytes remaining (accounting for the slot the next insert needs).
    pub fn free_space(&self, cpu: &mut Cpu) -> crate::Result<u64> {
        let (n, data_end) = self.header(cpu, Dep::Stream)?;
        self.check_header(n, data_end)?;
        let slots_start = self.size as u64 - (n as u64 + 1) * SLOT_BYTES;
        Ok(slots_start.saturating_sub(data_end as u64))
    }

    /// Append a tuple; returns the slot number, or `None` if it doesn't fit.
    pub fn insert(&self, cpu: &mut Cpu, bytes: &[u8]) -> crate::Result<Option<u16>> {
        let payload = self.size as u64 - PAGE_HEADER - SLOT_BYTES;
        if bytes.len() as u64 > payload {
            return Err(crate::StorageError::TupleTooLarge {
                tuple: bytes.len(),
                page: payload as usize,
            });
        }
        let (n, data_end) = self.header(cpu, Dep::Stream)?;
        self.check_header(n, data_end)?;
        let slots_start = self.size as u64 - (n as u64 + 1) * SLOT_BYTES;
        if data_end as u64 + bytes.len() as u64 > slots_start {
            return Ok(None);
        }
        // Tuple bytes.
        cpu.write_bytes(self.addr + data_end as u64, bytes)?;
        // Slot entry.
        let slot_addr = self.addr + slots_start;
        cpu.store(slot_addr);
        let mut slot = [0u8; 4];
        slot[..2].copy_from_slice(&data_end.to_le_bytes());
        slot[2..].copy_from_slice(&(bytes.len() as u16).to_le_bytes());
        cpu.arena_mut().write(slot_addr, &slot)?;
        // Header.
        cpu.store(self.addr);
        let a = cpu.arena_mut();
        a.write(self.addr, &(n + 1).to_le_bytes())?;
        a.write(
            self.addr + 2,
            &(data_end + bytes.len() as u16).to_le_bytes(),
        )?;
        Ok(Some(n))
    }

    /// Unsimulated insert for *data loading* (setup is not a measured
    /// workload). Identical layout to [`PageRef::insert`].
    pub fn insert_unsimulated(
        &self,
        arena: &mut simcore::Arena,
        bytes: &[u8],
    ) -> crate::Result<Option<u16>> {
        let payload = self.size as u64 - PAGE_HEADER - SLOT_BYTES;
        if bytes.len() as u64 > payload {
            return Err(crate::StorageError::TupleTooLarge {
                tuple: bytes.len(),
                page: payload as usize,
            });
        }
        let h = arena.bytes(self.addr, 4)?;
        let n = u16::from_le_bytes([h[0], h[1]]);
        let data_end = u16::from_le_bytes([h[2], h[3]]);
        self.check_header(n, data_end)?;
        let slots_start = self.size as u64 - (n as u64 + 1) * SLOT_BYTES;
        if data_end as u64 + bytes.len() as u64 > slots_start {
            return Ok(None);
        }
        arena.write(self.addr + data_end as u64, bytes)?;
        let mut slot = [0u8; 4];
        slot[..2].copy_from_slice(&data_end.to_le_bytes());
        slot[2..].copy_from_slice(&(bytes.len() as u16).to_le_bytes());
        arena.write(self.addr + slots_start, &slot)?;
        arena.write(self.addr, &(n + 1).to_le_bytes())?;
        arena.write(
            self.addr + 2,
            &(data_end + bytes.len() as u16).to_le_bytes(),
        )?;
        Ok(Some(n))
    }

    /// Simulated bounds lookup of a slot: `(tuple_addr, len)`.
    pub fn tuple_bounds(&self, cpu: &mut Cpu, slot: u16, dep: Dep) -> crate::Result<(u64, u16)> {
        let slot_addr = self.addr + self.size as u64 - (slot as u64 + 1) * SLOT_BYTES;
        cpu.access_run(slot_addr, 1, false, dep);
        let b = cpu.arena().bytes(slot_addr, 4)?;
        let off = u16::from_le_bytes([b[0], b[1]]);
        let len = u16::from_le_bytes([b[2], b[3]]);
        if off as u64 + len as u64 > self.size as u64 {
            return Err(crate::StorageError::Corrupt("slot out of bounds"));
        }
        Ok((self.addr + off as u64, len))
    }

    /// Tombstone a slot (its length becomes zero; scans skip it). The space
    /// is not reclaimed — like a dead heap tuple awaiting vacuum.
    pub fn mark_dead(&self, cpu: &mut Cpu, slot: u16) -> crate::Result<()> {
        let slot_addr = self.addr + self.size as u64 - (slot as u64 + 1) * SLOT_BYTES;
        cpu.load(slot_addr, Dep::Stream);
        cpu.store(slot_addr);
        let b = cpu.arena().bytes(slot_addr, 4)?;
        let off = u16::from_le_bytes([b[0], b[1]]);
        let mut nb = [0u8; 4];
        nb[..2].copy_from_slice(&off.to_le_bytes());
        cpu.arena_mut().write(slot_addr, &nb)?;
        Ok(())
    }

    /// Overwrite a tuple in place (only legal when the new bytes have the
    /// same length as the old).
    pub fn overwrite(&self, cpu: &mut Cpu, slot: u16, bytes: &[u8]) -> crate::Result<()> {
        let (addr, len) = self.tuple_bounds(cpu, slot, Dep::Stream)?;
        if len as usize != bytes.len() {
            return Err(crate::StorageError::Schema(
                "in-place overwrite length mismatch",
            ));
        }
        cpu.write_bytes(addr, bytes)?;
        Ok(())
    }

    /// Unsimulated slot count (setup/index builds).
    pub fn n_slots_unsimulated(&self, arena: &simcore::Arena) -> crate::Result<u16> {
        let h = arena.bytes(self.addr, 2)?;
        Ok(u16::from_le_bytes([h[0], h[1]]))
    }

    /// Unsimulated tuple read (setup/index builds).
    pub fn read_tuple_unsimulated<'a>(
        &self,
        arena: &'a simcore::Arena,
        slot: u16,
    ) -> crate::Result<&'a [u8]> {
        let slot_addr = self.addr + self.size as u64 - (slot as u64 + 1) * SLOT_BYTES;
        let b = arena.bytes(slot_addr, 4)?;
        let off = u16::from_le_bytes([b[0], b[1]]);
        let len = u16::from_le_bytes([b[2], b[3]]);
        if off as u64 + len as u64 > self.size as u64 {
            return Err(crate::StorageError::Corrupt("slot out of bounds"));
        }
        Ok(arena.bytes(self.addr + off as u64, len as usize)?)
    }

    /// Touch the lines of a tuple (simulating the read) and return its bytes.
    pub fn read_tuple<'a>(&self, cpu: &'a mut Cpu, slot: u16, dep: Dep) -> crate::Result<&'a [u8]> {
        let (addr, len) = self.tuple_bounds(cpu, slot, dep)?;
        touch(cpu, addr, len as u64, dep);
        Ok(cpu.arena().bytes(addr, len as usize)?)
    }
}

/// Simulate loads over the lines spanned by `[addr, addr+len)` — one batched
/// run through [`Cpu::access_run`] (counter-identical to per-line loads).
pub fn touch(cpu: &mut Cpu, addr: u64, len: u64, dep: Dep) {
    if len == 0 {
        return;
    }
    let first = addr & !(simcore::LINE - 1);
    cpu.access_run(
        first,
        (addr + len - first).div_ceil(simcore::LINE),
        false,
        dep,
    );
}

/// Simulate stores over the lines spanned by `[addr, addr+len)` — one
/// batched run through [`Cpu::access_run`].
pub fn touch_store(cpu: &mut Cpu, addr: u64, len: u64) {
    if len == 0 {
        return;
    }
    let first = addr & !(simcore::LINE - 1);
    cpu.access_run(
        first,
        (addr + len - first).div_ceil(simcore::LINE),
        true,
        Dep::Stream,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::ArchConfig;

    fn cpu() -> Cpu {
        Cpu::new(ArchConfig::intel_i7_4790())
    }

    fn page(cpu: &mut Cpu, size: u32) -> PageRef {
        let r = cpu.alloc(size as u64).unwrap();
        let p = PageRef { addr: r.addr, size };
        p.init(cpu).unwrap();
        p
    }

    #[test]
    fn insert_and_read_back() {
        let mut c = cpu();
        let p = page(&mut c, 4096);
        let s0 = p.insert(&mut c, b"hello").unwrap().unwrap();
        let s1 = p.insert(&mut c, b"world!").unwrap().unwrap();
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(p.read_tuple(&mut c, 0, Dep::Stream).unwrap(), b"hello");
        assert_eq!(p.read_tuple(&mut c, 1, Dep::Stream).unwrap(), b"world!");
        assert_eq!(p.n_slots(&mut c, Dep::Stream).unwrap(), 2);
    }

    #[test]
    fn page_fills_up_and_reports_none() {
        let mut c = cpu();
        let p = page(&mut c, 256);
        let tuple = [7u8; 50];
        let mut inserted = 0;
        while p.insert(&mut c, &tuple).unwrap().is_some() {
            inserted += 1;
        }
        // 256 - 4 header = 252; each tuple costs 50 + 4 slot = 54.
        assert_eq!(inserted, 4);
        // Free space is less than one more tuple but non-negative.
        assert!(p.free_space(&mut c).unwrap() < 54);
    }

    #[test]
    fn oversized_tuple_is_an_error_not_none() {
        let mut c = cpu();
        let p = page(&mut c, 256);
        let huge = [0u8; 300];
        assert!(matches!(
            p.insert(&mut c, &huge),
            Err(crate::StorageError::TupleTooLarge { .. })
        ));
    }

    #[test]
    fn reading_a_tuple_simulates_its_lines() {
        let mut c = cpu();
        let p = page(&mut c, 4096);
        let tuple = [1u8; 150]; // spans 3+ lines
        p.insert(&mut c, &tuple).unwrap().unwrap();
        let before = c.pmu_snapshot();
        p.read_tuple(&mut c, 0, Dep::Stream).unwrap();
        let d = c.pmu_snapshot().delta(&before);
        // slot load + >= 3 tuple-line loads
        assert!(d.get(simcore::Event::LoadIssued) >= 4);
    }

    #[test]
    fn overlapping_header_is_corruption_not_page_full() {
        let mut c = cpu();
        let p = page(&mut c, 256);
        p.insert(&mut c, &[9u8; 40]).unwrap().unwrap();
        // Corrupt the header: claim the tuple data has grown into the slot
        // array (data_end beyond size − n·SLOT_BYTES). Pre-fix, free_space
        // clamped this to Ok(0) and insert reported a benign Ok(None).
        let data_end = (p.size - 2) as u16;
        c.arena_mut()
            .write(p.addr + 2, &data_end.to_le_bytes())
            .unwrap();
        assert!(matches!(
            p.free_space(&mut c),
            Err(crate::StorageError::Corrupt(_))
        ));
        assert!(matches!(
            p.insert(&mut c, b"x"),
            Err(crate::StorageError::Corrupt(_))
        ));
        let mut arena_only = cpu();
        let q = page(&mut arena_only, 256);
        let n_slots = 1u16.to_le_bytes();
        arena_only.arena_mut().write(q.addr, &n_slots).unwrap();
        arena_only
            .arena_mut()
            .write(q.addr + 2, &data_end.to_le_bytes())
            .unwrap();
        assert!(matches!(
            q.insert_unsimulated(arena_only.arena_mut(), b"x"),
            Err(crate::StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn different_page_sizes_hold_proportional_tuples() {
        let mut c = cpu();
        let count = |c: &mut Cpu, size: u32| {
            let p = page(c, size);
            let mut n = 0;
            while p.insert(c, &[0u8; 60]).unwrap().is_some() {
                n += 1;
            }
            n
        };
        let small = count(&mut c, 4096);
        let large = count(&mut c, 16384);
        assert!(large >= small * 3);
    }
}
