//! The catalog: tables, their heaps, and their indexes.

use crate::btree::BTree;
use crate::heap::HeapFile;
use crate::schema::Schema;
use std::collections::HashMap;

/// Dense table identifier.
pub type TableId = usize;

/// One table's metadata and storage.
#[derive(Debug, Clone)]
pub struct TableInfo {
    /// Table name.
    pub name: String,
    /// Column layout.
    pub schema: Schema,
    /// Row storage.
    pub heap: HeapFile,
    /// Primary-key index (keyed on `pk_col`), if built.
    pub pk_index: Option<BTree>,
    /// Which column the PK index covers.
    pub pk_col: Option<usize>,
    /// Secondary indexes: `(column, tree)`.
    pub secondary: Vec<(usize, BTree)>,
    /// Columnar image for the vectorized personality, built lazily at
    /// first `vec` attach and invalidated by DML/vacuum.
    pub columnar: Option<crate::colchunk::ColumnChunks>,
}

/// All tables of one database instance.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: Vec<TableInfo>,
    by_name: HashMap<String, TableId>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table; returns its id. Replaces nothing — duplicate names
    /// are an error.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> crate::Result<TableId> {
        if self.by_name.contains_key(name) {
            return Err(crate::StorageError::Schema("duplicate table name"));
        }
        let id = self.tables.len();
        self.tables.push(TableInfo {
            name: name.to_owned(),
            schema,
            heap: HeapFile::new(),
            pk_index: None,
            pk_col: None,
            secondary: Vec::new(),
            columnar: None,
        });
        self.by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Look a table up by name.
    pub fn table(&self, name: &str) -> crate::Result<&TableInfo> {
        let id = self
            .by_name
            .get(name)
            .ok_or_else(|| crate::StorageError::NoSuchTable(name.to_owned()))?;
        Ok(&self.tables[*id])
    }

    /// Mutable lookup by name.
    pub fn table_mut(&mut self, name: &str) -> crate::Result<&mut TableInfo> {
        let id = self
            .by_name
            .get(name)
            .ok_or_else(|| crate::StorageError::NoSuchTable(name.to_owned()))?;
        Ok(&mut self.tables[*id])
    }

    /// Lookup by id.
    pub fn table_by_id(&self, id: TableId) -> &TableInfo {
        &self.tables[id]
    }

    /// Id for a name.
    pub fn id_of(&self, name: &str) -> crate::Result<TableId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| crate::StorageError::NoSuchTable(name.to_owned()))
    }

    /// All tables.
    pub fn tables(&self) -> &[TableInfo] {
        &self.tables
    }
}

impl TableInfo {
    /// The secondary index on `col`, if any.
    pub fn index_on(&self, col: usize) -> Option<&BTree> {
        if self.pk_col == Some(col) {
            return self.pk_index.as_ref();
        }
        self.secondary
            .iter()
            .find(|(c, _)| *c == col)
            .map(|(_, t)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Ty;

    #[test]
    fn create_and_lookup() {
        let mut cat = Catalog::new();
        let id = cat
            .create_table("users", Schema::new([("id", Ty::Int), ("name", Ty::Str)]))
            .unwrap();
        assert_eq!(cat.id_of("users").unwrap(), id);
        assert_eq!(cat.table("users").unwrap().schema.arity(), 2);
        assert!(cat.table("ghost").is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut cat = Catalog::new();
        cat.create_table("t", Schema::new([("a", Ty::Int)]))
            .unwrap();
        assert!(cat
            .create_table("t", Schema::new([("a", Ty::Int)]))
            .is_err());
    }
}
