//! Page store ("disk") and buffer pool.
//!
//! Pages live permanently in the simulated arena — that region plays the
//! role of the database file. The buffer pool tracks which pages are
//! *resident*: an access to a non-resident page pays a simulated disk read
//! (an I/O wait plus a streamed read-and-copy of the page, which is what a
//! buffered `read(2)` costs and a real source of L1D store traffic) and may
//! evict the least-recently-used page. The pool size in pages is derived
//! from the engine's memory knob (Table 4).

use crate::page::{PageId, PageRef};
use simcore::Cpu;
use std::collections::HashMap;

/// Simulated disk read latency per page (SSD-class; the exact constant only
/// shifts Fig. 5's idle share, not the energy distribution).
pub const DISK_READ_S: f64 = 100e-6;

/// The "database file": all allocated pages.
pub struct PageStore {
    page_size: u32,
    pages: Vec<u64>,
}

impl PageStore {
    /// New store with the given page-size knob.
    pub fn new(page_size: u32) -> PageStore {
        assert!(page_size.is_power_of_two() && page_size >= 256);
        PageStore {
            page_size,
            pages: Vec::new(),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u32 {
        self.page_size
    }

    /// Number of allocated pages.
    pub fn n_pages(&self) -> usize {
        self.pages.len()
    }

    /// Allocate and initialise a fresh page.
    pub fn alloc_page(&mut self, cpu: &mut Cpu) -> crate::Result<PageId> {
        let r = cpu.alloc(self.page_size as u64)?;
        let id = self.pages.len() as PageId;
        self.pages.push(r.addr);
        PageRef {
            addr: r.addr,
            size: self.page_size,
        }
        .init(cpu)?;
        Ok(id)
    }

    /// View a page (no residency logic — use [`BufferPool::access`] inside
    /// query execution).
    pub fn page(&self, id: PageId) -> PageRef {
        PageRef {
            addr: self.pages[id as usize],
            size: self.page_size,
        }
    }
}

/// Anything that can resolve a page id to an accessible [`PageRef`],
/// charging whatever that residency costs.
///
/// [`BufferPool`] is the ordinary implementation; the DTCM proof of concept
/// wraps a pool with a TCM pin-map so reads of pinned pages are serviced
/// from tightly coupled memory (§4.2).
pub trait PageAccess {
    /// Ensure `id` is accessible and return its view.
    fn access(&mut self, cpu: &mut Cpu, store: &PageStore, id: PageId) -> PageRef;
}

/// LRU buffer pool over a [`PageStore`].
pub struct BufferPool {
    capacity: usize,
    resident: HashMap<PageId, u64>,
    stamp: u64,
    charge_io: bool,
    /// Pages read from "disk" so far (diagnostic).
    pub disk_reads: u64,
}

impl BufferPool {
    /// Pool holding `buffer_bytes / page_size` pages (at least 4).
    pub fn new(buffer_bytes: u64, page_size: u32) -> BufferPool {
        let capacity = (buffer_bytes / page_size as u64).max(4) as usize;
        BufferPool {
            capacity,
            resident: HashMap::new(),
            stamp: 0,
            charge_io: true,
            disk_reads: 0,
        }
    }

    /// Pool over *anonymous memory* (temp structures, `temp_store=MEMORY`):
    /// misses track residency but charge no disk I/O and no read-copy.
    pub fn new_memory_resident(buffer_bytes: u64, page_size: u32) -> BufferPool {
        let mut p = BufferPool::new(buffer_bytes, page_size);
        p.charge_io = false;
        p
    }

    /// Pool capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether a page is currently resident (diagnostic).
    pub fn is_resident(&self, id: PageId) -> bool {
        self.resident.contains_key(&id)
    }

    /// Ensure `id` is resident and return its [`PageRef`]. Charges the
    /// simulated disk read + copy on a miss. (Inherent method; also exposed
    /// through [`PageAccess`].)
    pub fn access(&mut self, cpu: &mut Cpu, store: &PageStore, id: PageId) -> PageRef {
        self.stamp += 1;
        let page = store.page(id);
        if let Some(ts) = self.resident.get_mut(&id) {
            *ts = self.stamp;
            return page;
        }
        // Miss: evict LRU if full, then "read" the page from disk.
        if self.resident.len() >= self.capacity {
            if let Some((&victim, _)) = self.resident.iter().min_by_key(|(_, &ts)| ts) {
                self.resident.remove(&victim);
            }
        }
        if self.charge_io {
            self.disk_reads += 1;
            cpu.idle_c0(DISK_READ_S);
            // Buffered read: the kernel copies the page through the CPU —
            // a streamed load + store per line.
            cpu.copy_run(page.addr, (page.size as u64).div_ceil(simcore::LINE));
        }
        self.resident.insert(id, self.stamp);
        page
    }
}

impl PageAccess for BufferPool {
    fn access(&mut self, cpu: &mut Cpu, store: &PageStore, id: PageId) -> PageRef {
        BufferPool::access(self, cpu, store, id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::ArchConfig;

    fn setup(buffer_bytes: u64) -> (Cpu, PageStore, BufferPool) {
        let cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let store = PageStore::new(4096);
        let pool = BufferPool::new(buffer_bytes, 4096);
        (cpu, store, pool)
    }

    #[test]
    fn hit_after_miss() {
        let (mut cpu, mut store, mut pool) = setup(16 * 4096);
        let p = store.alloc_page(&mut cpu).unwrap();
        pool.access(&mut cpu, &store, p);
        assert_eq!(pool.disk_reads, 1);
        pool.access(&mut cpu, &store, p);
        assert_eq!(pool.disk_reads, 1, "second access must hit");
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let (mut cpu, mut store, mut pool) = setup(4 * 4096); // 4 frames
        let ids: Vec<PageId> = (0..6)
            .map(|_| store.alloc_page(&mut cpu).unwrap())
            .collect();
        for &id in &ids {
            pool.access(&mut cpu, &store, id);
        }
        assert!(!pool.is_resident(ids[0]));
        assert!(pool.is_resident(ids[5]));
        // Re-access of evicted page is a new disk read.
        let before = pool.disk_reads;
        pool.access(&mut cpu, &store, ids[0]);
        assert_eq!(pool.disk_reads, before + 1);
    }

    #[test]
    fn miss_costs_time_and_l1d_store_traffic() {
        let (mut cpu, mut store, mut pool) = setup(16 * 4096);
        let p = store.alloc_page(&mut cpu).unwrap();
        let t0 = cpu.time_s();
        let before = cpu.pmu_snapshot();
        pool.access(&mut cpu, &store, p);
        let d = cpu.pmu_snapshot().delta(&before);
        assert!(cpu.time_s() - t0 >= DISK_READ_S);
        assert_eq!(d.get(simcore::Event::StoreIssued), 4096 / 64);
    }

    #[test]
    fn capacity_respects_knob() {
        let pool_small = BufferPool::new(8 * 1024 * 1024, 8192);
        assert_eq!(pool_small.capacity(), 1024);
        let tiny = BufferPool::new(0, 8192);
        assert_eq!(tiny.capacity(), 4, "floor of 4 frames");
    }
}
