//! Simulated in-memory structures for query operators.
//!
//! Hash tables and sort areas are where PG/MySQL-style engines spend the
//! energy SQLite does not (§3.3: "complex data structures … introduce extra
//! calculations and hinder hardware optimization"). These helpers keep the
//! *contents* host-side for correctness, while driving the simulated CPU
//! with the access pattern of the real structure: bucket-array chases,
//! entry-chain walks, run writes and merge reads.

use crate::tuple::Row;
use crate::value::Value;
use simcore::{Cpu, Dep, ExecOp, Region};

/// A chaining hash table over a simulated bucket array + entry arena.
pub struct SimHashTable {
    buckets: u64,
    region: Region,
    entry_bytes: u64,
    entries_base: u64,
    n_entries: u64,
    capacity: u64,
    map: Vec<Vec<(Value, Row)>>,
}

impl SimHashTable {
    /// Build for an expected entry count; `entry_bytes` approximates one
    /// entry's footprint (key + row payload + next pointer).
    pub fn new(cpu: &mut Cpu, expected: u64, entry_bytes: u64) -> crate::Result<SimHashTable> {
        let entry_bytes = entry_bytes.clamp(16, 4096);
        let buckets = (expected.max(16)).next_power_of_two();
        let capacity = expected.max(16) * 2;
        let region = cpu.alloc(buckets * 8 + capacity * entry_bytes)?;
        Ok(Self::new_in(region, expected, entry_bytes))
    }

    /// Build inside a caller-provided region (lets engines reuse a warm
    /// per-database temp area instead of paying cold DRAM on every query,
    /// as a real allocator would).
    pub fn new_in(region: Region, expected: u64, entry_bytes: u64) -> SimHashTable {
        let entry_bytes = entry_bytes.clamp(16, 4096);
        let buckets = (expected.max(16))
            .next_power_of_two()
            .min((region.len / 16).next_power_of_two() / 2)
            .max(16);
        let capacity = ((region.len.saturating_sub(buckets * 8)) / entry_bytes).max(16);
        SimHashTable {
            buckets,
            region,
            entry_bytes,
            entries_base: region.addr + buckets * 8,
            n_entries: 0,
            capacity,
            map: (0..buckets).map(|_| Vec::new()).collect(),
        }
    }

    /// Number of entries inserted.
    pub fn len(&self) -> u64 {
        self.n_entries
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.n_entries == 0
    }

    /// Approximate simulated footprint in bytes (for work_mem accounting).
    pub fn footprint(&self) -> u64 {
        self.buckets * 8 + self.n_entries * self.entry_bytes
    }

    #[inline]
    fn bucket_of(&self, key: &Value) -> u64 {
        key.hash64() & (self.buckets - 1)
    }

    fn entry_addr(&self, i: u64) -> u64 {
        // Wrap over the arena region if the table grows past the estimate —
        // the simulation stays sound (same locality class), the host map
        // keeps correctness.
        self.entries_base + (i % self.capacity) * self.entry_bytes
    }

    /// Insert `key → row`: one bucket-head chase, a head update, and entry
    /// stores.
    pub fn insert(&mut self, cpu: &mut Cpu, key: Value, row: Row) {
        let b = self.bucket_of(&key);
        cpu.exec(ExecOp::Mul); // hash
        cpu.load(self.region.addr + b * 8, Dep::Chase); // bucket head
        cpu.store(self.region.addr + b * 8); // new head pointer
                                             // Entry header (key + next + row pointer) is one line; the row
                                             // payload itself was already materialised by the producer.
        let ea = self.entry_addr(self.n_entries);
        cpu.store(ea);
        cpu.store(ea + 8);
        self.map[b as usize].push((key, row));
        self.n_entries += 1;
    }

    /// Probe for `key`: bucket-head chase plus one chase per chain entry
    /// scanned (matches are compared; the chain is walked to its end as in
    /// a real bucket list with possible duplicates).
    pub fn probe(&self, cpu: &mut Cpu, key: &Value) -> &[(Value, Row)] {
        let b = self.bucket_of(key);
        cpu.exec(ExecOp::Mul);
        cpu.load(self.region.addr + b * 8, Dep::Chase);
        let chain = &self.map[b as usize];
        for i in 0..chain.len() as u64 {
            // Walk: load the entry's key line, compare, reload the matched
            // key word (an L1D hit on the same line).
            let ea = self.entry_addr(i);
            cpu.load(ea, Dep::Chase);
            cpu.load(ea + 8, Dep::Stream);
            cpu.exec(ExecOp::Branch);
        }
        chain
    }

    /// Iterate all `(key, row)` pairs (group-by finalisation): streaming
    /// reads over the entry area.
    pub fn drain_all(self, cpu: &mut Cpu) -> Vec<(Value, Row)> {
        let SimHashTable {
            region,
            entry_bytes,
            entries_base,
            n_entries,
            capacity,
            map,
            ..
        } = self;
        let entry_addr_raw = |b: u64, j: u64| entries_base + ((b * 7 + j) % capacity) * entry_bytes;
        let mut out = Vec::with_capacity(n_entries as usize);
        // Single-line runs keep the access sequence identical to scalar
        // loads while letting the warm bucket array ride the batched
        // L1D-hit path (8 heads per line).
        for (i, bucket) in map.into_iter().enumerate() {
            cpu.access_run(region.addr + i as u64 * 8, 1, false, Dep::Stream);
            for (j, kv) in bucket.into_iter().enumerate() {
                cpu.access_run(entry_addr_raw(i as u64, j as u64), 1, false, Dep::Stream);
                out.push(kv);
            }
        }
        out
    }
}

/// A sort area: rows are staged with simulated writes, sorted host-side
/// (the comparisons are charged), and drained with streaming reads. When the
/// staged bytes exceed `work_mem`, merge passes are charged like an external
/// sort (extra read+write sweep per pass plus spill I/O waits).
pub struct SimSorter {
    region: Region,
    row_bytes: u64,
    work_mem: u64,
    rows: Vec<(Vec<Value>, Row)>,
    staged_bytes: u64,
}

impl SimSorter {
    /// Build with an expected row count and approximate row footprint.
    pub fn new(
        cpu: &mut Cpu,
        expected: u64,
        row_bytes: u64,
        work_mem: u64,
    ) -> crate::Result<SimSorter> {
        let row_bytes = row_bytes.clamp(16, 1 << 16);
        let cap = expected.max(16) * row_bytes;
        let region = cpu.alloc(cap.min(work_mem.max(row_bytes * 16)))?;
        Ok(Self::new_in(region, row_bytes, work_mem))
    }

    /// Build inside a caller-provided (reusable, warm) region.
    pub fn new_in(region: Region, row_bytes: u64, work_mem: u64) -> SimSorter {
        SimSorter {
            region,
            row_bytes: row_bytes.clamp(16, 1 << 16),
            work_mem,
            rows: Vec::new(),
            staged_bytes: 0,
        }
    }

    /// Number of staged rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether nothing was staged.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Stage a row under its sort key.
    pub fn push(&mut self, cpu: &mut Cpu, key: Vec<Value>, row: Row) {
        let slot = self.staged_bytes % self.region.len.max(self.row_bytes);
        crate::page::touch_store(cpu, self.region.addr + slot, self.row_bytes);
        self.staged_bytes += self.row_bytes;
        self.rows.push((key, row));
    }

    /// Sort (charging comparisons) and return rows in key order.
    /// `descending[i]` flips the i-th key component.
    pub fn finish(mut self, cpu: &mut Cpu, descending: &[bool]) -> Vec<Row> {
        let n = self.rows.len() as u64;
        if n > 1 {
            // log2(n) merge/partition levels, each one sequential sweep of
            // the staged area (read + write back) plus a branch per element.
            // The first sweep is cold; later sweeps hit whatever cache level
            // the run size fits — the simulator prices that naturally.
            let levels = 64 - (n - 1).leading_zeros() as u64;
            let span = self.staged_bytes.min(self.region.len).max(self.row_bytes);
            for level in 0..levels {
                // Per element and level: read its key, read the record
                // start, write it to the destination, branch on the
                // comparison. Level ℓ of the recursion works on partitions
                // of span/2^ℓ — deep levels therefore revisit a window that
                // fits higher cache levels while it is hot, which is the
                // real locality structure of quicksort/mergesort. The
                // hierarchy prices the locality; we just issue the accesses.
                let window = (span >> level).max(self.row_bytes * 4).max(4096);
                for i in 0..n {
                    // Deep (hot-window) levels dominate this loop; the
                    // single-line runs are counter-identical to scalar
                    // load/load/store but take the batched L1D-hit path.
                    let src = self.region.addr + (i * self.row_bytes) % window;
                    cpu.access_run(src, 1, false, Dep::Stream);
                    cpu.access_run(src + 8, 1, false, Dep::Stream);
                    let dst =
                        self.region.addr + ((i * self.row_bytes) + window / 2 + level) % window;
                    cpu.access_run(dst, 1, true, Dep::Stream);
                    cpu.exec(ExecOp::Branch);
                }
            }
        }
        // External merge passes if we exceeded work_mem.
        if self.staged_bytes > self.work_mem && self.work_mem > 0 {
            let mut runs = self.staged_bytes.div_ceil(self.work_mem);
            while runs > 1 {
                // One full read+write sweep per merge level + spill latency.
                cpu.idle_c0(200e-6);
                let sweep = self.staged_bytes.min(self.region.len);
                crate::page::touch(cpu, self.region.addr, sweep, Dep::Stream);
                crate::page::touch_store(cpu, self.region.addr, sweep);
                runs = runs.div_ceil(8); // 8-way merge
            }
        }
        self.rows.sort_by(|(a, _), (b, _)| {
            for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                let ord = x.sql_cmp(y).unwrap_or(std::cmp::Ordering::Equal);
                let ord = if descending.get(i).copied().unwrap_or(false) {
                    ord.reverse()
                } else {
                    ord
                };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        // Drain: stream the sorted area back.
        crate::page::touch(
            cpu,
            self.region.addr,
            self.staged_bytes.min(self.region.len),
            Dep::Stream,
        );
        self.rows.into_iter().map(|(_, r)| r).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::ArchConfig;

    fn cpu() -> Cpu {
        Cpu::new(ArchConfig::intel_i7_4790())
    }

    #[test]
    fn hash_insert_probe_roundtrip() {
        let mut c = cpu();
        let mut h = SimHashTable::new(&mut c, 100, 64).unwrap();
        for i in 0..100i64 {
            h.insert(&mut c, Value::Int(i % 10), vec![Value::Int(i)]);
        }
        assert_eq!(h.len(), 100);
        let hits = h.probe(&mut c, &Value::Int(3));
        let matching: Vec<_> = hits
            .iter()
            .filter(|(k, _)| k.group_eq(&Value::Int(3)))
            .collect();
        assert_eq!(matching.len(), 10);
    }

    #[test]
    fn probe_misses_return_no_match() {
        let mut c = cpu();
        let mut h = SimHashTable::new(&mut c, 10, 64).unwrap();
        h.insert(&mut c, Value::Int(1), vec![Value::Int(1)]);
        let hits = h.probe(&mut c, &Value::Int(999));
        assert!(hits.iter().all(|(k, _)| !k.group_eq(&Value::Int(999))));
    }

    #[test]
    fn hash_access_is_chasing() {
        let mut c = cpu();
        let mut h = SimHashTable::new(&mut c, 1000, 64).unwrap();
        let before = c.pmu_snapshot();
        for i in 0..1000i64 {
            h.insert(&mut c, Value::Int(i), vec![Value::Int(i)]);
        }
        let d = c.pmu_snapshot().delta(&before);
        assert!(
            d.get(simcore::Event::StallCycles) > 0,
            "hash builds should stall"
        );
    }

    #[test]
    fn growing_past_estimate_is_sound() {
        let mut c = cpu();
        let mut h = SimHashTable::new(&mut c, 4, 64).unwrap();
        for i in 0..100i64 {
            h.insert(&mut c, Value::Int(i), vec![Value::Int(i)]);
        }
        assert_eq!(h.len(), 100);
        let hits = h.probe(&mut c, &Value::Int(42));
        assert!(hits.iter().any(|(k, _)| k.group_eq(&Value::Int(42))));
    }

    #[test]
    fn sorter_orders_with_directions() {
        let mut c = cpu();
        let mut s = SimSorter::new(&mut c, 10, 32, 1 << 20).unwrap();
        for i in [3i64, 1, 2] {
            s.push(&mut c, vec![Value::Int(i)], vec![Value::Int(i)]);
        }
        let asc = s.finish(&mut c, &[false]);
        assert_eq!(
            asc.iter()
                .map(|r| r[0].as_int().unwrap())
                .collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        let mut s = SimSorter::new(&mut c, 10, 32, 1 << 20).unwrap();
        for i in [3i64, 1, 2] {
            s.push(&mut c, vec![Value::Int(i)], vec![Value::Int(i)]);
        }
        let desc = s.finish(&mut c, &[true]);
        assert_eq!(
            desc.iter()
                .map(|r| r[0].as_int().unwrap())
                .collect::<Vec<_>>(),
            vec![3, 2, 1]
        );
    }

    #[test]
    fn multi_key_sort_is_stable_over_components() {
        let mut c = cpu();
        let mut s = SimSorter::new(&mut c, 10, 32, 1 << 20).unwrap();
        for (a, b) in [(1i64, 2i64), (0, 9), (1, 1), (0, 3)] {
            s.push(
                &mut c,
                vec![Value::Int(a), Value::Int(b)],
                vec![Value::Int(a), Value::Int(b)],
            );
        }
        let rows = s.finish(&mut c, &[false, false]);
        let keys: Vec<(i64, i64)> = rows
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(keys, vec![(0, 3), (0, 9), (1, 1), (1, 2)]);
    }

    #[test]
    fn small_work_mem_charges_spill_time() {
        let mut c1 = cpu();
        let mut big = SimSorter::new(&mut c1, 1000, 64, 1 << 20).unwrap();
        for i in 0..1000i64 {
            big.push(&mut c1, vec![Value::Int(i)], vec![Value::Int(i)]);
        }
        big.finish(&mut c1, &[false]);
        let t_mem = c1.time_s();

        let mut c2 = cpu();
        let mut small = SimSorter::new(&mut c2, 1000, 64, 4096).unwrap();
        for i in 0..1000i64 {
            small.push(&mut c2, vec![Value::Int(i)], vec![Value::Int(i)]);
        }
        small.finish(&mut c2, &[false]);
        assert!(c2.time_s() > t_mem, "spilling sort must cost more time");
    }
}
