//! The 7 basic query operations of Fig. 6.
//!
//! Select, projection, join, sort, group-by, table scan and index scan, each
//! over the TPC-H data, profiled per engine with the baseline configuration.

use crate::tpch::gen::{schema_customer, schema_lineitem, schema_orders};
use engines::Plan;
use storage::{AggFn, AggSpec, CmpOp, Expr};

/// One basic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BasicOp {
    /// Filtered scan (moderate selectivity).
    Select,
    /// Column projection over a full scan.
    Projection,
    /// Equi-join of two tables.
    Join,
    /// Full-table sort.
    Sort,
    /// Grouped aggregation.
    GroupBy,
    /// Unfiltered full scan.
    TableScan,
    /// Secondary-index range scan.
    IndexScan,
}

impl BasicOp {
    /// All seven, in the paper's Fig. 6 order.
    pub const ALL: [BasicOp; 7] = [
        BasicOp::Select,
        BasicOp::Projection,
        BasicOp::Join,
        BasicOp::Sort,
        BasicOp::GroupBy,
        BasicOp::TableScan,
        BasicOp::IndexScan,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BasicOp::Select => "Select",
            BasicOp::Projection => "Projection",
            BasicOp::Join => "Join",
            BasicOp::Sort => "Sort",
            BasicOp::GroupBy => "Groupby",
            BasicOp::TableScan => "Table scan",
            BasicOp::IndexScan => "Index scan",
        }
    }

    /// The plan (over the TPC-H tables).
    pub fn plan(&self) -> Plan {
        let o = |c: &str| schema_orders().col_expect(c);
        let l = |c: &str| schema_lineitem().col_expect(c);
        let cu = |c: &str| schema_customer().col_expect(c);
        match self {
            BasicOp::Select => Plan::scan_where(
                "lineitem",
                Expr::cmp(CmpOp::Lt, Expr::col(l("l_quantity")), Expr::float(25.0)),
            ),
            BasicOp::Projection => Plan::Scan {
                table: "lineitem".into(),
                filter: None,
                project: Some(vec![
                    Expr::col(l("l_orderkey")),
                    Expr::col(l("l_extendedprice")),
                    Expr::col(l("l_shipdate")),
                ]),
            },
            BasicOp::Join => {
                Plan::scan("customer").join(Plan::scan("orders"), cu("c_custkey"), o("o_custkey"))
            }
            BasicOp::Sort => Plan::scan("orders").sort(vec![(o("o_totalprice"), true)]),
            BasicOp::GroupBy => Plan::scan("lineitem").aggregate(
                vec![l("l_returnflag")],
                vec![
                    AggSpec::count_star(),
                    AggSpec::over(AggFn::Sum, Expr::col(l("l_extendedprice"))),
                ],
            ),
            BasicOp::TableScan => Plan::scan("lineitem"),
            // "The difference of both index scan and table scan is scan
            // table using the index (B tree) or not" (§3.3): same rows,
            // index order — pointer chasing and weak heap locality.
            BasicOp::IndexScan => Plan::IndexRange {
                table: "orders".into(),
                col: "o_custkey".into(),
                lo: Some(0),
                hi: Some(i64::MAX / 2),
                filter: None,
                project: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::gen::{build_tpch_db, TpchScale};
    use engines::{EngineKind, KnobLevel};
    use simcore::{ArchConfig, Cpu};

    #[test]
    fn every_basic_op_runs_on_every_engine() {
        for kind in EngineKind::ALL {
            let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
            let mut db =
                build_tpch_db(&mut cpu, kind, KnobLevel::Baseline, TpchScale::tiny()).unwrap();
            for op in BasicOp::ALL {
                let rows = db.session().run(&mut cpu, &op.plan()).unwrap();
                assert!(
                    !rows.is_empty(),
                    "{} on {:?} returned nothing",
                    op.name(),
                    kind
                );
            }
        }
    }

    #[test]
    fn index_scan_equals_filtered_scan() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut db = build_tpch_db(
            &mut cpu,
            EngineKind::Pg,
            KnobLevel::Baseline,
            TpchScale::tiny(),
        )
        .unwrap();
        let o = |c: &str| schema_orders().col_expect(c);
        let via_index = db
            .session()
            .run(&mut cpu, &BasicOp::IndexScan.plan())
            .unwrap();
        let via_scan = db
            .session()
            .run(
                &mut cpu,
                &Plan::scan_where(
                    "orders",
                    Expr::cmp(CmpOp::Ge, Expr::col(o("o_custkey")), Expr::int(0)),
                ),
            )
            .unwrap();
        let canon = |mut v: Vec<storage::Row>| {
            v.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            v
        };
        assert_eq!(canon(via_index), canon(via_scan));
    }

    #[test]
    fn index_scan_has_weaker_locality_than_table_scan() {
        // §3.3: "the percent of EL1D+EReg2L1D reduces and Estall increases
        // for index scan compared with table scan". Check the raw signal:
        // stall cycles per load are higher for the index scan.
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut db = build_tpch_db(
            &mut cpu,
            EngineKind::Pg,
            KnobLevel::Baseline,
            TpchScale::tiny(),
        )
        .unwrap();
        // Warm both paths once.
        db.session()
            .run(&mut cpu, &BasicOp::TableScan.plan())
            .unwrap();
        db.session()
            .run(&mut cpu, &BasicOp::IndexScan.plan())
            .unwrap();

        let m_scan = cpu.measure(|c| {
            db.session().run(c, &BasicOp::TableScan.plan()).unwrap();
        });
        let m_index = cpu.measure(|c| {
            db.session().run(c, &BasicOp::IndexScan.plan()).unwrap();
        });
        let stall_per_load = |m: &simcore::Measurement| {
            m.pmu.get(simcore::Event::StallCycles) as f64
                / m.pmu.get(simcore::Event::LoadIssued).max(1) as f64
        };
        assert!(
            stall_per_load(&m_index) > stall_per_load(&m_scan),
            "index scan should stall more per load: {} vs {}",
            stall_per_load(&m_index),
            stall_per_load(&m_scan)
        );
    }
}
