//! Synthetic kernels with the characteristic access/compute mixes of the
//! nine SPEC CPU2006 workloads in Fig. 10.
//!
//! The paper's point is a *contrast*: unlike query workloads, CPU-bound
//! workloads have heterogeneous energy distributions and a far smaller
//! `E_L1D + E_Reg2L1D` share (11% on average; as low as 5.6% for mcf and
//! libquantum). Each kernel here reproduces the dominant micro-architectural
//! behaviour of its namesake: working-set size, pointer-chasing vs.
//! streaming, branchiness, store intensity, and ALU mix.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simcore::{Cpu, Dep, ExecOp};

/// The nine Fig. 10 workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cpu2006 {
    /// Compression: small tables, heavy byte shuffling (loads+stores+ALU).
    Bzip2,
    /// Interpreter: hash lookups + very branchy dispatch.
    Perlbench,
    /// Compiler: pointer-heavy IR walks over a multi-MB working set.
    Gcc,
    /// Network simplex: pointer chasing over a huge graph (memory-bound).
    Mcf,
    /// Go engine: branchy board evaluation over a small working set.
    Gobmk,
    /// Chess engine: search + transposition-table probes.
    Sjeng,
    /// Quantum simulation: long streaming sweeps over a large array.
    Libquantum,
    /// Video encoder: block copies + multiply-heavy transforms.
    H264ref,
    /// Pathfinding: pointer chasing over a mid-size graph + branches.
    Astar,
}

impl Cpu2006 {
    /// All nine, in Fig. 10 order.
    pub const ALL: [Cpu2006; 9] = [
        Cpu2006::Bzip2,
        Cpu2006::Perlbench,
        Cpu2006::Gcc,
        Cpu2006::Mcf,
        Cpu2006::Gobmk,
        Cpu2006::Sjeng,
        Cpu2006::Libquantum,
        Cpu2006::H264ref,
        Cpu2006::Astar,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Cpu2006::Bzip2 => "Bzip2",
            Cpu2006::Perlbench => "Perlbench",
            Cpu2006::Gcc => "Gcc",
            Cpu2006::Mcf => "Mcf",
            Cpu2006::Gobmk => "Gobmk",
            Cpu2006::Sjeng => "Jseng",
            Cpu2006::Libquantum => "Libquantum",
            Cpu2006::H264ref => "H264ref",
            Cpu2006::Astar => "Astar",
        }
    }

    /// Run roughly `budget` characteristic iterations on `cpu`.
    ///
    /// The prefetcher should be **on** (these model ordinary binaries on the
    /// measurement machine).
    pub fn run(&self, cpu: &mut Cpu, budget: u64) {
        let mut rng = SmallRng::seed_from_u64(0xc0de + *self as u64);
        // Every kernel keeps function locals / spilled registers on a hot
        // stack page: a couple of L1D loads and a store per iteration.
        // Without this, compiled code's baseline L1D traffic is missing and
        // the L1D share collapses below even the paper's CPU-bound levels.
        let stack = cpu.alloc(4096).expect("stack page");
        let stack_touch = |cpu: &mut Cpu, i: u64| {
            let a = stack.addr + (i % 64) * 64;
            cpu.load(a, Dep::Stream);
            cpu.load(stack.addr, Dep::Stream);
            cpu.store(a);
        };
        match self {
            Cpu2006::Bzip2 => {
                // Move-to-front + RLE flavour: stream a 256 KB block, store
                // back, lots of adds and branches.
                let buf = cpu.alloc(256 * 1024).expect("bzip2 buffer");
                let lines = buf.len / 64;
                for i in 0..budget {
                    let a = buf.addr + (i % lines) * 64;
                    cpu.load(a, Dep::Stream);
                    stack_touch(cpu, i);
                    cpu.exec_n(ExecOp::Add, 3);
                    cpu.exec(ExecOp::Branch);
                    cpu.store(a);
                }
            }
            Cpu2006::Perlbench => {
                // Opcode dispatch: small hash of 512 KB, branch storms.
                let heap = cpu.alloc(512 * 1024).expect("perl heap");
                let lines = heap.len / 64;
                for i in 0..budget {
                    let a = heap.addr + rng.gen_range(0..lines) * 64;
                    cpu.load(a, Dep::Chase);
                    stack_touch(cpu, i);
                    cpu.exec_n(ExecOp::Branch, 4);
                    cpu.exec_n(ExecOp::Add, 2);
                    cpu.exec(ExecOp::Generic);
                }
            }
            Cpu2006::Gcc => {
                // IR walks: pointer chases over 4 MB with moderate ALU.
                let ir = cpu.alloc(4 * 1024 * 1024).expect("gcc ir");
                let lines = ir.len / 64;
                for i in 0..budget {
                    let a = ir.addr + rng.gen_range(0..lines) * 64;
                    cpu.load(a, Dep::Chase);
                    stack_touch(cpu, i);
                    cpu.exec_n(ExecOp::Generic, 3);
                    cpu.exec(ExecOp::Branch);
                    if rng.gen_bool(0.2) {
                        cpu.store(a);
                    }
                }
            }
            Cpu2006::Mcf => {
                // Network simplex: chase over 48 MB, almost no compute —
                // the archetypal memory-bound workload.
                let graph = cpu.alloc(48 * 1024 * 1024).expect("mcf graph");
                let lines = graph.len / 64;
                for _ in 0..budget {
                    let a = graph.addr + rng.gen_range(0..lines) * 64;
                    cpu.load(a, Dep::Chase);
                    cpu.exec(ExecOp::Add);
                }
            }
            Cpu2006::Gobmk => {
                // Board evaluation: 64 KB board state, branch-dominated.
                let board = cpu.alloc(64 * 1024).expect("go board");
                let lines = board.len / 64;
                for i in 0..budget {
                    let a = board.addr + (i * 7 % lines) * 64;
                    cpu.load(a, Dep::Stream);
                    stack_touch(cpu, i);
                    cpu.exec_n(ExecOp::Branch, 6);
                    cpu.exec_n(ExecOp::Add, 3);
                }
            }
            Cpu2006::Sjeng => {
                // Search + transposition table probes into 2 MB.
                let tt = cpu.alloc(2 * 1024 * 1024).expect("tt");
                let lines = tt.len / 64;
                for i in 0..budget {
                    let a = tt.addr + rng.gen_range(0..lines) * 64;
                    cpu.load(a, Dep::Chase);
                    stack_touch(cpu, i);
                    cpu.exec_n(ExecOp::Branch, 3);
                    cpu.exec_n(ExecOp::Add, 2);
                    cpu.exec(ExecOp::Mul);
                }
            }
            Cpu2006::Libquantum => {
                // Gate application: long unit-stride sweeps over 32 MB with
                // one multiply per element — prefetch heaven, L1D reuse
                // nil.
                let state = cpu.alloc(32 * 1024 * 1024).expect("quantum state");
                let lines = state.len / 64;
                for i in 0..budget {
                    let a = state.addr + (i % lines) * 64;
                    cpu.load(a, Dep::Stream);
                    cpu.exec(ExecOp::Mul);
                    cpu.store(a);
                }
            }
            Cpu2006::H264ref => {
                // Motion compensation: block copies within 1 MB frames +
                // transforms.
                let frame = cpu.alloc(1024 * 1024).expect("frame");
                let lines = frame.len / 64;
                for i in 0..budget {
                    let src = frame.addr + (i % lines) * 64;
                    let dst = frame.addr + ((i + lines / 2) % lines) * 64;
                    cpu.load(src, Dep::Stream);
                    stack_touch(cpu, i);
                    cpu.exec_n(ExecOp::Mul, 2);
                    cpu.exec_n(ExecOp::Add, 2);
                    cpu.store(dst);
                }
            }
            Cpu2006::Astar => {
                // Open-list pops + neighbour expansion over 8 MB.
                let map = cpu.alloc(8 * 1024 * 1024).expect("map");
                let lines = map.len / 64;
                for i in 0..budget {
                    let a = map.addr + rng.gen_range(0..lines) * 64;
                    cpu.load(a, Dep::Chase);
                    stack_touch(cpu, i);
                    cpu.exec_n(ExecOp::Branch, 2);
                    cpu.exec_n(ExecOp::Add, 2);
                    if rng.gen_bool(0.3) {
                        cpu.store(a);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{ArchConfig, Event};

    fn measure(w: Cpu2006, budget: u64) -> simcore::Measurement {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        cpu.set_prefetch(true);
        w.run(&mut cpu, budget / 4); // warm
        cpu.measure(|c| w.run(c, budget))
    }

    #[test]
    fn mcf_is_memory_bound() {
        let m = measure(Cpu2006::Mcf, 20_000);
        let stall = m.pmu.get(Event::StallCycles) as f64;
        let busy = m.pmu.get(Event::BusyCycles) as f64;
        assert!(stall > busy * 2.0, "mcf must stall hard: {stall} vs {busy}");
    }

    #[test]
    fn gobmk_is_compute_bound() {
        let m = measure(Cpu2006::Gobmk, 20_000);
        let stall = m.pmu.get(Event::StallCycles) as f64;
        let busy = m.pmu.get(Event::BusyCycles) as f64;
        assert!(busy > stall * 2.0, "gobmk must be busy: {busy} vs {stall}");
    }

    #[test]
    fn libquantum_streams_through_dram_with_prefetch() {
        let m = measure(Cpu2006::Libquantum, 40_000);
        assert!(
            m.pmu.get(Event::PrefetchL2) + m.pmu.get(Event::PrefetchL3) > 0,
            "streamer must engage"
        );
        assert!(
            m.pmu.l1d_miss_rate().unwrap() > 0.5,
            "no L1D reuse expected"
        );
    }

    #[test]
    fn distributions_differ_across_kernels() {
        // The heterogeneity claim: instruction mixes must vary widely.
        let mixes: Vec<f64> = [Cpu2006::Mcf, Cpu2006::Gobmk, Cpu2006::H264ref]
            .iter()
            .map(|w| {
                let m = measure(*w, 10_000);
                m.pmu.get(Event::LoadIssued) as f64 / m.pmu.get(Event::Instructions).max(1) as f64
            })
            .collect();
        let spread = mixes.iter().cloned().fold(f64::MIN, f64::max)
            - mixes.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 0.15, "load shares too uniform: {mixes:?}");
    }

    #[test]
    fn all_kernels_run() {
        for w in Cpu2006::ALL {
            let m = measure(w, 2_000);
            assert!(m.pmu.get(Event::Instructions) > 0, "{} idle", w.name());
        }
    }
}
