//! Deterministic TPC-H-like data generation.
//!
//! The generator is seeded, so every engine instance sees identical data —
//! a precondition for the differential tests. Scale is expressed in "paper
//! megabytes" (the paper runs 100 MB / 500 MB / 1 GB); the harnesses default
//! to a reduced scale because the energy *distribution* is scale-invariant
//! (the paper's own Fig. 8 finding — our Fig. 8 harness re-verifies it).
//!
//! Row construction here is host-side and the bulk load/index build are
//! unsimulated setup (`bulk_insert` / `BTree::bulk_load`), so dataset
//! builds cost no simulated accesses; the query-time scans over the loaded
//! pages ride the batched `Cpu::access_run` fast path via `storage::page`.

use super::date;
use engines::{Database, EngineKind, KnobLevel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simcore::Cpu;
use storage::{Row, Schema, Ty, Value};

/// Data volume in "paper megabytes".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpchScale(pub f64);

impl TpchScale {
    /// The harness default: a reduced-scale stand-in for the paper's 100 MB
    /// baseline (distribution-faithful, simulation-tractable).
    pub fn baseline() -> TpchScale {
        TpchScale(4.0)
    }

    /// Tiny scale for unit tests.
    pub fn tiny() -> TpchScale {
        TpchScale(0.5)
    }

    /// Lineitem row count at this scale (TPC-H SF0.1 ≈ 100 MB ≈ 600 k rows).
    pub fn lineitem_rows(&self) -> u64 {
        (self.0 * 6000.0) as u64
    }

    /// Orders row count (¼ of lineitem).
    pub fn orders_rows(&self) -> u64 {
        self.lineitem_rows() / 4
    }

    /// Customer row count.
    pub fn customer_rows(&self) -> u64 {
        (self.orders_rows() / 10).max(10)
    }

    /// Part row count.
    pub fn part_rows(&self) -> u64 {
        (self.lineitem_rows() / 30).max(20)
    }

    /// Supplier row count.
    pub fn supplier_rows(&self) -> u64 {
        (self.part_rows() / 20).max(5)
    }

    /// Partsupp row count.
    pub fn partsupp_rows(&self) -> u64 {
        self.part_rows() * 4
    }
}

// Schemas --------------------------------------------------------------

/// `region(r_regionkey, r_name)`
pub fn schema_region() -> Schema {
    Schema::new([("r_regionkey", Ty::Int), ("r_name", Ty::Str)])
}

/// `nation(n_nationkey, n_name, n_regionkey)`
pub fn schema_nation() -> Schema {
    Schema::new([
        ("n_nationkey", Ty::Int),
        ("n_name", Ty::Str),
        ("n_regionkey", Ty::Int),
    ])
}

/// `supplier(s_suppkey, s_name, s_nationkey, s_acctbal, s_comment)`
pub fn schema_supplier() -> Schema {
    Schema::new([
        ("s_suppkey", Ty::Int),
        ("s_name", Ty::Str),
        ("s_nationkey", Ty::Int),
        ("s_acctbal", Ty::Float),
        ("s_comment", Ty::Str),
    ])
}

/// `customer(c_custkey, c_name, c_nationkey, c_acctbal, c_mktsegment, c_phone)`
pub fn schema_customer() -> Schema {
    Schema::new([
        ("c_custkey", Ty::Int),
        ("c_name", Ty::Str),
        ("c_nationkey", Ty::Int),
        ("c_acctbal", Ty::Float),
        ("c_mktsegment", Ty::Str),
        ("c_phone", Ty::Str),
    ])
}

/// `part(p_partkey, p_name, p_mfgr, p_brand, p_type, p_size, p_container, p_retailprice)`
pub fn schema_part() -> Schema {
    Schema::new([
        ("p_partkey", Ty::Int),
        ("p_name", Ty::Str),
        ("p_mfgr", Ty::Str),
        ("p_brand", Ty::Str),
        ("p_type", Ty::Str),
        ("p_size", Ty::Int),
        ("p_container", Ty::Str),
        ("p_retailprice", Ty::Float),
    ])
}

/// `partsupp(ps_partkey, ps_suppkey, ps_availqty, ps_supplycost)`
pub fn schema_partsupp() -> Schema {
    Schema::new([
        ("ps_partkey", Ty::Int),
        ("ps_suppkey", Ty::Int),
        ("ps_availqty", Ty::Int),
        ("ps_supplycost", Ty::Float),
    ])
}

/// `orders(o_orderkey, o_custkey, o_orderstatus, o_totalprice, o_orderdate,
/// o_orderpriority, o_shippriority)`
pub fn schema_orders() -> Schema {
    Schema::new([
        ("o_orderkey", Ty::Int),
        ("o_custkey", Ty::Int),
        ("o_orderstatus", Ty::Str),
        ("o_totalprice", Ty::Float),
        ("o_orderdate", Ty::Date),
        ("o_orderpriority", Ty::Str),
        ("o_shippriority", Ty::Int),
    ])
}

/// `lineitem(l_orderkey, l_partkey, l_suppkey, l_linenumber, l_quantity,
/// l_extendedprice, l_discount, l_tax, l_returnflag, l_linestatus,
/// l_shipdate, l_commitdate, l_receiptdate, l_shipmode)`
pub fn schema_lineitem() -> Schema {
    Schema::new([
        ("l_orderkey", Ty::Int),
        ("l_partkey", Ty::Int),
        ("l_suppkey", Ty::Int),
        ("l_linenumber", Ty::Int),
        ("l_quantity", Ty::Float),
        ("l_extendedprice", Ty::Float),
        ("l_discount", Ty::Float),
        ("l_tax", Ty::Float),
        ("l_returnflag", Ty::Str),
        ("l_linestatus", Ty::Str),
        ("l_shipdate", Ty::Date),
        ("l_commitdate", Ty::Date),
        ("l_receiptdate", Ty::Date),
        ("l_shipmode", Ty::Str),
    ])
}

/// The five region names.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
/// The 25 nation names.
pub const NATIONS: [&str; 25] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
];
/// Market segments.
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
/// Ship modes.
pub const MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
/// Order priorities.
pub const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
/// Part type syllables.
pub const TYPES: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// Part containers.
pub const CONTAINERS: [&str; 5] = ["SM CASE", "MED BOX", "LG BOX", "JUMBO PKG", "WRAP BAG"];

fn pick<'a>(rng: &mut SmallRng, xs: &'a [&str]) -> &'a str {
    xs[rng.gen_range(0..xs.len())]
}

/// Short pseudo-comment text.
fn comment_text(rng: &mut SmallRng, i: u64) -> String {
    let words = [
        "carefully",
        "quickly",
        "final",
        "pending",
        "special",
        "ironic",
        "express",
    ];
    format!(
        "{} {} deposits {}",
        pick(rng, &words),
        pick(rng, &words),
        i % 97
    )
}

/// Generate all eight tables at `scale` (deterministic for a fixed seed).
pub struct TpchData {
    /// region rows.
    pub region: Vec<Row>,
    /// nation rows.
    pub nation: Vec<Row>,
    /// supplier rows.
    pub supplier: Vec<Row>,
    /// customer rows.
    pub customer: Vec<Row>,
    /// part rows.
    pub part: Vec<Row>,
    /// partsupp rows.
    pub partsupp: Vec<Row>,
    /// orders rows.
    pub orders: Vec<Row>,
    /// lineitem rows.
    pub lineitem: Vec<Row>,
}

/// Generate a dataset.
pub fn generate(scale: TpchScale, seed: u64) -> TpchData {
    let mut rng = SmallRng::seed_from_u64(seed);

    let region: Vec<Row> = REGIONS
        .iter()
        .enumerate()
        .map(|(i, r)| vec![Value::Int(i as i64), Value::Str((*r).into())])
        .collect();

    let nation: Vec<Row> = NATIONS
        .iter()
        .enumerate()
        .map(|(i, n)| {
            vec![
                Value::Int(i as i64),
                Value::Str((*n).into()),
                Value::Int((i % 5) as i64),
            ]
        })
        .collect();

    let n_supp = scale.supplier_rows();
    let supplier: Vec<Row> = (0..n_supp)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Str(format!("Supplier#{i:06}")),
                Value::Int(rng.gen_range(0..25)),
                Value::Float(rng.gen_range(-999.0..9999.0)),
                Value::Str(comment_text(&mut rng, i)),
            ]
        })
        .collect();

    let n_cust = scale.customer_rows();
    let customer: Vec<Row> = (0..n_cust)
        .map(|i| {
            let nat = rng.gen_range(0..25i64);
            vec![
                Value::Int(i as i64),
                Value::Str(format!("Customer#{i:08}")),
                Value::Int(nat),
                Value::Float(rng.gen_range(-999.0..9999.0)),
                Value::Str(pick(&mut rng, &SEGMENTS).into()),
                Value::Str(format!("{}-{:03}-{:04}", 10 + nat, i % 1000, i % 10000)),
            ]
        })
        .collect();

    let n_part = scale.part_rows();
    let part: Vec<Row> = (0..n_part)
        .map(|i| {
            let ty = format!(
                "{} {} {}",
                pick(&mut rng, &TYPES),
                pick(&mut rng, &["ANODIZED", "BURNISHED", "PLATED", "POLISHED"]),
                pick(&mut rng, &["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]),
            );
            vec![
                Value::Int(i as i64),
                Value::Str(format!(
                    "part {} {}",
                    pick(&mut rng, &["green", "blue", "red", "ivory", "forest"]),
                    i
                )),
                Value::Str(format!("Manufacturer#{}", 1 + i % 5)),
                Value::Str(format!("Brand#{}{}", 1 + i % 5, 1 + (i / 5) % 5)),
                Value::Str(ty),
                Value::Int(rng.gen_range(1..=50)),
                Value::Str(pick(&mut rng, &CONTAINERS).into()),
                Value::Float(900.0 + (i % 1000) as f64),
            ]
        })
        .collect();

    let partsupp: Vec<Row> = (0..scale.partsupp_rows())
        .map(|i| {
            vec![
                Value::Int((i / 4) as i64),
                Value::Int(((i * 7 + i / 4) % n_supp.max(1)) as i64),
                Value::Int(rng.gen_range(1..10000)),
                Value::Float(rng.gen_range(1.0..1000.0)),
            ]
        })
        .collect();

    let epoch_lo = date(1992, 1, 1);
    let epoch_hi = date(1998, 8, 2);
    let n_orders = scale.orders_rows();
    let mut orders: Vec<Row> = Vec::with_capacity(n_orders as usize);
    let mut lineitem: Vec<Row> = Vec::with_capacity(scale.lineitem_rows() as usize);
    for o in 0..n_orders {
        let odate = rng.gen_range(epoch_lo..epoch_hi);
        let status = if odate < date(1995, 6, 17) { "F" } else { "O" };
        orders.push(vec![
            Value::Int(o as i64),
            Value::Int(rng.gen_range(0..n_cust.max(1)) as i64),
            Value::Str(status.into()),
            Value::Float(rng.gen_range(850.0..550_000.0)),
            Value::Date(odate),
            Value::Str(pick(&mut rng, &PRIORITIES).into()),
            Value::Int(0),
        ]);
        let lines = rng
            .gen_range(1..=7)
            .min((scale.lineitem_rows() as i64 - lineitem.len() as i64).max(0));
        for ln in 0..lines {
            let ship = odate + rng.gen_range(1..122);
            let commit = odate + rng.gen_range(30..91);
            let receipt = ship + rng.gen_range(1..31);
            let qty = rng.gen_range(1..=50) as f64;
            let price = qty * rng.gen_range(900.0..2000.0);
            lineitem.push(vec![
                Value::Int(o as i64),
                Value::Int(rng.gen_range(0..n_part.max(1)) as i64),
                Value::Int(rng.gen_range(0..n_supp.max(1)) as i64),
                Value::Int(ln),
                Value::Float(qty),
                Value::Float(price),
                Value::Float((rng.gen_range(0..=10) as f64) / 100.0),
                Value::Float((rng.gen_range(0..=8) as f64) / 100.0),
                Value::Str(
                    if receipt <= date(1995, 6, 17) {
                        if rng.gen_bool(0.5) {
                            "R"
                        } else {
                            "A"
                        }
                    } else {
                        "N"
                    }
                    .into(),
                ),
                Value::Str(if ship > date(1995, 6, 17) { "O" } else { "F" }.into()),
                Value::Date(ship),
                Value::Date(commit),
                Value::Date(receipt),
                Value::Str(pick(&mut rng, &MODES).into()),
            ]);
        }
    }

    TpchData {
        region,
        nation,
        supplier,
        customer,
        part,
        partsupp,
        orders,
        lineitem,
    }
}

/// Build a fully loaded and indexed database for one engine.
///
/// Cluster keys and secondary indexes follow common practice for TPC-H:
/// every table clusters on its first key; orders gets `o_custkey` +
/// `o_orderdate` secondaries, lineitem gets `l_shipdate` + `l_partkey` +
/// `l_suppkey`, customer/supplier get their nation keys.
pub fn build_tpch_db(
    cpu: &mut Cpu,
    kind: EngineKind,
    level: KnobLevel,
    scale: TpchScale,
) -> storage::Result<Database> {
    let data = generate(scale, 0x7c_b0_55);
    let mut db = Database::new(kind, level);
    db.create_table("region", schema_region(), Some("r_regionkey"))?;
    db.create_table("nation", schema_nation(), Some("n_nationkey"))?;
    db.create_table("supplier", schema_supplier(), Some("s_suppkey"))?;
    db.create_table("customer", schema_customer(), Some("c_custkey"))?;
    db.create_table("part", schema_part(), Some("p_partkey"))?;
    db.create_table("partsupp", schema_partsupp(), Some("ps_partkey"))?;
    db.create_table("orders", schema_orders(), Some("o_orderkey"))?;
    db.create_table("lineitem", schema_lineitem(), Some("l_orderkey"))?;

    db.load_rows(cpu, "region", data.region)?;
    db.load_rows(cpu, "nation", data.nation)?;
    db.load_rows(cpu, "supplier", data.supplier)?;
    db.load_rows(cpu, "customer", data.customer)?;
    db.load_rows(cpu, "part", data.part)?;
    db.load_rows(cpu, "partsupp", data.partsupp)?;
    db.load_rows(cpu, "orders", data.orders)?;
    db.load_rows(cpu, "lineitem", data.lineitem)?;

    db.create_index(cpu, "orders", "o_custkey")?;
    db.create_index(cpu, "orders", "o_orderdate")?;
    db.create_index(cpu, "lineitem", "l_shipdate")?;
    db.create_index(cpu, "lineitem", "l_partkey")?;
    db.create_index(cpu, "lineitem", "l_suppkey")?;
    db.create_index(cpu, "customer", "c_nationkey")?;
    db.create_index(cpu, "supplier", "s_nationkey")?;
    db.create_index(cpu, "partsupp", "ps_suppkey")?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::ArchConfig;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(TpchScale::tiny(), 1);
        let b = generate(TpchScale::tiny(), 1);
        assert_eq!(a.lineitem.len(), b.lineitem.len());
        assert_eq!(a.lineitem[0], b.lineitem[0]);
        assert_eq!(a.customer[3], b.customer[3]);
        let c = generate(TpchScale::tiny(), 2);
        assert_ne!(a.lineitem[0], c.lineitem[0]);
    }

    #[test]
    fn row_counts_follow_ratios() {
        let s = TpchScale(2.0);
        let d = generate(s, 0);
        assert_eq!(d.region.len(), 5);
        assert_eq!(d.nation.len(), 25);
        assert_eq!(d.orders.len() as u64, s.orders_rows());
        let li = d.lineitem.len() as f64 / d.orders.len() as f64;
        assert!(li > 3.0 && li < 5.0, "lines per order {li}");
    }

    #[test]
    fn rows_satisfy_schemas() {
        let d = generate(TpchScale::tiny(), 0);
        for r in &d.lineitem {
            schema_lineitem().check(r).unwrap();
        }
        for r in &d.orders {
            schema_orders().check(r).unwrap();
        }
        for r in &d.part {
            schema_part().check(r).unwrap();
        }
    }

    #[test]
    fn lineitem_dates_are_consistent() {
        let d = generate(TpchScale::tiny(), 0);
        let s = schema_lineitem();
        let (ship, commit, receipt) = (
            s.col_expect("l_shipdate"),
            s.col_expect("l_commitdate"),
            s.col_expect("l_receiptdate"),
        );
        for r in &d.lineitem {
            let sd = r[ship].as_int().unwrap();
            let rd = r[receipt].as_int().unwrap();
            assert!(rd > sd, "receipt after ship");
            assert!(r[commit].as_int().unwrap() > 0);
        }
    }

    #[test]
    fn build_loads_all_tables_with_indexes() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let db = build_tpch_db(
            &mut cpu,
            EngineKind::Lite,
            KnobLevel::Baseline,
            TpchScale::tiny(),
        )
        .unwrap();
        let li = db.catalog().table("lineitem").unwrap();
        assert!(li.heap.len() > 1000);
        assert!(li.pk_index.is_some());
        assert_eq!(li.secondary.len(), 3);
        assert!(db.catalog().table("orders").unwrap().secondary.len() == 2);
    }
}
