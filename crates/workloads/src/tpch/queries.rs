//! Structurally representative plans for the 22 TPC-H queries.
//!
//! Each plan preserves the access pattern that matters for energy profiling
//! — which tables are scanned, which joins chase indexes, where grouping and
//! sorting happen — while simplifying SQL features our engines don't model
//! (correlated subqueries become joins/aggregations, `HAVING` becomes
//! top-N, `LEFT JOIN` becomes inner). Every simplification is the same for
//! all three engines, so differential correctness still holds, and the
//! workload mix (scan-heavy vs. join-heavy vs. aggregate-heavy) mirrors the
//! original suite. EXPERIMENTS.md lists the simplifications.

use super::date;
use super::gen::{
    schema_customer, schema_lineitem, schema_nation, schema_orders, schema_part, schema_partsupp,
    schema_region, schema_supplier,
};
use engines::Plan;
use storage::{AggFn, AggSpec, BinOp, CmpOp, Expr, Value};

/// One of the 22 queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TpchQuery(pub u8);

impl TpchQuery {
    /// All queries Q1..Q22.
    pub fn all() -> impl Iterator<Item = TpchQuery> {
        (1..=22).map(TpchQuery)
    }

    /// Display name (`Q1`..`Q22`).
    pub fn name(&self) -> String {
        format!("Q{}", self.0)
    }

    /// Build the logical plan.
    pub fn plan(&self) -> Plan {
        match self.0 {
            1 => q1(),
            2 => q2(),
            3 => q3(),
            4 => q4(),
            5 => q5(),
            6 => q6(),
            7 => q7(),
            8 => q8(),
            9 => q9(),
            10 => q10(),
            11 => q11(),
            12 => q12(),
            13 => q13(),
            14 => q14(),
            15 => q15(),
            16 => q16(),
            17 => q17(),
            18 => q18(),
            19 => q19(),
            20 => q20(),
            21 => q21(),
            22 => q22(),
            n => panic!("no such TPC-H query: Q{n}"),
        }
    }
}

// Column-index helpers (resolved once per builder call; plans are built once
// per experiment, never in inner loops).
fn li(c: &str) -> usize {
    schema_lineitem().col_expect(c)
}
fn ord(c: &str) -> usize {
    schema_orders().col_expect(c)
}
fn cust(c: &str) -> usize {
    schema_customer().col_expect(c)
}
fn supp(c: &str) -> usize {
    schema_supplier().col_expect(c)
}
fn part_(c: &str) -> usize {
    schema_part().col_expect(c)
}
fn ps(c: &str) -> usize {
    schema_partsupp().col_expect(c)
}
fn nat(c: &str) -> usize {
    schema_nation().col_expect(c)
}
fn reg(c: &str) -> usize {
    schema_region().col_expect(c)
}

const LI_W: usize = 14;
const ORD_W: usize = 7;
const CUST_W: usize = 6;
const SUPP_W: usize = 5;
const PART_W: usize = 8;
const PS_W: usize = 4;
const NAT_W: usize = 3;

fn c(i: usize) -> Expr {
    Expr::col(i)
}
fn eq_str(col: usize, s: &str) -> Expr {
    Expr::cmp(CmpOp::Eq, c(col), Expr::Lit(Value::Str(s.into())))
}
fn date_lit(d: i32) -> Expr {
    Expr::Lit(Value::Date(d))
}
fn revenue(extprice: usize, discount: usize) -> Expr {
    // l_extendedprice * (1 - l_discount)
    Expr::Bin(
        BinOp::Mul,
        Box::new(c(extprice)),
        Box::new(Expr::Bin(
            BinOp::Sub,
            Box::new(Expr::float(1.0)),
            Box::new(c(discount)),
        )),
    )
}
/// Approximate `EXTRACT(YEAR FROM d)` on day-since-epoch dates: integer
/// division by 365.25 is identical for every engine, which is all the
/// grouping needs.
fn year_of(col: usize) -> Expr {
    Expr::Bin(BinOp::Div, Box::new(c(col)), Box::new(Expr::int(365)))
}

/// Q1 — pricing summary report: one full lineitem scan, wide aggregation.
fn q1() -> Plan {
    let filter = Expr::cmp(CmpOp::Le, c(li("l_shipdate")), date_lit(date(1998, 9, 2)));
    Plan::scan_where("lineitem", filter)
        .aggregate(
            vec![li("l_returnflag"), li("l_linestatus")],
            vec![
                AggSpec::over(AggFn::Sum, c(li("l_quantity"))),
                AggSpec::over(AggFn::Sum, c(li("l_extendedprice"))),
                AggSpec::over(AggFn::Sum, revenue(li("l_extendedprice"), li("l_discount"))),
                AggSpec::over(
                    AggFn::Sum,
                    Expr::Bin(
                        BinOp::Mul,
                        Box::new(revenue(li("l_extendedprice"), li("l_discount"))),
                        Box::new(Expr::Bin(
                            BinOp::Add,
                            Box::new(Expr::float(1.0)),
                            Box::new(c(li("l_tax"))),
                        )),
                    ),
                ),
                AggSpec::over(AggFn::Avg, c(li("l_quantity"))),
                AggSpec::over(AggFn::Avg, c(li("l_extendedprice"))),
                AggSpec::over(AggFn::Avg, c(li("l_discount"))),
                AggSpec::count_star(),
            ],
        )
        .sort(vec![(0, false), (1, false)])
}

/// Q2 — minimum-cost supplier (simplified: the correlated min becomes a
/// deep join chain + top-N by account balance).
fn q2() -> Plan {
    let part = Plan::scan_where(
        "part",
        Expr::and_all([
            Expr::cmp(CmpOp::Eq, c(part_("p_size")), Expr::int(15)),
            Expr::Contains(Box::new(c(part_("p_type"))), "BRASS".into()),
        ]),
    );
    let o_ps = PART_W;
    let o_su = o_ps + PS_W;
    let o_na = o_su + SUPP_W;
    let o_re = o_na + NAT_W;
    Plan::Join {
        left: Box::new(
            part.join(Plan::scan("partsupp"), part_("p_partkey"), ps("ps_partkey"))
                .join(
                    Plan::scan("supplier"),
                    o_ps + ps("ps_suppkey"),
                    supp("s_suppkey"),
                )
                .join(
                    Plan::scan("nation"),
                    o_su + supp("s_nationkey"),
                    nat("n_nationkey"),
                ),
        ),
        right: Box::new(Plan::scan("region")),
        left_col: o_na + nat("n_regionkey"),
        right_col: reg("r_regionkey"),
        filter: Some(eq_str(o_re + reg("r_name"), "EUROPE")),
        project: Some(vec![
            c(o_su + supp("s_acctbal")),
            c(o_su + supp("s_name")),
            c(o_na + nat("n_name")),
            c(part_("p_partkey")),
            c(part_("p_mfgr")),
            c(o_ps + ps("ps_supplycost")),
        ]),
    }
    .top_n(vec![(0, true), (2, false), (1, false), (3, false)], 100)
}

/// Q3 — shipping priority: customer ⋈ orders ⋈ lineitem, group, top 10.
fn q3() -> Plan {
    let o_or = CUST_W;
    let o_li = o_or + ORD_W;
    let cutoff = date(1995, 3, 15);
    Plan::Join {
        left: Box::new(Plan::Join {
            left: Box::new(Plan::scan_where(
                "customer",
                eq_str(cust("c_mktsegment"), "BUILDING"),
            )),
            right: Box::new(Plan::scan("orders")),
            left_col: cust("c_custkey"),
            right_col: ord("o_custkey"),
            filter: Some(Expr::cmp(
                CmpOp::Lt,
                c(o_or + ord("o_orderdate")),
                date_lit(cutoff),
            )),
            project: None,
        }),
        right: Box::new(Plan::scan("lineitem")),
        left_col: o_or + ord("o_orderkey"),
        right_col: li("l_orderkey"),
        filter: Some(Expr::cmp(
            CmpOp::Gt,
            c(o_li + li("l_shipdate")),
            date_lit(cutoff),
        )),
        project: None,
    }
    .aggregate(
        vec![
            o_or + ord("o_orderkey"),
            o_or + ord("o_orderdate"),
            o_or + ord("o_shippriority"),
        ],
        vec![AggSpec::over(
            AggFn::Sum,
            revenue(o_li + li("l_extendedprice"), o_li + li("l_discount")),
        )],
    )
    .top_n(vec![(3, true), (1, false)], 10)
}

/// Q4 — order-priority checking (the `EXISTS` becomes a join on late
/// lineitems; counts are per-match rather than per-order for every engine).
fn q4() -> Plan {
    let o_li = ORD_W;
    Plan::Join {
        left: Box::new(Plan::scan_where(
            "orders",
            Expr::Between(
                Box::new(c(ord("o_orderdate"))),
                Value::Date(date(1993, 7, 1)),
                Value::Date(date(1993, 9, 30)),
            ),
        )),
        right: Box::new(Plan::scan("lineitem")),
        left_col: ord("o_orderkey"),
        right_col: li("l_orderkey"),
        filter: Some(Expr::cmp(
            CmpOp::Lt,
            c(o_li + li("l_commitdate")),
            c(o_li + li("l_receiptdate")),
        )),
        project: None,
    }
    .aggregate(vec![ord("o_orderpriority")], vec![AggSpec::count_star()])
    .sort(vec![(0, false)])
}

/// Q5 — local supplier volume: six-table join, group by nation.
fn q5() -> Plan {
    let o_or = CUST_W;
    let o_li = o_or + ORD_W;
    let o_su = o_li + LI_W;
    let o_na = o_su + SUPP_W;
    let o_re = o_na + NAT_W;
    Plan::Join {
        left: Box::new(Plan::Join {
            left: Box::new(Plan::Join {
                left: Box::new(Plan::Join {
                    left: Box::new(Plan::Join {
                        left: Box::new(Plan::scan("customer")),
                        right: Box::new(Plan::scan("orders")),
                        left_col: cust("c_custkey"),
                        right_col: ord("o_custkey"),
                        filter: Some(Expr::Between(
                            Box::new(c(o_or + ord("o_orderdate"))),
                            Value::Date(date(1994, 1, 1)),
                            Value::Date(date(1994, 12, 31)),
                        )),
                        project: None,
                    }),
                    right: Box::new(Plan::scan("lineitem")),
                    left_col: o_or + ord("o_orderkey"),
                    right_col: li("l_orderkey"),
                    filter: None,
                    project: None,
                }),
                right: Box::new(Plan::scan("supplier")),
                left_col: o_li + li("l_suppkey"),
                right_col: supp("s_suppkey"),
                // Local suppliers only: customer and supplier nations match.
                filter: Some(Expr::cmp(
                    CmpOp::Eq,
                    c(cust("c_nationkey")),
                    c(o_su + supp("s_nationkey")),
                )),
                project: None,
            }),
            right: Box::new(Plan::scan("nation")),
            left_col: o_su + supp("s_nationkey"),
            right_col: nat("n_nationkey"),
            filter: None,
            project: None,
        }),
        right: Box::new(Plan::scan("region")),
        left_col: o_na + nat("n_regionkey"),
        right_col: reg("r_regionkey"),
        filter: Some(eq_str(o_re + reg("r_name"), "ASIA")),
        project: None,
    }
    .aggregate(
        vec![o_na + nat("n_name")],
        vec![AggSpec::over(
            AggFn::Sum,
            revenue(o_li + li("l_extendedprice"), o_li + li("l_discount")),
        )],
    )
    .sort(vec![(1, true)])
}

/// Q6 — forecasting revenue change: pure scan + scalar aggregate.
fn q6() -> Plan {
    Plan::scan_where(
        "lineitem",
        Expr::and_all([
            Expr::Between(
                Box::new(c(li("l_shipdate"))),
                Value::Date(date(1994, 1, 1)),
                Value::Date(date(1994, 12, 31)),
            ),
            Expr::Between(
                Box::new(c(li("l_discount"))),
                Value::Float(0.05),
                Value::Float(0.07),
            ),
            Expr::cmp(CmpOp::Lt, c(li("l_quantity")), Expr::float(24.0)),
        ]),
    )
    .aggregate(
        vec![],
        vec![AggSpec::over(
            AggFn::Sum,
            Expr::Bin(
                BinOp::Mul,
                Box::new(c(li("l_extendedprice"))),
                Box::new(c(li("l_discount"))),
            ),
        )],
    )
}

/// Q7 — volume shipping between two nations, grouped by year.
fn q7() -> Plan {
    let o_li = SUPP_W;
    let o_or = o_li + LI_W;
    let o_cu = o_or + ORD_W;
    let o_n1 = o_cu + CUST_W;
    let o_n2 = o_n1 + NAT_W;
    let fr_de = Expr::And(
        Box::new(eq_str(o_n1 + nat("n_name"), "FRANCE")),
        Box::new(eq_str(o_n2 + nat("n_name"), "GERMANY")),
    );
    let de_fr = Expr::And(
        Box::new(eq_str(o_n1 + nat("n_name"), "GERMANY")),
        Box::new(eq_str(o_n2 + nat("n_name"), "FRANCE")),
    );
    Plan::Join {
        left: Box::new(
            Plan::scan("supplier")
                .join(Plan::scan("lineitem"), supp("s_suppkey"), li("l_suppkey"))
                .join(
                    Plan::scan("orders"),
                    o_li + li("l_orderkey"),
                    ord("o_orderkey"),
                )
                .join(
                    Plan::scan("customer"),
                    o_or + ord("o_custkey"),
                    cust("c_custkey"),
                )
                .join(
                    Plan::scan("nation"),
                    supp("s_nationkey"),
                    nat("n_nationkey"),
                ),
        ),
        right: Box::new(Plan::scan("nation")),
        left_col: o_cu + cust("c_nationkey"),
        right_col: nat("n_nationkey"),
        filter: Some(Expr::and_all([
            Expr::Or(Box::new(fr_de), Box::new(de_fr)),
            Expr::Between(
                Box::new(c(o_li + li("l_shipdate"))),
                Value::Date(date(1995, 1, 1)),
                Value::Date(date(1996, 12, 31)),
            ),
        ])),
        project: Some(vec![
            c(o_n1 + nat("n_name")),
            c(o_n2 + nat("n_name")),
            year_of(o_li + li("l_shipdate")),
            revenue(o_li + li("l_extendedprice"), o_li + li("l_discount")),
        ]),
    }
    .aggregate(vec![0, 1, 2], vec![AggSpec::over(AggFn::Sum, c(3))])
    .sort(vec![(0, false), (1, false), (2, false)])
}

/// Q8 — national market share within a region, by year.
fn q8() -> Plan {
    let o_li = PART_W;
    let o_or = o_li + LI_W;
    let o_cu = o_or + ORD_W;
    let o_n1 = o_cu + CUST_W;
    let o_re = o_n1 + NAT_W;
    let o_su = o_re + 2;
    let o_n2 = o_su + SUPP_W;
    let volume = revenue(o_li + li("l_extendedprice"), o_li + li("l_discount"));
    let is_brazil = eq_str(o_n2 + nat("n_name"), "BRAZIL");
    Plan::Join {
        left: Box::new(
            Plan::Join {
                left: Box::new(
                    Plan::scan_where(
                        "part",
                        Expr::Contains(Box::new(c(part_("p_type"))), "ECONOMY".into()),
                    )
                    .join(Plan::scan("lineitem"), part_("p_partkey"), li("l_partkey"))
                    .join(
                        Plan::scan("orders"),
                        o_li + li("l_orderkey"),
                        ord("o_orderkey"),
                    )
                    .join(
                        Plan::scan("customer"),
                        o_or + ord("o_custkey"),
                        cust("c_custkey"),
                    )
                    .join(
                        Plan::scan("nation"),
                        o_cu + cust("c_nationkey"),
                        nat("n_nationkey"),
                    ),
                ),
                right: Box::new(Plan::scan("region")),
                left_col: o_n1 + nat("n_regionkey"),
                right_col: reg("r_regionkey"),
                filter: Some(Expr::and_all([
                    eq_str(o_re + reg("r_name"), "AMERICA"),
                    Expr::Between(
                        Box::new(c(o_or + ord("o_orderdate"))),
                        Value::Date(date(1995, 1, 1)),
                        Value::Date(date(1996, 12, 31)),
                    ),
                ])),
                project: None,
            }
            .join(
                Plan::scan("supplier"),
                o_li + li("l_suppkey"),
                supp("s_suppkey"),
            ),
        ),
        right: Box::new(Plan::scan("nation")),
        left_col: o_su + supp("s_nationkey"),
        right_col: nat("n_nationkey"),
        filter: None,
        project: Some(vec![
            year_of(o_or + ord("o_orderdate")),
            Expr::Bin(BinOp::Mul, Box::new(volume.clone()), Box::new(is_brazil)),
            volume,
        ]),
    }
    .aggregate(
        vec![0],
        vec![
            AggSpec::over(AggFn::Sum, c(1)),
            AggSpec::over(AggFn::Sum, c(2)),
        ],
    )
    .sort(vec![(0, false)])
}

/// Q9 — product-type profit measure, by nation and year.
fn q9() -> Plan {
    let o_li = PART_W;
    let o_su = o_li + LI_W;
    let o_ps = o_su + SUPP_W;
    let o_or = o_ps + PS_W;
    let o_na = o_or + ORD_W;
    let amount = Expr::Bin(
        BinOp::Sub,
        Box::new(revenue(
            o_li + li("l_extendedprice"),
            o_li + li("l_discount"),
        )),
        Box::new(Expr::Bin(
            BinOp::Mul,
            Box::new(c(o_ps + ps("ps_supplycost"))),
            Box::new(c(o_li + li("l_quantity"))),
        )),
    );
    Plan::Join {
        left: Box::new(
            Plan::Join {
                left: Box::new(
                    Plan::scan_where(
                        "part",
                        Expr::Contains(Box::new(c(part_("p_name"))), "green".into()),
                    )
                    .join(Plan::scan("lineitem"), part_("p_partkey"), li("l_partkey"))
                    .join(
                        Plan::scan("supplier"),
                        o_li + li("l_suppkey"),
                        supp("s_suppkey"),
                    ),
                ),
                right: Box::new(Plan::scan("partsupp")),
                left_col: part_("p_partkey"),
                right_col: ps("ps_partkey"),
                // Match the partsupp row of this line's supplier.
                filter: Some(Expr::cmp(
                    CmpOp::Eq,
                    c(o_ps + ps("ps_suppkey")),
                    c(o_li + li("l_suppkey")),
                )),
                project: None,
            }
            .join(
                Plan::scan("orders"),
                o_li + li("l_orderkey"),
                ord("o_orderkey"),
            ),
        ),
        right: Box::new(Plan::scan("nation")),
        left_col: o_su + supp("s_nationkey"),
        right_col: nat("n_nationkey"),
        filter: None,
        project: Some(vec![
            c(o_na + nat("n_name")),
            year_of(o_or + ord("o_orderdate")),
            amount,
        ]),
    }
    .aggregate(vec![0, 1], vec![AggSpec::over(AggFn::Sum, c(2))])
    .sort(vec![(0, false), (1, true)])
}

/// Q10 — returned-item reporting: customer ⋈ orders ⋈ lineitem ⋈ nation.
fn q10() -> Plan {
    let o_or = CUST_W;
    let o_li = o_or + ORD_W;
    let o_na = o_li + LI_W;
    Plan::Join {
        left: Box::new(Plan::Join {
            left: Box::new(Plan::Join {
                left: Box::new(Plan::scan("customer")),
                right: Box::new(Plan::scan("orders")),
                left_col: cust("c_custkey"),
                right_col: ord("o_custkey"),
                filter: Some(Expr::Between(
                    Box::new(c(o_or + ord("o_orderdate"))),
                    Value::Date(date(1993, 10, 1)),
                    Value::Date(date(1993, 12, 31)),
                )),
                project: None,
            }),
            right: Box::new(Plan::scan("lineitem")),
            left_col: o_or + ord("o_orderkey"),
            right_col: li("l_orderkey"),
            filter: Some(eq_str(o_li + li("l_returnflag"), "R")),
            project: None,
        }),
        right: Box::new(Plan::scan("nation")),
        left_col: cust("c_nationkey"),
        right_col: nat("n_nationkey"),
        filter: None,
        project: None,
    }
    .aggregate(
        vec![
            cust("c_custkey"),
            cust("c_name"),
            cust("c_acctbal"),
            o_na + nat("n_name"),
            cust("c_phone"),
        ],
        vec![AggSpec::over(
            AggFn::Sum,
            revenue(o_li + li("l_extendedprice"), o_li + li("l_discount")),
        )],
    )
    .top_n(vec![(5, true)], 20)
}

/// Q11 — important stock identification in one nation.
fn q11() -> Plan {
    let o_su = NAT_W;
    let o_ps = o_su + SUPP_W;
    Plan::scan_where("nation", eq_str(nat("n_name"), "GERMANY"))
        .join(
            Plan::scan("supplier"),
            nat("n_nationkey"),
            supp("s_nationkey"),
        )
        .join(
            Plan::scan("partsupp"),
            o_su + supp("s_suppkey"),
            ps("ps_suppkey"),
        )
        .aggregate(
            vec![o_ps + ps("ps_partkey")],
            vec![AggSpec::over(
                AggFn::Sum,
                Expr::Bin(
                    BinOp::Mul,
                    Box::new(c(o_ps + ps("ps_supplycost"))),
                    Box::new(c(o_ps + ps("ps_availqty"))),
                ),
            )],
        )
        .top_n(vec![(1, true)], 100)
}

/// Q12 — shipping modes and order priority.
fn q12() -> Plan {
    let o_li = ORD_W;
    let high = Expr::Or(
        Box::new(eq_str(ord("o_orderpriority"), "1-URGENT")),
        Box::new(eq_str(ord("o_orderpriority"), "2-HIGH")),
    );
    let low = Expr::Not(Box::new(high.clone()));
    Plan::Join {
        left: Box::new(Plan::scan("orders")),
        right: Box::new(Plan::scan("lineitem")),
        left_col: ord("o_orderkey"),
        right_col: li("l_orderkey"),
        filter: Some(Expr::and_all([
            Expr::InList(
                Box::new(c(o_li + li("l_shipmode"))),
                vec![Value::Str("MAIL".into()), Value::Str("SHIP".into())],
            ),
            Expr::cmp(
                CmpOp::Lt,
                c(o_li + li("l_commitdate")),
                c(o_li + li("l_receiptdate")),
            ),
            Expr::cmp(
                CmpOp::Lt,
                c(o_li + li("l_shipdate")),
                c(o_li + li("l_commitdate")),
            ),
            Expr::Between(
                Box::new(c(o_li + li("l_receiptdate"))),
                Value::Date(date(1994, 1, 1)),
                Value::Date(date(1994, 12, 31)),
            ),
        ])),
        project: Some(vec![c(o_li + li("l_shipmode")), high, low]),
    }
    .aggregate(
        vec![0],
        vec![
            AggSpec::over(AggFn::Sum, c(1)),
            AggSpec::over(AggFn::Sum, c(2)),
        ],
    )
    .sort(vec![(0, false)])
}

/// Q13 — customer distribution (inner join stands in for the left join; the
/// zero-order bucket is absent for every engine alike).
fn q13() -> Plan {
    Plan::scan("customer")
        .join(Plan::scan("orders"), cust("c_custkey"), ord("o_custkey"))
        .aggregate(vec![cust("c_custkey")], vec![AggSpec::count_star()])
        .aggregate(vec![1], vec![AggSpec::count_star()])
        .sort(vec![(1, true), (0, true)])
}

/// Q14 — promotion effect: lineitem ⋈ part, two conditional sums.
fn q14() -> Plan {
    let o_pa = LI_W;
    let promo = Expr::StartsWith(Box::new(c(o_pa + part_("p_type"))), "PROMO".into());
    let rev = revenue(li("l_extendedprice"), li("l_discount"));
    Plan::Join {
        left: Box::new(Plan::scan_where(
            "lineitem",
            Expr::Between(
                Box::new(c(li("l_shipdate"))),
                Value::Date(date(1995, 9, 1)),
                Value::Date(date(1995, 9, 30)),
            ),
        )),
        right: Box::new(Plan::scan("part")),
        left_col: li("l_partkey"),
        right_col: part_("p_partkey"),
        filter: None,
        project: Some(vec![
            Expr::Bin(BinOp::Mul, Box::new(rev.clone()), Box::new(promo)),
            rev,
        ]),
    }
    .aggregate(
        vec![],
        vec![
            AggSpec::over(AggFn::Sum, c(0)),
            AggSpec::over(AggFn::Sum, c(1)),
        ],
    )
    .project(vec![Expr::Bin(
        BinOp::Mul,
        Box::new(Expr::float(100.0)),
        Box::new(Expr::Bin(BinOp::Div, Box::new(c(0)), Box::new(c(1)))),
    )])
}

/// Q15 — top supplier by quarterly revenue.
fn q15() -> Plan {
    Plan::scan_where(
        "lineitem",
        Expr::Between(
            Box::new(c(li("l_shipdate"))),
            Value::Date(date(1996, 1, 1)),
            Value::Date(date(1996, 3, 31)),
        ),
    )
    .aggregate(
        vec![li("l_suppkey")],
        vec![AggSpec::over(
            AggFn::Sum,
            revenue(li("l_extendedprice"), li("l_discount")),
        )],
    )
    .top_n(vec![(1, true)], 1)
    .join(Plan::scan("supplier"), 0, supp("s_suppkey"))
    .project(vec![c(2), c(3), c(1)])
}

/// Q16 — parts/supplier relationship (distinct-count approximated by
/// count).
fn q16() -> Plan {
    let o_ps = PART_W;
    Plan::Join {
        left: Box::new(Plan::scan_where(
            "part",
            Expr::and_all([
                Expr::Not(Box::new(eq_str(part_("p_brand"), "Brand#45"))),
                Expr::Not(Box::new(Expr::Contains(
                    Box::new(c(part_("p_type"))),
                    "MEDIUM".into(),
                ))),
                Expr::InList(
                    Box::new(c(part_("p_size"))),
                    [3i64, 9, 14, 19, 23, 36, 45, 49].map(Value::Int).to_vec(),
                ),
            ]),
        )),
        right: Box::new(Plan::scan("partsupp")),
        left_col: part_("p_partkey"),
        right_col: ps("ps_partkey"),
        filter: None,
        project: None,
    }
    .aggregate(
        vec![part_("p_brand"), part_("p_type"), part_("p_size")],
        vec![AggSpec::over(AggFn::Count, c(o_ps + ps("ps_suppkey")))],
    )
    .sort(vec![(3, true), (0, false), (1, false), (2, false)])
}

/// Q17 — small-quantity-order revenue (the per-part average-quantity
/// subquery becomes a fixed low-quantity cut, applied identically by every
/// engine).
fn q17() -> Plan {
    let o_li = PART_W;
    Plan::Join {
        left: Box::new(Plan::scan_where(
            "part",
            Expr::And(
                Box::new(eq_str(part_("p_brand"), "Brand#23")),
                Box::new(eq_str(part_("p_container"), "MED BOX")),
            ),
        )),
        right: Box::new(Plan::scan("lineitem")),
        left_col: part_("p_partkey"),
        right_col: li("l_partkey"),
        filter: Some(Expr::cmp(
            CmpOp::Lt,
            c(o_li + li("l_quantity")),
            Expr::float(5.0),
        )),
        project: None,
    }
    .aggregate(
        vec![],
        vec![AggSpec::over(AggFn::Sum, c(o_li + li("l_extendedprice")))],
    )
    .project(vec![Expr::Bin(
        BinOp::Div,
        Box::new(c(0)),
        Box::new(Expr::float(7.0)),
    )])
}

/// Q18 — large-volume customers (the `HAVING sum > 300` becomes top-100 by
/// total quantity).
fn q18() -> Plan {
    let agg = Plan::scan("lineitem")
        .aggregate(
            vec![li("l_orderkey")],
            vec![AggSpec::over(AggFn::Sum, c(li("l_quantity")))],
        )
        .top_n(vec![(1, true), (0, false)], 100);
    // agg output: [orderkey, sum_qty]
    let o_or = 2;
    let o_cu = o_or + ORD_W;
    agg.join(Plan::scan("orders"), 0, ord("o_orderkey"))
        .join(
            Plan::scan("customer"),
            o_or + ord("o_custkey"),
            cust("c_custkey"),
        )
        .project(vec![
            c(o_cu + cust("c_name")),
            c(o_cu + cust("c_custkey")),
            c(0),
            c(o_or + ord("o_orderdate")),
            c(o_or + ord("o_totalprice")),
            c(1),
        ])
        .top_n(vec![(4, true), (3, false)], 100)
}

/// Q19 — discounted revenue, disjunctive brand/container/quantity terms.
fn q19() -> Plan {
    let o_pa = LI_W;
    let term = |brand: &str, container: &str, qlo: f64, qhi: f64, smax: i64| {
        Expr::and_all([
            eq_str(o_pa + part_("p_brand"), brand),
            eq_str(o_pa + part_("p_container"), container),
            Expr::Between(
                Box::new(c(li("l_quantity"))),
                Value::Float(qlo),
                Value::Float(qhi),
            ),
            Expr::Between(
                Box::new(c(o_pa + part_("p_size"))),
                Value::Int(1),
                Value::Int(smax),
            ),
        ])
    };
    Plan::Join {
        left: Box::new(Plan::scan("lineitem")),
        right: Box::new(Plan::scan("part")),
        left_col: li("l_partkey"),
        right_col: part_("p_partkey"),
        filter: Some(Expr::Or(
            Box::new(Expr::Or(
                Box::new(term("Brand#12", "SM CASE", 1.0, 11.0, 5)),
                Box::new(term("Brand#23", "MED BOX", 10.0, 20.0, 10)),
            )),
            Box::new(term("Brand#34", "LG BOX", 20.0, 30.0, 15)),
        )),
        project: None,
    }
    .aggregate(
        vec![],
        vec![AggSpec::over(
            AggFn::Sum,
            revenue(li("l_extendedprice"), li("l_discount")),
        )],
    )
}

/// Q20 — potential part promotion: nation ⋈ supplier ⋈ partsupp ⋈ part.
fn q20() -> Plan {
    let o_su = NAT_W;
    let o_ps = o_su + SUPP_W;
    Plan::Join {
        left: Box::new(
            Plan::scan_where("nation", eq_str(nat("n_name"), "CANADA"))
                .join(
                    Plan::scan("supplier"),
                    nat("n_nationkey"),
                    supp("s_nationkey"),
                )
                .join(
                    Plan::scan("partsupp"),
                    o_su + supp("s_suppkey"),
                    ps("ps_suppkey"),
                ),
        ),
        right: Box::new(Plan::scan_where(
            "part",
            Expr::StartsWith(Box::new(c(part_("p_name"))), "part forest".into()),
        )),
        left_col: o_ps + ps("ps_partkey"),
        right_col: part_("p_partkey"),
        filter: None,
        project: Some(vec![c(o_su + supp("s_name")), c(o_su + supp("s_comment"))]),
    }
    .sort(vec![(0, false)])
}

/// Q21 — suppliers who kept orders waiting.
fn q21() -> Plan {
    let o_su = NAT_W;
    let o_li = o_su + SUPP_W;
    let o_or = o_li + LI_W;
    Plan::Join {
        left: Box::new(Plan::Join {
            left: Box::new(
                Plan::scan_where("nation", eq_str(nat("n_name"), "SAUDI ARABIA")).join(
                    Plan::scan("supplier"),
                    nat("n_nationkey"),
                    supp("s_nationkey"),
                ),
            ),
            right: Box::new(Plan::scan("lineitem")),
            left_col: o_su + supp("s_suppkey"),
            right_col: li("l_suppkey"),
            filter: Some(Expr::cmp(
                CmpOp::Gt,
                c(o_li + li("l_receiptdate")),
                c(o_li + li("l_commitdate")),
            )),
            project: None,
        }),
        right: Box::new(Plan::scan("orders")),
        left_col: o_li + li("l_orderkey"),
        right_col: ord("o_orderkey"),
        filter: Some(eq_str(o_or + ord("o_orderstatus"), "F")),
        project: None,
    }
    .aggregate(vec![o_su + supp("s_name")], vec![AggSpec::count_star()])
    .top_n(vec![(1, true), (0, false)], 100)
}

/// Q22 — global sales opportunity (country-code buckets over well-funded
/// customers; the anti-join is dropped identically for every engine).
fn q22() -> Plan {
    Plan::scan_where(
        "customer",
        Expr::and_all([
            Expr::cmp(CmpOp::Gt, c(cust("c_acctbal")), Expr::float(5000.0)),
            Expr::InList(
                Box::new(c(cust("c_nationkey"))),
                [3i64, 7, 10, 13, 17, 19, 22].map(Value::Int).to_vec(),
            ),
        ]),
    )
    .aggregate(
        vec![cust("c_nationkey")],
        vec![
            AggSpec::count_star(),
            AggSpec::over(AggFn::Sum, c(cust("c_acctbal"))),
        ],
    )
    .sort(vec![(0, false)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::gen::{build_tpch_db, TpchScale};
    use engines::{EngineKind, KnobLevel};
    use simcore::{ArchConfig, Cpu};

    #[test]
    fn all_queries_build_plans() {
        for q in TpchQuery::all() {
            let _ = q.plan();
        }
    }

    #[test]
    fn plan_arities_resolve_against_catalog() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let db = build_tpch_db(
            &mut cpu,
            EngineKind::Pg,
            KnobLevel::Baseline,
            TpchScale::tiny(),
        )
        .unwrap();
        for q in TpchQuery::all() {
            let arity = q.plan().arity(db.catalog()).unwrap();
            assert!(arity > 0, "{} has zero-arity output", q.name());
        }
    }

    #[test]
    fn q1_q6_q22_run_on_every_engine_and_agree() {
        // The cheap scan-based queries are validated engine-vs-engine here;
        // the full 22-query differential sweep lives in the integration
        // tests.
        for qn in [1u8, 6, 22] {
            let plan = TpchQuery(qn).plan();
            let mut results = Vec::new();
            for kind in EngineKind::ALL {
                let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
                let mut db =
                    build_tpch_db(&mut cpu, kind, KnobLevel::Baseline, TpchScale::tiny()).unwrap();
                let mut rows = db.session().run(&mut cpu, &plan).unwrap();
                // Canonicalise float noise for comparison.
                for r in &mut rows {
                    for v in r.iter_mut() {
                        if let Value::Float(f) = v {
                            *v = Value::Float((*f * 1e6).round() / 1e6);
                        }
                    }
                }
                results.push(rows);
            }
            assert_eq!(results[0], results[1], "Q{qn}: Pg vs Lite");
            assert_eq!(results[1], results[2], "Q{qn}: Lite vs My");
            assert!(!results[0].is_empty(), "Q{qn} returned nothing");
        }
    }

    #[test]
    fn q1_aggregates_are_plausible() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut db = build_tpch_db(
            &mut cpu,
            EngineKind::Pg,
            KnobLevel::Baseline,
            TpchScale::tiny(),
        )
        .unwrap();
        let rows = db.session().run(&mut cpu, &TpchQuery(1).plan()).unwrap();
        // Groups: returnflag x linestatus — at most a handful.
        assert!(rows.len() >= 2 && rows.len() <= 6, "{} groups", rows.len());
        for r in &rows {
            // count_order > 0 and avg discount within [0, 0.1].
            assert!(r[9].as_int().unwrap() > 0);
            let avg_disc = r[8].as_float().unwrap();
            assert!((0.0..=0.1).contains(&avg_disc));
        }
    }
}
