//! TPC-H-like schema, data and queries.

pub mod gen;
pub mod queries;

pub use gen::{build_tpch_db, TpchScale};
pub use queries::TpchQuery;

/// Convert a civil date to days since 1970-01-01 (proleptic Gregorian).
pub fn date(y: i32, m: u32, d: u32) -> i32 {
    // Howard Hinnant's days_from_civil.
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64;
    let mp = ((m + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era as i64 * 146_097 + doe - 719_468) as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_conversion_anchors() {
        assert_eq!(date(1970, 1, 1), 0);
        assert_eq!(date(1970, 1, 2), 1);
        assert_eq!(date(1992, 1, 1), 8035);
        assert_eq!(date(1998, 12, 1), 10561);
        // Leap handling.
        assert_eq!(date(1996, 3, 1) - date(1996, 2, 28), 2);
        assert_eq!(date(1997, 3, 1) - date(1997, 2, 28), 1);
    }
}
