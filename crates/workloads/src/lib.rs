#![warn(missing_docs)]

//! # workloads — TPC-H-like data and queries, basic operations, CPU-bound
//! kernels
//!
//! Everything §3 profiles:
//!
//! * [`tpch`] — a deterministic TPC-H-like generator (8 tables, scale
//!   parameterised in "paper megabytes") and structurally representative
//!   plans for all 22 queries,
//! * [`basic`] — the 7 basic query operations of Fig. 6 (select,
//!   projection, join, sort, group-by, table scan, index scan),
//! * [`cpu2006`] — 9 synthetic kernels with the characteristic access and
//!   compute mixes of the SPEC CPU2006 workloads in Fig. 10.
//!
//! All query workloads execute through the [`engines`] crate, so the same
//! plan can be profiled on all three personalities.

pub mod basic;
pub mod cpu2006;
pub mod tpch;

pub use basic::BasicOp;
pub use cpu2006::Cpu2006;
pub use tpch::{build_tpch_db, TpchQuery, TpchScale};
