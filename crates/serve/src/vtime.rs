//! The virtual-time event queue.
//!
//! The server advances a clock in *simulated* seconds (the same unit
//! [`simcore::Measurement::time_s`] reports), never host time. Events are
//! ordered by `(time, insertion sequence)`; the sequence tie-break makes the
//! pop order a pure function of the pushes, so a run is deterministic for a
//! given seed regardless of `--jobs` or host scheduling — the same contract
//! the rest of the harness keeps.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A point on the virtual clock, in simulated seconds.
///
/// Wraps `f64` with a total order (`f64::total_cmp`) so it can key a heap.
/// All times the server produces come from deterministic arithmetic on
/// deterministic measurements, so identical runs produce bit-identical
/// times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VTime(pub f64);

impl Eq for VTime {}

impl PartialOrd for VTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct Entry<T> {
    time: VTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    // Reversed: BinaryHeap is a max-heap, we want the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic min-heap of `(virtual time, payload)` events.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `payload` at virtual time `time` (seconds).
    pub fn push(&mut self, time: f64, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: VTime(time),
            seq,
            payload,
        });
    }

    /// Pop the earliest event; ties pop in insertion order.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.time.0, e.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.push(2.0, "late");
        q.push(1.0, "tie-a");
        q.push(1.0, "tie-b");
        q.push(0.5, "first");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["first", "tie-a", "tie-b", "late"]);
    }

    #[test]
    fn vtime_total_order_handles_equal_and_zero() {
        assert_eq!(VTime(0.0).cmp(&VTime(0.0)), Ordering::Equal);
        assert_eq!(VTime(1.5).cmp(&VTime(2.5)), Ordering::Less);
    }
}
