//! SLO accounting for serving runs: per-family latency/energy histograms
//! and a rolling admission/tail tracker.
//!
//! A single p99 over a whole run hides the two ways a server degrades:
//! *who* is slow (one request family dragging the tail) and *when* it was
//! slow (a transient overload window that a run-wide average flattens
//! out). [`family_slos`] answers the first with log2-bucket
//! [`Histogram`]s per request family; [`SloTracker`] answers the second
//! with rolling windows over arrivals and completions, reporting the
//! worst window seen.
//!
//! Everything is fed from the virtual clock in deterministic event order,
//! so the numbers are byte-identical run-to-run for a given config.

use std::collections::{BTreeMap, VecDeque};

use mjobs::metrics::Histogram;

use crate::server::RequestRecord;

/// The request family of a kind label: the prefix before the first `-`
/// (`"ycsb-a"` → `"ycsb"`, `"tpch-q6"` → `"tpch"`, `"dml-upd"` → `"dml"`).
pub fn family_of(kind: &str) -> &str {
    kind.split('-').next().unwrap_or(kind)
}

/// Per-family rollup: request count plus latency and energy histograms.
///
/// Latencies are recorded in whole microseconds and energies in whole
/// nanojoules, so the log2 buckets resolve the ranges serving requests
/// actually land in; read quantiles with [`Histogram::quantile`] /
/// [`Histogram::p99`] (interpolated, ≤2× bucket error).
#[derive(Debug, Clone)]
pub struct FamilySlo {
    /// Family label (e.g. `"ycsb"`).
    pub family: &'static str,
    /// Requests aggregated into this row.
    pub requests: u64,
    /// End-to-end latency in microseconds.
    pub latency_us: Histogram,
    /// Per-request energy in nanojoules.
    pub energy_nj: Histogram,
}

/// Group a run's request records by family, in family name order.
pub fn family_slos(records: &[RequestRecord]) -> Vec<FamilySlo> {
    let mut map: BTreeMap<&'static str, FamilySlo> = BTreeMap::new();
    for r in records {
        let fam = family_of(r.kind);
        let e = map.entry(fam).or_insert_with(|| FamilySlo {
            family: fam,
            requests: 0,
            latency_us: Histogram::default(),
            energy_nj: Histogram::default(),
        });
        e.requests += 1;
        e.latency_us.record((r.latency_s() * 1e6).round() as u64);
        e.energy_nj.record((r.energy_j * 1e9).round() as u64);
    }
    map.into_values().collect()
}

/// Rolling-window SLO tracker fed from the serve event loop.
///
/// Arrivals stream into an admission window (admitted vs rejected) and
/// completions into a tail window (latency vs the budget); each window
/// remembers its *worst* state — the minimum admit rate and the maximum
/// violation rate over any full window of the run. Windows shorter than
/// `window` never full fall back to the run-wide rates in the report.
#[derive(Debug, Clone)]
pub struct SloTracker {
    budget_s: f64,
    window: usize,
    admits: VecDeque<bool>,
    lates: VecDeque<bool>,
    offered: u64,
    admitted: u64,
    completed: u64,
    violations: u64,
    worst_admit: Option<f64>,
    worst_late: Option<f64>,
}

impl SloTracker {
    /// Tracker with rolling windows of `window` events against a
    /// `tail_budget_s` latency budget.
    pub fn new(window: usize, tail_budget_s: f64) -> SloTracker {
        SloTracker {
            budget_s: tail_budget_s,
            window: window.max(1),
            admits: VecDeque::new(),
            lates: VecDeque::new(),
            offered: 0,
            admitted: 0,
            completed: 0,
            violations: 0,
            worst_admit: None,
            worst_late: None,
        }
    }

    fn roll(q: &mut VecDeque<bool>, v: bool, window: usize) -> Option<f64> {
        q.push_back(v);
        if q.len() > window {
            q.pop_front();
        }
        (q.len() == window).then(|| q.iter().filter(|&&b| b).count() as f64 / window as f64)
    }

    /// Record one arrival's admission outcome.
    pub fn offer(&mut self, admitted: bool) {
        self.offered += 1;
        self.admitted += admitted as u64;
        if let Some(rate) = Self::roll(&mut self.admits, admitted, self.window) {
            let w = self.worst_admit.get_or_insert(rate);
            *w = w.min(rate);
        }
    }

    /// Record one completed request's end-to-end latency.
    pub fn complete(&mut self, latency_s: f64) {
        let late = latency_s > self.budget_s;
        self.completed += 1;
        self.violations += late as u64;
        if let Some(rate) = Self::roll(&mut self.lates, late, self.window) {
            let w = self.worst_late.get_or_insert(rate);
            *w = w.max(rate);
        }
    }

    /// The run's SLO report.
    pub fn report(&self) -> SloReport {
        let overall_admit = if self.offered == 0 {
            1.0
        } else {
            self.admitted as f64 / self.offered as f64
        };
        let overall_late = if self.completed == 0 {
            0.0
        } else {
            self.violations as f64 / self.completed as f64
        };
        SloReport {
            tail_budget_s: self.budget_s,
            completed: self.completed,
            violations: self.violations,
            worst_window_admit_rate: self.worst_admit.unwrap_or(overall_admit),
            worst_window_violation_rate: self.worst_late.unwrap_or(overall_late),
        }
    }
}

/// The SLO outcome of one serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// The latency budget violations are counted against.
    pub tail_budget_s: f64,
    /// Completed requests.
    pub completed: u64,
    /// Completed requests that blew the budget.
    pub violations: u64,
    /// Minimum admit rate over any full rolling window (run-wide rate if
    /// the run was shorter than one window).
    pub worst_window_admit_rate: f64,
    /// Maximum budget-violation rate over any full rolling window
    /// (run-wide rate if the run was shorter than one window).
    pub worst_window_violation_rate: f64,
}

impl SloReport {
    /// Fraction of completed requests inside the budget.
    pub fn attainment(&self) -> f64 {
        if self.completed == 0 {
            return 1.0;
        }
        1.0 - self.violations as f64 / self.completed as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_of_strips_the_variant() {
        assert_eq!(family_of("ycsb-a"), "ycsb");
        assert_eq!(family_of("tpch-q6"), "tpch");
        assert_eq!(family_of("dml-upd"), "dml");
        assert_eq!(family_of("plain"), "plain");
    }

    #[test]
    fn tracker_reports_worst_window_not_average() {
        // 4-wide windows: a burst of rejections in the middle must surface
        // as a low worst-window admit rate even though the overall rate
        // recovers.
        let mut t = SloTracker::new(4, 0.010);
        for _ in 0..8 {
            t.offer(true);
        }
        for _ in 0..4 {
            t.offer(false);
        }
        for _ in 0..8 {
            t.offer(true);
        }
        let r = t.report();
        assert_eq!(r.worst_window_admit_rate, 0.0);

        for _ in 0..6 {
            t.complete(0.001);
        }
        t.complete(0.5);
        for _ in 0..6 {
            t.complete(0.001);
        }
        let r = t.report();
        assert_eq!(r.completed, 13);
        assert_eq!(r.violations, 1);
        assert_eq!(r.worst_window_violation_rate, 0.25);
        assert!((r.attainment() - 12.0 / 13.0).abs() < 1e-12);
    }

    #[test]
    fn short_runs_fall_back_to_overall_rates() {
        let mut t = SloTracker::new(100, 0.010);
        t.offer(true);
        t.offer(false);
        t.complete(0.001);
        t.complete(0.5);
        let r = t.report();
        assert_eq!(r.worst_window_admit_rate, 0.5);
        assert_eq!(r.worst_window_violation_rate, 0.5);
    }
}
