//! The virtual-time multi-session OLTP server.
//!
//! N client sessions issue open-loop request streams (Poisson arrivals,
//! seeded per session) against one shared world: a tiny TPC-H database plus
//! an `accounts` table for point DML, and a loaded LSM store for YCSB.
//! Admission control (token limiter + bounded queue) decides each
//! arrival's fate; admitted requests execute on a bank of simulated cores.
//!
//! **Determinism contract.** Everything is keyed to the virtual clock:
//! arrivals are pre-generated from per-session seeds, the event queue
//! breaks ties in insertion order, and admitted requests *execute in
//! admission order* on the one simulated CPU — so cache/LSM/heap state
//! evolves identically run-to-run and the whole summary (latencies,
//! energies, rejection counts) is byte-identical for a given config,
//! regardless of `--jobs` or host scheduling. The multi-core bank only
//! shapes *when* a request's service time is scheduled on the virtual
//! clock, not what it executes.
//!
//! Per-request execution is a [`mjobs::span`] span named
//! `s<session>.r<index> <kind>`, so traces break a serving run down
//! request-by-request.

use crate::admit::{AdmissionControl, Admit};
use crate::slo::{SloReport, SloTracker};
use crate::vtime::EventQueue;
use crate::workload::{next_request, Family, MixKind, Request, SqlOp};
use engines::{Database, EngineKind, KnobLevel, SessionCtx};
use nosql::{LsmConfig, LsmStore, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simcore::Cpu;
use storage::{Schema, Ty, Value};
use workloads::{build_tpch_db, TpchScale};

/// Server scenario configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Engine personality executing the SQL side.
    pub kind: EngineKind,
    /// Which request families sessions speak.
    pub mix: MixKind,
    /// Number of client sessions.
    pub sessions: u32,
    /// Requests each session sends.
    pub requests_per_session: u32,
    /// Per-session open-loop arrival rate (requests per virtual second).
    pub arrival_rate_hz: f64,
    /// Admission tokens (max concurrently executing requests).
    pub admit_limit: u32,
    /// Bounded wait-queue capacity.
    pub queue_cap: u32,
    /// Simulated cores the admitted requests schedule onto.
    pub cores: u32,
    /// Base seed for arrivals and op choices.
    pub seed: u64,
    /// YCSB keys pre-loaded into the LSM store.
    pub ycsb_keys: u64,
    /// YCSB ops per request.
    pub ycsb_ops: u64,
    /// Rows pre-loaded into the `accounts` table.
    pub accounts: i64,
    /// End-to-end latency budget a completed request must meet to count
    /// toward SLO attainment (virtual seconds).
    pub tail_budget_s: f64,
}

/// Rolling-window width (arrivals / completions) for the SLO tracker.
pub const SLO_WINDOW: usize = 32;

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            kind: EngineKind::Pg,
            mix: MixKind::Oltp,
            sessions: 64,
            requests_per_session: 4,
            arrival_rate_hz: 200.0,
            admit_limit: 8,
            queue_cap: 16,
            cores: 4,
            seed: 0x5e7e,
            ycsb_keys: 256,
            ycsb_ops: 8,
            accounts: 128,
            tail_budget_s: 0.005,
        }
    }
}

/// One admitted request's timeline and cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Issuing session.
    pub session: u32,
    /// Request index within the session.
    pub index: u32,
    /// Request family label (e.g. `"ycsb-a"`, `"tpch-q6"`, `"dml-upd"`).
    pub kind: &'static str,
    /// Virtual arrival time (s).
    pub arrival_s: f64,
    /// Virtual service start (s) — after queue wait and core wait.
    pub start_s: f64,
    /// Virtual completion (s).
    pub finish_s: f64,
    /// Measured energy for the request (J).
    pub energy_j: f64,
    /// Measured cycles for the request.
    pub cycles: f64,
}

impl RequestRecord {
    /// End-to-end latency: completion minus arrival.
    pub fn latency_s(&self) -> f64 {
        self.finish_s - self.arrival_s
    }

    /// Time spent waiting for a token and a core.
    pub fn wait_s(&self) -> f64 {
        self.start_s - self.arrival_s
    }
}

/// The outcome of one serving scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSummary {
    /// Per-request records, in execution (admission) order.
    pub records: Vec<RequestRecord>,
    /// Requests that got a token.
    pub admitted: u64,
    /// Requests that waited in the queue first.
    pub queued: u64,
    /// Requests dropped at admission.
    pub rejected: u64,
    /// Virtual time of the last completion (s).
    pub makespan_s: f64,
    /// Rolling SLO outcome: admit-rate and tail-budget windows.
    pub slo: SloReport,
}

impl ServeSummary {
    /// Latency percentile `p` (0–100) over admitted requests, by the
    /// nearest-rank method on the sorted latencies (deterministic).
    pub fn latency_percentile_s(&self, p: f64) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let mut lats: Vec<f64> = self.records.iter().map(|r| r.latency_s()).collect();
        lats.sort_by(|a, b| a.total_cmp(b));
        let idx = ((p / 100.0) * (lats.len() - 1) as f64).round() as usize;
        lats[idx.min(lats.len() - 1)]
    }

    /// Mean wait (token + core) over admitted requests.
    pub fn mean_wait_s(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.wait_s()).sum::<f64>() / self.records.len() as f64
    }

    /// Total measured energy (J).
    pub fn total_energy_j(&self) -> f64 {
        self.records.iter().map(|r| r.energy_j).sum()
    }

    /// Mean energy per admitted request (J).
    pub fn energy_per_request_j(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.total_energy_j() / self.records.len() as f64
    }

    /// Completed requests per virtual second.
    pub fn throughput_rps(&self) -> f64 {
        if self.makespan_s <= 0.0 {
            return 0.0;
        }
        self.records.len() as f64 / self.makespan_s
    }

    /// Fraction of arrivals that were not rejected.
    pub fn admit_rate(&self) -> f64 {
        let offered = self.admitted + self.rejected;
        if offered == 0 {
            return 1.0;
        }
        self.admitted as f64 / offered as f64
    }

    /// Per-family latency/energy histograms over admitted requests, in
    /// family name order.
    pub fn family_slos(&self) -> Vec<crate::slo::FamilySlo> {
        crate::slo::family_slos(&self.records)
    }
}

/// The shared world requests execute against.
struct World {
    db: Database,
    lsm: LsmStore,
    next_account: i64,
}

/// Per-session state: family, SQL scratch ([`SessionCtx`] — the session
/// API's reason to exist), YCSB driver, op-choice RNG.
struct ClientState {
    family: Family,
    ctx: SessionCtx,
    ycsb: Option<Workload>,
    rng: SmallRng,
}

enum Ev {
    Arrive { sid: u32, idx: u32 },
    Finish,
}

#[derive(Debug, Clone, Copy)]
struct Ticket {
    sid: u32,
    idx: u32,
    arrival_s: f64,
}

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

fn session_seed(base: u64, sid: u32, stream: u64) -> u64 {
    base ^ GOLDEN.wrapping_mul(sid as u64 + 1).wrapping_add(stream)
}

fn build_world(cpu: &mut Cpu, cfg: &ServeConfig) -> storage::Result<World> {
    let mut db = build_tpch_db(cpu, cfg.kind, KnobLevel::Baseline, TpchScale::tiny())?;
    db.create_table(
        "accounts",
        Schema::new([("id", Ty::Int), ("bal", Ty::Float)]),
        Some("id"),
    )?;
    let rows: Vec<Vec<Value>> = (0..cfg.accounts)
        .map(|i| vec![Value::Int(i), Value::Float(i as f64)])
        .collect();
    db.load_rows(cpu, "accounts", rows)?;

    let mut lsm = LsmStore::open(
        cpu,
        LsmConfig {
            memtable_bytes: 32 * 1024,
            fanout: 4,
            wal_group: 16,
        },
    )
    .expect("lsm open");
    // Load once; per-session drivers attach with their own RNG streams.
    Workload::load(cpu, &mut lsm, nosql::YcsbMix::C, cfg.ycsb_keys, 64).expect("ycsb load");

    Ok(World {
        db,
        lsm,
        next_account: cfg.accounts,
    })
}

fn execute(
    cpu: &mut Cpu,
    world: &mut World,
    client: &mut ClientState,
    req: &Request,
) -> storage::Result<()> {
    match req {
        Request::Ycsb { ops, .. } => {
            let w = client.ycsb.as_mut().expect("ycsb family has a driver");
            w.run(cpu, &mut world.lsm, *ops).expect("ycsb ops");
            Ok(())
        }
        Request::Tpch { plan, .. } => {
            world.db.session_in(&mut client.ctx).run(cpu, plan)?;
            Ok(())
        }
        Request::Sql { stmt, .. } => {
            let mut session = world.db.session_in(&mut client.ctx);
            match stmt {
                SqlOp::Write(dml) => {
                    session.execute(cpu, dml)?;
                }
                SqlOp::Read(plan) => {
                    session.run(cpu, plan)?;
                }
            }
            Ok(())
        }
    }
}

/// Run one serving scenario on `cpu`; returns the per-request summary.
pub fn serve(cpu: &mut Cpu, cfg: &ServeConfig) -> storage::Result<ServeSummary> {
    let mut world = build_world(cpu, cfg)?;

    let mut clients: Vec<ClientState> = (0..cfg.sessions)
        .map(|sid| {
            let family = cfg.mix.family_for(sid);
            let ycsb = match family {
                Family::Ycsb(mix) => Some(Workload::attach(
                    mix,
                    cfg.ycsb_keys,
                    64,
                    session_seed(cfg.seed, sid, 1),
                )),
                _ => None,
            };
            ClientState {
                family,
                ctx: SessionCtx::new(),
                ycsb,
                rng: SmallRng::seed_from_u64(session_seed(cfg.seed, sid, 2)),
            }
        })
        .collect();

    // Pre-generate every arrival from per-session seeds: the open-loop
    // streams are fixed before the first request executes.
    let mut evq = EventQueue::new();
    let rate = cfg.arrival_rate_hz.max(1e-9);
    for sid in 0..cfg.sessions {
        let mut arr = SmallRng::seed_from_u64(session_seed(cfg.seed, sid, 0));
        let mut t = 0.0f64;
        for idx in 0..cfg.requests_per_session {
            let u: f64 = arr.gen();
            t += -(1.0 - u).ln() / rate;
            evq.push(t, Ev::Arrive { sid, idx });
        }
    }

    let mut admit: AdmissionControl<Ticket> = AdmissionControl::new(cfg.admit_limit, cfg.queue_cap);
    let mut core_free = vec![0.0f64; cfg.cores.max(1) as usize];
    let mut records: Vec<RequestRecord> = Vec::new();
    let mut makespan = 0.0f64;
    let mut slo = SloTracker::new(SLO_WINDOW, cfg.tail_budget_s);

    // Start an admitted ticket: execute now (admission order — the
    // determinism contract), schedule its completion on the virtual clock.
    let start = |now: f64,
                 tk: Ticket,
                 cpu: &mut Cpu,
                 world: &mut World,
                 clients: &mut [ClientState],
                 evq: &mut EventQueue<Ev>,
                 core_free: &mut [f64],
                 records: &mut Vec<RequestRecord>,
                 slo: &mut SloTracker|
     -> storage::Result<()> {
        let client = &mut clients[tk.sid as usize];
        let req = next_request(
            client.family,
            tk.sid,
            tk.idx,
            cfg.ycsb_ops,
            cfg.accounts,
            &mut world.next_account,
            &mut client.rng,
        );
        // Earliest-free core, first index winning ties: deterministic.
        let core = core_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let start_s = now.max(core_free[core]);
        let (sid, idx, kind) = (tk.sid, tk.idx, req.kind());
        mjobs::span::enter(cpu, || format!("s{sid:03}.r{idx:02} {kind}"));
        let mut res = Ok(());
        let m = cpu.measure(|c| {
            res = execute(c, world, client, &req);
        });
        mjobs::span::exit(cpu);
        res?;
        let finish_s = start_s + m.time_s;
        core_free[core] = finish_s;
        evq.push(finish_s, Ev::Finish);
        slo.complete(finish_s - tk.arrival_s);
        records.push(RequestRecord {
            session: sid,
            index: idx,
            kind,
            arrival_s: tk.arrival_s,
            start_s,
            finish_s,
            energy_j: m.rapl.total_j(),
            cycles: m.cycles,
        });
        Ok(())
    };

    while let Some((now, ev)) = evq.pop() {
        makespan = makespan.max(now);
        match ev {
            Ev::Arrive { sid, idx } => {
                let tk = Ticket {
                    sid,
                    idx,
                    arrival_s: now,
                };
                let outcome = admit.offer(tk);
                slo.offer(!matches!(outcome, Admit::Rejected));
                match outcome {
                    Admit::Run => start(
                        now,
                        tk,
                        cpu,
                        &mut world,
                        &mut clients,
                        &mut evq,
                        &mut core_free,
                        &mut records,
                        &mut slo,
                    )?,
                    Admit::Queued | Admit::Rejected => {}
                }
            }
            Ev::Finish => {
                if let Some(tk) = admit.complete() {
                    start(
                        now,
                        tk,
                        cpu,
                        &mut world,
                        &mut clients,
                        &mut evq,
                        &mut core_free,
                        &mut records,
                        &mut slo,
                    )?;
                }
            }
        }
    }

    Ok(ServeSummary {
        records,
        admitted: admit.admitted,
        queued: admit.queued,
        rejected: admit.rejected,
        makespan_s: makespan,
        slo: slo.report(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::ArchConfig;

    fn tiny_cfg() -> ServeConfig {
        ServeConfig {
            sessions: 8,
            requests_per_session: 2,
            arrival_rate_hz: 500.0,
            admit_limit: 2,
            queue_cap: 4,
            cores: 2,
            ycsb_keys: 64,
            ycsb_ops: 4,
            accounts: 32,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serving_is_deterministic_for_a_seed() {
        let run = || {
            let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
            serve(&mut cpu, &tiny_cfg()).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed+config must reproduce bit-identically");
        assert_eq!(a.admitted as usize, a.records.len());
        assert!(a.makespan_s > 0.0);
    }

    #[test]
    fn every_family_executes_under_the_oltp_mix() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let s = serve(&mut cpu, &tiny_cfg()).unwrap();
        let kinds: Vec<&str> = s.records.iter().map(|r| r.kind).collect();
        assert!(kinds.iter().any(|k| k.starts_with("ycsb-")), "{kinds:?}");
        assert!(kinds.iter().any(|k| k.starts_with("tpch-")), "{kinds:?}");
        assert!(kinds.iter().any(|k| k.starts_with("dml-")), "{kinds:?}");
    }

    #[test]
    fn overload_rejects_deterministically() {
        let cfg = ServeConfig {
            arrival_rate_hz: 1e6, // everyone arrives at once
            admit_limit: 1,
            queue_cap: 1,
            ..tiny_cfg()
        };
        let run = || {
            let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
            let s = serve(&mut cpu, &cfg).unwrap();
            (s.admitted, s.queued, s.rejected)
        };
        let (a1, q1, r1) = run();
        assert!(r1 > 0, "overload must reject");
        assert_eq!((a1, q1, r1), run(), "rejection counts must reproduce");
        assert_eq!(
            a1 + r1,
            (cfg.sessions * cfg.requests_per_session) as u64,
            "every arrival is admitted or rejected (queued ⊂ admitted)"
        );
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let s = serve(&mut cpu, &tiny_cfg()).unwrap();
        let (p50, p95, p99) = (
            s.latency_percentile_s(50.0),
            s.latency_percentile_s(95.0),
            s.latency_percentile_s(99.0),
        );
        assert!(p50 > 0.0);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
    }

    #[test]
    fn family_slos_and_slo_report_cover_the_run() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let s = serve(&mut cpu, &tiny_cfg()).unwrap();
        let fams = s.family_slos();
        assert!(!fams.is_empty());
        let total: u64 = fams.iter().map(|f| f.requests).sum();
        assert_eq!(total, s.records.len() as u64);
        for f in &fams {
            assert!(["ycsb", "tpch", "dml"].contains(&f.family), "{}", f.family);
            assert_eq!(f.latency_us.count, f.requests);
            assert_eq!(f.energy_nj.count, f.requests);
            assert!(f.latency_us.p50() <= f.latency_us.p99());
        }
        // Family order is deterministic (name order).
        let names: Vec<&str> = fams.iter().map(|f| f.family).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(s.slo.completed, s.records.len() as u64);
        assert_eq!(
            s.slo.violations,
            s.records
                .iter()
                .filter(|r| r.latency_s() > s.slo.tail_budget_s)
                .count() as u64
        );
    }

    #[test]
    fn tighter_admission_increases_waiting() {
        let open = ServeConfig {
            admit_limit: 64,
            queue_cap: 64,
            ..tiny_cfg()
        };
        let tight = ServeConfig {
            admit_limit: 1,
            queue_cap: 64,
            ..tiny_cfg()
        };
        let mut cpu_a = Cpu::new(ArchConfig::intel_i7_4790());
        let a = serve(&mut cpu_a, &open).unwrap();
        let mut cpu_b = Cpu::new(ArchConfig::intel_i7_4790());
        let b = serve(&mut cpu_b, &tight).unwrap();
        assert!(
            b.mean_wait_s() >= a.mean_wait_s(),
            "one token must not wait less than 64: {} vs {}",
            b.mean_wait_s(),
            a.mean_wait_s()
        );
    }
}
