//! Per-session request streams: what each simulated client sends.
//!
//! The server interleaves three request families, matching the systems the
//! repo profiles: YCSB key-value mixes (the §7 NoSQL future-work driver),
//! short TPC-H picks (the §3 analytical side), and point DML (the write
//! path the paper scopes out in §2.3). A *mix* decides which family each
//! session speaks.

use engines::dml::lit;
use engines::{Dml, Plan};
use nosql::YcsbMix;
use rand::rngs::SmallRng;
use rand::Rng;
use storage::{CmpOp, Expr, Value};
use workloads::TpchQuery;

/// The short TPC-H picks sessions rotate through: Q1 (scan + group
/// aggregate), Q6 (scan + filter + sum), Q12 (join + conditional
/// aggregate). Short enough for an OLTP-ish request loop, different enough
/// to exercise scan, filter, and join paths.
pub const TPCH_PICKS: [u8; 3] = [1, 6, 12];

/// Which request families the server's sessions speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixKind {
    /// Blend: sessions round-robin over YCSB, TPC-H picks, and point DML.
    Oltp,
    /// Every session drives a YCSB mix (rotating A–F across sessions).
    Ycsb,
    /// Every session issues short TPC-H picks.
    Tpch,
    /// Every session issues point DML (and the occasional point select).
    Dml,
}

impl MixKind {
    /// Parse a `--mix` flag value.
    pub fn parse(s: &str) -> Option<MixKind> {
        match s {
            "oltp" => Some(MixKind::Oltp),
            "ycsb" => Some(MixKind::Ycsb),
            "tpch" => Some(MixKind::Tpch),
            "dml" => Some(MixKind::Dml),
            _ => None,
        }
    }

    /// Flag-value spelling.
    pub fn name(&self) -> &'static str {
        match self {
            MixKind::Oltp => "oltp",
            MixKind::Ycsb => "ycsb",
            MixKind::Tpch => "tpch",
            MixKind::Dml => "dml",
        }
    }

    /// The request family session `sid` speaks under this mix.
    pub fn family_for(&self, sid: u32) -> Family {
        match self {
            MixKind::Oltp => match sid % 4 {
                0 | 1 => Family::Ycsb(YcsbMix::ALL[(sid as usize / 4) % 6]),
                2 => Family::Tpch,
                _ => Family::Dml,
            },
            MixKind::Ycsb => Family::Ycsb(YcsbMix::ALL[sid as usize % 6]),
            MixKind::Tpch => Family::Tpch,
            MixKind::Dml => Family::Dml,
        }
    }
}

/// One session's request family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// YCSB ops against the shared LSM store.
    Ycsb(YcsbMix),
    /// Short TPC-H picks against the shared SQL database.
    Tpch,
    /// Point DML (and point selects) against the `accounts` table.
    Dml,
}

/// A concrete request, decided *before* execution so the request's span
/// label and record kind are fixed by (session, index, RNG) alone.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run `ops` YCSB operations on the session's driver.
    Ycsb {
        /// Ops to run in this request.
        ops: u64,
        /// Record label (e.g. `"ycsb-a"`).
        kind: &'static str,
    },
    /// Run one short TPC-H pick.
    Tpch {
        /// The pick's plan.
        plan: Plan,
        /// Record label (e.g. `"tpch-q6"`).
        kind: &'static str,
    },
    /// Run one SQL statement against `accounts`.
    Sql {
        /// The statement.
        stmt: SqlOp,
        /// Record label (e.g. `"dml-upd"`).
        kind: &'static str,
    },
}

/// A point SQL operation.
#[derive(Debug, Clone)]
pub enum SqlOp {
    /// A DML statement.
    Write(Dml),
    /// A point select plan.
    Read(Plan),
}

impl Request {
    /// The record/span label.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Ycsb { kind, .. } => kind,
            Request::Tpch { kind, .. } => kind,
            Request::Sql { kind, .. } => kind,
        }
    }
}

fn ycsb_kind(mix: YcsbMix) -> &'static str {
    match mix {
        YcsbMix::A => "ycsb-a",
        YcsbMix::B => "ycsb-b",
        YcsbMix::C => "ycsb-c",
        YcsbMix::D => "ycsb-d",
        YcsbMix::E => "ycsb-e",
        YcsbMix::F => "ycsb-f",
    }
}

fn tpch_kind(q: u8) -> &'static str {
    match q {
        1 => "tpch-q1",
        6 => "tpch-q6",
        _ => "tpch-q12",
    }
}

/// Build request `idx` for session `sid`. `rng` is the session's op-choice
/// stream (only the DML family draws from it); `next_account` feeds insert
/// keys and is bumped on use.
pub fn next_request(
    family: Family,
    sid: u32,
    idx: u32,
    ycsb_ops: u64,
    accounts: i64,
    next_account: &mut i64,
    rng: &mut SmallRng,
) -> Request {
    match family {
        Family::Ycsb(mix) => Request::Ycsb {
            ops: ycsb_ops,
            kind: ycsb_kind(mix),
        },
        Family::Tpch => {
            let q = TPCH_PICKS[(sid as usize + idx as usize) % TPCH_PICKS.len()];
            Request::Tpch {
                plan: TpchQuery(q).plan(),
                kind: tpch_kind(q),
            }
        }
        Family::Dml => {
            let roll: f64 = rng.gen();
            let key = rng.gen_range(0..accounts.max(1));
            if roll < 0.5 {
                let delta: f64 = rng.gen();
                Request::Sql {
                    stmt: SqlOp::Write(Dml::Update {
                        table: "accounts".into(),
                        filter: Some(Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::int(key))),
                        set: vec![(1, lit(Value::Float(delta * 100.0)))],
                    }),
                    kind: "dml-upd",
                }
            } else if roll < 0.7 {
                Request::Sql {
                    stmt: SqlOp::Read(Plan::scan_where(
                        "accounts",
                        Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::int(key)),
                    )),
                    kind: "dml-sel",
                }
            } else if roll < 0.85 {
                let id = *next_account;
                *next_account += 1;
                Request::Sql {
                    stmt: SqlOp::Write(Dml::Insert {
                        table: "accounts".into(),
                        rows: vec![vec![Value::Int(id), Value::Float(0.0)]],
                    }),
                    kind: "dml-ins",
                }
            } else {
                Request::Sql {
                    stmt: SqlOp::Write(Dml::Delete {
                        table: "accounts".into(),
                        filter: Some(Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::int(key))),
                    }),
                    kind: "dml-del",
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mix_parsing_roundtrips() {
        for m in [MixKind::Oltp, MixKind::Ycsb, MixKind::Tpch, MixKind::Dml] {
            assert_eq!(MixKind::parse(m.name()), Some(m));
        }
        assert_eq!(MixKind::parse("nope"), None);
    }

    #[test]
    fn oltp_mix_covers_all_families() {
        let fams: Vec<Family> = (0..16).map(|s| MixKind::Oltp.family_for(s)).collect();
        assert!(fams.iter().any(|f| matches!(f, Family::Ycsb(_))));
        assert!(fams.contains(&Family::Tpch));
        assert!(fams.contains(&Family::Dml));
    }

    #[test]
    fn dml_requests_are_seed_deterministic() {
        let gen = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut next = 1000;
            (0..8)
                .map(|i| {
                    next_request(Family::Dml, 3, i, 8, 128, &mut next, &mut rng)
                        .kind()
                        .to_string()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(42), gen(42));
    }
}
