#![warn(missing_docs)]

//! # mjserve — deterministic virtual-time multi-session OLTP serving
//!
//! The paper profiles one query at a time; a real database serves many
//! clients at once, and its *energy per request* then depends on queueing,
//! admission control, and how full the machine runs. This crate closes that
//! gap without giving up the harness's determinism: it interleaves N client
//! streams (YCSB mixes, short TPC-H picks, point DML) on a bank of
//! simulated cores under a **virtual clock** — simulated seconds, the unit
//! [`simcore::Measurement::time_s`] reports — so a serving run is as
//! reproducible as a single query.
//!
//! Pieces:
//!
//! * [`vtime`] — the event queue: `(virtual time, insertion seq)` ordering,
//!   so pops are a pure function of pushes.
//! * [`admit`] — token-based admission control with a bounded wait queue
//!   and a deterministic rejection count.
//! * [`workload`] — per-session request streams over the shared world.
//! * [`server`] — open-loop Poisson arrivals (seeded per session), the
//!   event loop, per-request [`mjobs::span`] spans, and the
//!   latency/energy summary.
//! * [`slo`] — per-family latency/energy histograms (log2 buckets with
//!   interpolated quantiles) and the rolling admission/tail-budget
//!   tracker behind [`ServeSummary::slo`](server::ServeSummary).
//!
//! The SQL side executes through [`engines::Session`] with one
//! [`engines::SessionCtx`] per client stream — the session-scoped engine
//! API this crate motivated: N streams share one [`engines::Database`]
//! without aliasing each other's scratch regions.
//!
//! Experiment #22 (`serve_oltp` in the `bench` crate) sweeps arrival rate
//! and admission limit per engine personality and reports tail latency
//! (p50/p95/p99) against energy per request.

pub mod admit;
pub mod server;
pub mod slo;
pub mod vtime;
pub mod workload;

pub use admit::{AdmissionControl, Admit};
pub use server::{serve, RequestRecord, ServeConfig, ServeSummary, SLO_WINDOW};
pub use slo::{family_slos, FamilySlo, SloReport, SloTracker};
pub use vtime::{EventQueue, VTime};
pub use workload::MixKind;
