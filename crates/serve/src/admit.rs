//! Token-based admission control with a bounded wait queue.
//!
//! An arriving request takes one of three deterministic paths:
//!
//! * **run** — an execution token is free (`inflight < limit`); the request
//!   starts immediately,
//! * **queue** — no token, but the bounded FIFO wait queue has room,
//! * **reject** — no token and the queue is full; the request is dropped
//!   and counted.
//!
//! When a running request completes, its token passes to the queue head (if
//! any). All decisions are pure functions of arrival order, so the rejection
//! count is exactly reproducible for a given seed — one of the server's
//! determinism guarantees (see `tests/serve_determinism.rs` at the repo
//! root).

use std::collections::VecDeque;

/// The admission decision for one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// A token was free: start the request now.
    Run,
    /// Parked in the wait queue; it will be handed a token on a completion.
    Queued,
    /// Queue full: dropped.
    Rejected,
}

/// Token limiter + bounded FIFO queue over tickets of type `T`.
#[derive(Debug)]
pub struct AdmissionControl<T> {
    limit: u32,
    queue_cap: u32,
    inflight: u32,
    queue: VecDeque<T>,
    /// Requests that got a token (immediately or after queueing).
    pub admitted: u64,
    /// Requests that waited in the queue before running.
    pub queued: u64,
    /// Requests dropped because the queue was full.
    pub rejected: u64,
}

impl<T> AdmissionControl<T> {
    /// A limiter with `limit` execution tokens and room for `queue_cap`
    /// waiting requests. `limit` is clamped to at least 1 (a server that can
    /// run nothing would deadlock).
    pub fn new(limit: u32, queue_cap: u32) -> AdmissionControl<T> {
        AdmissionControl {
            limit: limit.max(1),
            queue_cap,
            inflight: 0,
            queue: VecDeque::new(),
            admitted: 0,
            queued: 0,
            rejected: 0,
        }
    }

    /// Offer an arriving ticket. On [`Admit::Run`] the caller must start the
    /// request (a token is now held on its behalf).
    pub fn offer(&mut self, ticket: T) -> Admit {
        if self.inflight < self.limit {
            self.inflight += 1;
            self.admitted += 1;
            Admit::Run
        } else if (self.queue.len() as u32) < self.queue_cap {
            self.queue.push_back(ticket);
            self.queued += 1;
            Admit::Queued
        } else {
            self.rejected += 1;
            Admit::Rejected
        }
    }

    /// A running request finished: release its token. If a ticket is
    /// waiting, the token passes to it — the caller must start the returned
    /// ticket now.
    pub fn complete(&mut self) -> Option<T> {
        debug_assert!(self.inflight > 0, "complete() without a running request");
        self.inflight = self.inflight.saturating_sub(1);
        let next = self.queue.pop_front();
        if next.is_some() {
            self.inflight += 1;
            self.admitted += 1;
        }
        next
    }

    /// Requests currently holding execution tokens.
    pub fn inflight(&self) -> u32 {
        self.inflight
    }

    /// Requests currently parked in the wait queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_then_queue_then_reject() {
        let mut ac: AdmissionControl<u32> = AdmissionControl::new(2, 1);
        assert_eq!(ac.offer(0), Admit::Run);
        assert_eq!(ac.offer(1), Admit::Run);
        assert_eq!(ac.offer(2), Admit::Queued);
        assert_eq!(ac.offer(3), Admit::Rejected);
        assert_eq!((ac.admitted, ac.queued, ac.rejected), (2, 1, 1));
        assert_eq!(ac.inflight(), 2);
    }

    #[test]
    fn completion_hands_token_to_queue_head_in_fifo_order() {
        let mut ac: AdmissionControl<u32> = AdmissionControl::new(1, 8);
        assert_eq!(ac.offer(10), Admit::Run);
        assert_eq!(ac.offer(11), Admit::Queued);
        assert_eq!(ac.offer(12), Admit::Queued);
        assert_eq!(ac.complete(), Some(11));
        assert_eq!(ac.complete(), Some(12));
        assert_eq!(ac.complete(), None);
        assert_eq!(ac.inflight(), 0);
        assert_eq!(ac.admitted, 3);
    }

    #[test]
    fn zero_limit_is_clamped_to_one() {
        let mut ac: AdmissionControl<u32> = AdmissionControl::new(0, 0);
        assert_eq!(ac.offer(0), Admit::Run);
        assert_eq!(ac.offer(1), Admit::Rejected);
    }
}
