//! Micro-operation counting (§2.4): map PMU event counts onto `N_m`.

use crate::microop::MicroOp;
use simcore::{Event, PmuSnapshot};

/// The `N_m` vector for one measurement window, plus the auxiliary counts
/// used by verification (`N_add`, `N_nop`) and diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MicroOpCounts {
    /// `N_L1D`: loads touching L1D — hit + miss, per the step-by-step
    /// replication strategy.
    pub l1d: u64,
    /// `N_Reg2L1D`: stores that hit L1D.
    pub reg2l1d: u64,
    /// `N_L2`: accesses to L2 (hit + miss).
    pub l2: u64,
    /// `N_L3`: accesses to L3 (hit + miss).
    pub l3: u64,
    /// `N_mem`: L3 misses.
    pub mem: u64,
    /// `N_pf^L2`: lines prefetched into L2.
    pub pf_l2: u64,
    /// `N_pf^L3`: lines prefetched into L3.
    pub pf_l3: u64,
    /// `N_stall`: cycles stalled on data loads.
    pub stall: u64,
    /// `N_add` (for `E_other` in verification).
    pub add: u64,
    /// `N_nop`.
    pub nop: u64,
    /// TCM loads (ARM proof of concept).
    pub tcm_load: u64,
    /// TCM stores (ARM proof of concept).
    pub tcm_store: u64,
}

impl MicroOpCounts {
    /// Extract counts from a PMU delta.
    pub fn from_pmu(p: &PmuSnapshot) -> MicroOpCounts {
        MicroOpCounts {
            l1d: p.get(Event::LoadIssued),
            reg2l1d: p.get(Event::L1dStoreHit),
            l2: p.get(Event::L2Hit) + p.get(Event::L2Miss),
            l3: p.get(Event::L3Hit) + p.get(Event::L3Miss),
            mem: p.get(Event::L3Miss),
            pf_l2: p.get(Event::PrefetchL2),
            pf_l3: p.get(Event::PrefetchL3),
            stall: p.get(Event::StallCycles),
            add: p.get(Event::AddOps),
            nop: p.get(Event::NopOps),
            tcm_load: p.get(Event::TcmLoad),
            tcm_store: p.get(Event::TcmStore),
        }
    }

    /// `N_m` for a member of `MS` (prefetch flavours combined).
    pub fn get(&self, op: MicroOp) -> u64 {
        match op {
            MicroOp::L1d => self.l1d,
            MicroOp::Reg2L1d => self.reg2l1d,
            MicroOp::L2 => self.l2,
            MicroOp::L3 => self.l3,
            MicroOp::Mem => self.mem,
            MicroOp::Pf => self.pf_l2 + self.pf_l3,
            MicroOp::Stall => self.stall,
        }
    }

    /// True when the workload never left the core+L1+L2 complex (the §2.6
    /// rule for reading only the core RAPL domain).
    pub fn core_only(&self) -> bool {
        self.l3 == 0 && self.mem == 0 && self.pf_l2 == 0 && self.pf_l3 == 0
    }

    /// True when DRAM was never touched (read the package domain only).
    pub fn package_only(&self) -> bool {
        self.mem == 0 && self.pf_l3 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{ArchConfig, Cpu, Dep};

    #[test]
    fn counts_follow_the_step_by_step_rule() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        cpu.set_prefetch(false);
        let r = cpu.alloc(1024 * 1024).unwrap();
        let m = cpu.measure(|c| {
            // 1024 cold lines: every load goes to DRAM.
            for i in 0..1024u64 {
                c.load(r.addr + i * 64, Dep::Stream);
            }
        });
        let n = MicroOpCounts::from_pmu(&m.pmu);
        assert_eq!(n.l1d, 1024);
        assert_eq!(n.l2, 1024, "each L1D miss is an L2 access");
        assert_eq!(n.l3, 1024);
        assert_eq!(n.mem, 1024);
        assert_eq!(n.get(MicroOp::Pf), 0);
        assert!(!n.core_only());
        assert!(!n.package_only());
    }

    #[test]
    fn l1_resident_workload_is_core_only() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        cpu.set_prefetch(false);
        let r = cpu.alloc(4096).unwrap();
        for i in 0..64u64 {
            cpu.load(r.addr + i * 64, Dep::Stream); // warm: these do hit DRAM
        }
        let m = cpu.measure(|c| {
            for i in 0..64u64 {
                c.load(r.addr + i * 64, Dep::Stream);
            }
            c.store(r.addr);
        });
        let n = MicroOpCounts::from_pmu(&m.pmu);
        assert!(n.core_only(), "{n:?}");
        assert_eq!(n.reg2l1d, 1);
    }
}
