//! The analysed micro-operation set `MS` (§2.3).

use std::fmt;

/// One micro-operation in `MS`.
///
/// For `L1d`/`L2`/`L3`/`Mem`, the micro-op is a load that reads data *from*
/// that layer into the next higher one; `Reg2L1d` is a store from registers
/// into L1D; `Pf` is a hardware prefetch (L2 or L3 flavour); `Stall` is one
/// core cycle stalled on a data load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroOp {
    /// Load serviced by the L1 data cache.
    L1d,
    /// Store from registers into L1D.
    Reg2L1d,
    /// Load serviced by L2 (data moves L2→L1D).
    L2,
    /// Load serviced by L3 (data moves L3→L2).
    L3,
    /// Load serviced by DRAM (data moves DRAM→L3).
    Mem,
    /// Hardware prefetch (both L2-streamer flavours combined, as in `MS`).
    Pf,
    /// One stall cycle due to memory access.
    Stall,
}

impl MicroOp {
    /// All members of `MS`, in the paper's presentation order.
    pub const MS: [MicroOp; 7] = [
        MicroOp::L1d,
        MicroOp::Reg2L1d,
        MicroOp::L2,
        MicroOp::L3,
        MicroOp::Mem,
        MicroOp::Pf,
        MicroOp::Stall,
    ];

    /// The paper's symbol for the micro-op (used in table headers).
    pub fn symbol(self) -> &'static str {
        match self {
            MicroOp::L1d => "L1D",
            MicroOp::Reg2L1d => "Reg2L1D",
            MicroOp::L2 => "L2",
            MicroOp::L3 => "L3",
            MicroOp::Mem => "mem",
            MicroOp::Pf => "pf",
            MicroOp::Stall => "stall",
        }
    }

    /// Dense index for array-backed maps.
    pub fn index(self) -> usize {
        match self {
            MicroOp::L1d => 0,
            MicroOp::Reg2L1d => 1,
            MicroOp::L2 => 2,
            MicroOp::L3 => 3,
            MicroOp::Mem => 4,
            MicroOp::Pf => 5,
            MicroOp::Stall => 6,
        }
    }
}

impl fmt::Display for MicroOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_has_seven_distinct_ops_with_dense_indices() {
        let mut seen = [false; 7];
        for op in MicroOp::MS {
            assert!(!seen[op.index()]);
            seen[op.index()] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }
}
