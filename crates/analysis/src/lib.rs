#![warn(missing_docs)]

//! # analysis — micro analysis of Busy-CPU energy
//!
//! The paper's primary contribution (§2): break the Busy-CPU energy of a
//! workload into the energy of individual micro-operations,
//!
//! ```text
//! E_active(w) = E_other(w) + Σ_{m ∈ MS} N_m(w) · ΔE_m        (Eq. 1)
//! MS = {L1D, Reg2L1D, L2, L3, mem, pf, stall}
//! ```
//!
//! The pipeline has four steps, each a module here:
//!
//! 1. **Counting** (`counting`, §2.4) — extract `N_m` from PMU snapshots.
//! 2. **Calibration** (`solver`, §2.5.4) — run the `MBS` micro-benchmarks,
//!    measure their Active energy via RAPL minus background, and solve the
//!    energy models for every `ΔE_m`. The result is an [`EnergyTable`].
//! 3. **Verification** (`verify`, §2.5.5) — estimate the Active energy of
//!    the `VMBS` benchmarks from the solved `ΔE_m` and score the accuracy
//!    against the measured value (paper: 93.47% average — Table 3).
//! 4. **Breakdown** (`breakdown`, §3) — decompose any workload's measured
//!    Active energy into `E_L1D, E_Reg2L1D, E_L2, E_L3, E_mem, E_pf,
//!    E_stall, E_other` (the stacked bars of Figs. 6–11).
//!
//! Nothing in this crate reads the simulator's hidden ground-truth prices;
//! everything is inferred from metered joules and event counts, exactly as
//! the paper infers them from RAPL + perf.

pub mod active;
pub mod breakdown;
pub mod counting;
pub mod microop;
pub mod report;
pub mod solver;
pub mod verify;

pub use active::{ActiveEnergy, Background, DomainChoice};
pub use breakdown::Breakdown;
pub use counting::MicroOpCounts;
pub use microop::MicroOp;
pub use solver::{CalibrationBuilder, CalibrationError, EnergyTable};
pub use verify::{verify_all, VerifyResult};

// The mjrt calibration cache shares solved tables across worker threads
// (`Arc<EnergyTable>`); assert thread-portability at the definition site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EnergyTable>();
    assert_send_sync::<Breakdown>();
    assert_send_sync::<Background>();
};
