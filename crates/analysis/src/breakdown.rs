//! Active-energy breakdown of arbitrary workloads (§3, Figs. 6–11).

use crate::active::{active_energy, ActiveEnergy};
use crate::counting::MicroOpCounts;
use crate::microop::MicroOp;
use crate::solver::EnergyTable;
use simcore::Measurement;

/// The decomposition of one workload window's Active energy.
///
/// `E_active = E_L1D + E_Reg2L1D + E_L2 + E_L3 + E_mem + E_pf + E_stall +
/// E_other`, where `E_other` is the unisolated remainder (calculation, L1I,
/// TLB…). Shares are fractions of the Active energy, the quantity the
/// paper's stacked bars plot.
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// Busy/background/active split of the window.
    pub active: ActiveEnergy,
    /// Micro-op counts of the window.
    pub counts: MicroOpCounts,
    e: [f64; 7],
    e_other: f64,
    /// Denominator for shares: Active energy, or the modelled movement sum
    /// if the linear model slightly overshoots the measurement.
    denom: f64,
    /// Window wall time (seconds).
    pub time_s: f64,
}

impl Breakdown {
    pub(crate) fn compute(table: &EnergyTable, m: &Measurement) -> Breakdown {
        let counts = MicroOpCounts::from_pmu(&m.pmu);
        let active = active_energy(m, &table.background);
        let mut e = [0.0f64; 7];
        for op in MicroOp::MS {
            e[op.index()] = match op {
                MicroOp::Pf => {
                    table.de_pf_l2 * counts.pf_l2 as f64 + table.de_pf_l3 * counts.pf_l3 as f64
                }
                _ => table.de(op) * counts.get(op) as f64,
            };
        }
        // TCM traffic (ARM proof of concept) is data movement too; fold it
        // into the L1D slot's sibling accounting? No — keep it visible by
        // adding it to E_other's explained part is wrong either. It has its
        // own solved ΔE, so report it inside E_L1D would misattribute: add a
        // dedicated share via e_other reduction.
        let movement: f64 = e.iter().sum::<f64>() + table.de_tcm_load * counts.tcm_load as f64;
        let denom = active.active_j.max(movement).max(f64::MIN_POSITIVE);
        let e_other = (denom - movement).max(0.0);
        Breakdown {
            active,
            counts,
            e,
            e_other,
            denom,
            time_s: m.time_s,
        }
    }

    /// Energy attributed to `op` (joules).
    pub fn energy_j(&self, op: MicroOp) -> f64 {
        self.e[op.index()]
    }

    /// The unisolated remainder `E_other` (joules).
    pub fn other_j(&self) -> f64 {
        self.e_other
    }

    /// Active energy of the window (joules).
    pub fn active_j(&self) -> f64 {
        self.active.active_j
    }

    /// Share of Active energy attributed to `op` (0..1).
    pub fn share(&self, op: MicroOp) -> f64 {
        self.e[op.index()] / self.denom
    }

    /// Share of `E_other`.
    pub fn other_share(&self) -> f64 {
        self.e_other / self.denom
    }

    /// Total data-movement energy (all seven `MS` members).
    pub fn movement_j(&self) -> f64 {
        self.e.iter().sum()
    }

    /// Data movement as a share of Active energy (paper: 55–76.4% for query
    /// workloads).
    pub fn movement_share(&self) -> f64 {
        self.movement_j() / self.denom
    }

    /// `E_L1D + E_Reg2L1D` share — the paper's headline quantity (39–67%).
    pub fn l1d_share(&self) -> f64 {
        self.share(MicroOp::L1d) + self.share(MicroOp::Reg2L1d)
    }

    /// Share of the *Busy* energy that the method explains (movement +
    /// background); the paper reports 77.7–89.2% for query workloads.
    pub fn busy_explained_share(&self) -> f64 {
        if self.active.busy_j <= 0.0 {
            return 0.0;
        }
        ((self.movement_j() + self.active.background_j) / self.active.busy_j).min(1.0)
    }

    /// The eight shares in the paper's legend order
    /// (L1D, Reg2L1D, L2, L3, mem, pf, stall, other).
    pub fn shares(&self) -> [f64; 8] {
        [
            self.share(MicroOp::L1d),
            self.share(MicroOp::Reg2L1d),
            self.share(MicroOp::L2),
            self.share(MicroOp::L3),
            self.share(MicroOp::Mem),
            self.share(MicroOp::Pf),
            self.share(MicroOp::Stall),
            self.other_share(),
        ]
    }

    /// Combine several windows (e.g. the 22 TPC-H queries) into an average
    /// breakdown weighted by energy, used for Figs. 8/9/11.
    pub fn merge(parts: &[Breakdown]) -> Option<Breakdown> {
        let first = parts.first()?;
        let mut out = first.clone();
        for p in &parts[1..] {
            for i in 0..7 {
                out.e[i] += p.e[i];
            }
            out.e_other += p.e_other;
            out.denom += p.denom;
            out.time_s += p.time_s;
            out.active.busy_j += p.active.busy_j;
            out.active.background_j += p.active.background_j;
            out.active.active_j += p.active.active_j;
            out.counts.l1d += p.counts.l1d;
            out.counts.reg2l1d += p.counts.reg2l1d;
            out.counts.l2 += p.counts.l2;
            out.counts.l3 += p.counts.l3;
            out.counts.mem += p.counts.mem;
            out.counts.pf_l2 += p.counts.pf_l2;
            out.counts.pf_l3 += p.counts.pf_l3;
            out.counts.stall += p.counts.stall;
            out.counts.add += p.counts.add;
            out.counts.nop += p.counts.nop;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::CalibrationBuilder;
    use simcore::{Cpu, Dep, ExecOp};

    #[test]
    fn shares_sum_to_one() {
        let table = CalibrationBuilder::quick()
            .calibrate()
            .expect("calibration");
        let mut cpu = Cpu::new(table.arch.clone());
        cpu.set_prefetch(true);
        let r = cpu.alloc(1 << 20).unwrap();
        let m = cpu.measure(|c| {
            for i in 0..(1u64 << 20) / 64 {
                c.load(r.addr + i * 64, Dep::Stream);
                c.exec(ExecOp::Generic);
            }
            c.store(r.addr);
        });
        let bd = table.breakdown(&m);
        let total: f64 = bd.shares().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
        assert!(bd.active_j() > 0.0);
    }

    #[test]
    fn l1d_dominates_a_resident_scan() {
        let table = CalibrationBuilder::quick()
            .calibrate()
            .expect("calibration");
        let mut cpu = Cpu::new(table.arch.clone());
        cpu.set_prefetch(false);
        let r = cpu.alloc(16 * 1024).unwrap();
        for i in 0..256u64 {
            cpu.load(r.addr + i * 64, Dep::Stream);
        }
        let m = cpu.measure(|c| {
            for _ in 0..200 {
                for i in 0..256u64 {
                    c.load(r.addr + i * 64, Dep::Stream);
                }
            }
        });
        let bd = table.breakdown(&m);
        assert!(bd.l1d_share() > 0.7, "L1D share {}", bd.l1d_share());
    }

    #[test]
    fn pointer_chase_shifts_energy_to_stall() {
        let table = CalibrationBuilder::quick()
            .calibrate()
            .expect("calibration");
        let mut cpu = Cpu::new(table.arch.clone());
        cpu.set_prefetch(false);
        let r = cpu.alloc(64).unwrap();
        cpu.load(r.addr, Dep::Stream);
        let m = cpu.measure(|c| {
            for _ in 0..50_000 {
                c.load(r.addr, Dep::Chase);
            }
        });
        let bd = table.breakdown(&m);
        assert!(bd.share(MicroOp::Stall) > bd.share(MicroOp::L1d));
    }

    #[test]
    fn merge_weights_by_energy() {
        let table = CalibrationBuilder::quick()
            .calibrate()
            .expect("calibration");
        let mut cpu = Cpu::new(table.arch.clone());
        cpu.set_prefetch(false);
        let r = cpu.alloc(4096).unwrap();
        let mk = |cpu: &mut Cpu, n: u64| {
            let m = cpu.measure(|c| {
                for _ in 0..n {
                    for i in 0..64u64 {
                        c.load(r.addr + i * 64, Dep::Stream);
                    }
                }
            });
            table.breakdown(&m)
        };
        let a = mk(&mut cpu, 50);
        let b = mk(&mut cpu, 100);
        let merged = Breakdown::merge(&[a.clone(), b]).unwrap();
        assert!(merged.active_j() > a.active_j());
        let total: f64 = merged.shares().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
