//! Active-energy evaluation (§2.6).
//!
//! `Busy-CPU energy = Active energy + Background energy`. The background is
//! measured by metering an only-blocked program (our `sleep 1` equivalent is
//! one second of C0 idle on a fresh machine); the Busy-CPU energy of a
//! workload is read from the narrowest RAPL domain set that covers the
//! workload's memory traffic:
//!
//! * touched nothing beyond L2 → `E(core)`,
//! * touched L3 but not DRAM → `E(package)`,
//! * touched DRAM → `E(package) + E(memory)`.

use crate::counting::MicroOpCounts;
use simcore::{ArchConfig, Cpu, Measurement, PState};

/// Which RAPL domains a workload's energy was read from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainChoice {
    /// `E(core)`.
    Core,
    /// `E(package)`.
    Package,
    /// `E(package) + E(memory)`.
    PackageAndMemory,
}

/// Measured background power per domain at one operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Background {
    /// Operating point the background was measured at.
    pub pstate: PState,
    /// Core-domain watts.
    pub core_w: f64,
    /// Package-domain watts (includes core).
    pub package_w: f64,
    /// Memory-domain watts.
    pub memory_w: f64,
}

impl Background {
    /// Measure the background power of `arch` at `pstate` by metering one
    /// second of C0 idle on a fresh machine (the paper's `sleep 1` with
    /// C-states disabled).
    pub fn measure(arch: &ArchConfig, pstate: PState) -> Background {
        let mut cpu = Cpu::new(arch.clone());
        cpu.set_governor(false);
        cpu.set_pstate(pstate);
        let before = cpu.rapl();
        cpu.idle_c0(1.0);
        let d = cpu.rapl().delta(&before);
        Background {
            pstate,
            core_w: d.core_j,
            package_w: d.package_j,
            memory_w: d.memory_j,
        }
    }

    /// Background watts for a domain choice.
    pub fn watts(&self, choice: DomainChoice) -> f64 {
        match choice {
            DomainChoice::Core => self.core_w,
            DomainChoice::Package => self.package_w,
            DomainChoice::PackageAndMemory => self.package_w + self.memory_w,
        }
    }
}

/// The Busy/Background/Active split of one measurement window.
#[derive(Debug, Clone, Copy)]
pub struct ActiveEnergy {
    /// Domains the Busy-CPU energy was read from.
    pub choice: DomainChoice,
    /// Busy-CPU energy (joules) over the window.
    pub busy_j: f64,
    /// Background energy (joules) subtracted.
    pub background_j: f64,
    /// Active energy = busy − background, floored at zero.
    pub active_j: f64,
}

/// Pick the §2.6 domain set for a window's traffic.
pub fn choose_domains(counts: &MicroOpCounts) -> DomainChoice {
    if counts.core_only() {
        DomainChoice::Core
    } else if counts.package_only() {
        DomainChoice::Package
    } else {
        DomainChoice::PackageAndMemory
    }
}

/// Evaluate the Active energy of a measurement window against a measured
/// background.
pub fn active_energy(m: &Measurement, bg: &Background) -> ActiveEnergy {
    let counts = MicroOpCounts::from_pmu(&m.pmu);
    let choice = choose_domains(&counts);
    let busy_j = match choice {
        DomainChoice::Core => m.rapl.core_j,
        DomainChoice::Package => m.rapl.package_j,
        DomainChoice::PackageAndMemory => m.rapl.package_j + m.rapl.memory_j,
    };
    let background_j = bg.watts(choice) * m.time_s;
    ActiveEnergy {
        choice,
        busy_j,
        background_j,
        active_j: (busy_j - background_j).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{ArchConfig, Dep};

    #[test]
    fn background_is_a_few_watts_at_p36() {
        let bg = Background::measure(&ArchConfig::intel_i7_4790(), PState::P36);
        assert!(bg.package_w > 2.0 && bg.package_w < 15.0, "{bg:?}");
        assert!(bg.core_w < bg.package_w);
        let bg12 = Background::measure(&ArchConfig::intel_i7_4790(), PState::P12);
        assert!(bg12.package_w < bg.package_w);
    }

    #[test]
    fn active_energy_subtracts_background() {
        let arch = ArchConfig::intel_i7_4790();
        let bg = Background::measure(&arch, PState::P36);
        let mut cpu = Cpu::new(arch);
        cpu.set_prefetch(false);
        let r = cpu.alloc(4096).unwrap();
        for i in 0..64u64 {
            cpu.load(r.addr + i * 64, Dep::Stream);
        }
        let m = cpu.measure(|c| {
            for _ in 0..10_000 {
                for i in 0..64u64 {
                    c.load(r.addr + i * 64, Dep::Stream);
                }
            }
        });
        let a = active_energy(&m, &bg);
        assert_eq!(a.choice, DomainChoice::Core);
        assert!(a.active_j > 0.0);
        assert!(a.busy_j > a.active_j);
        // Active should be a solid share of busy for a hot loop.
        assert!(a.active_j / a.busy_j > 0.3, "{a:?}");
    }

    #[test]
    fn dram_workload_uses_package_plus_memory() {
        let arch = ArchConfig::intel_i7_4790();
        let bg = Background::measure(&arch, PState::P36);
        let mut cpu = Cpu::new(arch);
        cpu.set_prefetch(false);
        let r = cpu.alloc(32 * 1024 * 1024).unwrap();
        let m = cpu.measure(|c| {
            for i in 0..(32 * 1024 * 1024 / 64) {
                c.load(r.addr + i * 64, Dep::Stream);
            }
        });
        let a = active_energy(&m, &bg);
        assert_eq!(a.choice, DomainChoice::PackageAndMemory);
        assert!(a.active_j > 0.0);
    }
}
