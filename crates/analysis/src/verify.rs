//! Verification of the solved `ΔE_m` (§2.5.5, Table 3).
//!
//! Each `VMBS` benchmark is measured and its Active energy is *also*
//! estimated from Eq. 1 with `E_other(v) = ΔE_add·N_add(v) + ΔE_nop·N_nop(v)`.
//! The accuracy is
//!
//! ```text
//! acc(v) = 1 − |Ê_active(v) − E_active(v)| / E_active(v)     (floored at 0)
//! ```

use crate::active::active_energy;
use crate::counting::MicroOpCounts;
use crate::solver::EnergyTable;
use microbench::runner::bench_cpu;
use microbench::{BenchRun, RunConfig, VerifyBenchId};

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct VerifyResult {
    /// Benchmark name.
    pub name: &'static str,
    /// Estimated Active energy `Ê_active(v)` (joules).
    pub estimated_j: f64,
    /// Measured Active energy `E_active(v)` (joules).
    pub measured_j: f64,
    /// Accuracy in `[0, 1]`.
    pub acc: f64,
}

/// Score one verification run against a table.
pub fn verify_one(table: &EnergyTable, run: &BenchRun) -> VerifyResult {
    let counts = MicroOpCounts::from_pmu(&run.measurement.pmu);
    let estimated_j = table.estimate_active_j(&counts);
    let measured_j = active_energy(&run.measurement, &table.background).active_j;
    let acc = if measured_j <= 0.0 {
        0.0
    } else {
        (1.0 - (estimated_j - measured_j).abs() / measured_j).max(0.0)
    };
    VerifyResult {
        name: run.name,
        estimated_j,
        measured_j,
        acc,
    }
}

/// Run the whole applicable `VMBS` set on fresh machines and score each.
pub fn verify_all(table: &EnergyTable, cfg: &RunConfig) -> Vec<VerifyResult> {
    VerifyBenchId::SET
        .into_iter()
        .filter(|id| id.applicable(table.arch.kind))
        .map(|id| {
            let mut cpu = bench_cpu(table.arch.clone(), cfg);
            let run = id.run(&mut cpu, cfg);
            verify_one(table, &run)
        })
        .collect()
}

/// Mean accuracy over a result set (paper: 93.47%).
pub fn mean_accuracy(results: &[VerifyResult]) -> f64 {
    if results.is_empty() {
        return 0.0;
    }
    results.iter().map(|r| r.acc).sum::<f64>() / results.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::CalibrationBuilder;

    #[test]
    fn verification_accuracy_matches_table3_band() {
        let table = CalibrationBuilder::quick()
            .calibrate()
            .expect("calibration");
        let cfg = RunConfig::quick();
        let results = verify_all(&table, &cfg);
        assert_eq!(results.len(), 7);
        for r in &results {
            assert!(
                r.acc > 0.80,
                "{}: acc {:.3} (est {:.4} J vs meas {:.4} J)",
                r.name,
                r.acc,
                r.estimated_j,
                r.measured_j
            );
            assert!(r.acc <= 1.0);
        }
        let mean = mean_accuracy(&results);
        assert!(mean > 0.85, "mean accuracy {mean}");
        // The model must not be suspiciously perfect either — the simulator
        // has honest nonlinearities the linear model cannot express.
        assert!(mean < 0.9999, "mean accuracy {mean} is implausibly exact");
    }

    #[test]
    fn zero_measured_energy_scores_zero() {
        let table = CalibrationBuilder::quick()
            .calibrate()
            .expect("calibration");
        let cfg = RunConfig::quick();
        let mut cpu = bench_cpu(table.arch.clone(), &cfg);
        let run = VerifyBenchId::L1dListNop.run(&mut cpu, &cfg);
        let mut fake = run;
        fake.measurement.rapl.core_j = 0.0;
        fake.measurement.rapl.package_j = 0.0;
        fake.measurement.rapl.memory_j = 0.0;
        let v = verify_one(&table, &fake);
        assert_eq!(v.acc, 0.0);
    }
}
