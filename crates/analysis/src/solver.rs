//! Energy-model solving (§2.5.4): from micro-benchmark measurements to the
//! per-micro-op energies `ΔE_m`.
//!
//! ```text
//! ΔE_L1D     = E(B_L1D_array) / N_L1D
//! ΔE_stall   = (E(B_L1D_list) − E_L1D) / N_stall
//! ΔE_m       = (E(B_m) − Σ_{i>m} ΔE_i·N_i − E_stall) / N_m      (Eq. 2)
//! ΔE_Reg2L1D = E(B_Reg2L1D) / N_Reg2L1D
//! ΔE_pf^L2   = ΔE_L3,  ΔE_pf^L3 = ΔE_mem        (movement assumption, §2.5.4)
//! ΔE_add     = E(B_add) / N_add,   ΔE_nop = E(B_nop) / N_nop
//! ```
//!
//! All right-hand sides are *measured* quantities (RAPL minus background,
//! PMU counts); the solver never sees the simulator's ground truth.

use crate::active::{active_energy, Background};
use crate::counting::MicroOpCounts;
use crate::microop::MicroOp;
use microbench::runner::bench_cpu;
use microbench::{BenchRun, MicroBenchId, RunConfig};
use simcore::{ArchConfig, ArchKind, Measurement, PState};

/// Solved per-micro-op energies at one operating point (the paper's
/// Table 2), plus everything needed to break down workloads.
#[derive(Debug, Clone)]
pub struct EnergyTable {
    /// Architecture the table was calibrated on.
    pub arch: ArchConfig,
    /// Operating point of the calibration.
    pub pstate: PState,
    /// Background power measured during calibration.
    pub background: Background,
    de: [f64; 7],
    /// `ΔE_pf^L2` in joules (≡ `ΔE_L3`).
    pub de_pf_l2: f64,
    /// `ΔE_pf^L3` in joules (≡ `ΔE_mem`).
    pub de_pf_l3: f64,
    /// `ΔE_add` in joules.
    pub de_add: f64,
    /// `ΔE_nop` in joules.
    pub de_nop: f64,
    /// `ΔE` of a TCM load (ARM parts; 0 elsewhere).
    pub de_tcm_load: f64,
}

impl EnergyTable {
    /// Solved `ΔE_m` in joules. For [`MicroOp::Pf`] this returns the L2
    /// flavour (use [`EnergyTable::de_pf_l2`]/[`EnergyTable::de_pf_l3`] when
    /// the split matters).
    pub fn de(&self, op: MicroOp) -> f64 {
        match op {
            MicroOp::Pf => self.de_pf_l2,
            _ => self.de[op.index()],
        }
    }

    /// Solved `ΔE_m` in nanojoules (the paper's Table 2 unit).
    pub fn de_nj(&self, op: MicroOp) -> f64 {
        self.de(op) * 1e9
    }

    /// Estimate a window's Active energy from counts alone — Eq. 1 with
    /// `E_other = ΔE_add·N_add + ΔE_nop·N_nop` (the §2.5.5 estimator).
    pub fn estimate_active_j(&self, counts: &MicroOpCounts) -> f64 {
        self.movement_j(counts) + self.de_add * counts.add as f64 + self.de_nop * counts.nop as f64
    }

    /// The data-movement part of Eq. 1: `Σ_{m∈MS} ΔE_m · N_m`.
    pub fn movement_j(&self, counts: &MicroOpCounts) -> f64 {
        let mut e = 0.0;
        for op in [
            MicroOp::L1d,
            MicroOp::Reg2L1d,
            MicroOp::L2,
            MicroOp::L3,
            MicroOp::Mem,
        ] {
            e += self.de(op) * counts.get(op) as f64;
        }
        e += self.de_pf_l2 * counts.pf_l2 as f64;
        e += self.de_pf_l3 * counts.pf_l3 as f64;
        e += self.de(MicroOp::Stall) * counts.stall as f64;
        e += self.de_tcm_load * counts.tcm_load as f64;
        e
    }

    /// Break a workload measurement down into per-micro-op energies (§3).
    pub fn breakdown(&self, m: &Measurement) -> crate::breakdown::Breakdown {
        crate::breakdown::Breakdown::compute(self, m)
    }
}

/// Runs the calibration pipeline: background, `MBS`, solve.
#[derive(Debug, Clone)]
pub struct CalibrationBuilder {
    arch: ArchConfig,
    cfg: RunConfig,
}

impl CalibrationBuilder {
    /// Calibrate `arch` at the paper's trunk configuration (P36 for x86).
    pub fn new(arch: ArchConfig) -> CalibrationBuilder {
        let top = PState(arch.max_pstate);
        CalibrationBuilder {
            arch,
            cfg: RunConfig::at(top),
        }
    }

    /// Small, fast calibration on the i7-4790 (for tests and doc examples).
    pub fn quick() -> CalibrationBuilder {
        CalibrationBuilder::new(ArchConfig::intel_i7_4790()).target_ops(20_000)
    }

    /// Set the operating point.
    pub fn pstate(mut self, ps: PState) -> Self {
        self.cfg.pstate = ps;
        self
    }

    /// Set the per-benchmark measured-op budget.
    pub fn target_ops(mut self, n: u64) -> Self {
        self.cfg.target_ops = n;
        self
    }

    fn run(&self, id: MicroBenchId) -> BenchRun {
        // Fresh machine per benchmark: cold caches + clean meters, like
        // running each binary separately on real hardware.
        let mut cpu = bench_cpu(self.arch.clone(), &self.cfg);
        id.run(&mut cpu, &self.cfg)
    }

    fn active_j(&self, bg: &Background, run: &BenchRun) -> f64 {
        active_energy(&run.measurement, bg).active_j
    }

    /// Execute the full §2.5 pipeline and solve the table.
    pub fn calibrate(&self) -> EnergyTable {
        let bg = Background::measure(&self.arch, self.cfg.pstate);
        let counts = |r: &BenchRun| MicroOpCounts::from_pmu(&r.measurement.pmu);

        let mut de = [0.0f64; 7];

        // ΔE_L1D from the stall-free array benchmark.
        let arr = self.run(MicroBenchId::L1dArray);
        let n = counts(&arr);
        de[MicroOp::L1d.index()] = self.active_j(&bg, &arr) / n.l1d as f64;

        // ΔE_stall from the list benchmark.
        let list = self.run(MicroBenchId::L1dList);
        let n = counts(&list);
        let e_l1d = de[MicroOp::L1d.index()] * n.l1d as f64;
        de[MicroOp::Stall.index()] =
            ((self.active_j(&bg, &list) - e_l1d) / n.stall as f64).max(0.0);

        // ΔE_Reg2L1D from the store benchmark.
        let st = self.run(MicroBenchId::Reg2L1d);
        let n = counts(&st);
        de[MicroOp::Reg2L1d.index()] = self.active_j(&bg, &st) / n.reg2l1d as f64;

        // Eq. 2 down the hierarchy. Each level subtracts the energy of every
        // higher level (step-by-step replication) and the stall energy.
        let solve_level = |id: MicroBenchId, op: MicroOp, de: &mut [f64; 7]| {
            let run = self.run(id);
            let n = counts(&run);
            let mut rest = de[MicroOp::Stall.index()] * n.stall as f64;
            rest += de[MicroOp::L1d.index()] * n.l1d as f64;
            if op != MicroOp::L2 {
                rest += de[MicroOp::L2.index()] * n.l2 as f64;
            }
            if op == MicroOp::Mem {
                rest += de[MicroOp::L3.index()] * n.l3 as f64;
            }
            let own = n.get(op).max(1);
            de[op.index()] = ((self.active_j(&bg, &run) - rest) / own as f64).max(0.0);
        };

        if self.arch.kind == ArchKind::X86 {
            solve_level(MicroBenchId::L2, MicroOp::L2, &mut de);
            solve_level(MicroBenchId::L3, MicroOp::L3, &mut de);
            solve_level(MicroBenchId::Mem, MicroOp::Mem, &mut de);
        } else {
            // ARM: no L2/L3 — mem subtracts L1D + stall only.
            solve_level(MicroBenchId::Mem, MicroOp::Mem, &mut de);
        }

        // Instruction energies for the verification estimator.
        let add = self.run(MicroBenchId::Add);
        let n = counts(&add);
        let de_add = self.active_j(&bg, &add) / n.add.max(1) as f64;
        let nop = self.run(MicroBenchId::Nop);
        let n = counts(&nop);
        let de_nop = self.active_j(&bg, &nop) / n.nop.max(1) as f64;

        // TCM load energy on parts that have TCM.
        let de_tcm_load = if MicroBenchId::DtcmArray.applicable(self.arch.kind) {
            let t = self.run(MicroBenchId::DtcmArray);
            let n = counts(&t);
            self.active_j(&bg, &t) / n.tcm_load.max(1) as f64
        } else {
            0.0
        };

        EnergyTable {
            arch: self.arch.clone(),
            pstate: self.cfg.pstate,
            background: bg,
            de_pf_l2: de[MicroOp::L3.index()],
            de_pf_l3: de[MicroOp::Mem.index()],
            de,
            de_add,
            de_nop,
            de_tcm_load,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> EnergyTable {
        CalibrationBuilder::quick().calibrate()
    }

    #[test]
    fn solved_table_reproduces_paper_table2_at_p36() {
        let t = table();
        // Paper Table 2, P-state 36 (nJ): 1.30, 4.37, 6.64, 103.1, 2.42, 1.72.
        let close = |got: f64, want: f64, tol: f64| {
            assert!(
                (got - want).abs() / want < tol,
                "solved {got:.3} nJ vs paper {want} nJ"
            );
        };
        close(t.de_nj(MicroOp::L1d), 1.30, 0.15);
        close(t.de_nj(MicroOp::L2), 4.37, 0.20);
        close(t.de_nj(MicroOp::L3), 6.64, 0.25);
        close(t.de_nj(MicroOp::Mem), 103.1, 0.15);
        close(t.de_nj(MicroOp::Reg2L1d), 2.42, 0.20);
        close(t.de_nj(MicroOp::Stall), 1.72, 0.25);
        close(t.de_add * 1e9, 1.03, 0.30);
        close(t.de_nop * 1e9, 0.65, 0.30);
    }

    #[test]
    fn load_energy_is_ordered_by_depth() {
        let t = table();
        assert!(t.de(MicroOp::L1d) < t.de(MicroOp::L2));
        assert!(t.de(MicroOp::L2) < t.de(MicroOp::L3));
        assert!(t.de(MicroOp::L3) < t.de(MicroOp::Mem));
    }

    #[test]
    fn prefetch_energies_follow_the_movement_assumption() {
        let t = table();
        assert_eq!(t.de_pf_l2, t.de(MicroOp::L3));
        assert_eq!(t.de_pf_l3, t.de(MicroOp::Mem));
    }

    #[test]
    fn lower_pstate_lowers_on_chip_energies() {
        let hi = table();
        let lo = CalibrationBuilder::quick().pstate(PState::P12).calibrate();
        assert!(lo.de(MicroOp::L1d) < hi.de(MicroOp::L1d));
        assert!(lo.de(MicroOp::L2) < hi.de(MicroOp::L2));
        assert!(lo.de(MicroOp::Stall) < hi.de(MicroOp::Stall));
        // DRAM energy barely moves (paper: 103.1 → 99.04 nJ).
        let ratio = lo.de(MicroOp::Mem) / hi.de(MicroOp::Mem);
        assert!(ratio > 0.90 && ratio < 1.05, "mem ratio {ratio}");
    }

    #[test]
    fn arm_table_has_tcm_cheaper_than_l1d() {
        let t = CalibrationBuilder::new(ArchConfig::arm1176jzf_s())
            .target_ops(20_000)
            .calibrate();
        assert!(t.de_tcm_load > 0.0);
        assert!(t.de_tcm_load < t.de(MicroOp::L1d));
        assert_eq!(t.de(MicroOp::L2), 0.0);
    }
}
