//! Energy-model solving (§2.5.4): from micro-benchmark measurements to the
//! per-micro-op energies `ΔE_m`.
//!
//! ```text
//! ΔE_L1D     = E(B_L1D_array) / N_L1D
//! ΔE_stall   = (E(B_L1D_list) − E_L1D) / N_stall
//! ΔE_m       = (E(B_m) − Σ_{i>m} ΔE_i·N_i − E_stall) / N_m      (Eq. 2)
//! ΔE_Reg2L1D = E(B_Reg2L1D) / N_Reg2L1D
//! ΔE_pf^L2   = ΔE_L3,  ΔE_pf^L3 = ΔE_mem        (movement assumption, §2.5.4)
//! ΔE_add     = E(B_add) / N_add,   ΔE_nop = E(B_nop) / N_nop
//! ```
//!
//! All right-hand sides are *measured* quantities (RAPL minus background,
//! PMU counts); the solver never sees the simulator's ground truth.

use crate::active::{active_energy, Background};
use crate::counting::MicroOpCounts;
use crate::microop::MicroOp;
use microbench::runner::bench_cpu;
use microbench::{BenchRun, MicroBenchId, RunConfig};
use simcore::{ArchConfig, ArchKind, Measurement, PState};
use std::fmt;

/// A calibration benchmark whose PMU window recorded zero events for the
/// counter its solving equation divides by. Every `ΔE_m` equation in §2.5.4
/// has a measured count in the denominator; dividing by zero would poison the
/// whole [`EnergyTable`] with inf/NaN, so the solver refuses instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalibrationError {
    /// Benchmark whose measurement was degenerate (e.g. `B_L1D_array`).
    pub benchmark: &'static str,
    /// The PMU-derived counter that came back zero (e.g. `N_L1D`).
    pub counter: &'static str,
}

impl fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "calibration benchmark {} measured zero {} events; the energy \
             equation for it is unsolvable",
            self.benchmark, self.counter
        )
    }
}

impl std::error::Error for CalibrationError {}

/// Divide measured energy by a measured count, rejecting a zero denominator.
fn solved(
    energy_j: f64,
    count: u64,
    benchmark: &'static str,
    counter: &'static str,
) -> Result<f64, CalibrationError> {
    if count == 0 {
        return Err(CalibrationError { benchmark, counter });
    }
    Ok(energy_j / count as f64)
}

/// Solved per-micro-op energies at one operating point (the paper's
/// Table 2), plus everything needed to break down workloads.
#[derive(Debug, Clone)]
pub struct EnergyTable {
    /// Architecture the table was calibrated on.
    pub arch: ArchConfig,
    /// Operating point of the calibration.
    pub pstate: PState,
    /// Background power measured during calibration.
    pub background: Background,
    de: [f64; 7],
    /// `ΔE_pf^L2` in joules (≡ `ΔE_L3`).
    pub de_pf_l2: f64,
    /// `ΔE_pf^L3` in joules (≡ `ΔE_mem`).
    pub de_pf_l3: f64,
    /// `ΔE_add` in joules.
    pub de_add: f64,
    /// `ΔE_nop` in joules.
    pub de_nop: f64,
    /// `ΔE` of a TCM load (ARM parts; 0 elsewhere).
    pub de_tcm_load: f64,
}

impl EnergyTable {
    /// Solved `ΔE_m` in joules. For [`MicroOp::Pf`] this returns the L2
    /// flavour (use [`EnergyTable::de_pf_l2`]/[`EnergyTable::de_pf_l3`] when
    /// the split matters).
    pub fn de(&self, op: MicroOp) -> f64 {
        match op {
            MicroOp::Pf => self.de_pf_l2,
            _ => self.de[op.index()],
        }
    }

    /// Solved `ΔE_m` in nanojoules (the paper's Table 2 unit).
    pub fn de_nj(&self, op: MicroOp) -> f64 {
        self.de(op) * 1e9
    }

    /// Estimate a window's Active energy from counts alone — Eq. 1 with
    /// `E_other = ΔE_add·N_add + ΔE_nop·N_nop` (the §2.5.5 estimator).
    pub fn estimate_active_j(&self, counts: &MicroOpCounts) -> f64 {
        self.movement_j(counts) + self.de_add * counts.add as f64 + self.de_nop * counts.nop as f64
    }

    /// The data-movement part of Eq. 1: `Σ_{m∈MS} ΔE_m · N_m`.
    pub fn movement_j(&self, counts: &MicroOpCounts) -> f64 {
        let mut e = 0.0;
        for op in [
            MicroOp::L1d,
            MicroOp::Reg2L1d,
            MicroOp::L2,
            MicroOp::L3,
            MicroOp::Mem,
        ] {
            e += self.de(op) * counts.get(op) as f64;
        }
        e += self.de_pf_l2 * counts.pf_l2 as f64;
        e += self.de_pf_l3 * counts.pf_l3 as f64;
        e += self.de(MicroOp::Stall) * counts.stall as f64;
        e += self.de_tcm_load * counts.tcm_load as f64;
        e
    }

    /// Break a workload measurement down into per-micro-op energies (§3).
    pub fn breakdown(&self, m: &Measurement) -> crate::breakdown::Breakdown {
        crate::breakdown::Breakdown::compute(self, m)
    }
}

/// Runs the calibration pipeline: background, `MBS`, solve.
#[derive(Debug, Clone)]
pub struct CalibrationBuilder {
    arch: ArchConfig,
    cfg: RunConfig,
}

impl CalibrationBuilder {
    /// Calibrate `arch` at the paper's trunk configuration (P36 for x86).
    pub fn new(arch: ArchConfig) -> CalibrationBuilder {
        let top = PState(arch.max_pstate);
        CalibrationBuilder {
            arch,
            cfg: RunConfig::at(top),
        }
    }

    /// Small, fast calibration on the i7-4790 (for tests and doc examples).
    pub fn quick() -> CalibrationBuilder {
        CalibrationBuilder::new(ArchConfig::intel_i7_4790()).target_ops(20_000)
    }

    /// Set the operating point.
    pub fn pstate(mut self, ps: PState) -> Self {
        self.cfg.pstate = ps;
        self
    }

    /// Set the per-benchmark measured-op budget.
    pub fn target_ops(mut self, n: u64) -> Self {
        self.cfg.target_ops = n;
        self
    }

    fn run(&self, id: MicroBenchId) -> BenchRun {
        // Fresh machine per benchmark: cold caches + clean meters, like
        // running each binary separately on real hardware.
        let mut cpu = bench_cpu(self.arch.clone(), &self.cfg);
        id.run(&mut cpu, &self.cfg)
    }

    fn active_j(&self, bg: &Background, run: &BenchRun) -> f64 {
        active_energy(&run.measurement, bg).active_j
    }

    /// Execute the full §2.5 pipeline and solve the table.
    ///
    /// Fails with a [`CalibrationError`] if any benchmark's measurement
    /// window recorded zero events for the counter its equation divides by
    /// (a degenerate run would otherwise yield an inf/NaN-poisoned table).
    pub fn calibrate(&self) -> Result<EnergyTable, CalibrationError> {
        let bg = Background::measure(&self.arch, self.cfg.pstate);
        self.solve_from(&bg, &mut |id| self.run(id))
    }

    /// Solve the table from benchmark runs produced by `fetch` — the
    /// measurement source is injectable so degenerate windows are testable.
    fn solve_from(
        &self,
        bg: &Background,
        fetch: &mut dyn FnMut(MicroBenchId) -> BenchRun,
    ) -> Result<EnergyTable, CalibrationError> {
        let counts = |r: &BenchRun| MicroOpCounts::from_pmu(&r.measurement.pmu);

        let mut de = [0.0f64; 7];

        // ΔE_L1D from the stall-free array benchmark.
        let arr = fetch(MicroBenchId::L1dArray);
        let n = counts(&arr);
        de[MicroOp::L1d.index()] = solved(self.active_j(bg, &arr), n.l1d, "B_L1D_array", "N_L1D")?;

        // ΔE_stall from the list benchmark.
        let list = fetch(MicroBenchId::L1dList);
        let n = counts(&list);
        let e_l1d = de[MicroOp::L1d.index()] * n.l1d as f64;
        de[MicroOp::Stall.index()] = solved(
            self.active_j(bg, &list) - e_l1d,
            n.stall,
            "B_L1D_list",
            "N_stall",
        )?
        .max(0.0);

        // ΔE_Reg2L1D from the store benchmark.
        let st = fetch(MicroBenchId::Reg2L1d);
        let n = counts(&st);
        de[MicroOp::Reg2L1d.index()] =
            solved(self.active_j(bg, &st), n.reg2l1d, "B_Reg2L1D", "N_Reg2L1D")?;

        // Eq. 2 down the hierarchy. Each level subtracts the energy of every
        // higher level (step-by-step replication) and the stall energy.
        let mut solve_level =
            |id: MicroBenchId, op: MicroOp, de: &mut [f64; 7]| -> Result<(), CalibrationError> {
                let run = fetch(id);
                let n = counts(&run);
                let mut rest = de[MicroOp::Stall.index()] * n.stall as f64;
                rest += de[MicroOp::L1d.index()] * n.l1d as f64;
                if op != MicroOp::L2 {
                    rest += de[MicroOp::L2.index()] * n.l2 as f64;
                }
                if op == MicroOp::Mem {
                    rest += de[MicroOp::L3.index()] * n.l3 as f64;
                }
                de[op.index()] =
                    solved(self.active_j(bg, &run) - rest, n.get(op), run.name, "N_m")?.max(0.0);
                Ok(())
            };

        if self.arch.kind == ArchKind::X86 {
            solve_level(MicroBenchId::L2, MicroOp::L2, &mut de)?;
            solve_level(MicroBenchId::L3, MicroOp::L3, &mut de)?;
            solve_level(MicroBenchId::Mem, MicroOp::Mem, &mut de)?;
        } else {
            // ARM: no L2/L3 — mem subtracts L1D + stall only.
            solve_level(MicroBenchId::Mem, MicroOp::Mem, &mut de)?;
        }

        // Instruction energies for the verification estimator.
        let add = fetch(MicroBenchId::Add);
        let n = counts(&add);
        let de_add = solved(self.active_j(bg, &add), n.add, "B_add", "N_add")?;
        let nop = fetch(MicroBenchId::Nop);
        let n = counts(&nop);
        let de_nop = solved(self.active_j(bg, &nop), n.nop, "B_nop", "N_nop")?;

        // TCM load energy on parts that have TCM.
        let de_tcm_load = if MicroBenchId::DtcmArray.applicable(self.arch.kind) {
            let t = fetch(MicroBenchId::DtcmArray);
            let n = counts(&t);
            solved(self.active_j(bg, &t), n.tcm_load, "B_DTCM_array", "N_TCM")?
        } else {
            0.0
        };

        Ok(EnergyTable {
            arch: self.arch.clone(),
            pstate: self.cfg.pstate,
            background: *bg,
            de_pf_l2: de[MicroOp::L3.index()],
            de_pf_l3: de[MicroOp::Mem.index()],
            de,
            de_add,
            de_nop,
            de_tcm_load,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> EnergyTable {
        CalibrationBuilder::quick()
            .calibrate()
            .expect("calibration")
    }

    #[test]
    fn solved_table_reproduces_paper_table2_at_p36() {
        let t = table();
        // Paper Table 2, P-state 36 (nJ): 1.30, 4.37, 6.64, 103.1, 2.42, 1.72.
        let close = |got: f64, want: f64, tol: f64| {
            assert!(
                (got - want).abs() / want < tol,
                "solved {got:.3} nJ vs paper {want} nJ"
            );
        };
        close(t.de_nj(MicroOp::L1d), 1.30, 0.15);
        close(t.de_nj(MicroOp::L2), 4.37, 0.20);
        close(t.de_nj(MicroOp::L3), 6.64, 0.25);
        close(t.de_nj(MicroOp::Mem), 103.1, 0.15);
        close(t.de_nj(MicroOp::Reg2L1d), 2.42, 0.20);
        close(t.de_nj(MicroOp::Stall), 1.72, 0.25);
        close(t.de_add * 1e9, 1.03, 0.30);
        close(t.de_nop * 1e9, 0.65, 0.30);
    }

    #[test]
    fn load_energy_is_ordered_by_depth() {
        let t = table();
        assert!(t.de(MicroOp::L1d) < t.de(MicroOp::L2));
        assert!(t.de(MicroOp::L2) < t.de(MicroOp::L3));
        assert!(t.de(MicroOp::L3) < t.de(MicroOp::Mem));
    }

    #[test]
    fn prefetch_energies_follow_the_movement_assumption() {
        let t = table();
        assert_eq!(t.de_pf_l2, t.de(MicroOp::L3));
        assert_eq!(t.de_pf_l3, t.de(MicroOp::Mem));
    }

    #[test]
    fn lower_pstate_lowers_on_chip_energies() {
        let hi = table();
        let lo = CalibrationBuilder::quick()
            .pstate(PState::P12)
            .calibrate()
            .expect("calibration");
        assert!(lo.de(MicroOp::L1d) < hi.de(MicroOp::L1d));
        assert!(lo.de(MicroOp::L2) < hi.de(MicroOp::L2));
        assert!(lo.de(MicroOp::Stall) < hi.de(MicroOp::Stall));
        // DRAM energy barely moves (paper: 103.1 → 99.04 nJ).
        let ratio = lo.de(MicroOp::Mem) / hi.de(MicroOp::Mem);
        assert!(ratio > 0.90 && ratio < 1.05, "mem ratio {ratio}");
    }

    #[test]
    fn arm_table_has_tcm_cheaper_than_l1d() {
        let t = CalibrationBuilder::new(ArchConfig::arm1176jzf_s())
            .target_ops(20_000)
            .calibrate()
            .expect("calibration");
        assert!(t.de_tcm_load > 0.0);
        assert!(t.de_tcm_load < t.de(MicroOp::L1d));
        assert_eq!(t.de(MicroOp::L2), 0.0);
    }

    #[test]
    fn degenerate_zero_count_run_is_a_calibration_error_not_nan() {
        // A measurement window whose PMU recorded nothing: every solving
        // equation's denominator is zero. Pre-guard, the solver divided
        // anyway and handed back an inf/NaN-poisoned table; now it must
        // refuse with a structured error naming the first bad benchmark.
        let builder = CalibrationBuilder::quick();
        let bg = Background::measure(&builder.arch, builder.cfg.pstate);
        let dead_run = || BenchRun {
            name: "B_dead",
            measurement: Measurement {
                pmu: simcore::PmuSnapshot::zero(),
                rapl: simcore::RaplReading {
                    core_j: 1.0,
                    package_j: 1.5,
                    memory_j: 0.2,
                },
                time_s: 1e-3,
                cycles: 1e6,
                pstate: builder.cfg.pstate,
            },
            bli: 0.0,
        };
        let err = builder
            .solve_from(&bg, &mut |_id| dead_run())
            .expect_err("zero-count run must not solve");
        assert_eq!(err.benchmark, "B_L1D_array");
        assert_eq!(err.counter, "N_L1D");
        // The error renders both fields so a harness log is actionable.
        let msg = err.to_string();
        assert!(
            msg.contains("B_L1D_array") && msg.contains("N_L1D"),
            "{msg}"
        );
    }
}
