//! Plain-text and CSV rendering for the experiment harnesses.
//!
//! The paper's figures are stacked horizontal bars of energy shares; the
//! harness binaries print the same data as aligned text tables (one row per
//! workload, one column per micro-op) and as CSV for plotting.

use crate::breakdown::Breakdown;

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (panics if the arity differs from the header).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.len()..widths[c] {
                    out.push(' ');
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }

    /// Render as CSV (no quoting — callers use simple cells).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Column headers for breakdown-share tables, matching the paper's legend.
pub const SHARE_HEADERS: [&str; 8] = [
    "EL1D", "EReg2L1D", "EL2", "EL3", "Emem", "Epf", "Estall", "Eother",
];

/// Format a breakdown's shares as percentages with one decimal.
pub fn share_cells(bd: &Breakdown) -> Vec<String> {
    bd.shares()
        .iter()
        .map(|s| format!("{:.1}", s * 100.0))
        .collect()
}

/// A crude stacked-bar rendering of a share vector (80 columns), for quick
/// visual comparison with the paper's figures in a terminal.
pub fn share_bar(shares: &[f64; 8]) -> String {
    const GLYPHS: [char; 8] = ['█', '▓', '▒', '░', 'm', 'p', 's', '·'];
    let mut out = String::new();
    for (i, &s) in shares.iter().enumerate() {
        let n = (s * 80.0).round() as usize;
        for _ in 0..n {
            out.push(GLYPHS[i]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_and_renders() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    fn csv_has_header_plus_rows() {
        let mut t = TextTable::new(["x", "y"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(["only", "header"]);
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
        assert_eq!(t.to_csv(), "only,header\n");
    }

    #[test]
    fn bar_length_tracks_shares() {
        let bar = share_bar(&[0.5, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(bar.chars().count(), 80);
    }
}
