#![warn(missing_docs)]

//! # mjrt — the parallel experiment runtime
//!
//! The paper's evaluation is ~20 experiments (Figs. 1–13, Tables 1–5 plus
//! extensions). Before this crate they ran strictly serially through one-off
//! binaries, each hand-wiring its own `Cpu`, calibration and CSV plumbing.
//! `mjrt` turns them into first-class values:
//!
//! * [`Experiment`] — a named, registrable experiment that renders a
//!   [`Report`]. Experiments may expose several independent **shards**
//!   (engine × operating-point cells); each shard builds its own simulated
//!   machine, so the single-threaded simulator is never shared and a
//!   shard's output is byte-identical no matter which worker runs it.
//! * [`scheduler::run_suite`] — a thread-pool scheduler that farms shards
//!   out to `--jobs` workers over a shared work queue and assembles each
//!   experiment's report **in registry order**, so the report stream is
//!   byte-identical between `--jobs 1` and `--jobs N`.
//! * [`CalibrationCache`] — a once-per-(arch, P-state) energy-table cache
//!   shared by all workers, so parallel experiments never repeat the
//!   expensive `calibrate_at` runs.
//! * [`HarnessConfig`] — one typed configuration parsed once from CLI flags
//!   with `MJ_*` environment variables as fallback, replacing the ad-hoc
//!   per-binary `env_f64` lookups.
//!
//! The runtime is instrumented with the `mjobs` observability crate:
//! `--trace` collects energy-attributed spans around every shard and writes
//! `trace.jsonl` + `trace.json` (Chrome `trace_event`, where span widths
//! are *joules*) into the run directory; `--metrics` reports scheduler and
//! calibration-cache metrics (queue waits, shard host times, panics, worker
//! utilization, cache hits/misses) on the summary stream and as
//! `metrics.json`. Both are off by default and neither ever changes the
//! report stream — `tests/determinism.rs` asserts it byte-for-byte.
//!
//! The experiment implementations themselves live in the `bench` crate
//! (`bench::experiments`); this crate only knows about `simcore` (machines)
//! and `analysis` (calibration + tables), so any workload crate can define
//! experiments without cycles.

pub mod cal;
pub mod config;
pub mod experiment;
pub mod scheduler;

pub use cal::CalibrationCache;
pub use config::HarnessConfig;
pub use experiment::{ExpCtx, Experiment, Report, SimStats, StatsSink};
pub use scheduler::{run_single, run_suite, ExpOutcome, SuiteOutcome};
