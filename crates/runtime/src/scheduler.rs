//! The sharded experiment scheduler and report aggregator.
//!
//! ## Execution model
//!
//! Each selected experiment contributes `shards()` independent tasks. Tasks
//! go into one shared queue in deterministic (registry, shard) order;
//! `jobs` workers pull tasks as they free up — idle workers steal the next
//! pending task, so a long experiment never serialises the tail of the
//! suite behind it. Every shard builds its own `Cpu`/database rig, so the
//! single-threaded simulator is never shared across workers and a shard's
//! bytes do not depend on which worker ran it or when.
//!
//! ## Determinism
//!
//! The aggregator assembles and emits reports strictly in registry order,
//! regardless of completion order, and host-time-dependent output (the
//! wall-clock summary) goes to a separate writer. Consequence: the report
//! stream is **byte-identical** for `--jobs 1` and `--jobs N` — asserted by
//! `tests/determinism.rs` in the root crate.
//!
//! ## Observability
//!
//! With `--trace`, each worker installs an `mjobs` span collector around
//! every shard; the collected spans are written — in registry/shard order,
//! so trace content is `--jobs`-independent too — as `trace.jsonl` and
//! `trace.json` (Chrome `trace_event`, energy-width spans) into the run
//! directory after the suite, along with the `mjprof` rollups:
//! `flame.folded` (energy flamegraph, weight = exclusive nanojoules) and
//! `profile.json` (per-shard, per-operator energy attribution). With `--metrics`, the scheduler's own
//! instrumentation (queue waits, shard host times, panics, worker
//! utilization, per-experiment host vs sim time, calibration cache
//! traffic) is appended to the summary stream and exported as
//! `metrics.json`. Neither flag writes a byte to the report stream.

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use analysis::report::TextTable;
use analysis::EnergyTable;
use mjobs::sink::TraceRun;
use mjobs::SpanRecord;

use crate::cal::CalibrationCache;
use crate::config::HarnessConfig;
use crate::experiment::{ExpCtx, Experiment, SimStats, StatsSink};

/// Per-experiment outcome, in registry order.
#[derive(Debug)]
pub struct ExpOutcome {
    /// Experiment name.
    pub name: &'static str,
    /// Shard count it ran with.
    pub shards: usize,
    /// Host wall-clock summed over its shards (and assembly).
    pub host: Duration,
    /// Simulated cost recorded by its shards.
    pub sim: SimStats,
    /// Error message if any shard (or assembly) panicked.
    pub error: Option<String>,
}

/// Result of a full suite run.
#[derive(Debug)]
pub struct SuiteOutcome {
    /// Per-experiment outcomes for the selected experiments.
    pub experiments: Vec<ExpOutcome>,
    /// Host wall-clock for the whole suite.
    pub host: Duration,
    /// Distinct calibration tables computed.
    pub calibrations: usize,
}

impl SuiteOutcome {
    /// Names of failed experiments.
    pub fn failures(&self) -> Vec<&'static str> {
        self.experiments
            .iter()
            .filter(|e| e.error.is_some())
            .map(|e| e.name)
            .collect()
    }
}

struct Task {
    exp: usize,
    shard: usize,
}

type ShardResult = Result<Box<dyn std::any::Any + Send>, String>;

/// Everything a worker hands back for one finished shard.
struct ShardDone {
    result: ShardResult,
    /// Energy-attributed spans collected while the shard ran (empty unless
    /// `cfg.trace`).
    spans: Vec<SpanRecord>,
    /// Host wall-clock the shard took, for the trace shard header.
    host_us: u64,
}

struct Board {
    queue: Mutex<VecDeque<Task>>,
    /// `results[i][s]` = shard s of experiment i (None = not finished).
    results: Mutex<Vec<Vec<Option<ShardDone>>>>,
    host: Mutex<Vec<Duration>>,
    done: Condvar,
    /// Suite start, for queue-wait metrics.
    t0: Instant,
}

/// Run `registry` (filtered by `cfg.filter`) under `cfg.jobs` workers.
///
/// Reports stream to `out` in registry order as they complete; the
/// host-time summary (non-deterministic) goes to `summary`.
///
/// Do not pass a held [`StderrLock`](std::io::StderrLock) as either writer:
/// workers print csv notices — and the panic hook prints shard panics — to
/// stderr from their own threads, and would deadlock against a lock held
/// here for the duration of the suite.
pub fn run_suite(
    registry: &[&dyn Experiment],
    cfg: &HarnessConfig,
    out: &mut dyn Write,
    summary: &mut dyn Write,
) -> std::io::Result<SuiteOutcome> {
    let t0 = Instant::now();
    // Start the suite with clean fast-path totals so metrics.json reflects
    // this run only, even when several suites share one process (tests).
    simcore::take_run_stats();
    simcore::take_cache_bytes_resident();
    let selected: Vec<&dyn Experiment> = registry
        .iter()
        .copied()
        .filter(|e| cfg.filter.as_deref().is_none_or(|f| e.name().contains(f)))
        .collect();

    let cal = CalibrationCache::new();
    let run_dir = make_run_dir(cfg);
    let csv_dir = if cfg.csv { run_dir.clone() } else { None };
    let stats: Vec<StatsSink> = selected.iter().map(|_| StatsSink::default()).collect();
    let shard_counts: Vec<usize> = selected.iter().map(|e| e.shards(cfg).max(1)).collect();

    let board = Board {
        queue: Mutex::new(
            selected
                .iter()
                .enumerate()
                .flat_map(|(i, _)| (0..shard_counts[i]).map(move |s| Task { exp: i, shard: s }))
                .collect(),
        ),
        results: Mutex::new(
            shard_counts
                .iter()
                .map(|&n| (0..n).map(|_| None).collect())
                .collect(),
        ),
        host: Mutex::new(vec![Duration::ZERO; selected.len()]),
        done: Condvar::new(),
        t0,
    };

    let total_tasks: usize = shard_counts.iter().sum();
    let jobs = cfg.jobs.max(1).min(total_tasks.max(1));

    let mut outcomes: Vec<ExpOutcome> = Vec::with_capacity(selected.len());
    // (experiment index, shard, host µs, spans) in registry/shard order —
    // the source material for the trace files written after the suite.
    let mut trace_runs: Vec<(usize, usize, u64, Vec<SpanRecord>)> = Vec::new();
    std::thread::scope(|scope| -> std::io::Result<()> {
        for _ in 0..jobs {
            scope.spawn(|| {
                worker(&board, &selected, cfg, &cal, &stats, csv_dir.as_deref());
            });
        }

        // Aggregate in registry order, streaming each report as soon as the
        // experiment's shards are all in.
        for (i, exp) in selected.iter().enumerate() {
            let shard_outs: Vec<Option<ShardDone>> = {
                let mut results = board.results.lock().expect("results poisoned");
                while results[i].iter().any(|r| r.is_none()) {
                    results = board.done.wait(results).expect("results poisoned");
                }
                results[i].iter_mut().map(Option::take).collect()
            };

            let mut error = None;
            let mut shards = Vec::with_capacity(shard_outs.len());
            for (s, r) in shard_outs.into_iter().enumerate() {
                let done = r.expect("taken above");
                if cfg.trace {
                    trace_runs.push((i, s, done.host_us, done.spans));
                }
                match done.result {
                    Ok(v) => shards.push(v),
                    Err(e) => {
                        error.get_or_insert_with(|| format!("{} shard {s}: {e}", exp.name()));
                    }
                }
            }

            writeln!(
                out,
                "\n########################################################"
            )?;
            writeln!(out, "# {}", exp.name())?;
            writeln!(
                out,
                "########################################################"
            )?;
            let t_assemble = Instant::now();
            if error.is_none() {
                let ctx = ExpCtx::new(
                    cfg,
                    &cal,
                    std::sync::Arc::clone(&stats[i]),
                    csv_dir.as_deref(),
                );
                match catch_unwind(AssertUnwindSafe(|| exp.assemble(shards, &ctx))) {
                    Ok(report) => out.write_all(report.text.as_bytes())?,
                    Err(p) => {
                        mjobs::metrics::counter_add("scheduler.assemble_panics", 1);
                        error = Some(format!("{} assemble: {}", exp.name(), panic_msg(&*p)));
                    }
                }
            }
            if let Some(e) = &error {
                writeln!(out, "EXPERIMENT FAILED: {e}")?;
            }
            out.flush()?;

            let host = board.host.lock().expect("host poisoned")[i] + t_assemble.elapsed();
            let sim = *stats[i].lock().expect("stats poisoned");
            mjobs::metrics::gauge_set(
                &format!("exp.{}.host_ms", exp.name()),
                host.as_secs_f64() * 1e3,
            );
            mjobs::metrics::gauge_set(&format!("exp.{}.sim_ms", exp.name()), sim.time_s * 1e3);
            mjobs::metrics::gauge_set(&format!("exp.{}.sim_j", exp.name()), sim.energy_j);
            mjobs::metrics::gauge_set(&format!("exp.{}.sim_kcycles", exp.name()), sim.cycles / 1e3);
            outcomes.push(ExpOutcome {
                name: exp.name(),
                shards: shard_counts[i],
                host,
                sim,
                error,
            });
        }
        Ok(())
    })?;

    // All workers have joined (scope end), so every shard's `Cpu` has
    // dropped and flushed its fast-path tallies into the simcore globals.
    // Publish them once per suite; all four are jobs-count independent
    // because batching decisions never depend on scheduling.
    let st = simcore::take_run_stats();
    mjobs::metrics::counter_add("simcore.run_batched_lines", st.batched_lines);
    mjobs::metrics::counter_add("simcore.run_cold_batched_lines", st.cold_batched_lines);
    mjobs::metrics::counter_add("simcore.run_replayed_lines", st.replayed_lines);
    mjobs::metrics::counter_add("simcore.run_fallbacks", st.fallbacks);
    // The cache-metadata footprint is pure geometry (SoA tag arrays + rank
    // words + way-hint tables of the largest machine built this suite), so
    // it too is jobs-count independent — asserted in tests/determinism.rs.
    mjobs::metrics::gauge_set(
        "simcore.cache_bytes_resident",
        simcore::take_cache_bytes_resident() as f64,
    );

    let outcome = SuiteOutcome {
        experiments: outcomes,
        host: t0.elapsed(),
        calibrations: cal.len(),
    };
    // Busy time / (workers × wall) — approximate (per-experiment host time
    // includes aggregator-side assembly), but a good saturation signal.
    let busy: f64 = outcome
        .experiments
        .iter()
        .map(|e| e.host.as_secs_f64())
        .sum();
    mjobs::metrics::gauge_set(
        "scheduler.worker_utilization",
        (busy / (jobs as f64 * outcome.host.as_secs_f64().max(1e-9))).min(1.0),
    );

    if cfg.trace {
        let trace_dir = cfg.trace_dir.clone().or_else(|| run_dir.clone());
        match trace_dir {
            Some(dir) => write_traces(&dir, &selected, cfg, &cal, jobs, &trace_runs),
            None => eprintln!("trace: no run directory available — traces not written"),
        }
    }
    write_summary(&outcome, jobs, cfg.metrics, summary)?;
    if cfg.metrics {
        if let Some(dir) = &run_dir {
            let path = dir.join("metrics.json");
            if let Err(e) = std::fs::write(&path, mjobs::metrics::global().to_json() + "\n") {
                eprintln!("metrics: cannot write {}: {e}", path.display());
            } else {
                eprintln!("metrics: wrote {}", path.display());
            }
        }
    }
    Ok(outcome)
}

/// Write `trace.jsonl` and `trace.json` (Chrome `trace_event`) for the
/// collected spans, in registry/shard order. Energy tables for the span
/// micro-op breakdowns come from the (already warm) calibration cache.
fn write_traces(
    dir: &Path,
    selected: &[&dyn Experiment],
    cfg: &HarnessConfig,
    cal: &CalibrationCache,
    jobs: usize,
    trace_runs: &[(usize, usize, u64, Vec<SpanRecord>)],
) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!(
            "trace: cannot create {}: {e} — traces not written",
            dir.display()
        );
        return;
    }
    // One energy table per experiment that actually produced spans; the
    // suite already calibrated these, so this is a cache hit.
    let mut tables: HashMap<usize, Arc<EnergyTable>> = HashMap::new();
    for (i, _, _, spans) in trace_runs {
        if !spans.is_empty() && !tables.contains_key(i) {
            let exp = selected[*i];
            tables.insert(*i, cal.table(exp.arch(), exp.pstate(), cfg.cal_ops));
        }
    }
    let runs: Vec<TraceRun<'_>> = trace_runs
        .iter()
        .map(|(i, s, host_us, spans)| TraceRun {
            exp: selected[*i].name(),
            shard: *s,
            host_us: *host_us,
            spans,
            table: tables.get(i).map(|t| t.as_ref()),
        })
        .collect();
    let host_unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);

    let emit = |path: &Path, result: std::io::Result<()>| match result {
        Ok(()) => eprintln!("trace: wrote {}", path.display()),
        Err(e) => eprintln!("trace: cannot write {}: {e}", path.display()),
    };
    let jsonl_path = dir.join("trace.jsonl");
    emit(
        &jsonl_path,
        std::fs::File::create(&jsonl_path).and_then(|f| {
            let mut w = std::io::BufWriter::new(f);
            mjobs::write_jsonl(&mut w, jobs, host_unix_ms, &runs)?;
            w.flush()
        }),
    );
    let chrome_path = dir.join("trace.json");
    emit(
        &chrome_path,
        std::fs::File::create(&chrome_path).and_then(|f| {
            let mut w = std::io::BufWriter::new(f);
            mjobs::write_chrome(&mut w, &runs)?;
            w.flush()
        }),
    );

    // The mjprof rollups: an energy flamegraph (folded stacks, weight =
    // exclusive nanojoules) and the queryable per-operator profile. Both
    // are derived from the same registry/shard-ordered spans and simulated
    // meters, so they are byte-identical for any `--jobs`.
    let mut folded = std::collections::BTreeMap::new();
    for (i, s, _, spans) in trace_runs {
        if spans.is_empty() {
            continue;
        }
        let prefix = [selected[*i].name().to_owned(), format!("shard{s}")];
        if let Err(e) = mjprof::fold_into(&mut folded, &prefix, spans) {
            eprintln!(
                "trace: {} shard {s}: malformed span stream not folded: {e}",
                selected[*i].name()
            );
        }
    }
    let folded_path = dir.join("flame.folded");
    emit(
        &folded_path,
        std::fs::File::create(&folded_path).and_then(|f| {
            let mut w = std::io::BufWriter::new(f);
            mjprof::write_folded(&mut w, &folded)?;
            w.flush()
        }),
    );

    let shards: Vec<mjprof::ShardProfile<'_>> = trace_runs
        .iter()
        .filter_map(|(i, s, _, spans)| {
            // Experiments that produced no spans at all have no energy
            // table and nothing to attribute; skip them rather than
            // emitting empty shells.
            let table = tables.get(i)?;
            Some(mjprof::ShardProfile {
                exp: selected[*i].name(),
                shard: *s,
                spans,
                table: table.as_ref(),
            })
        })
        .collect();
    let profile_path = dir.join("profile.json");
    emit(
        &profile_path,
        std::fs::File::create(&profile_path).and_then(|f| {
            let mut w = std::io::BufWriter::new(f);
            mjprof::write_profile(&mut w, &shards)?;
            w.flush()
        }),
    );
}

/// Run a single experiment (a thin-wrapper binary) with `cfg.jobs` workers,
/// writing its report to `out` without the suite banner.
pub fn run_single(
    exp: &dyn Experiment,
    cfg: &HarnessConfig,
    out: &mut dyn Write,
) -> std::io::Result<bool> {
    let registry: [&dyn Experiment; 1] = [exp];
    let mut banner = Vec::new();
    let mut summary = Vec::new();
    let mut no_filter = cfg.clone();
    no_filter.filter = None;
    let outcome = run_suite(&registry, &no_filter, &mut banner, &mut summary)?;
    // Strip the 4-line suite banner; keep the report bytes.
    let text = String::from_utf8(banner).expect("reports are UTF-8");
    let body = text.splitn(5, '\n').nth(4).unwrap_or("");
    out.write_all(body.as_bytes())?;
    out.flush()?;
    Ok(outcome.failures().is_empty())
}

fn worker(
    board: &Board,
    selected: &[&dyn Experiment],
    cfg: &HarnessConfig,
    cal: &CalibrationCache,
    stats: &[StatsSink],
    csv_dir: Option<&std::path::Path>,
) {
    loop {
        let task = board.queue.lock().expect("queue poisoned").pop_front();
        let Some(task) = task else { break };
        mjobs::metrics::histogram_record(
            "scheduler.queue_wait_us",
            board.t0.elapsed().as_micros() as u64,
        );
        let exp = selected[task.exp];
        let ctx = ExpCtx::new(cfg, cal, std::sync::Arc::clone(&stats[task.exp]), csv_dir);
        if cfg.trace {
            mjobs::span::install();
        }
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| exp.run_shard(task.shard, &ctx)))
            .map_err(|p| panic_msg(&*p));
        let elapsed = t0.elapsed();
        // take() also force-closes spans left open by a panicking shard.
        let spans = if cfg.trace {
            mjobs::span::take()
        } else {
            Vec::new()
        };
        mjobs::metrics::counter_add("scheduler.shards_run", 1);
        mjobs::metrics::histogram_record("scheduler.shard_host_us", elapsed.as_micros() as u64);
        if result.is_err() {
            mjobs::metrics::counter_add("scheduler.shard_panics", 1);
        }
        board.host.lock().expect("host poisoned")[task.exp] += elapsed;
        board.results.lock().expect("results poisoned")[task.exp][task.shard] = Some(ShardDone {
            result,
            spans,
            host_us: elapsed.as_micros() as u64,
        });
        board.done.notify_all();
    }
}

fn panic_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_owned()
    }
}

/// Create the per-run output directory once, before any worker starts.
/// Needed whenever some artifact wants a home: CSVs, traces (unless
/// `--trace=DIR` picked an explicit directory), or `metrics.json`.
fn make_run_dir(cfg: &HarnessConfig) -> Option<PathBuf> {
    let trace_needs_dir = cfg.trace && cfg.trace_dir.is_none();
    if !cfg.csv && !trace_needs_dir && !cfg.metrics {
        return None;
    }
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    // The sequence number keeps same-second runs within one process (e.g.
    // back-to-back suites in a test) from landing in the same directory.
    static RUN_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = RUN_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = cfg
        .results_root
        .join(format!("run-{stamp}-{}-{seq}", std::process::id()));
    match std::fs::create_dir_all(&dir) {
        Ok(()) => Some(dir),
        Err(e) => {
            eprintln!(
                "run dir: cannot create {}: {e} — file output disabled",
                dir.display()
            );
            None
        }
    }
}

fn write_summary(
    outcome: &SuiteOutcome,
    jobs: usize,
    metrics: bool,
    summary: &mut dyn Write,
) -> std::io::Result<()> {
    let mut t = TextTable::new([
        "experiment",
        "shards",
        "host ms",
        "sim s",
        "sim kcycles",
        "sim J",
    ]);
    for e in &outcome.experiments {
        t.row([
            e.name.to_owned(),
            e.shards.to_string(),
            format!("{:.0}", e.host.as_secs_f64() * 1e3),
            format!("{:.4}", e.sim.time_s),
            format!("{:.0}", e.sim.cycles / 1e3),
            format!("{:.4}", e.sim.energy_j),
        ]);
    }
    let mut s = String::new();
    let _ = writeln!(s, "\n== suite summary ({jobs} jobs) ==");
    s.push_str(&t.render());
    let _ = writeln!(
        s,
        "suite wall-clock {:.2} s | {} calibration table(s) computed once and shared",
        outcome.host.as_secs_f64(),
        outcome.calibrations,
    );
    if metrics {
        let _ = writeln!(s, "\n== metrics ==");
        s.push_str(&mjobs::metrics::global().render_table());
    }
    summary.write_all(s.as_bytes())?;
    summary.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Report;
    use std::any::Any;

    struct Emit {
        name: &'static str,
        shards: usize,
        panic_on: Option<usize>,
    }

    impl Experiment for Emit {
        fn name(&self) -> &'static str {
            self.name
        }
        fn shards(&self, _cfg: &HarnessConfig) -> usize {
            self.shards
        }
        fn run_shard(&self, shard: usize, _ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
            if self.panic_on == Some(shard) {
                panic!("boom in shard {shard}");
            }
            let mut r = Report::new();
            writeln!(r, "{} shard {shard}", self.name).unwrap();
            Box::new(r)
        }
    }

    fn run_to_string(reg: &[&dyn Experiment], cfg: &HarnessConfig) -> (String, SuiteOutcome) {
        let mut out = Vec::new();
        let mut summary = Vec::new();
        let outcome = run_suite(reg, cfg, &mut out, &mut summary).expect("io");
        (String::from_utf8(out).expect("utf8"), outcome)
    }

    #[test]
    fn reports_stream_in_registry_order_and_parallel_matches_serial() {
        let a = Emit {
            name: "alpha",
            shards: 3,
            panic_on: None,
        };
        let b = Emit {
            name: "beta",
            shards: 1,
            panic_on: None,
        };
        let c = Emit {
            name: "gamma",
            shards: 2,
            panic_on: None,
        };
        let reg: [&dyn Experiment; 3] = [&a, &b, &c];

        let serial = HarnessConfig {
            jobs: 1,
            ..HarnessConfig::default()
        };
        let parallel = HarnessConfig {
            jobs: 4,
            ..HarnessConfig::default()
        };

        let (s_out, s_outcome) = run_to_string(&reg, &serial);
        let (p_out, p_outcome) = run_to_string(&reg, &parallel);
        assert_eq!(s_out, p_out, "report stream must not depend on --jobs");
        assert!(s_out.find("# alpha").unwrap() < s_out.find("# beta").unwrap());
        assert!(s_out.find("# beta").unwrap() < s_out.find("# gamma").unwrap());
        assert!(s_out.contains("alpha shard 0\nalpha shard 1\nalpha shard 2\n"));
        assert!(s_outcome.failures().is_empty() && p_outcome.failures().is_empty());
    }

    #[test]
    fn filter_selects_by_substring() {
        let a = Emit {
            name: "fig01_x",
            shards: 1,
            panic_on: None,
        };
        let b = Emit {
            name: "table2_y",
            shards: 1,
            panic_on: None,
        };
        let reg: [&dyn Experiment; 2] = [&a, &b];
        let cfg = HarnessConfig {
            filter: Some("table2".into()),
            ..HarnessConfig::default()
        };
        let (out, outcome) = run_to_string(&reg, &cfg);
        assert!(!out.contains("fig01_x") && out.contains("table2_y"));
        assert_eq!(outcome.experiments.len(), 1);
    }

    #[test]
    fn shard_panic_fails_that_experiment_only() {
        let a = Emit {
            name: "bad",
            shards: 2,
            panic_on: Some(1),
        };
        let b = Emit {
            name: "good",
            shards: 1,
            panic_on: None,
        };
        let reg: [&dyn Experiment; 2] = [&a, &b];
        let cfg = HarnessConfig {
            jobs: 2,
            ..HarnessConfig::default()
        };
        let (out, outcome) = run_to_string(&reg, &cfg);
        assert!(out.contains("EXPERIMENT FAILED"), "out = {out:?}");
        assert!(
            out.contains("bad shard 1: boom in shard 1"),
            "error must name the experiment and shard, out = {out:?}"
        );
        assert!(out.contains("good shard 0"), "out = {out:?}");
        assert_eq!(outcome.failures(), vec!["bad"]);
        assert!(
            mjobs::metrics::global()
                .counter("scheduler.shard_panics")
                .unwrap_or(0)
                >= 1
        );
    }

    #[test]
    fn trace_and_metrics_artifacts_are_written() {
        let a = Emit {
            name: "traced_exp",
            shards: 2,
            panic_on: None,
        };
        let reg: [&dyn Experiment; 1] = [&a];
        let dir =
            std::env::temp_dir().join(format!("mjrt-sched-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = HarnessConfig {
            trace: true,
            trace_dir: Some(dir.clone()),
            metrics: true,
            results_root: dir.join("results"),
            jobs: 2,
            ..HarnessConfig::default()
        };
        let mut out = Vec::new();
        let mut summary = Vec::new();
        run_suite(&reg, &cfg, &mut out, &mut summary).expect("io");

        // Tracing/metrics never touch the report stream: same bytes as a
        // plain run of the same registry.
        let (plain, _) = run_to_string(&reg, &HarnessConfig::default());
        let out = String::from_utf8(out).unwrap();
        assert_eq!(out, plain, "tracing/metrics must not change the report");

        let jsonl = std::fs::read_to_string(dir.join("trace.jsonl")).expect("trace.jsonl");
        for line in jsonl.lines() {
            mjobs::json::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        }
        assert!(jsonl.contains("\"type\": \"shard\""), "jsonl = {jsonl:?}");
        assert!(jsonl.contains("\"exp\": \"traced_exp\""));
        let chrome = std::fs::read_to_string(dir.join("trace.json")).expect("trace.json");
        mjobs::json::parse(&chrome).expect("chrome trace parses");

        // The profiler rollups land next to the traces. These toy shards
        // record no spans, so both artifacts are valid-but-empty.
        let folded = std::fs::read_to_string(dir.join("flame.folded")).expect("flame.folded");
        for line in folded.lines() {
            mjprof::parse_folded(line).unwrap_or_else(|| panic!("bad folded line {line:?}"));
        }
        let profile = std::fs::read_to_string(dir.join("profile.json")).expect("profile.json");
        let parsed = mjprof::parse_profile(&profile).expect("profile.json parses");
        assert_eq!(parsed.format, mjprof::PROFILE_FORMAT as u64);

        let summary = String::from_utf8(summary).unwrap();
        assert!(summary.contains("== metrics =="), "summary = {summary:?}");
        assert!(summary.contains("scheduler.shards_run"));

        // metrics.json lands in the per-run directory under results_root.
        let run_dirs: Vec<_> = std::fs::read_dir(dir.join("results"))
            .expect("results dir")
            .map(|e| e.expect("entry").path())
            .collect();
        assert_eq!(run_dirs.len(), 1);
        let metrics =
            std::fs::read_to_string(run_dirs[0].join("metrics.json")).expect("metrics.json");
        mjobs::json::parse(metrics.trim()).expect("metrics.json parses");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_single_strips_banner() {
        let a = Emit {
            name: "solo",
            shards: 2,
            panic_on: None,
        };
        let mut out = Vec::new();
        let cfg = HarnessConfig::default();
        let ok = run_single(&a, &cfg, &mut out).expect("io");
        assert!(ok);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "solo shard 0\nsolo shard 1\n"
        );
    }
}
