//! The sharded experiment scheduler and report aggregator.
//!
//! ## Execution model
//!
//! Each selected experiment contributes `shards()` independent tasks. Tasks
//! go into one shared queue in deterministic (registry, shard) order;
//! `jobs` workers pull tasks as they free up — idle workers steal the next
//! pending task, so a long experiment never serialises the tail of the
//! suite behind it. Every shard builds its own `Cpu`/database rig, so the
//! single-threaded simulator is never shared across workers and a shard's
//! bytes do not depend on which worker ran it or when.
//!
//! ## Determinism
//!
//! The aggregator assembles and emits reports strictly in registry order,
//! regardless of completion order, and host-time-dependent output (the
//! wall-clock summary) goes to a separate writer. Consequence: the report
//! stream is **byte-identical** for `--jobs 1` and `--jobs N` — asserted by
//! `tests/determinism.rs` in the root crate.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use analysis::report::TextTable;

use crate::cal::CalibrationCache;
use crate::config::HarnessConfig;
use crate::experiment::{ExpCtx, Experiment, SimStats, StatsSink};

/// Per-experiment outcome, in registry order.
#[derive(Debug)]
pub struct ExpOutcome {
    /// Experiment name.
    pub name: &'static str,
    /// Shard count it ran with.
    pub shards: usize,
    /// Host wall-clock summed over its shards (and assembly).
    pub host: Duration,
    /// Simulated cost recorded by its shards.
    pub sim: SimStats,
    /// Error message if any shard (or assembly) panicked.
    pub error: Option<String>,
}

/// Result of a full suite run.
#[derive(Debug)]
pub struct SuiteOutcome {
    /// Per-experiment outcomes for the selected experiments.
    pub experiments: Vec<ExpOutcome>,
    /// Host wall-clock for the whole suite.
    pub host: Duration,
    /// Distinct calibration tables computed.
    pub calibrations: usize,
}

impl SuiteOutcome {
    /// Names of failed experiments.
    pub fn failures(&self) -> Vec<&'static str> {
        self.experiments
            .iter()
            .filter(|e| e.error.is_some())
            .map(|e| e.name)
            .collect()
    }
}

struct Task {
    exp: usize,
    shard: usize,
}

type ShardResult = Result<Box<dyn std::any::Any + Send>, String>;

struct Board {
    queue: Mutex<VecDeque<Task>>,
    /// `results[i][s]` = shard s of experiment i (None = not finished).
    results: Mutex<Vec<Vec<Option<ShardResult>>>>,
    host: Mutex<Vec<Duration>>,
    done: Condvar,
}

/// Run `registry` (filtered by `cfg.filter`) under `cfg.jobs` workers.
///
/// Reports stream to `out` in registry order as they complete; the
/// host-time summary (non-deterministic) goes to `summary`.
///
/// Do not pass a held [`StderrLock`](std::io::StderrLock) as either writer:
/// workers print csv notices — and the panic hook prints shard panics — to
/// stderr from their own threads, and would deadlock against a lock held
/// here for the duration of the suite.
pub fn run_suite(
    registry: &[&dyn Experiment],
    cfg: &HarnessConfig,
    out: &mut dyn Write,
    summary: &mut dyn Write,
) -> std::io::Result<SuiteOutcome> {
    let t0 = Instant::now();
    let selected: Vec<&dyn Experiment> = registry
        .iter()
        .copied()
        .filter(|e| cfg.filter.as_deref().is_none_or(|f| e.name().contains(f)))
        .collect();

    let cal = CalibrationCache::new();
    let csv_dir = make_run_dir(cfg);
    let stats: Vec<StatsSink> = selected.iter().map(|_| StatsSink::default()).collect();
    let shard_counts: Vec<usize> = selected.iter().map(|e| e.shards(cfg).max(1)).collect();

    let board = Board {
        queue: Mutex::new(
            selected
                .iter()
                .enumerate()
                .flat_map(|(i, _)| (0..shard_counts[i]).map(move |s| Task { exp: i, shard: s }))
                .collect(),
        ),
        results: Mutex::new(
            shard_counts
                .iter()
                .map(|&n| (0..n).map(|_| None).collect())
                .collect(),
        ),
        host: Mutex::new(vec![Duration::ZERO; selected.len()]),
        done: Condvar::new(),
    };

    let total_tasks: usize = shard_counts.iter().sum();
    let jobs = cfg.jobs.max(1).min(total_tasks.max(1));

    let mut outcomes: Vec<ExpOutcome> = Vec::with_capacity(selected.len());
    std::thread::scope(|scope| -> std::io::Result<()> {
        for _ in 0..jobs {
            scope.spawn(|| {
                worker(&board, &selected, cfg, &cal, &stats, csv_dir.as_deref());
            });
        }

        // Aggregate in registry order, streaming each report as soon as the
        // experiment's shards are all in.
        for (i, exp) in selected.iter().enumerate() {
            let shard_outs: Vec<Option<ShardResult>> = {
                let mut results = board.results.lock().expect("results poisoned");
                while results[i].iter().any(|r| r.is_none()) {
                    results = board.done.wait(results).expect("results poisoned");
                }
                results[i].iter_mut().map(Option::take).collect()
            };

            let mut error = None;
            let mut shards = Vec::with_capacity(shard_outs.len());
            for (s, r) in shard_outs.into_iter().enumerate() {
                match r.expect("taken above") {
                    Ok(v) => shards.push(v),
                    Err(e) => {
                        error.get_or_insert_with(|| format!("shard {s}: {e}"));
                    }
                }
            }

            writeln!(
                out,
                "\n########################################################"
            )?;
            writeln!(out, "# {}", exp.name())?;
            writeln!(
                out,
                "########################################################"
            )?;
            let t_assemble = Instant::now();
            if error.is_none() {
                let ctx = ExpCtx::new(
                    cfg,
                    &cal,
                    std::sync::Arc::clone(&stats[i]),
                    csv_dir.as_deref(),
                );
                match catch_unwind(AssertUnwindSafe(|| exp.assemble(shards, &ctx))) {
                    Ok(report) => out.write_all(report.text.as_bytes())?,
                    Err(p) => error = Some(format!("assemble: {}", panic_msg(&*p))),
                }
            }
            if let Some(e) = &error {
                writeln!(out, "EXPERIMENT FAILED: {e}")?;
            }
            out.flush()?;

            let host = board.host.lock().expect("host poisoned")[i] + t_assemble.elapsed();
            outcomes.push(ExpOutcome {
                name: exp.name(),
                shards: shard_counts[i],
                host,
                sim: *stats[i].lock().expect("stats poisoned"),
                error,
            });
        }
        Ok(())
    })?;

    let outcome = SuiteOutcome {
        experiments: outcomes,
        host: t0.elapsed(),
        calibrations: cal.len(),
    };
    write_summary(&outcome, jobs, summary)?;
    Ok(outcome)
}

/// Run a single experiment (a thin-wrapper binary) with `cfg.jobs` workers,
/// writing its report to `out` without the suite banner.
pub fn run_single(
    exp: &dyn Experiment,
    cfg: &HarnessConfig,
    out: &mut dyn Write,
) -> std::io::Result<bool> {
    let registry: [&dyn Experiment; 1] = [exp];
    let mut banner = Vec::new();
    let mut summary = Vec::new();
    let mut no_filter = cfg.clone();
    no_filter.filter = None;
    let outcome = run_suite(&registry, &no_filter, &mut banner, &mut summary)?;
    // Strip the 4-line suite banner; keep the report bytes.
    let text = String::from_utf8(banner).expect("reports are UTF-8");
    let body = text.splitn(5, '\n').nth(4).unwrap_or("");
    out.write_all(body.as_bytes())?;
    out.flush()?;
    Ok(outcome.failures().is_empty())
}

fn worker(
    board: &Board,
    selected: &[&dyn Experiment],
    cfg: &HarnessConfig,
    cal: &CalibrationCache,
    stats: &[StatsSink],
    csv_dir: Option<&std::path::Path>,
) {
    loop {
        let task = board.queue.lock().expect("queue poisoned").pop_front();
        let Some(task) = task else { break };
        let exp = selected[task.exp];
        let ctx = ExpCtx::new(cfg, cal, std::sync::Arc::clone(&stats[task.exp]), csv_dir);
        let t0 = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| exp.run_shard(task.shard, &ctx)))
            .map_err(|p| panic_msg(&*p));
        let elapsed = t0.elapsed();
        board.host.lock().expect("host poisoned")[task.exp] += elapsed;
        board.results.lock().expect("results poisoned")[task.exp][task.shard] = Some(result);
        board.done.notify_all();
    }
}

fn panic_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_owned()
    }
}

/// Create the per-run CSV directory once, before any worker starts.
fn make_run_dir(cfg: &HarnessConfig) -> Option<std::path::PathBuf> {
    if !cfg.csv {
        return None;
    }
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let dir = cfg
        .results_root
        .join(format!("run-{stamp}-{}", std::process::id()));
    match std::fs::create_dir_all(&dir) {
        Ok(()) => Some(dir),
        Err(e) => {
            eprintln!(
                "csv: cannot create {}: {e} — CSV output disabled",
                dir.display()
            );
            None
        }
    }
}

fn write_summary(
    outcome: &SuiteOutcome,
    jobs: usize,
    summary: &mut dyn Write,
) -> std::io::Result<()> {
    let mut t = TextTable::new([
        "experiment",
        "shards",
        "host ms",
        "sim s",
        "sim kcycles",
        "sim J",
    ]);
    for e in &outcome.experiments {
        t.row([
            e.name.to_owned(),
            e.shards.to_string(),
            format!("{:.0}", e.host.as_secs_f64() * 1e3),
            format!("{:.4}", e.sim.time_s),
            format!("{:.0}", e.sim.cycles / 1e3),
            format!("{:.4}", e.sim.energy_j),
        ]);
    }
    let mut s = String::new();
    let _ = writeln!(s, "\n== suite summary ({jobs} jobs) ==");
    s.push_str(&t.render());
    let _ = writeln!(
        s,
        "suite wall-clock {:.2} s | {} calibration table(s) computed once and shared",
        outcome.host.as_secs_f64(),
        outcome.calibrations,
    );
    summary.write_all(s.as_bytes())?;
    summary.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Report;
    use std::any::Any;

    struct Emit {
        name: &'static str,
        shards: usize,
        panic_on: Option<usize>,
    }

    impl Experiment for Emit {
        fn name(&self) -> &'static str {
            self.name
        }
        fn shards(&self, _cfg: &HarnessConfig) -> usize {
            self.shards
        }
        fn run_shard(&self, shard: usize, _ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
            if self.panic_on == Some(shard) {
                panic!("boom in shard {shard}");
            }
            let mut r = Report::new();
            writeln!(r, "{} shard {shard}", self.name).unwrap();
            Box::new(r)
        }
    }

    fn run_to_string(reg: &[&dyn Experiment], cfg: &HarnessConfig) -> (String, SuiteOutcome) {
        let mut out = Vec::new();
        let mut summary = Vec::new();
        let outcome = run_suite(reg, cfg, &mut out, &mut summary).expect("io");
        (String::from_utf8(out).expect("utf8"), outcome)
    }

    #[test]
    fn reports_stream_in_registry_order_and_parallel_matches_serial() {
        let a = Emit {
            name: "alpha",
            shards: 3,
            panic_on: None,
        };
        let b = Emit {
            name: "beta",
            shards: 1,
            panic_on: None,
        };
        let c = Emit {
            name: "gamma",
            shards: 2,
            panic_on: None,
        };
        let reg: [&dyn Experiment; 3] = [&a, &b, &c];

        let serial = HarnessConfig {
            jobs: 1,
            ..HarnessConfig::default()
        };
        let parallel = HarnessConfig {
            jobs: 4,
            ..HarnessConfig::default()
        };

        let (s_out, s_outcome) = run_to_string(&reg, &serial);
        let (p_out, p_outcome) = run_to_string(&reg, &parallel);
        assert_eq!(s_out, p_out, "report stream must not depend on --jobs");
        assert!(s_out.find("# alpha").unwrap() < s_out.find("# beta").unwrap());
        assert!(s_out.find("# beta").unwrap() < s_out.find("# gamma").unwrap());
        assert!(s_out.contains("alpha shard 0\nalpha shard 1\nalpha shard 2\n"));
        assert!(s_outcome.failures().is_empty() && p_outcome.failures().is_empty());
    }

    #[test]
    fn filter_selects_by_substring() {
        let a = Emit {
            name: "fig01_x",
            shards: 1,
            panic_on: None,
        };
        let b = Emit {
            name: "table2_y",
            shards: 1,
            panic_on: None,
        };
        let reg: [&dyn Experiment; 2] = [&a, &b];
        let cfg = HarnessConfig {
            filter: Some("table2".into()),
            ..HarnessConfig::default()
        };
        let (out, outcome) = run_to_string(&reg, &cfg);
        assert!(!out.contains("fig01_x") && out.contains("table2_y"));
        assert_eq!(outcome.experiments.len(), 1);
    }

    #[test]
    fn shard_panic_fails_that_experiment_only() {
        let a = Emit {
            name: "bad",
            shards: 2,
            panic_on: Some(1),
        };
        let b = Emit {
            name: "good",
            shards: 1,
            panic_on: None,
        };
        let reg: [&dyn Experiment; 2] = [&a, &b];
        let cfg = HarnessConfig {
            jobs: 2,
            ..HarnessConfig::default()
        };
        let (out, outcome) = run_to_string(&reg, &cfg);
        assert!(out.contains("EXPERIMENT FAILED"), "out = {out:?}");
        assert!(out.contains("boom in shard 1"), "out = {out:?}");
        assert!(out.contains("good shard 0"), "out = {out:?}");
        assert_eq!(outcome.failures(), vec!["bad"]);
    }

    #[test]
    fn run_single_strips_banner() {
        let a = Emit {
            name: "solo",
            shards: 2,
            panic_on: None,
        };
        let mut out = Vec::new();
        let cfg = HarnessConfig::default();
        let ok = run_single(&a, &cfg, &mut out).expect("io");
        assert!(ok);
        assert_eq!(
            String::from_utf8(out).unwrap(),
            "solo shard 0\nsolo shard 1\n"
        );
    }
}
