//! Shared, once-per-(arch, P-state) calibration cache.
//!
//! Calibrating an [`EnergyTable`] is the most expensive fixed cost in the
//! suite (it runs the full micro-benchmark set and solves the linear
//! system). Several experiments need the same table — e.g. the P36 i7-4790
//! table is used by a dozen of them — so the runtime computes each table
//! exactly once and shares it across worker threads.
//!
//! The map is guarded by a mutex held only for slot lookup; the actual
//! calibration runs under the slot's `OnceLock`, so two workers wanting
//! *different* tables calibrate concurrently while two wanting the *same*
//! table compute it once (the loser blocks, then reuses the winner's).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use analysis::{CalibrationBuilder, EnergyTable};
use simcore::{ArchConfig, ArchKind, PState};

type Slot = Arc<OnceLock<Arc<EnergyTable>>>;

/// Concurrent once-per-(arch, P-state) map of solved energy tables.
#[derive(Debug, Default)]
pub struct CalibrationCache {
    slots: Mutex<HashMap<(ArchKind, PState), Slot>>,
}

impl CalibrationCache {
    /// Empty cache.
    pub fn new() -> CalibrationCache {
        CalibrationCache::default()
    }

    /// The energy table for `(arch, ps)`, calibrated with `target_ops` on
    /// first use and shared thereafter. `target_ops` must be consistent for
    /// a given cache (the runtime builds one cache per run, from one
    /// [`crate::HarnessConfig`], so it is).
    ///
    /// Whether the cache is earning its keep is visible in the `mjobs`
    /// metrics: `cal.hits` / `cal.misses` counters and a `cal.build_ms`
    /// histogram of the host time each miss spent calibrating.
    pub fn table(&self, arch: ArchKind, ps: PState, target_ops: u64) -> Arc<EnergyTable> {
        let slot: Slot = {
            let mut slots = self.slots.lock().expect("calibration cache poisoned");
            Arc::clone(slots.entry((arch, ps)).or_default())
        };
        let mut built = false;
        let table = Arc::clone(slot.get_or_init(|| {
            built = true;
            let t0 = std::time::Instant::now();
            let cfg = match arch {
                ArchKind::X86 => ArchConfig::intel_i7_4790(),
                ArchKind::Arm => ArchConfig::arm1176jzf_s(),
            };
            let table = Arc::new(
                CalibrationBuilder::new(cfg)
                    .pstate(ps)
                    .target_ops(target_ops)
                    .calibrate()
                    .unwrap_or_else(|e| panic!("calibration failed: {e}")),
            );
            mjobs::metrics::histogram_record("cal.build_ms", t0.elapsed().as_millis() as u64);
            table
        }));
        if built {
            mjobs::metrics::counter_add("cal.misses", 1);
        } else {
            mjobs::metrics::counter_add("cal.hits", 1);
        }
        table
    }

    /// Number of distinct tables calibrated so far.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("calibration cache poisoned").len()
    }

    /// Whether no table has been calibrated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_is_shared_and_computed_once() {
        let cache = CalibrationCache::new();
        let a = cache.table(ArchKind::X86, PState::P36, 4_000);
        let b = cache.table(ArchKind::X86, PState::P36, 4_000);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_get_distinct_tables() {
        let cache = CalibrationCache::new();
        let a = cache.table(ArchKind::X86, PState::P36, 4_000);
        let b = cache.table(ArchKind::X86, PState::P24, 4_000);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_lookups_converge() {
        let cache = Arc::new(CalibrationCache::new());
        let tables: Vec<_> = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    s.spawn(move || cache.table(ArchKind::X86, PState::P36, 4_000))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("thread"))
                .collect()
        });
        assert_eq!(cache.len(), 1);
        for t in &tables[1..] {
            assert!(Arc::ptr_eq(&tables[0], t));
        }
    }
}
