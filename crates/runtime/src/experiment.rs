//! The [`Experiment`] trait, shard context, and report types.
//!
//! An experiment is a named unit of the reproduction suite (one paper
//! figure/table or extension). It declares how many independent **shards**
//! it splits into — typically one per engine × operating-point cell — and
//! renders its output as a [`Report`] so the scheduler, not the experiment,
//! owns stdout. Shard outputs are passed to [`Experiment::assemble`] as
//! `Box<dyn Any>` values, letting each experiment carry whatever
//! intermediate type it likes (rendered text, table rows, summary numbers)
//! without the runtime knowing the shape.

use std::any::Any;
use std::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex};

use analysis::report::TextTable;
use analysis::EnergyTable;
use simcore::{ArchKind, Measurement, PState};

use crate::cal::CalibrationCache;
use crate::config::HarnessConfig;

/// A shard's (and ultimately an experiment's) rendered output.
///
/// Implements [`fmt::Write`], so experiment code ports from `println!` to
/// `writeln!(report, ..)` mechanically.
#[derive(Debug, Default, Clone)]
pub struct Report {
    /// The rendered text, exactly as it will appear on the report stream.
    pub text: String,
}

impl Report {
    /// Empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Report holding `text`.
    pub fn from_text(text: impl Into<String>) -> Report {
        Report { text: text.into() }
    }

    /// Append another report's text.
    pub fn append(&mut self, other: &Report) {
        self.text.push_str(&other.text);
    }
}

impl fmt::Write for Report {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.text.push_str(s);
        Ok(())
    }
}

/// Simulated-cost counters accumulated per experiment (via [`ExpCtx::record`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct SimStats {
    /// Measurement windows recorded.
    pub measurements: u64,
    /// Simulated seconds across recorded windows.
    pub time_s: f64,
    /// Simulated cycles across recorded windows.
    pub cycles: f64,
    /// Simulated joules (all RAPL domains) across recorded windows.
    pub energy_j: f64,
}

impl SimStats {
    /// Add one measurement window.
    pub fn add(&mut self, m: &Measurement) {
        self.measurements += 1;
        self.time_s += m.time_s;
        self.cycles += m.cycles;
        self.energy_j += m.rapl.total_j();
    }
}

/// Shared per-experiment stats accumulator (cloned into every shard's ctx).
pub type StatsSink = Arc<Mutex<SimStats>>;

/// Everything a shard needs: the harness config, the shared calibration
/// cache, the per-experiment stats sink and the per-run CSV directory.
pub struct ExpCtx<'a> {
    /// The run's typed configuration.
    pub cfg: &'a HarnessConfig,
    cal: &'a CalibrationCache,
    stats: StatsSink,
    csv_dir: Option<&'a Path>,
}

impl<'a> ExpCtx<'a> {
    /// Build a context (normally done by the scheduler).
    pub fn new(
        cfg: &'a HarnessConfig,
        cal: &'a CalibrationCache,
        stats: StatsSink,
        csv_dir: Option<&'a Path>,
    ) -> ExpCtx<'a> {
        ExpCtx {
            cfg,
            cal,
            stats,
            csv_dir,
        }
    }

    /// The shared energy table for `(arch, ps)` — calibrated once per run.
    pub fn table(&self, arch: ArchKind, ps: PState) -> Arc<EnergyTable> {
        self.cal.table(arch, ps, self.cfg.cal_ops)
    }

    /// The i7-4790 table at `ps` (the common case).
    pub fn table_x86(&self, ps: PState) -> Arc<EnergyTable> {
        self.table(ArchKind::X86, ps)
    }

    /// Record a measurement window into the experiment's stats.
    pub fn record(&self, m: &Measurement) {
        self.stats.lock().expect("stats sink poisoned").add(m);
    }

    /// Clone of the stats sink, for plumbing into rigs.
    pub fn stats_sink(&self) -> StatsSink {
        Arc::clone(&self.stats)
    }

    /// When CSV output is enabled, write `table` to `<run dir>/<name>.csv`.
    ///
    /// The run directory was created once by the scheduler before any worker
    /// started, so concurrent experiments cannot race on directory creation
    /// or clobber a previous run's files.
    pub fn maybe_write_csv(&self, name: &str, table: &TextTable) {
        let Some(dir) = self.csv_dir else { return };
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&path, table.to_csv()) {
            eprintln!("csv: cannot write {}: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
}

/// A registrable experiment.
///
/// Implementations must be stateless (`&self` methods, `Sync`): all run
/// state lives in the shard bodies, so shards can execute on any worker in
/// any order and still produce identical bytes.
pub trait Experiment: Sync {
    /// Stable name (the old binary name, e.g. `"fig07_tpch"`).
    fn name(&self) -> &'static str;

    /// Architecture the experiment models.
    fn arch(&self) -> ArchKind {
        ArchKind::X86
    }

    /// Primary operating point (informational; shards pin their own).
    fn pstate(&self) -> PState {
        PState::P36
    }

    /// Number of independent shards at this configuration. Shard indices
    /// `0..shards()` are scheduled in parallel; each must be independent.
    fn shards(&self, _cfg: &HarnessConfig) -> usize {
        1
    }

    /// Run one shard. The returned value is opaque to the runtime and is
    /// handed back to [`Experiment::assemble`] in shard order.
    fn run_shard(&self, shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send>;

    /// Combine shard outputs (in shard order) into the experiment's report.
    ///
    /// The default expects each shard to have returned a [`Report`] and
    /// concatenates them — right for experiments whose shards emit disjoint,
    /// ordered sections. Experiments that interleave shard rows into one
    /// table override this.
    fn assemble(&self, shards: Vec<Box<dyn Any + Send>>, _ctx: &ExpCtx<'_>) -> Report {
        let mut out = Report::new();
        for (i, s) in shards.into_iter().enumerate() {
            let r = s
                .downcast::<Report>()
                .unwrap_or_else(|_| panic!("{}: shard {i} did not return a Report", self.name()));
            out.append(&r);
        }
        out
    }
}

/// Downcast helper for [`Experiment::assemble`] implementations.
pub fn downcast_shard<T: 'static>(name: &str, idx: usize, shard: Box<dyn Any + Send>) -> T {
    *shard
        .downcast::<T>()
        .unwrap_or_else(|_| panic!("{name}: shard {idx} returned an unexpected type"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt::Write as _;

    struct TwoShards;

    impl Experiment for TwoShards {
        fn name(&self) -> &'static str {
            "two_shards"
        }
        fn shards(&self, _cfg: &HarnessConfig) -> usize {
            2
        }
        fn run_shard(&self, shard: usize, _ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
            let mut r = Report::new();
            writeln!(r, "shard {shard}").unwrap();
            Box::new(r)
        }
    }

    #[test]
    fn default_assemble_concatenates_in_shard_order() {
        let cfg = HarnessConfig::default();
        let cal = CalibrationCache::new();
        let ctx = ExpCtx::new(&cfg, &cal, StatsSink::default(), None);
        let e = TwoShards;
        let outs: Vec<Box<dyn Any + Send>> = (0..2).map(|s| e.run_shard(s, &ctx)).collect();
        assert_eq!(e.assemble(outs, &ctx).text, "shard 0\nshard 1\n");
    }

    #[test]
    fn stats_accumulate_through_ctx() {
        let cfg = HarnessConfig::default();
        let cal = CalibrationCache::new();
        let ctx = ExpCtx::new(&cfg, &cal, StatsSink::default(), None);
        let mut cpu = simcore::Cpu::new(simcore::ArchConfig::intel_i7_4790());
        let m = cpu.measure(|c| {
            c.exec_n(simcore::ExecOp::Add, 100);
        });
        ctx.record(&m);
        let s = *ctx.stats_sink().lock().unwrap();
        assert_eq!(s.measurements, 1);
        assert!(s.time_s > 0.0 && s.energy_j > 0.0);
    }
}
