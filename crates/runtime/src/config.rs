//! One typed harness configuration, parsed once.
//!
//! Historically every bench binary read its own `MJ_*` environment
//! variables through ad-hoc `env_f64` calls. [`HarnessConfig`] centralises
//! those knobs: CLI flags win, environment variables are the fallback, and
//! the parsed struct is threaded through the runtime to every experiment
//! shard via [`crate::ExpCtx`].

use std::path::PathBuf;

/// Calibration op budget for harness runs (larger than the unit-test quick
/// budget; still seconds, not minutes).
pub const DEFAULT_CAL_OPS: u64 = 120_000;

/// The harness default TPC-H scale, in "paper megabytes" (a reduced-scale
/// stand-in for the paper's 100 MB baseline).
pub const DEFAULT_SCALE: f64 = 4.0;

/// Default ARM/DTCM experiment scale (the paper's 10 MB configuration).
pub const DEFAULT_ARM_SCALE: f64 = 10.0;

/// Default §5 DVFS-trade-off scale (large enough that the PG index scan is
/// genuinely memory-bound).
pub const DEFAULT_SEC5_SCALE: f64 = 96.0;

/// Typed harness configuration (CLI flags over `MJ_*` env fallback).
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// TPC-H scale in "paper megabytes" (`--scale` / `MJ_SCALE`).
    pub scale: f64,
    /// ARM/DTCM experiment scale (`--arm-scale` / `MJ_ARM_SCALE`).
    pub arm_scale: f64,
    /// §5 DVFS trade-off scale (`--sec5-scale` / `MJ_SEC5_SCALE`).
    pub sec5_scale: f64,
    /// Calibration op budget (`--cal-ops` / `MJ_CAL_OPS`).
    pub cal_ops: u64,
    /// Write plotting-ready CSVs (`--csv` / `MJ_CSV`).
    pub csv: bool,
    /// Root directory for CSV output; each run creates one timestamped
    /// subdirectory under it (`--results-dir` / `MJ_RESULTS_DIR`).
    pub results_root: PathBuf,
    /// Worker threads for the experiment scheduler (`--jobs` / `MJ_JOBS`;
    /// `0` means "auto": one worker per available hardware thread).
    pub jobs: usize,
    /// Case-sensitive substring filter on experiment names
    /// (`--filter` / `MJ_FILTER`).
    pub filter: Option<String>,
    /// Collect energy-attributed spans and write `trace.jsonl` +
    /// `trace.json` (Chrome `trace_event`) into the run directory
    /// (`--trace[=DIR]` / `MJ_TRACE`). Never changes the report stream.
    pub trace: bool,
    /// Explicit directory for trace files (`--trace=DIR`); `None` uses the
    /// per-run `results/run-*/` directory.
    pub trace_dir: Option<PathBuf>,
    /// Print the metrics summary after the suite and write `metrics.json`
    /// into the run directory (`--metrics` / `MJ_METRICS`).
    pub metrics: bool,
    /// Client sessions for the serving experiment
    /// (`--sessions` / `MJ_SESSIONS`).
    pub sessions: u32,
    /// Per-session open-loop arrival rate in requests per virtual second
    /// for the serving experiment (`--arrival-rate` / `MJ_ARRIVAL_RATE`).
    pub arrival_rate: f64,
    /// Admission tokens (max concurrently executing requests) for the
    /// serving experiment (`--admit-limit` / `MJ_ADMIT_LIMIT`).
    pub admit_limit: u32,
    /// Request-family mix for the serving experiment: `oltp`, `ycsb`,
    /// `tpch`, or `dml` (`--mix` / `MJ_MIX`).
    pub mix: String,
}

impl Default for HarnessConfig {
    fn default() -> HarnessConfig {
        HarnessConfig {
            scale: DEFAULT_SCALE,
            arm_scale: DEFAULT_ARM_SCALE,
            sec5_scale: DEFAULT_SEC5_SCALE,
            cal_ops: DEFAULT_CAL_OPS,
            csv: false,
            results_root: PathBuf::from("results"),
            jobs: 1,
            filter: None,
            trace: false,
            trace_dir: None,
            metrics: false,
            sessions: 64,
            arrival_rate: 200.0,
            admit_limit: 8,
            mix: String::from("oltp"),
        }
    }
}

fn env_parsed<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `--jobs 0` / `MJ_JOBS=0` means "auto": one worker per available
/// hardware thread (1 if the platform cannot tell).
fn resolve_jobs(n: usize) -> usize {
    if n == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        n
    }
}

impl HarnessConfig {
    /// Defaults overridden by `MJ_*` environment variables only.
    pub fn from_env() -> HarnessConfig {
        let d = HarnessConfig::default();
        HarnessConfig {
            scale: env_parsed("MJ_SCALE", d.scale),
            arm_scale: env_parsed("MJ_ARM_SCALE", d.arm_scale),
            sec5_scale: env_parsed("MJ_SEC5_SCALE", d.sec5_scale),
            cal_ops: env_parsed("MJ_CAL_OPS", d.cal_ops),
            csv: std::env::var("MJ_CSV").is_ok(),
            results_root: std::env::var("MJ_RESULTS_DIR")
                .map(PathBuf::from)
                .unwrap_or(d.results_root),
            jobs: resolve_jobs(env_parsed("MJ_JOBS", d.jobs)),
            filter: std::env::var("MJ_FILTER").ok().filter(|s| !s.is_empty()),
            trace: std::env::var("MJ_TRACE").is_ok() || std::env::var("MJ_PROFILE").is_ok(),
            trace_dir: std::env::var("MJ_TRACE")
                .ok()
                .filter(|v| !v.is_empty() && v != "1")
                .map(PathBuf::from),
            metrics: std::env::var("MJ_METRICS").is_ok() || std::env::var("MJ_PROFILE").is_ok(),
            sessions: env_parsed("MJ_SESSIONS", d.sessions),
            arrival_rate: env_parsed("MJ_ARRIVAL_RATE", d.arrival_rate),
            admit_limit: env_parsed("MJ_ADMIT_LIMIT", d.admit_limit),
            mix: std::env::var("MJ_MIX").ok().unwrap_or(d.mix),
        }
    }

    /// Environment config plus CLI flags (flags win). Errors carry a usage
    /// string suitable for printing.
    pub fn from_env_and_args<I, S>(args: I) -> Result<HarnessConfig, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut cfg = HarnessConfig::from_env();
        cfg.apply_args(args)?;
        Ok(cfg)
    }

    /// Apply CLI flags on top of this configuration.
    pub fn apply_args<I, S>(&mut self, args: I) -> Result<(), String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let arg = arg.as_ref();
            let mut value = |name: &str| {
                it.next()
                    .map(|v| v.as_ref().to_owned())
                    .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
            };
            match arg {
                "--jobs" | "-j" => {
                    self.jobs = resolve_jobs(parse(&value("--jobs")?, "--jobs")?);
                }
                "--filter" | "-f" => self.filter = Some(value("--filter")?),
                "--trace" => self.trace = true,
                "--metrics" => self.metrics = true,
                "--profile" => {
                    self.trace = true;
                    self.metrics = true;
                }
                "--scale" => self.scale = parse(&value("--scale")?, "--scale")?,
                "--arm-scale" => self.arm_scale = parse(&value("--arm-scale")?, "--arm-scale")?,
                "--sec5-scale" => self.sec5_scale = parse(&value("--sec5-scale")?, "--sec5-scale")?,
                "--cal-ops" => self.cal_ops = parse(&value("--cal-ops")?, "--cal-ops")?,
                "--csv" => self.csv = true,
                "--results-dir" => self.results_root = PathBuf::from(value("--results-dir")?),
                "--sessions" => self.sessions = parse(&value("--sessions")?, "--sessions")?,
                "--arrival-rate" => {
                    self.arrival_rate = parse(&value("--arrival-rate")?, "--arrival-rate")?;
                }
                "--admit-limit" => {
                    self.admit_limit = parse(&value("--admit-limit")?, "--admit-limit")?;
                }
                "--mix" => self.mix = value("--mix")?,
                other if other.starts_with("--trace=") => {
                    self.trace = true;
                    let dir = &other["--trace=".len()..];
                    if dir.is_empty() {
                        return Err(format!("--trace= needs a directory\n{USAGE}"));
                    }
                    self.trace_dir = Some(PathBuf::from(dir));
                }
                other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
            }
        }
        Ok(())
    }
}

fn parse<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("cannot parse {v:?} for {flag}\n{USAGE}"))
}

/// CLI usage string shared by the harness binaries.
pub const USAGE: &str = "\
usage: [--jobs N (0 = auto)] [--filter SUBSTR] [--scale MB] [--arm-scale MB]
       [--sec5-scale MB] [--cal-ops N] [--csv] [--results-dir DIR]
       [--trace[=DIR]] [--metrics] [--profile] [--sessions N]
       [--arrival-rate HZ] [--admit-limit N] [--mix oltp|ycsb|tpch|dml]
       [--list]

--trace writes trace.jsonl + trace.json (Chrome trace_event, energy-width
spans) plus the mjprof rollups flame.folded (energy flamegraph) and
profile.json (per-operator attribution) into the per-run results
directory; --metrics prints the metrics summary and writes metrics.json
there; --profile is shorthand for --trace --metrics, which together
produce everything profdiff compares. None of them changes the report
stream.
--sessions/--arrival-rate/--admit-limit/--mix shape the serving experiment
(serve_oltp): client-stream count, per-session open-loop rate in requests
per virtual second, admission tokens, and the request-family mix.

Environment fallbacks: MJ_JOBS, MJ_FILTER, MJ_SCALE, MJ_ARM_SCALE,
MJ_SEC5_SCALE, MJ_CAL_OPS, MJ_CSV, MJ_RESULTS_DIR, MJ_TRACE, MJ_METRICS,
MJ_PROFILE, MJ_SESSIONS, MJ_ARRIVAL_RATE, MJ_ADMIT_LIMIT, MJ_MIX.";

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn flags_override_defaults() {
        let mut cfg = HarnessConfig::default();
        cfg.apply_args(["--jobs", "4", "--filter", "fig0", "--scale", "2.5", "--csv"])
            .unwrap();
        assert_eq!(cfg.jobs, 4);
        assert_eq!(cfg.filter.as_deref(), Some("fig0"));
        assert_eq!(cfg.scale, 2.5);
        assert!(cfg.csv);
        assert!(!cfg.trace && !cfg.metrics);
    }

    #[test]
    fn jobs_zero_means_auto() {
        let mut cfg = HarnessConfig::default();
        cfg.apply_args(["--jobs", "0"]).unwrap();
        assert!(cfg.jobs >= 1, "auto resolves to at least one worker");
        let expect = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        assert_eq!(cfg.jobs, expect);
    }

    #[test]
    fn trace_and_metrics_flags() {
        let mut cfg = HarnessConfig::default();
        cfg.apply_args(["--trace", "--metrics"]).unwrap();
        assert!(cfg.trace && cfg.metrics);
        assert_eq!(cfg.trace_dir, None);

        let mut cfg = HarnessConfig::default();
        cfg.apply_args(["--trace=/tmp/traces"]).unwrap();
        assert!(cfg.trace);
        assert_eq!(cfg.trace_dir.as_deref(), Some(Path::new("/tmp/traces")));
        assert!(cfg.apply_args(["--trace="]).is_err());
    }

    #[test]
    fn profile_flag_implies_trace_and_metrics() {
        let mut cfg = HarnessConfig::default();
        cfg.apply_args(["--profile"]).unwrap();
        assert!(cfg.trace && cfg.metrics);
        assert_eq!(cfg.trace_dir, None);
    }

    #[test]
    fn serve_flags_override_defaults() {
        let mut cfg = HarnessConfig::default();
        assert_eq!(cfg.sessions, 64);
        cfg.apply_args([
            "--sessions",
            "16",
            "--arrival-rate",
            "450.5",
            "--admit-limit",
            "3",
            "--mix",
            "ycsb",
        ])
        .unwrap();
        assert_eq!(cfg.sessions, 16);
        assert_eq!(cfg.arrival_rate, 450.5);
        assert_eq!(cfg.admit_limit, 3);
        assert_eq!(cfg.mix, "ycsb");
        assert!(cfg.apply_args(["--sessions", "many"]).is_err());
    }

    #[test]
    fn bad_flags_are_rejected() {
        let mut cfg = HarnessConfig::default();
        assert!(cfg.apply_args(["--jobs", "zero"]).is_err());
        assert!(cfg.apply_args(["--wat"]).is_err());
        assert!(cfg.apply_args(["--filter"]).is_err());
    }
}
