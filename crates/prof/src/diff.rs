//! The regression sentinel: compare two run directories' deterministic
//! profiling outputs (`metrics.json` + `profile.json`) and flag deltas
//! beyond configurable thresholds.
//!
//! Only simulator-derived, jobs-independent series are compared — gauges
//! `exp.<name>.sim_ms` / `.sim_j` / `.sim_kcycles` and the `simcore.run_*`
//! fast-path counters; host-scoped metrics (wall-clock gauges, queue-wait
//! histograms) are ignored by construction. Two runs of the same tree must
//! therefore diff to exactly zero, which is what the CI `profdiff --smoke`
//! job proves.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use analysis::report::TextTable;
use mjobs::json::{self, Json};

use crate::profile::parse_profile;

/// Per-kind relative thresholds, in percent.
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// Allowed relative change for latency series (sim_ms, sim_kcycles,
    /// per-operator cycles).
    pub latency_pct: f64,
    /// Allowed relative change for energy series (sim_j, per-operator
    /// joules).
    pub energy_pct: f64,
    /// Allowed relative change for fast-path counters and calls/rows.
    pub counter_pct: f64,
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds {
            latency_pct: 1.0,
            energy_pct: 1.0,
            counter_pct: 0.5,
        }
    }
}

/// What a compared series measures (decides its threshold).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// Simulated time or cycles.
    Latency,
    /// Joules.
    Energy,
    /// Event counts (fast-path lines, calls, rows).
    Counter,
}

/// One compared series.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Series name (metric name or `profile.<exp>.s<shard>.<op>.<field>`).
    pub name: String,
    /// Value in the baseline dir.
    pub a: f64,
    /// Value in the candidate dir.
    pub b: f64,
    /// Relative change in percent (`100 * (b - a) / a`; 0 when both zero).
    pub pct: f64,
    /// The series' kind.
    pub kind: DeltaKind,
    /// True when `|pct|` exceeds the kind's threshold.
    pub violation: bool,
}

/// The full comparison.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Every compared series, in name order.
    pub rows: Vec<Delta>,
    /// Structural problems (series present on one side only, parse
    /// failures of optional artifacts). Each counts as a violation.
    pub notes: Vec<String>,
}

impl DiffReport {
    /// Number of threshold violations plus structural notes.
    pub fn violations(&self) -> usize {
        self.rows.iter().filter(|d| d.violation).count() + self.notes.len()
    }

    /// Render the comparison: violations (and notes) always; clean rows
    /// summarised.
    pub fn render(&self, verbose: bool) -> String {
        let mut out = String::new();
        let mut t = TextTable::new(["series", "kind", "baseline", "candidate", "delta %", "flag"]);
        let mut clean = 0usize;
        for d in &self.rows {
            if !d.violation && !verbose {
                clean += 1;
                continue;
            }
            t.row([
                d.name.clone(),
                format!("{:?}", d.kind).to_lowercase(),
                format!("{:.6}", d.a),
                format!("{:.6}", d.b),
                format!("{:+.3}", d.pct),
                if d.violation {
                    "REGRESSED".into()
                } else {
                    "ok".into()
                },
            ]);
        }
        let _ = write!(out, "{}", t.render());
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        let _ = writeln!(
            out,
            "{} series compared, {} within thresholds{}, {} violation(s)",
            self.rows.len(),
            self.rows.iter().filter(|d| !d.violation).count(),
            if verbose {
                String::new()
            } else {
                format!(" ({clean} hidden)")
            },
            self.violations(),
        );
        out
    }
}

fn pct(a: f64, b: f64) -> f64 {
    if a == 0.0 && b == 0.0 {
        0.0
    } else if a == 0.0 {
        100.0
    } else {
        100.0 * (b - a) / a
    }
}

fn threshold(kind: DeltaKind, thr: &Thresholds) -> f64 {
    match kind {
        DeltaKind::Latency => thr.latency_pct,
        DeltaKind::Energy => thr.energy_pct,
        DeltaKind::Counter => thr.counter_pct,
    }
}

/// The deterministic series extracted from one `metrics.json`.
fn metric_series(parsed: &Json) -> BTreeMap<String, (f64, DeltaKind)> {
    let mut out = BTreeMap::new();
    let Json::Obj(entries) = parsed else {
        return out;
    };
    for (name, m) in entries {
        let ty = m.get("type").and_then(|t| t.as_str()).unwrap_or("");
        let Some(value) = m.get("value").and_then(|v| v.as_f64()) else {
            continue;
        };
        let kind = if ty == "gauge" && name.starts_with("exp.") {
            if name.ends_with(".sim_j") {
                Some(DeltaKind::Energy)
            } else if name.ends_with(".sim_ms") || name.ends_with(".sim_kcycles") {
                Some(DeltaKind::Latency)
            } else {
                None
            }
        } else if ty == "counter" && name.starts_with("simcore.run_") {
            Some(DeltaKind::Counter)
        } else {
            None
        };
        if let Some(kind) = kind {
            out.insert(name.clone(), (value, kind));
        }
    }
    out
}

fn compare_maps(
    report: &mut DiffReport,
    thr: &Thresholds,
    a: &BTreeMap<String, (f64, DeltaKind)>,
    b: &BTreeMap<String, (f64, DeltaKind)>,
) {
    for (name, (va, kind)) in a {
        match b.get(name) {
            Some((vb, _)) => {
                let p = pct(*va, *vb);
                report.rows.push(Delta {
                    name: name.clone(),
                    a: *va,
                    b: *vb,
                    pct: p,
                    kind: *kind,
                    violation: p.abs() > threshold(*kind, thr),
                });
            }
            None => report
                .notes
                .push(format!("series {name} present only in baseline")),
        }
    }
    for name in b.keys() {
        if !a.contains_key(name) {
            report
                .notes
                .push(format!("series {name} present only in candidate"));
        }
    }
}

/// Flatten a parsed profile into comparable series.
fn profile_series(text: &str) -> Result<BTreeMap<String, (f64, DeltaKind)>, String> {
    let p = parse_profile(text)?;
    let mut out = BTreeMap::new();
    for (exp, shards) in &p.experiments {
        for s in shards {
            let base = format!("profile.{exp}.s{}", s.shard);
            out.insert(format!("{base}.total_j"), (s.total_j, DeltaKind::Energy));
            out.insert(format!("{base}.est_j"), (s.est_j, DeltaKind::Energy));
            out.insert(
                format!("{base}.spans"),
                (s.spans as f64, DeltaKind::Counter),
            );
            for (i, field) in ["batched", "cold", "replayed", "fallbacks"]
                .iter()
                .enumerate()
            {
                out.insert(
                    format!("{base}.runs.{field}"),
                    (s.runs[i] as f64, DeltaKind::Counter),
                );
            }
            for op in &s.operators {
                let ob = format!("{base}.{}", op.name);
                out.insert(format!("{ob}.self_j"), (op.self_j, DeltaKind::Energy));
                out.insert(format!("{ob}.cycles"), (op.cycles, DeltaKind::Latency));
                out.insert(format!("{ob}.calls"), (op.calls as f64, DeltaKind::Counter));
                if let Some(r) = op.rows {
                    out.insert(format!("{ob}.rows"), (r as f64, DeltaKind::Counter));
                }
            }
        }
    }
    Ok(out)
}

/// Compare two run directories. `metrics.json` is required on both sides;
/// `profile.json` is compared when present on both and noted when present
/// on only one.
pub fn diff_dirs(a: &Path, b: &Path, thr: &Thresholds) -> Result<DiffReport, String> {
    let read = |dir: &Path, file: &str| -> Result<String, String> {
        std::fs::read_to_string(dir.join(file))
            .map_err(|e| format!("{}/{file}: {e}", dir.display()))
    };
    let ma = json::parse(&read(a, "metrics.json")?)
        .map_err(|e| format!("baseline metrics.json: {e}"))?;
    let mb = json::parse(&read(b, "metrics.json")?)
        .map_err(|e| format!("candidate metrics.json: {e}"))?;
    let mut report = DiffReport::default();
    compare_maps(&mut report, thr, &metric_series(&ma), &metric_series(&mb));

    let pa = read(a, "profile.json").ok();
    let pb = read(b, "profile.json").ok();
    match (pa, pb) {
        (Some(pa), Some(pb)) => {
            let sa = profile_series(&pa).map_err(|e| format!("baseline profile.json: {e}"))?;
            let sb = profile_series(&pb).map_err(|e| format!("candidate profile.json: {e}"))?;
            compare_maps(&mut report, thr, &sa, &sb);
        }
        (Some(_), None) => report.notes.push("profile.json only in baseline".into()),
        (None, Some(_)) => report.notes.push("profile.json only in candidate".into()),
        (None, None) => {}
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(sim_j: f64, runs: u64) -> String {
        format!(
            "{{\"exp.fig01.sim_ms\": {{\"type\": \"gauge\", \"value\": 12.5}},\n\
              \"exp.fig01.sim_j\": {{\"type\": \"gauge\", \"value\": {sim_j}}},\n\
              \"exp.fig01.host_ms\": {{\"type\": \"gauge\", \"value\": 991.0}},\n\
              \"simcore.run_batched_lines\": {{\"type\": \"counter\", \"value\": {runs}}},\n\
              \"scheduler.queue_wait_us\": {{\"type\": \"histogram\", \"count\": 3, \
               \"sum\": 9.0, \"max\": 5, \"buckets\": [[0, 1, 3]]}}}}"
        )
    }

    fn write_dir(tag: &str, sim_j: f64, runs: u64) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mjprof-diff-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("metrics.json"), metrics(sim_j, runs)).unwrap();
        dir
    }

    #[test]
    fn identical_dirs_diff_to_zero() {
        let a = write_dir("za", 3.25, 700);
        let b = write_dir("zb", 3.25, 700);
        let r = diff_dirs(&a, &b, &Thresholds::default()).unwrap();
        assert_eq!(r.violations(), 0, "{}", r.render(true));
        // Host-scoped series must not be compared at all.
        assert!(r.rows.iter().all(|d| !d.name.contains("host")));
        assert!(r.rows.iter().all(|d| !d.name.contains("queue_wait")));
        assert_eq!(r.rows.len(), 3);
        std::fs::remove_dir_all(a).ok();
        std::fs::remove_dir_all(b).ok();
    }

    #[test]
    fn energy_regression_is_flagged() {
        let a = write_dir("ra", 3.25, 700);
        let b = write_dir("rb", 3.40, 650); // +4.6% energy, -7% fast-path
        let r = diff_dirs(&a, &b, &Thresholds::default()).unwrap();
        assert_eq!(r.violations(), 2, "{}", r.render(true));
        let rendered = r.render(false);
        assert!(rendered.contains("REGRESSED"), "{rendered}");
        std::fs::remove_dir_all(a).ok();
        std::fs::remove_dir_all(b).ok();
    }
}
