//! `EXPLAIN ANALYZE` with energy: execute a plan inside a scoped span
//! collector and render the logical `explain()` tree annotated per
//! operator with rows, simulated cycles, joules, micro-op energy shares
//! and fast-path hit rates.
//!
//! The span stream produced by one `Session::run` mirrors the plan tree —
//! the executor brackets every operator — but not always 1:1: a hash join
//! executes its *build* (right) child before the probe side, and an index
//! nested-loop join drives an indexable inner scan directly through the
//! index without a child span. Mapping therefore matches plan children to
//! span children by expected span name ([`engines::executor::span_name`]),
//! in any order, and marks plan nodes with no span of their own as
//! *inlined* (their cost is inside the parent's).

use std::fmt::Write as _;

use analysis::active::active_energy;
use analysis::{EnergyTable, MicroOp, MicroOpCounts};
use engines::executor::span_name;
use engines::{EngineKind, Plan, Session};
use mjobs::span::SpanRecord;
use simcore::{Cpu, Measurement};

use crate::tree::{fastpath_hit_rate, SpanForest};

/// Why an `EXPLAIN ANALYZE` run could not produce a profile.
#[derive(Debug)]
pub enum ProfError {
    /// The query itself failed.
    Exec(storage::StorageError),
    /// The span stream did not map back onto the plan tree.
    Mapping(String),
}

impl From<storage::StorageError> for ProfError {
    fn from(e: storage::StorageError) -> ProfError {
        ProfError::Exec(e)
    }
}

impl std::fmt::Display for ProfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfError::Exec(e) => write!(f, "query failed: {e:?}"),
            ProfError::Mapping(m) => write!(f, "span mapping failed: {m}"),
        }
    }
}

/// One annotated operator in plan (preorder) order.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// The node's line from the logical `explain()` tree (no indentation).
    pub plan_line: String,
    /// Physical span name (`scan(lineitem)`, `hash_join`, …); empty for
    /// inlined nodes.
    pub name: String,
    /// Plan-tree depth (indentation level).
    pub depth: usize,
    /// Rows the operator produced, when its span was annotated.
    pub rows: Option<u64>,
    /// Exclusive simulated seconds.
    pub time_s: f64,
    /// Exclusive cycles.
    pub cycles: f64,
    /// Inclusive RAPL joules (children included).
    pub e_j: f64,
    /// Exclusive RAPL joules.
    pub self_j: f64,
    /// `(micro-op symbol, share)` of the node's exclusive Active energy,
    /// ending with `("other", …)`; shares sum to 1.
    pub shares: Vec<(&'static str, f64)>,
    /// Fast-path hit rate over the node's exclusive line movement.
    pub fast_hit: Option<f64>,
    /// True when the operator ran inside its parent (no span of its own).
    pub inlined: bool,
}

/// The result of one `EXPLAIN ANALYZE` execution.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// Engine personality that ran the query.
    pub kind: EngineKind,
    /// Result-set row count.
    pub rows: u64,
    /// The whole query's measurement (the root span's inclusive delta).
    pub total: Measurement,
    /// Eq. 1 micro-op estimate for the whole query (joules).
    pub est_j: f64,
    /// Measured Active joules for the whole query.
    pub active_j: f64,
    /// Annotated operators, preorder over the plan tree.
    pub ops: Vec<OpReport>,
    /// The raw span stream (seq-sorted), for flamegraphs of this query.
    pub spans: Vec<SpanRecord>,
}

fn plan_children(plan: &Plan) -> Vec<&Plan> {
    match plan {
        Plan::Scan { .. } | Plan::IndexRange { .. } => Vec::new(),
        Plan::Join { left, right, .. } => vec![left, right],
        Plan::Aggregate { input, .. } => vec![input],
        Plan::Sort { input, .. } => vec![input],
        Plan::Limit { input, .. } => vec![input],
        Plan::Project { input, .. } => vec![input],
    }
}

fn plan_line(plan: &Plan) -> String {
    plan.explain().lines().next().unwrap_or_default().to_owned()
}

fn attach(
    plan: &Plan,
    node: Option<usize>,
    depth: usize,
    forest: &SpanForest<'_>,
    table: &EnergyTable,
    profile: &engines::Profile,
    out: &mut Vec<OpReport>,
) -> Result<(), String> {
    match node {
        None => {
            out.push(OpReport {
                plan_line: plan_line(plan),
                name: String::new(),
                depth,
                rows: None,
                time_s: 0.0,
                cycles: 0.0,
                e_j: 0.0,
                self_j: 0.0,
                shares: Vec::new(),
                fast_hit: None,
                inlined: true,
            });
            for child in plan_children(plan) {
                attach(child, None, depth + 1, forest, table, profile, out)?;
            }
            Ok(())
        }
        Some(i) => {
            let rec = forest.rec(i);
            let expected = span_name(plan, profile);
            if rec.name != expected {
                return Err(format!("span {} where plan expects {expected}", rec.name));
            }
            let excl = forest.exclusive(i);
            let bd = table.breakdown(&excl);
            let mut shares: Vec<(&'static str, f64)> = MicroOp::MS
                .iter()
                .map(|op| (op.symbol(), bd.share(*op)))
                .collect();
            shares.push(("other", bd.other_share()));
            out.push(OpReport {
                plan_line: plan_line(plan),
                name: rec.name.clone(),
                depth,
                rows: rec.rows,
                time_s: excl.time_s,
                cycles: excl.cycles,
                e_j: rec.delta.rapl.total_j(),
                self_j: forest.self_j(i),
                shares,
                fast_hit: fastpath_hit_rate(forest.exclusive_runs(i)),
                inlined: false,
            });
            // Match plan children (plan order) to span children (execution
            // order) by expected span name; unmatched plan children ran
            // inlined, unmatched span children are a mapping error.
            let span_children = forest.children(i);
            let mut used = vec![false; span_children.len()];
            for pc in plan_children(plan) {
                let want = span_name(pc, profile);
                let found = span_children
                    .iter()
                    .enumerate()
                    .find(|(k, &si)| !used[*k] && forest.rec(si).name == want)
                    .map(|(k, &si)| (k, si));
                match found {
                    Some((k, si)) => {
                        used[k] = true;
                        attach(pc, Some(si), depth + 1, forest, table, profile, out)?;
                    }
                    None => attach(pc, None, depth + 1, forest, table, profile, out)?,
                }
            }
            if let Some(k) = used.iter().position(|u| !u) {
                return Err(format!(
                    "span {} has no matching plan child under {expected}",
                    forest.rec(span_children[k]).name
                ));
            }
            Ok(())
        }
    }
}

/// Execute `plan` on `session` inside a scoped span collector and return
/// the annotated profile. Nests cleanly under an ambient `--trace`
/// collector (the inner collector captures this query's spans; the outer
/// one resumes afterwards).
pub fn profile_query(
    session: &mut Session<'_>,
    cpu: &mut Cpu,
    plan: &Plan,
    table: &EnergyTable,
) -> Result<QueryProfile, ProfError> {
    mjobs::span::install();
    let result = session.run(cpu, plan);
    let spans = mjobs::span::take();
    let rows = result?;
    let forest = SpanForest::build(&spans).map_err(ProfError::Mapping)?;
    let &[root] = forest.roots() else {
        return Err(ProfError::Mapping(format!(
            "expected one root span, got {}",
            forest.roots().len()
        )));
    };
    let kind = session.kind();
    let profile = kind.profile();
    let mut ops = Vec::new();
    attach(plan, Some(root), 0, &forest, table, profile, &mut ops).map_err(ProfError::Mapping)?;
    let total = forest.rec(root).delta.clone();
    let est_j = table.estimate_active_j(&MicroOpCounts::from_pmu(&total.pmu));
    let active_j = active_energy(&total, &table.background).active_j;
    Ok(QueryProfile {
        kind,
        rows: rows.len() as u64,
        total,
        est_j,
        active_j,
        ops,
        spans,
    })
}

/// `EXPLAIN ANALYZE` for session-scoped execution, as an extension trait
/// so `engines` stays independent of the profiler.
pub trait SessionProf {
    /// Execute `plan` and return the per-operator energy profile.
    fn explain_analyze(
        &mut self,
        cpu: &mut Cpu,
        plan: &Plan,
        table: &EnergyTable,
    ) -> Result<QueryProfile, ProfError>;
}

impl SessionProf for Session<'_> {
    fn explain_analyze(
        &mut self,
        cpu: &mut Cpu,
        plan: &Plan,
        table: &EnergyTable,
    ) -> Result<QueryProfile, ProfError> {
        profile_query(self, cpu, plan, table)
    }
}

fn fmt_uj(j: f64) -> String {
    format!("{:.2}uJ", j * 1e6)
}

impl QueryProfile {
    /// Render the annotated tree: the logical `explain()` skeleton, each
    /// line extended with the physical operator and its measurements.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "EXPLAIN ANALYZE ({}): {} rows, {:.3} ms simulated, {} \
             (active {}, est {} = {:.0}%)",
            self.kind.name(),
            self.rows,
            self.total.time_s * 1e3,
            fmt_uj(self.total.rapl.total_j()),
            fmt_uj(self.active_j),
            fmt_uj(self.est_j),
            if self.active_j > 0.0 {
                100.0 * self.est_j / self.active_j
            } else {
                0.0
            },
        );
        for op in &self.ops {
            let pad = "  ".repeat(op.depth);
            if op.inlined {
                let _ = writeln!(out, "{pad}{} [inlined into parent]", op.plan_line);
                continue;
            }
            let rows = op.rows.map_or(String::from("?"), |r| r.to_string());
            let _ = write!(
                out,
                "{pad}{} [{}] rows={rows} cycles={:.0} e={} self={}",
                op.plan_line,
                op.name,
                op.cycles,
                fmt_uj(op.e_j),
                fmt_uj(op.self_j),
            );
            if let Some(h) = op.fast_hit {
                let _ = write!(out, " fast={:.0}%", h * 100.0);
            }
            let shares = op
                .shares
                .iter()
                .filter(|(_, s)| *s >= 0.005)
                .map(|(sym, s)| format!("{sym} {:.0}%", s * 100.0))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(out, " | {shares}");
        }
        out
    }
}
