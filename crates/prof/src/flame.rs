//! Energy flamegraphs: collapse a span forest into folded-stack lines
//! where the sample weight is *energy*, not time.
//!
//! The folded format is the lingua franca of flamegraph tooling (Brendan
//! Gregg's `flamegraph.pl`, inferno, speedscope): one line per distinct
//! stack, frames joined by `;`, a space, then an integer weight. Here the
//! weight is the stack's **exclusive energy in nanojoules** — the joules
//! the innermost frame spent itself, children excluded — so frame widths
//! in the rendered graph are joules and the root width is the run's total
//! RAPL delta.
//!
//! Weights come from the simulator's deterministic meters and are rounded
//! once at the end, so the emitted bytes are identical for any `--jobs`.

use std::collections::BTreeMap;
use std::io::{self, Write};

use mjobs::span::SpanRecord;

use crate::tree::SpanForest;

/// Make a span name safe to embed in a folded stack: `;` separates frames
/// and the last space separates the weight, so both are replaced.
fn frame(name: &str) -> String {
    name.replace(';', ":").replace(' ', "_")
}

/// Fold one span stream under `prefix` frames (e.g. experiment name and
/// shard), accumulating exclusive nanojoules per distinct stack into `acc`.
/// Streams that fail well-formedness validation report the error instead
/// of producing a partial graph.
pub fn fold_into(
    acc: &mut BTreeMap<String, u64>,
    prefix: &[String],
    recs: &[SpanRecord],
) -> Result<(), String> {
    let forest = SpanForest::build(recs)?;
    let base = prefix
        .iter()
        .map(|p| frame(p))
        .collect::<Vec<_>>()
        .join(";");
    let mut stack: Vec<(usize, String)> = forest
        .roots()
        .iter()
        .rev()
        .map(|&r| (r, base.clone()))
        .collect();
    while let Some((i, path)) = stack.pop() {
        let path = if path.is_empty() {
            frame(&forest.rec(i).name)
        } else {
            format!("{path};{}", frame(&forest.rec(i).name))
        };
        let nj = (forest.self_j(i) * 1e9).round();
        let nj = if nj.is_finite() && nj > 0.0 {
            nj as u64
        } else {
            0
        };
        if nj > 0 {
            *acc.entry(path.clone()).or_insert(0) += nj;
        }
        for &c in forest.children(i).iter().rev() {
            stack.push((c, path.clone()));
        }
    }
    Ok(())
}

/// Write accumulated folded stacks: one `stack weight` line per entry, in
/// stack (byte) order — deterministic for any insertion order.
pub fn write_folded<W: Write>(w: &mut W, acc: &BTreeMap<String, u64>) -> io::Result<()> {
    for (stack, nj) in acc {
        writeln!(w, "{stack} {nj}")?;
    }
    Ok(())
}

/// Parse one folded line back into `(stack, weight)`; `None` when the line
/// is not in folded format. Used by `trace_check` and tests.
pub fn parse_folded(line: &str) -> Option<(&str, u64)> {
    let (stack, w) = line.rsplit_once(' ')?;
    if stack.is_empty() {
        return None;
    }
    Some((stack, w.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{ArchConfig, Cpu, ExecOp};

    #[test]
    fn folded_stacks_sum_to_total_energy() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        mjobs::span::install();
        mjobs::span::enter(&mut cpu, || "q 1".into());
        cpu.exec_n(ExecOp::Add, 200);
        mjobs::span::enter(&mut cpu, || "scan(t;x)".into());
        cpu.exec_n(ExecOp::Mul, 400);
        mjobs::span::exit(&mut cpu);
        mjobs::span::exit(&mut cpu);
        let recs = mjobs::span::take();
        let total_nj = recs[0].delta.rapl.total_j() * 1e9;

        let mut acc = BTreeMap::new();
        fold_into(&mut acc, &["exp".into(), "shard0".into()], &recs).unwrap();
        let mut out = Vec::new();
        write_folded(&mut out, &acc).unwrap();
        let text = String::from_utf8(out).unwrap();
        let mut sum = 0u64;
        for line in text.lines() {
            let (stack, w) = parse_folded(line).expect("folded line");
            assert!(stack.starts_with("exp;shard0;q_1"), "{stack}");
            assert!(!stack.contains(' '));
            sum += w;
        }
        // Rounding once per stack: off by at most one nJ per line.
        assert!((sum as f64 - total_nj).abs() <= text.lines().count() as f64);
        assert!(text.contains(";scan(t:x) "));
    }
}
