//! Span forests: the per-operator hierarchy reconstructed from a flat,
//! seq-sorted [`SpanRecord`] stream.
//!
//! A span's [`Measurement`] delta is *inclusive* — it contains everything
//! its children did. The forest makes the *exclusive* view available:
//! [`SpanForest::exclusive`] subtracts the children's deltas, so per-node
//! energies telescope — summing `self_j` over every node of a tree
//! reproduces the root's RAPL delta exactly (same additions, float-exact
//! in practice to ~1e-12 relative).

use mjobs::span::SpanRecord;
use simcore::{Measurement, RunStats};

/// A parent/child view over a seq-sorted slice of span records.
#[derive(Debug)]
pub struct SpanForest<'a> {
    recs: &'a [SpanRecord],
    children: Vec<Vec<usize>>,
    roots: Vec<usize>,
}

impl<'a> SpanForest<'a> {
    /// Build the forest, validating well-formedness: records sorted by
    /// `seq`, every `parent_seq` resolving to an earlier record whose
    /// `(seq, end_seq)` interval strictly encloses the child's, and depths
    /// consistent with the parent chain. Returns a description of the
    /// first violation instead of a forest when the stream is malformed.
    pub fn build(recs: &'a [SpanRecord]) -> Result<SpanForest<'a>, String> {
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); recs.len()];
        let mut roots = Vec::new();
        for (i, r) in recs.iter().enumerate() {
            if i > 0 && recs[i - 1].seq >= r.seq {
                return Err(format!("records not sorted by seq at index {i}"));
            }
            if r.end_seq <= r.seq {
                return Err(format!("span {} has end_seq <= seq", r.name));
            }
            match r.parent_seq {
                None => {
                    if r.depth != 0 {
                        return Err(format!("root span {} has depth {}", r.name, r.depth));
                    }
                    roots.push(i);
                }
                Some(p) => {
                    // Records are seq-sorted, so the parent precedes i.
                    let Ok(pi) = recs[..i].binary_search_by(|c| c.seq.cmp(&p)) else {
                        return Err(format!("span {} has unknown parent seq {p}", r.name));
                    };
                    let par = &recs[pi];
                    if !(par.seq < r.seq && r.end_seq < par.end_seq) {
                        return Err(format!(
                            "span {} [{}, {}] not enclosed by parent {} [{}, {}]",
                            r.name, r.seq, r.end_seq, par.name, par.seq, par.end_seq
                        ));
                    }
                    if r.depth != par.depth + 1 {
                        return Err(format!(
                            "span {} depth {} under parent depth {}",
                            r.name, r.depth, par.depth
                        ));
                    }
                    children[pi].push(i);
                }
            }
        }
        Ok(SpanForest {
            recs,
            children,
            roots,
        })
    }

    /// Indices of root spans, in seq order.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Indices of node `i`'s children, in execution (seq) order.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// The record behind node `i`.
    pub fn rec(&self, i: usize) -> &SpanRecord {
        &self.recs[i]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.recs.len()
    }

    /// True when the forest holds no spans.
    pub fn is_empty(&self) -> bool {
        self.recs.is_empty()
    }

    /// Node `i`'s *exclusive* measurement: its inclusive delta minus every
    /// direct child's. PMU counts, energy, time and cycles all telescope,
    /// so the subtraction can never go negative on well-formed streams
    /// (children execute strictly inside the parent's window).
    pub fn exclusive(&self, i: usize) -> Measurement {
        let mut m = self.recs[i].delta.clone();
        for &c in &self.children[i] {
            let ch = &self.recs[c].delta;
            m.pmu = m.pmu.delta(&ch.pmu);
            m.rapl = m.rapl.delta(&ch.rapl);
            m.time_s -= ch.time_s;
            m.cycles -= ch.cycles;
        }
        m
    }

    /// Node `i`'s exclusive RAPL joules (total domain).
    pub fn self_j(&self, i: usize) -> f64 {
        let mut j = self.recs[i].delta.rapl.total_j();
        for &c in &self.children[i] {
            j -= self.recs[c].delta.rapl.total_j();
        }
        j.max(0.0)
    }

    /// Node `i`'s exclusive fast-path counter deltas.
    pub fn exclusive_runs(&self, i: usize) -> RunStats {
        let mut r = self.recs[i].runs;
        for &c in &self.children[i] {
            let ch = self.recs[c].runs;
            r.batched_lines -= ch.batched_lines;
            r.cold_batched_lines -= ch.cold_batched_lines;
            r.replayed_lines -= ch.replayed_lines;
            r.fallbacks -= ch.fallbacks;
        }
        r
    }

    /// Sum of the root spans' inclusive RAPL joules — the total energy the
    /// stream accounts for.
    pub fn total_j(&self) -> f64 {
        self.roots
            .iter()
            .map(|&r| self.recs[r].delta.rapl.total_j())
            .sum()
    }
}

/// Fraction of fast-path-eligible lines actually served by a fast path
/// (batched, cold-batched or replayed); `None` when the window moved no
/// lines through `access_run` at all.
pub fn fastpath_hit_rate(r: RunStats) -> Option<f64> {
    let served = r.batched_lines + r.cold_batched_lines + r.replayed_lines;
    let total = served + r.fallbacks;
    (total > 0).then(|| served as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{ArchConfig, Cpu, Dep, ExecOp};

    fn spans_of(f: impl FnOnce(&mut Cpu)) -> Vec<SpanRecord> {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        mjobs::span::install();
        f(&mut cpu);
        mjobs::span::take()
    }

    #[test]
    fn forest_reconstructs_nesting_and_telescopes_energy() {
        let recs = spans_of(|cpu| {
            let buf = cpu.alloc(4096).unwrap();
            mjobs::span::enter(cpu, || "root".into());
            cpu.exec_n(ExecOp::Add, 50);
            mjobs::span::enter(cpu, || "left".into());
            for l in 0..8 {
                cpu.load(buf.addr + l * 64, Dep::Stream);
            }
            mjobs::span::exit(cpu);
            mjobs::span::enter(cpu, || "right".into());
            cpu.exec_n(ExecOp::Mul, 30);
            mjobs::span::exit(cpu);
            mjobs::span::exit(cpu);
        });
        let forest = SpanForest::build(&recs).expect("well-formed");
        assert_eq!(forest.roots().len(), 1);
        let root = forest.roots()[0];
        assert_eq!(forest.children(root).len(), 2);
        let sum_self: f64 = (0..forest.len()).map(|i| forest.self_j(i)).sum();
        let total = forest.total_j();
        assert!(total > 0.0);
        assert!(
            (sum_self - total).abs() <= 1e-9 * total.max(1.0),
            "exclusive energies must telescope: {sum_self} vs {total}"
        );
        // Exclusive time also telescopes and stays non-negative.
        for i in 0..forest.len() {
            assert!(forest.exclusive(i).time_s >= 0.0);
        }
    }

    #[test]
    fn malformed_streams_are_rejected() {
        let recs = spans_of(|cpu| {
            mjobs::span::enter(cpu, || "a".into());
            mjobs::span::exit(cpu);
        });
        let mut bad = recs.clone();
        bad[0].parent_seq = Some(99);
        assert!(SpanForest::build(&bad)
            .unwrap_err()
            .contains("unknown parent"));
        let mut bad = recs.clone();
        bad[0].end_seq = bad[0].seq;
        assert!(SpanForest::build(&bad).is_err());
        let mut bad = recs;
        bad[0].depth = 3;
        assert!(SpanForest::build(&bad).unwrap_err().contains("depth"));
    }
}
