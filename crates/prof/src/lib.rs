#![warn(missing_docs)]

//! # mjprof — the energy-attributed query profiler
//!
//! The paper's method is *attribution*: decompose measured Active energy
//! into per-micro-op shares (Eq. 1) and let developers see where the
//! joules go. The simulator already streams exact PMU/RAPL deltas through
//! `mjobs` spans; this crate turns those streams into artifacts someone
//! can actually read:
//!
//! - [`tree`] — reconstruct the per-operator span hierarchy and compute
//!   *exclusive* costs that telescope back to the root's RAPL delta.
//! - [`explain`] — `EXPLAIN ANALYZE` with energy: run a plan in a scoped
//!   collector and render the `explain()` tree annotated with rows,
//!   cycles, joules, micro-op shares and fast-path hit rates
//!   ([`SessionProf::explain_analyze`] on any `engines::Session`).
//! - [`flame`] — energy flamegraphs: folded stacks whose sample weight is
//!   exclusive nanojoules (feed to inferno / speedscope / flamegraph.pl).
//! - [`profile`] — the `profile.json` run-dir artifact: per-shard,
//!   per-operator rollups with the Eq. 1 estimate-vs-Active pair the
//!   difftest bounded-residual band applies to.
//! - [`diff`] — the regression sentinel behind the `profdiff` binary:
//!   compare two run dirs' deterministic series against thresholds.
//!
//! Every artifact is a pure function of simulated meters, so all of them
//! are byte-identical for any `--jobs` — the determinism tests assert it.

pub mod diff;
pub mod explain;
pub mod flame;
pub mod profile;
pub mod tree;

pub use diff::{diff_dirs, Delta, DeltaKind, DiffReport, Thresholds};
pub use explain::{profile_query, OpReport, ProfError, QueryProfile, SessionProf};
pub use flame::{fold_into, parse_folded, write_folded};
pub use profile::{parse_profile, write_profile, ParsedProfile, ShardProfile, PROFILE_FORMAT};
pub use tree::{fastpath_hit_rate, SpanForest};
