//! The `profile.json` run-dir artifact: per-experiment, per-shard,
//! per-operator energy attribution aggregated from span streams.
//!
//! Where the JSONL trace is an event log and the Chrome trace a timeline,
//! the profile is the *queryable* rollup: for every shard it records the
//! total RAPL delta the spans account for, the telescoped sum of exclusive
//! energies (they must agree — `trace_check` verifies), the Eq. 1
//! micro-op estimate vs measured Active energy (they must sit inside the
//! difftest bounded-residual band), and a per-operator table keyed by span
//! name with calls, rows, exclusive time/cycles/joules, per-micro-op
//! energy, and fast-path counter deltas.
//!
//! Everything is derived from simulated meters and written in name order,
//! so the file is byte-identical for any `--jobs`.

use std::collections::BTreeMap;
use std::io::{self, Write};

use analysis::active::active_energy;
use analysis::{EnergyTable, MicroOp, MicroOpCounts};
use mjobs::json::{self, escape, num, Json};
use mjobs::span::SpanRecord;
use simcore::RunStats;

use crate::tree::SpanForest;

/// Format version stamped into `profile.json`.
pub const PROFILE_FORMAT: u32 = 1;

/// One shard's input to the profile writer.
pub struct ShardProfile<'a> {
    /// Experiment name.
    pub exp: &'a str,
    /// Shard index within the experiment.
    pub shard: usize,
    /// The shard's seq-sorted span stream.
    pub spans: &'a [SpanRecord],
    /// The experiment's solved energy table (for Eq. 1 attribution).
    pub table: &'a EnergyTable,
}

#[derive(Default)]
struct OpAgg {
    calls: u64,
    rows: Option<u64>,
    time_s: f64,
    cycles: f64,
    e_j: f64,
    self_j: f64,
    active_j: f64,
    ops_j: Vec<f64>, // MicroOp::MS order, then "other"
    runs: RunStats,
}

fn add_runs(into: &mut RunStats, r: RunStats) {
    into.batched_lines += r.batched_lines;
    into.cold_batched_lines += r.cold_batched_lines;
    into.replayed_lines += r.replayed_lines;
    into.fallbacks += r.fallbacks;
}

fn write_runs<W: Write>(w: &mut W, r: RunStats) -> io::Result<()> {
    write!(
        w,
        "{{\"batched\": {}, \"cold\": {}, \"replayed\": {}, \"fallbacks\": {}}}",
        r.batched_lines, r.cold_batched_lines, r.replayed_lines, r.fallbacks
    )
}

fn write_shard<W: Write>(w: &mut W, s: &ShardProfile<'_>) -> io::Result<()> {
    write!(
        w,
        "      {{\"shard\": {}, \"spans\": {}",
        s.shard,
        s.spans.len()
    )?;
    let forced = s.spans.iter().filter(|r| r.forced).count();
    write!(w, ", \"forced\": {forced}")?;
    let forest = match SpanForest::build(s.spans) {
        Ok(f) => f,
        Err(e) => {
            // Never fail the run for a malformed stream; surface it for
            // trace_check to flag instead.
            return write!(w, ", \"error\": {}}}", escape(&e));
        }
    };

    // Shard rollup: inclusive totals over roots, telescoped exclusive sum,
    // and the Eq. 1 estimate vs measured Active for the whole stream.
    let total_j = forest.total_j();
    let self_sum_j: f64 = (0..forest.len()).map(|i| forest.self_j(i)).sum();
    let mut active_j = 0.0;
    let mut est_j = 0.0;
    let mut runs_total = RunStats::default();
    for &r in forest.roots() {
        let m = &forest.rec(r).delta;
        active_j += active_energy(m, &s.table.background).active_j;
        est_j += s.table.estimate_active_j(&MicroOpCounts::from_pmu(&m.pmu));
        add_runs(&mut runs_total, forest.rec(r).runs);
    }
    write!(
        w,
        ", \"total_j\": {}, \"self_sum_j\": {}, \"active_j\": {}, \"est_j\": {}, \"runs\": ",
        num(total_j),
        num(self_sum_j),
        num(active_j),
        num(est_j)
    )?;
    write_runs(w, runs_total)?;

    // Per-operator rollup keyed by span name (deterministic BTreeMap order).
    let mut ops: BTreeMap<&str, OpAgg> = BTreeMap::new();
    for i in 0..forest.len() {
        let rec = forest.rec(i);
        let excl = forest.exclusive(i);
        let bd = s.table.breakdown(&excl);
        let agg = ops.entry(rec.name.as_str()).or_default();
        if agg.ops_j.is_empty() {
            agg.ops_j = vec![0.0; MicroOp::MS.len() + 1];
        }
        agg.calls += 1;
        if let Some(n) = rec.rows {
            *agg.rows.get_or_insert(0) += n;
        }
        agg.time_s += excl.time_s;
        agg.cycles += excl.cycles;
        agg.e_j += rec.delta.rapl.total_j();
        agg.self_j += forest.self_j(i);
        agg.active_j += bd.active_j();
        for (k, op) in MicroOp::MS.iter().enumerate() {
            agg.ops_j[k] += bd.energy_j(*op);
        }
        *agg.ops_j.last_mut().expect("ops_j sized") += bd.other_j();
        add_runs(&mut agg.runs, forest.exclusive_runs(i));
    }
    writeln!(w, ", \"operators\": [")?;
    let n = ops.len();
    for (k, (name, a)) in ops.into_iter().enumerate() {
        write!(
            w,
            "        {{\"name\": {}, \"calls\": {}, \"rows\": {}, \"time_s\": {}, \
             \"cycles\": {}, \"e_j\": {}, \"self_j\": {}, \"active_j\": {}, \"ops_j\": {{",
            escape(name),
            a.calls,
            a.rows.map_or("null".to_owned(), |r| r.to_string()),
            num(a.time_s),
            num(a.cycles),
            num(a.e_j),
            num(a.self_j),
            num(a.active_j),
        )?;
        for (i, op) in MicroOp::MS.iter().enumerate() {
            write!(w, "{}: {}, ", escape(op.symbol()), num(a.ops_j[i]))?;
        }
        write!(
            w,
            "\"other\": {}}}, \"runs\": ",
            num(a.ops_j[MicroOp::MS.len()])
        )?;
        write_runs(w, a.runs)?;
        writeln!(w, "}}{}", if k + 1 < n { "," } else { "" })?;
    }
    write!(w, "      ]}}")
}

/// Write `profile.json` for `shards` (already in registry/shard order;
/// consecutive entries with the same experiment name are grouped).
pub fn write_profile<W: Write>(w: &mut W, shards: &[ShardProfile<'_>]) -> io::Result<()> {
    writeln!(w, "{{\"format\": {PROFILE_FORMAT},")?;
    writeln!(w, " \"experiments\": [")?;
    let mut i = 0;
    while i < shards.len() {
        let exp = shards[i].exp;
        let end = shards[i..]
            .iter()
            .position(|s| s.exp != exp)
            .map_or(shards.len(), |p| i + p);
        writeln!(w, "  {{\"exp\": {}, \"shards\": [", escape(exp))?;
        for (k, s) in shards[i..end].iter().enumerate() {
            write_shard(w, s)?;
            writeln!(w, "{}", if k + 1 < end - i { "," } else { "" })?;
        }
        write!(w, "  ]}}")?;
        writeln!(w, "{}", if end < shards.len() { "," } else { "" })?;
        i = end;
    }
    writeln!(w, " ]}}")
}

/// Parsed form of a `profile.json` operator row.
#[derive(Debug, Clone)]
pub struct ParsedOp {
    /// Span name.
    pub name: String,
    /// Calls aggregated into this row.
    pub calls: u64,
    /// Summed annotated rows, when any call carried one.
    pub rows: Option<u64>,
    /// Exclusive simulated seconds.
    pub time_s: f64,
    /// Exclusive cycles.
    pub cycles: f64,
    /// Inclusive RAPL joules.
    pub e_j: f64,
    /// Exclusive RAPL joules.
    pub self_j: f64,
    /// Exclusive Active joules.
    pub active_j: f64,
}

/// Parsed form of one shard entry.
#[derive(Debug, Clone)]
pub struct ParsedShard {
    /// Shard index.
    pub shard: usize,
    /// Span count.
    pub spans: u64,
    /// Force-closed span count.
    pub forced: u64,
    /// Inclusive RAPL joules over root spans.
    pub total_j: f64,
    /// Telescoped sum of exclusive joules over all spans.
    pub self_sum_j: f64,
    /// Measured Active joules over root spans.
    pub active_j: f64,
    /// Eq. 1 estimated joules over root spans.
    pub est_j: f64,
    /// Fast-path counters `[batched, cold, replayed, fallbacks]`.
    pub runs: [u64; 4],
    /// Per-operator rollups, in name order.
    pub operators: Vec<ParsedOp>,
    /// Well-formedness error recorded at write time, if any.
    pub error: Option<String>,
}

/// Parsed form of `profile.json`.
#[derive(Debug, Clone)]
pub struct ParsedProfile {
    /// Format version.
    pub format: u64,
    /// `(experiment name, shards)` in file order.
    pub experiments: Vec<(String, Vec<ParsedShard>)>,
}

fn field_f64(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("missing numeric field {key}"))
}

fn parse_runs(j: &Json) -> Result<[u64; 4], String> {
    let r = j.get("runs").ok_or("missing runs")?;
    Ok([
        field_f64(r, "batched")? as u64,
        field_f64(r, "cold")? as u64,
        field_f64(r, "replayed")? as u64,
        field_f64(r, "fallbacks")? as u64,
    ])
}

/// Parse `profile.json` text into its typed form, validating the schema.
pub fn parse_profile(text: &str) -> Result<ParsedProfile, String> {
    let root = json::parse(text)?;
    let format = field_f64(&root, "format")? as u64;
    let exps = root
        .get("experiments")
        .and_then(|e| e.as_arr())
        .ok_or("missing experiments array")?;
    let mut experiments = Vec::new();
    for e in exps {
        let name = e
            .get("exp")
            .and_then(|n| n.as_str())
            .ok_or("experiment without exp name")?
            .to_owned();
        let mut shards = Vec::new();
        for s in e
            .get("shards")
            .and_then(|s| s.as_arr())
            .ok_or("missing shards")?
        {
            let shard = field_f64(s, "shard")? as usize;
            let spans = field_f64(s, "spans")? as u64;
            let forced = field_f64(s, "forced")? as u64;
            if let Some(err) = s.get("error").and_then(|e| e.as_str()) {
                shards.push(ParsedShard {
                    shard,
                    spans,
                    forced,
                    total_j: 0.0,
                    self_sum_j: 0.0,
                    active_j: 0.0,
                    est_j: 0.0,
                    runs: [0; 4],
                    operators: Vec::new(),
                    error: Some(err.to_owned()),
                });
                continue;
            }
            let mut operators = Vec::new();
            for o in s
                .get("operators")
                .and_then(|o| o.as_arr())
                .ok_or("missing operators")?
            {
                operators.push(ParsedOp {
                    name: o
                        .get("name")
                        .and_then(|n| n.as_str())
                        .ok_or("operator without name")?
                        .to_owned(),
                    calls: field_f64(o, "calls")? as u64,
                    rows: o.get("rows").and_then(|r| r.as_f64()).map(|r| r as u64),
                    time_s: field_f64(o, "time_s")?,
                    cycles: field_f64(o, "cycles")?,
                    e_j: field_f64(o, "e_j")?,
                    self_j: field_f64(o, "self_j")?,
                    active_j: field_f64(o, "active_j")?,
                });
            }
            shards.push(ParsedShard {
                shard,
                spans,
                forced,
                total_j: field_f64(s, "total_j")?,
                self_sum_j: field_f64(s, "self_sum_j")?,
                active_j: field_f64(s, "active_j")?,
                est_j: field_f64(s, "est_j")?,
                runs: parse_runs(s)?,
                operators,
                error: None,
            });
        }
        experiments.push((name, shards));
    }
    Ok(ParsedProfile {
        format,
        experiments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::{ArchConfig, Cpu, Dep, ExecOp};

    #[test]
    fn profile_round_trips_and_telescopes() {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let table = analysis::CalibrationBuilder::quick()
            .target_ops(2000)
            .calibrate()
            .expect("calibration");
        let buf = cpu.alloc(1 << 16).unwrap();
        mjobs::span::install();
        mjobs::span::enter(&mut cpu, || "query".into());
        mjobs::span::enter(&mut cpu, || "scan(t)".into());
        for l in 0..512 {
            cpu.load(buf.addr + (l % 1024) * 64, Dep::Stream);
        }
        mjobs::span::annotate_rows(512);
        mjobs::span::exit(&mut cpu);
        cpu.exec_n(ExecOp::Add, 300);
        mjobs::span::exit(&mut cpu);
        let spans = mjobs::span::take();

        let mut out = Vec::new();
        write_profile(
            &mut out,
            &[ShardProfile {
                exp: "demo",
                shard: 0,
                spans: &spans,
                table: &table,
            }],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        let parsed = parse_profile(&text).expect("parses");
        assert_eq!(parsed.format, PROFILE_FORMAT as u64);
        assert_eq!(parsed.experiments.len(), 1);
        let (name, shards) = &parsed.experiments[0];
        assert_eq!(name, "demo");
        let s = &shards[0];
        assert!(s.error.is_none());
        assert_eq!(s.spans, 2);
        assert!(s.total_j > 0.0);
        assert!((s.self_sum_j - s.total_j).abs() <= 1e-9 * s.total_j);
        let scan = s.operators.iter().find(|o| o.name == "scan(t)").unwrap();
        assert_eq!(scan.rows, Some(512));
        assert!(scan.self_j > 0.0 && scan.self_j <= s.total_j);
        let op_sum: f64 = s.operators.iter().map(|o| o.self_j).sum();
        assert!((op_sum - s.total_j).abs() <= 1e-9 * s.total_j);
    }
}
