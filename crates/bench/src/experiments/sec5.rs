//! §5 DVFS trade-off experiments: the frequency-for-energy comparison and
//! the plan-aware custom DVFS policy extension.

use std::any::Any;
use std::fmt::Write as _;

use analysis::active::active_energy;
use analysis::report::TextTable;
use engines::{DvfsAdvisor, EngineKind, Plan};
use microbench::runner::{bench_cpu, RunConfig};
use microbench::MicroBenchId;
use mjrt::experiment::downcast_shard;
use mjrt::{ExpCtx, Experiment, HarnessConfig, Report};
use simcore::{ArchConfig, PState};
use workloads::{BasicOp, TpchScale};

use crate::Rig;

/// One (time, Active energy) outcome of a scenario at one P-state.
struct Outcome {
    time_s: f64,
    active_j: f64,
}

/// §5 — DVFS trade-offs for memory-bound vs CPU-bound query scenarios,
/// P36 → P24. Three shards: the B_mem micro-benchmark, the PG index scan
/// and the PG table scan, each measured at both operating points.
pub struct Sec5DvfsTradeoff;

const SEC5_SCENARIOS: [&str; 3] = [
    "B_mem (memory-bound)",
    "PostgreSQL index scan",
    "PostgreSQL table scan",
];

impl Sec5DvfsTradeoff {
    fn bmem(ctx: &ExpCtx<'_>, ps: PState) -> Outcome {
        let table = ctx.table_x86(ps);
        let cfg = RunConfig {
            pstate: ps,
            target_ops: ctx.cfg.cal_ops,
            ..RunConfig::p36()
        };
        let mut cpu = bench_cpu(ArchConfig::intel_i7_4790(), &cfg);
        let run = MicroBenchId::Mem.run(&mut cpu, &cfg);
        ctx.record(&run.measurement);
        Outcome {
            time_s: run.measurement.time_s,
            active_j: active_energy(&run.measurement, &table.background).active_j,
        }
    }

    fn pg(ctx: &ExpCtx<'_>, op: BasicOp, ps: PState) -> Outcome {
        let table = ctx.table_x86(ps);
        // A larger-than-default scale makes the index scan genuinely
        // memory-bound (its random fetches overflow L3), which is the
        // regime the paper's Sec. 5 experiment probes.
        let scale = TpchScale(ctx.cfg.sec5_scale);
        let mut rig = Rig::builder(EngineKind::Pg)
            .scale(scale)
            .pstate(ps)
            .stats(ctx.stats_sink())
            .build();
        let m = rig.profile(&op.plan());
        Outcome {
            time_s: m.time_s,
            active_j: active_energy(&m, &table.background).active_j,
        }
    }
}

impl Experiment for Sec5DvfsTradeoff {
    fn name(&self) -> &'static str {
        "sec5_dvfs_tradeoff"
    }

    fn shards(&self, _cfg: &HarnessConfig) -> usize {
        SEC5_SCENARIOS.len()
    }

    fn run_shard(&self, shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let run = |ps| match shard {
            0 => Self::bmem(ctx, ps),
            1 => Self::pg(ctx, BasicOp::IndexScan, ps),
            _ => Self::pg(ctx, BasicOp::TableScan, ps),
        };
        let pair: (Outcome, Outcome) = (run(PState::P36), run(PState::P24));
        Box::new(pair)
    }

    fn assemble(&self, shards: Vec<Box<dyn Any + Send>>, _ctx: &ExpCtx<'_>) -> Report {
        let mut r = Report::new();
        writeln!(r, "== Sec. 5: trading frequency for energy (P36 -> P24) ==").unwrap();
        writeln!(r).unwrap();
        for (i, s) in shards.into_iter().enumerate() {
            let (hi, lo) = downcast_shard::<(Outcome, Outcome)>(self.name(), i, s);
            let perf_loss = (lo.time_s / hi.time_s - 1.0) * 100.0;
            let energy_saving = (1.0 - lo.active_j / hi.active_j) * 100.0;
            // Energy-efficiency = Perf/Energy (the paper's [14] metric).
            let eff_hi = 1.0 / (hi.time_s * hi.active_j);
            let eff_lo = 1.0 / (lo.time_s * lo.active_j);
            writeln!(
                r,
                "{}:\n  perf loss {perf_loss:+.1}% | Eactive saving {energy_saving:.1}% | energy-efficiency {:+.1}%\n",
                SEC5_SCENARIOS[i],
                (eff_lo / eff_hi - 1.0) * 100.0
            )
            .unwrap();
        }
        r
    }
}

/// Extension — the §5 customized DVFS policy in action. Three shards, one
/// per policy (pinned P36 / pinned P24 / plan-aware advisor), each running
/// the same mixed batch on its own rig.
pub struct ExtCustomDvfs;

const POLICIES: [&str; 3] = ["pinned P36", "pinned P24", "advisor"];

fn batch() -> Vec<(&'static str, Plan)> {
    vec![
        ("table scan+agg", workloads::BasicOp::GroupBy.plan()),
        ("index scan", workloads::BasicOp::IndexScan.plan()),
        ("select", workloads::BasicOp::Select.plan()),
        (
            "deep NL pipeline",
            Plan::scan("nation")
                .join(Plan::scan("supplier"), 0, 2)
                .join(Plan::scan("partsupp"), 3, 1)
                .join(Plan::scan("part"), 8, 0),
        ),
    ]
}

/// The batch runs at twice the trunk scale so the index-scan plans cross
/// L3 and genuinely benefit from downclocking.
fn dvfs_scale(cfg: &HarnessConfig) -> TpchScale {
    TpchScale(cfg.scale * 2.0)
}

impl Experiment for ExtCustomDvfs {
    fn name(&self) -> &'static str {
        "ext_custom_dvfs"
    }

    fn shards(&self, _cfg: &HarnessConfig) -> usize {
        POLICIES.len()
    }

    fn run_shard(&self, shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let policy = POLICIES[shard];
        let t36 = ctx.table_x86(PState::P36);
        let t24 = ctx.table_x86(PState::P24);
        let advisor = DvfsAdvisor::default();
        let mut rig = Rig::builder(EngineKind::Pg)
            .scale(dvfs_scale(ctx.cfg))
            .pstate(PState::P36)
            .stats(ctx.stats_sink())
            .build();
        let profile = EngineKind::Pg.profile();
        let (mut time, mut energy) = (0.0f64, 0.0f64);
        for (_, plan) in batch() {
            let ps = match policy {
                "pinned P36" => PState::P36,
                "pinned P24" => PState::P24,
                _ => advisor.recommend(&plan, profile),
            };
            rig.cpu.set_pstate(ps);
            let m = rig.profile(&plan);
            let table = if ps == PState::P36 { &t36 } else { &t24 };
            time += m.time_s;
            energy += active_energy(&m, &table.background).active_j;
        }
        let pair: (f64, f64) = (time, energy);
        Box::new(pair)
    }

    fn assemble(&self, shards: Vec<Box<dyn Any + Send>>, _ctx: &ExpCtx<'_>) -> Report {
        let mut t = TextTable::new(["policy", "time (ms)", "Eactive (J)", "Perf/Energy vs P36"]);
        let mut base_eff = None;
        for (i, s) in shards.into_iter().enumerate() {
            let (time, energy) = downcast_shard::<(f64, f64)>(self.name(), i, s);
            let eff = 1.0 / (time * energy);
            let rel = base_eff.map_or(100.0, |b| eff / b * 100.0);
            base_eff.get_or_insert(eff);
            t.row([
                POLICIES[i].to_owned(),
                format!("{:.3}", time * 1e3),
                format!("{energy:.5}"),
                format!("{rel:.1}%"),
            ]);
        }
        let mut r = Report::new();
        writeln!(r, "== Extension: plan-aware DVFS (PG, mixed batch) ==").unwrap();
        write!(r, "{}", t.render()).unwrap();
        writeln!(r, "\nper-plan advisor choices:").unwrap();
        let advisor = DvfsAdvisor::default();
        for (name, plan) in batch() {
            writeln!(
                r,
                "  {:<18} -> {}",
                name,
                advisor.recommend(&plan, EngineKind::Pg.profile())
            )
            .unwrap();
        }
        r
    }
}
