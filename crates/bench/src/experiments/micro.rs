//! Micro-benchmark anatomy experiments: Figs. 3–4 and Table 1.

use std::any::Any;
use std::fmt::Write as _;

use analysis::report::TextTable;
use microbench::runner::{bench_cpu, RunConfig};
use microbench::{ArrayBuf, ListChain, MicroBenchId};
use mjrt::{ExpCtx, Experiment, Report};
use simcore::{ArchConfig, Event};

/// Fig. 3 — CPU execution behaviour of list vs array traversal over an
/// L1D-resident working set: the list's back-and-forth dependency forces
/// the pipeline to stall; the array dual-issues with no bubbles.
pub struct Fig03Traversal;

impl Experiment for Fig03Traversal {
    fn name(&self) -> &'static str {
        "fig03_traversal"
    }

    fn run_shard(&self, _shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let cfg = RunConfig::p36();
        let mut r = Report::new();
        writeln!(
            r,
            "== Fig. 3: list vs array traversal (31 KB working set, P36) ==\n"
        )
        .unwrap();

        let mut cpu = bench_cpu(ArchConfig::intel_i7_4790(), &cfg);
        let chain = ListChain::sequential(&mut cpu, 31 * 1024).expect("chain");
        chain.traverse(&mut cpu, 1).expect("warm");
        let m = cpu.measure(|c| chain.traverse(c, 40).expect("run"));
        ctx.record(&m);
        let loads = m.pmu.get(Event::LoadIssued) as f64;
        writeln!(
            r,
            "list traversal:  {:.2} cycles/load = 1 busy + {:.2} stalled | IPC {:.2}",
            m.cycles / loads,
            m.pmu.get(Event::StallCycles) as f64 / loads,
            m.pmu.ipc()
        )
        .unwrap();
        per_load_diagram(&mut r, m.cycles / loads);

        let mut cpu = bench_cpu(ArchConfig::intel_i7_4790(), &cfg);
        let arr = ArrayBuf::new(&mut cpu, 31 * 1024).expect("array");
        arr.traverse(&mut cpu, 1);
        let m = cpu.measure(|c| arr.traverse(c, 40));
        ctx.record(&m);
        let loads = m.pmu.get(Event::LoadIssued) as f64;
        writeln!(
            r,
            "\narray traversal: {:.2} cycles/load, {} stalls | IPC {:.2}",
            m.cycles / loads,
            m.pmu.get(Event::StallCycles),
            m.pmu.ipc()
        )
        .unwrap();
        per_load_diagram(&mut r, m.cycles / loads);
        Box::new(r)
    }
}

fn per_load_diagram(r: &mut Report, cycles_per_load: f64) {
    let total = cycles_per_load.round().max(1.0) as usize;
    let mut line = String::from("  per load: ");
    line.push('B');
    for _ in 1..total {
        line.push('S');
    }
    if total == 1 {
        line.push_str("  (dual-issued: two loads share a cycle)");
    }
    writeln!(r, "{line}").unwrap();
}

/// Fig. 4 — the micro-benchmark data structures, rendered from live chains:
/// (a) the array layout, (b) the sequential chain, (d) the εspan-permuted
/// chain whose logical order breaks physical locality.
pub struct Fig04Structures;

impl Experiment for Fig04Structures {
    fn name(&self) -> &'static str {
        "fig04_structures"
    }

    fn run_shard(&self, _shard: usize, _ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let mut cpu = simcore::Cpu::new(ArchConfig::intel_i7_4790());
        let mut r = Report::new();

        let arr = ArrayBuf::new(&mut cpu, 16 * 64).expect("array");
        writeln!(
            r,
            "(a) B_L1D_array: {} items x 64 B, visited physically in order:",
            arr.items
        )
        .unwrap();
        writeln!(r, "    [0][1][2]...[{}]\n", arr.items - 1).unwrap();

        let seq = ListChain::sequential(&mut cpu, 16 * 64).expect("chain");
        writeln!(
            r,
            "(b) B_L1D_list: f-pointers in physical order (logical = physical):"
        )
        .unwrap();
        write!(r, "    ").unwrap();
        let mut p = seq.head;
        for _ in 0..seq.items {
            write!(r, "[{}]→", (p - seq.region.addr) / 64).unwrap();
            p = cpu.arena().read_u64(p).expect("f");
        }
        writeln!(r, "(head)\n").unwrap();

        let perm = ListChain::permuted(&mut cpu, 32 * 64, 4, 7).expect("perm");
        writeln!(
            r,
            "(d) B_m (Algorithm 3): logical order is an espan-constrained permutation;"
        )
        .unwrap();
        writeln!(r, "    physical jump per hop (lines):").unwrap();
        write!(r, "    ").unwrap();
        let mut p = perm.head;
        for _ in 0..perm.items {
            let next = cpu.arena().read_u64(p).expect("f");
            write!(r, "{:+} ", (next as i64 - p as i64) / 64).unwrap();
            p = next;
        }
        writeln!(
            r,
            "\n\nThe long jumps are what defeat LRU + the streamer: reuse distance ="
        )
        .unwrap();
        writeln!(
            r,
            "working-set size, so every access misses all levels smaller than it."
        )
        .unwrap();
        Box::new(r)
    }
}

/// Table 1 — runtime behaviours of the micro-benchmarks: BLI, per-level
/// miss rates, IPC.
pub struct Table1Behaviour;

impl Experiment for Table1Behaviour {
    fn name(&self) -> &'static str {
        "table1_microbench_behaviour"
    }

    fn run_shard(&self, _shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let cfg = RunConfig {
            target_ops: ctx.cfg.cal_ops,
            ..RunConfig::p36()
        };
        let mut t = TextTable::new([
            "Micro-benchmark",
            "BLI%",
            "L1D miss%",
            "L2 miss%",
            "L3 miss%",
            "IPC",
        ]);
        let pct = |o: Option<f64>| o.map_or("-".to_owned(), |v| format!("{:.2}", v * 100.0));
        for id in MicroBenchId::X86_SET {
            let mut cpu = bench_cpu(ArchConfig::intel_i7_4790(), &cfg);
            let run = id.run(&mut cpu, &cfg);
            ctx.record(&run.measurement);
            let p = &run.measurement.pmu;
            t.row([
                run.name.to_owned(),
                format!("{:.1}", run.bli * 100.0),
                pct(p.l1d_miss_rate()),
                pct(p.l2_miss_rate()),
                pct(p.l3_miss_rate()),
                format!("{:.3}", run.ipc()),
            ]);
        }
        let mut r = Report::new();
        writeln!(
            r,
            "== Table 1: runtime behaviours of micro-benchmarks (P36, prefetch off) =="
        )
        .unwrap();
        write!(r, "{}", t.render()).unwrap();
        Box::new(r)
    }
}
