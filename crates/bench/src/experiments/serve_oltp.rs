//! Experiment #22 — concurrent OLTP serving: tail latency vs energy per
//! request under admission control.
//!
//! The paper profiles one query at a time; this extension asks what its
//! energy question looks like when a database *serves*: N open-loop client
//! sessions (YCSB mixes, short TPC-H picks, point DML — `--mix`) arrive at
//! `--arrival-rate` requests per virtual second each and pass through a
//! token limiter (`--admit-limit`) with a bounded wait queue. Each
//! (engine personality, arrival-rate multiple) cell is one shard; inside a
//! shard the admission limit sweeps, producing a latency-vs-energy curve
//! per personality.
//!
//! Everything runs on the virtual clock (see `mjserve`), so the report —
//! including p50/p95/p99 tail latencies and rejection counts — is
//! byte-identical across `--jobs`. Each cell also reports interpolated
//! p999, the admit rate, and SLO attainment against the serve tail
//! budget (worst rolling window included in the families CSV). With
//! `--csv` the run directory gets the per-cell curve (`serve_oltp.csv`),
//! the per-family quantile rollup (`serve_oltp_families.csv`), and the
//! full per-request log (`serve_oltp_requests.csv`); with `--trace`,
//! per-request spans land in the trace like any other experiment's.

use std::any::Any;
use std::fmt::Write as _;

use analysis::report::TextTable;
use engines::EngineKind;
use mjrt::experiment::downcast_shard;
use mjrt::{ExpCtx, Experiment, HarnessConfig, Report};
use mjserve::{serve, MixKind, ServeConfig, ServeSummary};
use simcore::{ArchConfig, Cpu};

/// Arrival-rate multiples swept per engine (under-, at-, and over-load
/// around the configured `--arrival-rate`).
pub const RATE_MULTS: [f64; 3] = [0.5, 1.0, 2.0];

/// The serving experiment.
pub struct ServeOltp;

fn admit_sweep(base: u32) -> Vec<u32> {
    let mut v = vec![
        (base / 2).max(1),
        base.max(1),
        base.saturating_mul(4).max(2),
    ];
    v.dedup();
    v
}

fn serve_cfg(cfg: &HarnessConfig, kind: EngineKind, rate_mult: f64, admit: u32) -> ServeConfig {
    ServeConfig {
        kind,
        mix: MixKind::parse(&cfg.mix).unwrap_or(MixKind::Oltp),
        sessions: cfg.sessions,
        arrival_rate_hz: cfg.arrival_rate * rate_mult,
        admit_limit: admit,
        ..ServeConfig::default()
    }
}

struct ShardOut {
    /// Summary-table rows, one per admission-limit cell.
    rows: Vec<Vec<String>>,
    /// Per-family quantile rows, several per cell.
    families: Vec<Vec<String>>,
    /// Per-request CSV rows across every cell in this shard.
    requests: Vec<Vec<String>>,
}

fn cell_row(kind: EngineKind, rate_hz: f64, admit: u32, s: &ServeSummary) -> Vec<String> {
    vec![
        kind.name().to_owned(),
        format!("{rate_hz:.0}"),
        admit.to_string(),
        s.admitted.to_string(),
        s.queued.to_string(),
        s.rejected.to_string(),
        format!("{:.1}", s.latency_percentile_s(50.0) * 1e6),
        format!("{:.1}", s.latency_percentile_s(95.0) * 1e6),
        format!("{:.1}", s.latency_percentile_s(99.0) * 1e6),
        format!("{:.1}", s.latency_percentile_s(99.9) * 1e6),
        format!("{:.2}", s.energy_per_request_j() * 1e6),
        format!("{:.0}", s.throughput_rps()),
        format!("{:.1}", s.admit_rate() * 100.0),
        format!("{:.1}", s.slo.attainment() * 100.0),
    ]
}

/// One row per request family in a cell: interpolated latency quantiles
/// from the log2 histograms plus mean energy, and the cell's worst
/// rolling-window SLO state for context.
fn family_rows(kind: EngineKind, rate_hz: f64, admit: u32, s: &ServeSummary) -> Vec<Vec<String>> {
    s.family_slos()
        .iter()
        .map(|f| {
            vec![
                kind.name().to_owned(),
                format!("{rate_hz:.0}"),
                admit.to_string(),
                f.family.to_owned(),
                f.requests.to_string(),
                format!("{:.1}", f.latency_us.p50()),
                format!("{:.1}", f.latency_us.p95()),
                format!("{:.1}", f.latency_us.p99()),
                format!("{:.1}", f.latency_us.p999()),
                format!("{:.2}", f.energy_nj.mean() * 1e-3),
                format!("{:.2}", f.energy_nj.p99() * 1e-3),
                format!("{:.1}", s.slo.worst_window_admit_rate * 100.0),
                format!("{:.1}", s.slo.worst_window_violation_rate * 100.0),
            ]
        })
        .collect()
}

impl Experiment for ServeOltp {
    fn name(&self) -> &'static str {
        "serve_oltp"
    }

    fn shards(&self, _cfg: &HarnessConfig) -> usize {
        EngineKind::ROW.len() * RATE_MULTS.len()
    }

    fn run_shard(&self, shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let kind = EngineKind::ROW[shard / RATE_MULTS.len()];
        let mult = RATE_MULTS[shard % RATE_MULTS.len()];
        let mut out = ShardOut {
            rows: Vec::new(),
            families: Vec::new(),
            requests: Vec::new(),
        };
        for admit in admit_sweep(ctx.cfg.admit_limit) {
            // Fresh machine per cell: cells are independent measurements.
            let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
            let scfg = serve_cfg(ctx.cfg, kind, mult, admit);
            let s = serve(&mut cpu, &scfg).expect("serve scenario");
            out.rows
                .push(cell_row(kind, scfg.arrival_rate_hz, admit, &s));
            out.families
                .extend(family_rows(kind, scfg.arrival_rate_hz, admit, &s));
            for r in &s.records {
                out.requests.push(vec![
                    kind.name().to_owned(),
                    format!("{:.0}", scfg.arrival_rate_hz),
                    admit.to_string(),
                    r.session.to_string(),
                    r.index.to_string(),
                    r.kind.to_owned(),
                    format!("{:.3}", r.arrival_s * 1e6),
                    format!("{:.3}", r.start_s * 1e6),
                    format!("{:.3}", r.finish_s * 1e6),
                    format!("{:.3}", r.latency_s() * 1e6),
                    format!("{:.3}", r.energy_j * 1e6),
                ]);
            }
        }
        Box::new(out)
    }

    fn assemble(&self, shards: Vec<Box<dyn Any + Send>>, ctx: &ExpCtx<'_>) -> Report {
        let mut t = TextTable::new([
            "engine", "rate/s", "admit", "admitted", "queued", "rejected", "p50 us", "p95 us",
            "p99 us", "p999 us", "uJ/req", "req/s", "admit %", "slo %",
        ]);
        let mut fams = TextTable::new([
            "engine",
            "rate/s",
            "admit",
            "family",
            "requests",
            "p50 us",
            "p95 us",
            "p99 us",
            "p999 us",
            "uJ/req",
            "p99 uJ",
            "worst admit %",
            "worst late %",
        ]);
        let mut reqs = TextTable::new([
            "engine",
            "rate/s",
            "admit",
            "session",
            "idx",
            "kind",
            "arrival us",
            "start us",
            "finish us",
            "latency us",
            "energy uJ",
        ]);
        for (i, s) in shards.into_iter().enumerate() {
            let out = downcast_shard::<ShardOut>(self.name(), i, s);
            for row in out.rows {
                t.row(row);
            }
            for row in out.families {
                fams.row(row);
            }
            for row in out.requests {
                reqs.row(row);
            }
        }
        let mut r = Report::new();
        writeln!(
            r,
            "== Serving: {} sessions, mix {}, open-loop tail latency vs energy/request ==",
            ctx.cfg.sessions, ctx.cfg.mix
        )
        .unwrap();
        write!(r, "{}", t.render()).unwrap();
        ctx.maybe_write_csv("serve_oltp", &t);
        ctx.maybe_write_csv("serve_oltp_families", &fams);
        ctx.maybe_write_csv("serve_oltp_requests", &reqs);
        r
    }
}
