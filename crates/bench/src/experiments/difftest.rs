//! The differential correctness harness (`mjdiff`) as a registered
//! experiment: one shard per engine variant, `--jobs`-independent by
//! construction.
//!
//! Each shard builds its own simulated machine + engine, compiles the
//! shared corpus itself (the corpus is a pure function of the fuzz
//! configuration and the catalogs are identical across variants, so every
//! shard sees byte-identical plans), runs every case under the
//! energy-accounting invariants, and returns the canonical result digests.
//! `assemble` compares digests across shards; a disagreeing fuzz case is
//! shrunk to a minimal reproducer (engines are rebuilt only on that cold
//! path). Any failure line starts with [`FAIL_MARK`], which the `difftest`
//! binary greps to set its exit status.
//!
//! The fuzz stream is configured by environment (`MJ_DIFF_FUZZ`,
//! `MJ_DIFF_SEED`) rather than CLI flags so the experiment stays runnable
//! through the stock `mjrt` harness flags (e.g. under `repro_all --filter`).

use std::any::Any;
use std::fmt::Write as _;

use mjdiff::corpus::{self, Case};
use mjdiff::harness::CaseOutcome;
use mjdiff::{compare, compile_case, reduce, Engine, Variant};
use mjrt::experiment::downcast_shard;
use mjrt::{ExpCtx, Experiment, HarnessConfig, Report};
use simcore::{ArchKind, PState};

/// Prefix of every failure line in the report (the binary's exit signal).
pub const FAIL_MARK: &str = "DIFF-FAIL";

/// Default fuzz-query count when `MJ_DIFF_FUZZ` is unset.
pub const DEFAULT_FUZZ: usize = 50;

/// Default fuzz seed when `MJ_DIFF_SEED` is unset.
pub const DEFAULT_SEED: u64 = 0x00d1ff;

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn fuzz_cfg() -> (usize, u64) {
    (
        env_or("MJ_DIFF_FUZZ", DEFAULT_FUZZ),
        env_or("MJ_DIFF_SEED", DEFAULT_SEED),
    )
}

/// The operating point each variant's machine runs at (its architecture's
/// maximum — what `Cpu::new` pins), and hence the table to check against.
fn pstate_of(v: Variant) -> PState {
    match v.arch() {
        ArchKind::X86 => PState::P36,
        ArchKind::Arm => PState(7),
    }
}

struct ShardOut {
    rejected: usize,
    /// `(corpus index, case name, canonical digest)` per compiled case.
    outcomes: Vec<(usize, String, Result<Vec<String>, String>)>,
    /// Invariant violations, as `case: message`.
    violations: Vec<String>,
}

/// Differential correctness across the four engine personalities (pg /
/// lite / my / vec) plus the ARM DTCM co-design (extension; underpins
/// every cross-engine figure).
pub struct Difftest;

impl Experiment for Difftest {
    fn name(&self) -> &'static str {
        "difftest"
    }

    fn shards(&self, _cfg: &HarnessConfig) -> usize {
        Variant::ALL.len()
    }

    fn run_shard(&self, shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let variant = Variant::ALL[shard];
        let (fuzz, seed) = fuzz_cfg();
        let table = ctx.table(variant.arch(), pstate_of(variant));
        let mut engine = Engine::build(variant);
        let mut out = ShardOut {
            rejected: 0,
            outcomes: Vec::new(),
            violations: Vec::new(),
        };
        for (i, case) in corpus::full_corpus(fuzz, seed).iter().enumerate() {
            let Ok(plan) = compile_case(case, engine.catalog()) else {
                out.rejected += 1;
                continue;
            };
            let o = engine.run_case(&plan, Some(&table));
            for v in o.violations {
                out.violations.push(format!("{}: {v}", case.name()));
            }
            out.outcomes.push((i, case.name(), o.digest));
        }
        Box::new(out)
    }

    fn assemble(&self, shards: Vec<Box<dyn Any + Send>>, _ctx: &ExpCtx<'_>) -> Report {
        let outs: Vec<ShardOut> = shards
            .into_iter()
            .enumerate()
            .map(|(i, s)| downcast_shard::<ShardOut>(self.name(), i, s))
            .collect();
        let (fuzz, seed) = fuzz_cfg();
        let cases = corpus::full_corpus(fuzz, seed);

        let mut r = Report::new();
        writeln!(
            r,
            "== Differential correctness: {} variants x ({} fixed + {} fuzz cases, seed {seed:#x}) ==",
            Variant::ALL.len(),
            corpus::fixed_corpus().len(),
            fuzz,
        )
        .unwrap();
        writeln!(
            r,
            "{} cases executed per variant, {} fuzz queries rejected by the frontend",
            outs[0].outcomes.len(),
            outs[0].rejected,
        )
        .unwrap();

        let mut failures = 0usize;
        for (v, o) in Variant::ALL.iter().zip(&outs) {
            writeln!(
                r,
                "{}: {} invariant violations",
                v.name(),
                o.violations.len()
            )
            .unwrap();
            for viol in &o.violations {
                writeln!(r, "  {FAIL_MARK} [{}] {viol}", v.name()).unwrap();
                failures += 1;
            }
        }

        let mut disagreements = 0usize;
        let mut rebuilt: Option<Vec<Engine>> = None;
        for (slot, (idx, name, digest)) in outs[0].outcomes.iter().enumerate() {
            for (v, o) in Variant::ALL.iter().zip(&outs).skip(1) {
                let (oidx, _, other) = &o.outcomes[slot];
                assert_eq!(idx, oidx, "shards saw different corpora");
                let a = CaseOutcome {
                    digest: digest.clone(),
                    violations: Vec::new(),
                };
                let b = CaseOutcome {
                    digest: other.clone(),
                    violations: Vec::new(),
                };
                let Some(detail) = compare(&a, &b) else {
                    continue;
                };
                disagreements += 1;
                writeln!(
                    r,
                    "{FAIL_MARK} {name}: {} vs {}: {detail}",
                    Variant::ALL[0].name(),
                    v.name()
                )
                .unwrap();
                if let Case::Fuzz(_, q) = &cases[*idx] {
                    let engines = rebuilt.get_or_insert_with(|| {
                        Variant::ALL.iter().map(|&v| Engine::build(v)).collect()
                    });
                    let minimal =
                        reduce::minimize(q.clone(), |cand| still_disagrees(cand, engines));
                    writeln!(r, "  minimized: {}", minimal.to_sql()).unwrap();
                }
                break; // one record per case
            }
        }
        failures += disagreements;

        if failures == 0 {
            writeln!(
                r,
                "agreement: all variants agree on every case; all invariants hold"
            )
            .unwrap();
        } else {
            writeln!(r, "{FAIL_MARK} total: {failures} failure(s)").unwrap();
        }
        r
    }
}

/// Reducer oracle: does `cand` still split the variants?
fn still_disagrees(cand: &mjdiff::GenQuery, engines: &mut [Engine]) -> bool {
    let case = Case::Fuzz(0, cand.clone());
    let Ok(plan) = compile_case(&case, engines[0].catalog()) else {
        return false;
    };
    let outcomes: Vec<CaseOutcome> = engines
        .iter_mut()
        .map(|e| e.run_case(&plan, None))
        .collect();
    (1..outcomes.len()).any(|i| compare(&outcomes[0], &outcomes[i]).is_some())
}
