//! Extension — energy breakdown of write workloads (INSERT/UPDATE/DELETE).
//!
//! The paper scopes writes out (§2.3): "it may involve more micro-operations
//! about writing". This experiment shows that empirically: the read-side
//! model `MS` explains much less of a write workload's Busy-CPU energy, and
//! the store/write-back signature dwarfs the read path's.

use std::any::Any;
use std::fmt::Write as _;

use analysis::report::TextTable;
use engines::{Dml, EngineKind};
use mjrt::{ExpCtx, Experiment, HarnessConfig, Report};
use simcore::{Event, PState};
use storage::{CmpOp, Expr, Value};
use workloads::tpch::gen::schema_orders;
use workloads::TpchScale;

use crate::{share_header, share_row, Rig};

fn statements() -> Vec<(&'static str, Dml)> {
    let o = |c: &str| schema_orders().col_expect(c);
    vec![
        (
            "INSERT 2k orders",
            Dml::Insert {
                table: "orders".into(),
                rows: (0..2000)
                    .map(|i| {
                        vec![
                            Value::Int(10_000_000 + i),
                            Value::Int(i % 100),
                            Value::Str("O".into()),
                            Value::Float(1000.0 + i as f64),
                            Value::Date(9000),
                            Value::Str("3-MEDIUM".into()),
                            Value::Int(0),
                        ]
                    })
                    .collect(),
            },
        ),
        (
            "UPDATE totalprice",
            Dml::Update {
                table: "orders".into(),
                filter: Some(Expr::cmp(
                    CmpOp::Lt,
                    Expr::col(o("o_custkey")),
                    Expr::int(40),
                )),
                set: vec![(
                    o("o_totalprice"),
                    Expr::Bin(
                        storage::BinOp::Mul,
                        Box::new(Expr::col(o("o_totalprice"))),
                        Box::new(Expr::float(1.05)),
                    ),
                )],
            },
        ),
        (
            "DELETE cold orders",
            Dml::Delete {
                table: "orders".into(),
                filter: Some(Expr::cmp(
                    CmpOp::Lt,
                    Expr::col(o("o_orderdate")),
                    Expr::Lit(Value::Date(8200)),
                )),
            },
        ),
    ]
}

/// One shard per engine; each emits its own report section.
pub struct ExtWrites;

impl Experiment for ExtWrites {
    fn name(&self) -> &'static str {
        "ext_writes"
    }

    fn shards(&self, _cfg: &HarnessConfig) -> usize {
        EngineKind::ROW.len()
    }

    fn run_shard(&self, shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let kind = EngineKind::ROW[shard];
        let table = ctx.table_x86(PState::P36);
        let mut rig = Rig::builder(kind)
            .scale(TpchScale(ctx.cfg.scale))
            .pstate(PState::P36)
            .build();
        let mut t = TextTable::new(share_header());
        let mut r = Report::new();
        writeln!(r, "== write workloads: {} ==", kind.name()).unwrap();
        for (name, dml) in &statements() {
            let db = &mut rig.db;
            let m = rig.cpu.measure(|c| {
                db.session().execute(c, dml).expect("dml");
            });
            ctx.record(&m);
            let bd = table.breakdown(&m);
            t.row(share_row(name, &bd));
            writeln!(
                r,
                "  {name}: store/load ratio {:.2}, write-backs {} | busy explained {:.1}% (reads: ~70-89%)",
                m.pmu.get(Event::StoreIssued) as f64 / m.pmu.get(Event::LoadIssued).max(1) as f64,
                m.pmu.get(Event::WritebackL1)
                    + m.pmu.get(Event::WritebackL2)
                    + m.pmu.get(Event::WritebackL3),
                bd.busy_explained_share() * 100.0,
            )
            .unwrap();
        }
        write!(r, "{}", t.render()).unwrap();
        writeln!(r).unwrap();
        Box::new(r)
    }
}
