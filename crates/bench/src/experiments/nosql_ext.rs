//! Extension (the paper's §7 future work) — profile the energy cost of a
//! NoSQL system: the §2 methodology applied to an LSM key-value store under
//! YCSB-like mixes.
//!
//! The question the paper poses: does the L1D energy bottleneck generalise
//! beyond relational query workloads? The answer here: partially. Scan-
//! and compaction-heavy mixes look like relational scans (L1D-leaning);
//! point-read mixes spend their energy on bloom probes, index descents and
//! skip-list chases (stall-leaning) — between the paper's query workloads
//! and its CPU-bound workloads.

use std::any::Any;
use std::fmt::Write as _;

use analysis::report::TextTable;
use mjrt::experiment::downcast_shard;
use mjrt::{ExpCtx, Experiment, HarnessConfig, Report};
use nosql::{LsmConfig, LsmStore, Workload, YcsbMix};
use simcore::{ArchConfig, Cpu, PState};

use crate::{share_header, share_row};

/// One shard per YCSB mix; each yields the mix's table row + summary
/// shares.
pub struct FutureNosql;

/// A mix's table row plus the L1D/stall shares the footer reports.
struct MixRow {
    row: Vec<String>,
    name: &'static str,
    l1d: f64,
    stall: f64,
}

impl Experiment for FutureNosql {
    fn name(&self) -> &'static str {
        "future_nosql"
    }

    fn shards(&self, _cfg: &HarnessConfig) -> usize {
        YcsbMix::ALL.len()
    }

    fn run_shard(&self, shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let mix = YcsbMix::ALL[shard];
        let table = ctx.table_x86(PState::P36);
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        cpu.set_prefetch(true);
        let mut store = LsmStore::open(&mut cpu, LsmConfig::default()).expect("open");
        let mut w = Workload::load(&mut cpu, &mut store, mix, 20_000, 100).expect("load");
        // Warm the read path.
        w.run(&mut cpu, &mut store, 1_000).expect("warm");
        let m = cpu.measure(|c| {
            w.run(c, &mut store, 5_000).expect("run");
        });
        ctx.record(&m);
        let bd = table.breakdown(&m);
        Box::new(MixRow {
            row: share_row(mix.name(), &bd),
            name: mix.name(),
            l1d: bd.l1d_share(),
            stall: bd.share(analysis::MicroOp::Stall),
        })
    }

    fn assemble(&self, shards: Vec<Box<dyn Any + Send>>, _ctx: &ExpCtx<'_>) -> Report {
        let rows: Vec<MixRow> = shards
            .into_iter()
            .enumerate()
            .map(|(i, s)| downcast_shard::<MixRow>(self.name(), i, s))
            .collect();
        let mut t = TextTable::new(share_header());
        for mr in &rows {
            t.row(mr.row.clone());
        }
        let mut r = Report::new();
        writeln!(
            r,
            "== Future work (sec. 7): Eactive breakdown of an LSM KV store under YCSB =="
        )
        .unwrap();
        write!(r, "{}", t.render()).unwrap();
        writeln!(r).unwrap();
        for mr in &rows {
            writeln!(
                r,
                "{}: EL1D+EReg2L1D {:.1}% | Estall {:.1}%",
                mr.name,
                mr.l1d * 100.0,
                mr.stall * 100.0
            )
            .unwrap();
        }
        writeln!(
            r,
            "\nRelational query workloads sit at 39-67% L1D share (Figs. 6-7); CPU-bound at ~9% (Fig. 10)."
        )
        .unwrap();
        r
    }
}
