//! TPC-H breakdown experiments: Figs. 5–9 and 11.
//!
//! These are the heaviest experiments in the suite — every (engine,
//! operating point) cell loads its own database and runs all 22 queries —
//! so each cell is an independent shard: `--jobs N` spreads the cells over
//! workers while the assembled tables stay byte-identical to a serial run.

use std::any::Any;
use std::fmt::Write as _;

use analysis::report::TextTable;
use analysis::Breakdown;
use engines::{EngineKind, KnobLevel};
use mjrt::experiment::downcast_shard;
use mjrt::{ExpCtx, Experiment, HarnessConfig, Report};
use simcore::{ArchConfig, Cpu, PState};
use workloads::{build_tpch_db, BasicOp, TpchQuery, TpchScale};

use crate::{share_header, share_row, Rig};

/// Fig. 5 / §2.7 — P-state residency of the TPC-H queries with the
/// EIST-like governor enabled. One shard per engine; each shard yields one
/// histogram row.
///
/// The figure experiments in this module sweep [`EngineKind::ROW`] — the
/// paper's profiled trio — because each reproduces a three-engine figure.
/// The vectorized personality is compared against the trio by the
/// `ext_rowcol` experiment instead.
pub struct Fig05PstateDistribution;

impl Experiment for Fig05PstateDistribution {
    fn name(&self) -> &'static str {
        "fig05_pstate_distribution"
    }

    fn shards(&self, _cfg: &HarnessConfig) -> usize {
        EngineKind::ROW.len()
    }

    fn run_shard(&self, shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let kind = EngineKind::ROW[shard];
        let scale = TpchScale(ctx.cfg.scale);
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        cpu.set_prefetch(true);
        let mut db = build_tpch_db(&mut cpu, kind, KnobLevel::Baseline, scale).expect("load");
        // Governor with a window short enough to react inside a query
        // (queries here are ~ms; the paper's real runs are seconds).
        cpu.set_governor(true);
        cpu.set_governor_interval(15e-6);

        let mut buckets = [0u32; 5];
        let mut residencies = Vec::new();
        for q in TpchQuery::all() {
            let plan = q.plan();
            // Cold run unsampled (pool warm-up), then sample steady-state
            // execution, as the paper samples long repeated runs. Idle gaps
            // and spill waits inside execution still drag samples below P36.
            db.session().run(&mut cpu, &plan).expect("cold");
            // One unsampled warm repetition lets the governor settle — the
            // paper samples within 100 back-to-back runs.
            db.session().run(&mut cpu, &plan).expect("ramp");
            cpu.attach_sampler(10e-6);
            db.session().run(&mut cpu, &plan).expect("warm 1");
            cpu.idle_c0(30e-6); // client think-time between repetitions
            db.session().run(&mut cpu, &plan).expect("warm 2");
            let sampler = cpu.take_sampler().expect("sampler attached");
            let p36 = sampler.residency(PState::P36) * 100.0;
            residencies.push(p36);
            let b = match p36 {
                x if x <= 60.0 => 0,
                x if x <= 70.0 => 1,
                x if x <= 80.0 => 2,
                x if x <= 90.0 => 3,
                _ => 4,
            };
            buckets[b] += 1;
            // Idle gap between queries, as on a real client.
            cpu.idle_c0(2e-3);
        }
        residencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = residencies[residencies.len() / 2];
        let row: Vec<String> = vec![
            kind.name().to_owned(),
            buckets[0].to_string(),
            buckets[1].to_string(),
            buckets[2].to_string(),
            buckets[3].to_string(),
            buckets[4].to_string(),
            format!("{median:.0}%"),
        ];
        Box::new(row)
    }

    fn assemble(&self, shards: Vec<Box<dyn Any + Send>>, _ctx: &ExpCtx<'_>) -> Report {
        let mut t = TextTable::new(["engine", "<=60", "70", "80", "90", "100", "median P36%"]);
        for (i, s) in shards.into_iter().enumerate() {
            t.row(downcast_shard::<Vec<String>>(self.name(), i, s));
        }
        let mut r = Report::new();
        writeln!(
            r,
            "== Fig. 5: query count by percent of samples at P-state 36 (EIST on) =="
        )
        .unwrap();
        write!(r, "{}", t.render()).unwrap();
        r
    }
}

/// Fig. 6 — Active-energy breakdown of the 7 basic query operations on the
/// three engine personalities. One shard per engine, each emitting its own
/// report section.
pub struct Fig06BasicOps;

impl Experiment for Fig06BasicOps {
    fn name(&self) -> &'static str {
        "fig06_basic_ops"
    }

    fn shards(&self, _cfg: &HarnessConfig) -> usize {
        EngineKind::ROW.len()
    }

    fn run_shard(&self, shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let kind = EngineKind::ROW[shard];
        let table = ctx.table_x86(PState::P36);
        let mut rig = Rig::builder(kind)
            .scale(TpchScale(ctx.cfg.scale))
            .pstate(PState::P36)
            .stats(ctx.stats_sink())
            .build();
        let mut t = TextTable::new(share_header());
        let mut merged = Vec::new();
        for op in BasicOp::ALL {
            let bd = rig.breakdown(&table, &op.plan());
            t.row(share_row(op.name(), &bd));
            merged.push(bd);
        }
        let all = Breakdown::merge(&merged).expect("non-empty");
        let mut r = Report::new();
        writeln!(
            r,
            "== Eactive breakdown of basic query operations: {} ==",
            kind.name()
        )
        .unwrap();
        write!(r, "{}", t.render()).unwrap();
        ctx.maybe_write_csv(&format!("fig06_{}", kind.name()), &t);
        writeln!(
            r,
            "summary: movement {:.1}% of Eactive | EL1D+EReg2L1D {:.1}% | stall {:.1}% | busy explained {:.1}%\n",
            all.movement_share() * 100.0,
            all.l1d_share() * 100.0,
            all.share(analysis::MicroOp::Stall) * 100.0,
            all.busy_explained_share() * 100.0,
        )
        .unwrap();
        Box::new(r)
    }
}

/// Fig. 7 — Active-energy breakdown of TPC-H Q1–Q22 on the three engines.
/// One shard per engine, each emitting its own report section.
pub struct Fig07Tpch;

impl Experiment for Fig07Tpch {
    fn name(&self) -> &'static str {
        "fig07_tpch"
    }

    fn shards(&self, _cfg: &HarnessConfig) -> usize {
        EngineKind::ROW.len()
    }

    fn run_shard(&self, shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let kind = EngineKind::ROW[shard];
        let table = ctx.table_x86(PState::P36);
        let mut rig = Rig::builder(kind)
            .scale(TpchScale(ctx.cfg.scale))
            .pstate(PState::P36)
            .stats(ctx.stats_sink())
            .build();
        let mut t = TextTable::new(share_header());
        let mut all = Vec::new();
        for q in TpchQuery::all() {
            let bd = rig.breakdown(&table, &q.plan());
            t.row(share_row(&q.name(), &bd));
            all.push(bd);
        }
        let merged = Breakdown::merge(&all).expect("queries ran");
        let mut r = Report::new();
        writeln!(r, "== Eactive breakdown of TPC-H: {} ==", kind.name()).unwrap();
        write!(r, "{}", t.render()).unwrap();
        ctx.maybe_write_csv(&format!("fig07_{}", kind.name()), &t);
        writeln!(
            r,
            "summary: movement {:.1}% | EL1D+EReg2L1D {:.1}% | busy explained {:.1}% | total Eactive {:.4} J | time {:.4} s\n",
            merged.movement_share() * 100.0,
            merged.l1d_share() * 100.0,
            merged.busy_explained_share() * 100.0,
            merged.active_j(),
            merged.time_s,
        )
        .unwrap();
        Box::new(r)
    }
}

const FIG08_SIZES: [(&str, f64); 3] = [("100MB", 1.0), ("500MB", 5.0), ("1GB", 10.0)];

/// One merged-table row plus the stability metadata the footer needs.
struct ShareRow {
    row: Vec<String>,
    name: String,
    metric: f64,
}

/// Fig. 8 — impact of data size on the TPC-H average breakdown. Nine shards
/// (engine × size); the assembled table interleaves the rows in shard
/// order.
pub struct Fig08DataSize;

impl Experiment for Fig08DataSize {
    fn name(&self) -> &'static str {
        "fig08_data_size"
    }

    fn shards(&self, _cfg: &HarnessConfig) -> usize {
        EngineKind::ROW.len() * FIG08_SIZES.len()
    }

    fn run_shard(&self, shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let kind = EngineKind::ROW[shard / FIG08_SIZES.len()];
        let (label, factor) = FIG08_SIZES[shard % FIG08_SIZES.len()];
        let table = ctx.table_x86(PState::P36);
        let scale = TpchScale(ctx.cfg.scale * factor / 2.0);
        let mut rig = Rig::builder(kind)
            .scale(scale)
            .pstate(PState::P36)
            .stats(ctx.stats_sink())
            .build();
        let all: Vec<Breakdown> = TpchQuery::all()
            .map(|q| rig.breakdown(&table, &q.plan()))
            .collect();
        let merged = Breakdown::merge(&all).expect("queries ran");
        let name = format!("{}-{label}", short(kind));
        Box::new(ShareRow {
            row: share_row(&name, &merged),
            name,
            metric: merged.l1d_share(),
        })
    }

    fn assemble(&self, shards: Vec<Box<dyn Any + Send>>, ctx: &ExpCtx<'_>) -> Report {
        let rows: Vec<ShareRow> = shards
            .into_iter()
            .enumerate()
            .map(|(i, s)| downcast_shard::<ShareRow>(self.name(), i, s))
            .collect();
        let mut t = TextTable::new(share_header());
        for sr in &rows {
            t.row(sr.row.clone());
        }
        let mut r = Report::new();
        writeln!(r, "== Fig. 8: impact of data size (TPC-H average) ==").unwrap();
        write!(r, "{}", t.render()).unwrap();
        ctx.maybe_write_csv("fig08", &t);
        // Stability check: within each engine, the L1D share must not move much.
        writeln!(r).unwrap();
        for chunk in rows.chunks(FIG08_SIZES.len()) {
            let vals: Vec<f64> = chunk.iter().map(|sr| sr.metric).collect();
            let spread = vals.iter().cloned().fold(f64::MIN, f64::max)
                - vals.iter().cloned().fold(f64::MAX, f64::min);
            writeln!(
                r,
                "{}: EL1D+EReg2L1D spread across sizes = {:.1} pp",
                chunk[0].name.split('-').next().expect("name"),
                spread * 100.0
            )
            .unwrap();
        }
        r
    }
}

pub(crate) fn short(kind: EngineKind) -> &'static str {
    match kind {
        EngineKind::Pg => "PG",
        EngineKind::Lite => "SQLite",
        EngineKind::My => "MySQL",
        EngineKind::Vec => "Vec",
    }
}

/// Fig. 9 — impact of the Table 4 knob settings (small/baseline/large) on
/// the TPC-H average breakdown. Nine shards (engine × level).
pub struct Fig09Knobs;

impl Experiment for Fig09Knobs {
    fn name(&self) -> &'static str {
        "fig09_knobs"
    }

    fn shards(&self, _cfg: &HarnessConfig) -> usize {
        EngineKind::ROW.len() * KnobLevel::ALL.len()
    }

    fn run_shard(&self, shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let kind = EngineKind::ROW[shard / KnobLevel::ALL.len()];
        let level = KnobLevel::ALL[shard % KnobLevel::ALL.len()];
        let table = ctx.table_x86(PState::P36);
        let mut rig = Rig::builder(kind)
            .knobs(level)
            .scale(TpchScale(ctx.cfg.scale))
            .pstate(PState::P36)
            .stats(ctx.stats_sink())
            .build();
        let all: Vec<Breakdown> = TpchQuery::all()
            .map(|q| rig.breakdown(&table, &q.plan()))
            .collect();
        let merged = Breakdown::merge(&all).expect("queries ran");
        let row: Vec<String> = share_row(&format!("{}-{}", kind.name(), level.name()), &merged);
        Box::new(row)
    }

    fn assemble(&self, shards: Vec<Box<dyn Any + Send>>, ctx: &ExpCtx<'_>) -> Report {
        let mut t = TextTable::new(share_header());
        for (i, s) in shards.into_iter().enumerate() {
            t.row(downcast_shard::<Vec<String>>(self.name(), i, s));
        }
        let mut r = Report::new();
        writeln!(
            r,
            "== Fig. 9: impact of database settings (TPC-H average) =="
        )
        .unwrap();
        write!(r, "{}", t.render()).unwrap();
        ctx.maybe_write_csv("fig09", &t);
        r
    }
}

const FIG11_PSTATES: [PState; 3] = [PState::P36, PState::P24, PState::P12];

/// Fig. 11 — impact of CPU frequency/voltage: TPC-H average breakdown at
/// P36 / P24 / P12, each decomposed with a table calibrated at that
/// operating point. Nine shards (engine × P-state).
pub struct Fig11Pstates;

/// Fig. 11 shard output: a merged-table row plus the Eactive/L1D numbers
/// the footer derives the savings from.
struct Fig11Cell {
    row: Vec<String>,
    name: String,
    active_j: f64,
    l1d_share: f64,
}

impl Experiment for Fig11Pstates {
    fn name(&self) -> &'static str {
        "fig11_pstates"
    }

    fn shards(&self, _cfg: &HarnessConfig) -> usize {
        EngineKind::ROW.len() * FIG11_PSTATES.len()
    }

    fn run_shard(&self, shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let kind = EngineKind::ROW[shard / FIG11_PSTATES.len()];
        let ps = FIG11_PSTATES[shard % FIG11_PSTATES.len()];
        let table = ctx.table_x86(ps);
        let mut rig = Rig::builder(kind)
            .scale(TpchScale(ctx.cfg.scale))
            .pstate(ps)
            .stats(ctx.stats_sink())
            .build();
        let all: Vec<Breakdown> = TpchQuery::all()
            .map(|q| rig.breakdown(&table, &q.plan()))
            .collect();
        let merged = Breakdown::merge(&all).expect("queries ran");
        let name = format!("{}-{ps}", kind.name());
        Box::new(Fig11Cell {
            row: share_row(&name, &merged),
            name,
            active_j: merged.active_j(),
            l1d_share: merged.l1d_share(),
        })
    }

    fn assemble(&self, shards: Vec<Box<dyn Any + Send>>, ctx: &ExpCtx<'_>) -> Report {
        let cells: Vec<Fig11Cell> = shards
            .into_iter()
            .enumerate()
            .map(|(i, s)| downcast_shard::<Fig11Cell>(self.name(), i, s))
            .collect();
        let mut t = TextTable::new(share_header());
        for c in &cells {
            t.row(c.row.clone());
        }
        let mut r = Report::new();
        writeln!(
            r,
            "== Fig. 11: impact of CPU frequency and voltage (TPC-H average) =="
        )
        .unwrap();
        write!(r, "{}", t.render()).unwrap();
        ctx.maybe_write_csv("fig11", &t);
        writeln!(r).unwrap();
        for chunk in cells.chunks(FIG11_PSTATES.len()) {
            let base = chunk[0].active_j;
            writeln!(
                r,
                "{}: Eactive P24 = -{:.0}% vs P36, P12 = -{:.0}% | L1D share P36→P12: {:.1} → {:.1} pp",
                chunk[0].name.split('-').next().expect("name"),
                (1.0 - chunk[1].active_j / base) * 100.0,
                (1.0 - chunk[2].active_j / base) * 100.0,
                chunk[0].l1d_share * 100.0,
                chunk[2].l1d_share * 100.0,
            )
            .unwrap();
        }
        r
    }
}
