//! CPU-bound/memory-bound kernel experiments: Fig. 10 (CPU2006-like
//! kernels) and Table 5 (the B_mem bottleneck across P-states).

use std::any::Any;
use std::fmt::Write as _;

use analysis::active::active_energy;
use analysis::report::TextTable;
use analysis::{MicroOp, MicroOpCounts};
use microbench::runner::{bench_cpu, RunConfig};
use microbench::MicroBenchId;
use mjrt::experiment::downcast_shard;
use mjrt::{ExpCtx, Experiment, HarnessConfig, Report};
use simcore::{ArchConfig, Cpu, PState};
use workloads::Cpu2006;

use crate::{share_header, share_row};

/// Fig. 10 — Active-energy breakdown of the nine CPU2006-like kernels.
/// One shard per kernel.
pub struct Fig10Cpu2006;

/// Fig. 10 shard output: the kernel's table row plus its L1D share.
struct KernelRow {
    row: Vec<String>,
    l1d_share: f64,
}

impl Experiment for Fig10Cpu2006 {
    fn name(&self) -> &'static str {
        "fig10_cpu2006"
    }

    fn shards(&self, _cfg: &HarnessConfig) -> usize {
        Cpu2006::ALL.len()
    }

    fn run_shard(&self, shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let w = Cpu2006::ALL[shard];
        let table = ctx.table_x86(PState::P36);
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        cpu.set_prefetch(true);
        cpu.set_pstate(PState::P36);
        w.run(&mut cpu, 30_000); // warm
        let m = cpu.measure(|c| w.run(c, 120_000));
        ctx.record(&m);
        let bd = table.breakdown(&m);
        Box::new(KernelRow {
            row: share_row(w.name(), &bd),
            l1d_share: bd.l1d_share(),
        })
    }

    fn assemble(&self, shards: Vec<Box<dyn Any + Send>>, ctx: &ExpCtx<'_>) -> Report {
        let rows: Vec<KernelRow> = shards
            .into_iter()
            .enumerate()
            .map(|(i, s)| downcast_shard::<KernelRow>(self.name(), i, s))
            .collect();
        let mut t = TextTable::new(share_header());
        for kr in &rows {
            t.row(kr.row.clone());
        }
        let mut r = Report::new();
        writeln!(
            r,
            "== Fig. 10: Eactive breakdown of CPU2006-like workloads =="
        )
        .unwrap();
        write!(r, "{}", t.render()).unwrap();
        ctx.maybe_write_csv("fig10", &t);
        let shares: Vec<f64> = rows.iter().map(|kr| kr.l1d_share).collect();
        let avg = shares.iter().sum::<f64>() / shares.len() as f64;
        let min = shares.iter().cloned().fold(f64::MAX, f64::min);
        writeln!(
            r,
            "\nEL1D+EReg2L1D: average {:.1}% (paper ~11%), minimum {:.1}% (paper 5.6%)",
            avg * 100.0,
            min * 100.0
        )
        .unwrap();
        r
    }
}

const TABLE5_PSTATES: [PState; 3] = [PState::P36, PState::P24, PState::P12];

/// Table 5 — the energy bottleneck of `B_mem` at P36 / P24 / P12. One shard
/// per P-state.
pub struct Table5MemoryBound;

impl Experiment for Table5MemoryBound {
    fn name(&self) -> &'static str {
        "table5_memory_bound"
    }

    fn shards(&self, _cfg: &HarnessConfig) -> usize {
        TABLE5_PSTATES.len()
    }

    fn run_shard(&self, shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let ps = TABLE5_PSTATES[shard];
        let table = ctx.table_x86(ps);
        let cfg = RunConfig {
            pstate: ps,
            target_ops: ctx.cfg.cal_ops,
            ..RunConfig::p36()
        };
        let mut cpu = bench_cpu(ArchConfig::intel_i7_4790(), &cfg);
        let run = MicroBenchId::Mem.run(&mut cpu, &cfg);
        ctx.record(&run.measurement);
        let counts = MicroOpCounts::from_pmu(&run.measurement.pmu);
        let active = active_energy(&run.measurement, &table.background).active_j;
        let e_mem = table.de(MicroOp::Mem) * counts.mem as f64;
        let e_stall = table.de(MicroOp::Stall) * counts.stall as f64;
        let row: Vec<String> = vec![
            format!("{ps}"),
            format!("{:.4} ({:.1}%)", e_mem, e_mem / active * 100.0),
            format!("{:.4} ({:.1}%)", e_stall, e_stall / active * 100.0),
            format!("{:.4}", active),
            format!("{:.4}", run.measurement.time_s),
        ];
        Box::new(row)
    }

    fn assemble(&self, shards: Vec<Box<dyn Any + Send>>, _ctx: &ExpCtx<'_>) -> Report {
        let mut t = TextTable::new([
            "P-state",
            "Emem (J/%)",
            "Estall (J/%)",
            "Eactive (J)",
            "time (s)",
        ]);
        for (i, s) in shards.into_iter().enumerate() {
            t.row(downcast_shard::<Vec<String>>(self.name(), i, s));
        }
        let mut r = Report::new();
        writeln!(
            r,
            "== Table 5: energy bottleneck of B_mem across P-states =="
        )
        .unwrap();
        write!(r, "{}", t.render()).unwrap();
        r
    }
}
