//! The experiment registry: every paper table/figure (and extension) as an
//! [`mjrt::Experiment`].
//!
//! [`REGISTRY`] is the single source of truth for the suite: `repro_all`
//! runs it end to end through the `mjrt` scheduler, the thin per-experiment
//! binaries look their experiment up by name, and the report stream is
//! emitted in exactly this order regardless of `--jobs`.

pub mod arm;
pub mod difftest;
pub mod energy;
pub mod kernels;
pub mod micro;
pub mod nosql_ext;
pub mod rowcol;
pub mod sec5;
pub mod serve_oltp;
pub mod tpch;
pub mod writes;

use mjrt::Experiment;

/// Every experiment in suite (report) order — the x86 experiments first,
/// then the 2 ARM/DTCM ones (matching the historical `repro_all` order),
/// then the cross-variant differential harness.
pub static REGISTRY: &[&dyn Experiment] = &[
    &energy::Fig01EnergyTimeline,
    &micro::Fig03Traversal,
    &micro::Fig04Structures,
    &micro::Table1Behaviour,
    &energy::Table2MicroOpEnergy,
    &energy::Table3Verification,
    &tpch::Fig05PstateDistribution,
    &tpch::Fig06BasicOps,
    &tpch::Fig07Tpch,
    &tpch::Fig08DataSize,
    &tpch::Fig09Knobs,
    &kernels::Fig10Cpu2006,
    &tpch::Fig11Pstates,
    &kernels::Table5MemoryBound,
    &sec5::Sec5DvfsTradeoff,
    &writes::ExtWrites,
    &sec5::ExtCustomDvfs,
    &nosql_ext::FutureNosql,
    &serve_oltp::ServeOltp,
    &rowcol::ExtRowCol,
    &arm::Fig13DtcmPoc,
    &arm::AblationDtcm,
    &difftest::Difftest,
];

/// Look an experiment up by its exact registered name.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    REGISTRY.iter().copied().find(|e| e.name() == name)
}
