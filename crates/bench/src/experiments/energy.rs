//! Energy-model experiments: Fig. 1 (energy timeline), Table 2 (solved
//! micro-op energies) and Table 3 (verification).

use std::any::Any;
use std::fmt::Write as _;

use analysis::report::TextTable;
use analysis::verify::{mean_accuracy, verify_all};
use analysis::{Background, MicroOp};
use engines::{EngineKind, KnobLevel};
use microbench::RunConfig;
use mjrt::{ExpCtx, Experiment, Report};
use simcore::{ArchConfig, Cpu, PState};
use workloads::{build_tpch_db, TpchQuery, TpchScale};

/// Fig. 1 — energy along a workload's lifetime: idle → busy → idle, with
/// the Busy-CPU window split into Background and Active energy.
pub struct Fig01EnergyTimeline;

impl Experiment for Fig01EnergyTimeline {
    fn name(&self) -> &'static str {
        "fig01_energy_timeline"
    }

    fn run_shard(&self, _shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let arch = ArchConfig::intel_i7_4790();
        let bg = Background::measure(&arch, PState::P36);

        let mut cpu = Cpu::new(arch);
        cpu.set_prefetch(true);
        let scale = TpchScale(ctx.cfg.scale);
        let mut db =
            build_tpch_db(&mut cpu, EngineKind::Pg, KnobLevel::Baseline, scale).expect("load");
        let plan = TpchQuery(1).plan();
        db.session().run(&mut cpu, &plan).expect("warm");

        cpu.attach_sampler(100e-6);
        for _ in 0..10 {
            cpu.idle_c0(1e-4); // idle lead-in, chunked so samples see idle power
        }
        let tok = cpu.begin_measure();
        db.session().run(&mut cpu, &plan).expect("measured");
        let m = cpu.end_measure(tok);
        ctx.record(&m);
        for _ in 0..10 {
            cpu.idle_c0(1e-4); // idle tail
        }
        let sampler = cpu.take_sampler().expect("sampler");

        let mut r = Report::new();
        writeln!(r, "== Fig. 1: power over time (PostgreSQL Q1, P36) ==").unwrap();
        writeln!(r, "{:>9}  {:>9}  phase", "t (ms)", "pkg+mem W").unwrap();
        let mut prev: Option<simcore::RaplReading> = None;
        let mut prev_t = 0.0;
        for s in &sampler.samples {
            if let Some(p) = prev {
                let watts = (s.rapl.total_j() - p.total_j()) / (s.t_s - prev_t);
                let phase = if s.utilization > 0.5 { "BUSY" } else { "idle" };
                writeln!(r, "{:9.3}  {watts:9.2}  {phase}", s.t_s * 1e3).unwrap();
            }
            prev = Some(s.rapl);
            prev_t = s.t_s;
        }
        let busy = m.rapl.package_j + m.rapl.memory_j;
        let background = (bg.package_w + bg.memory_w) * m.time_s;
        writeln!(
            r,
            "\nBusy-CPU energy {busy:.4} J = Active {:.4} J + Background {background:.4} J ({:.1}% background)",
            busy - background,
            background / busy * 100.0
        )
        .unwrap();
        Box::new(r)
    }
}

/// Table 2 — solved per-micro-op energies (nJ) at P36 / P24 / P12.
pub struct Table2MicroOpEnergy;

impl Experiment for Table2MicroOpEnergy {
    fn name(&self) -> &'static str {
        "table2_microop_energy"
    }

    fn run_shard(&self, _shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let tables: Vec<_> = [PState::P36, PState::P24, PState::P12]
            .iter()
            .map(|&ps| ctx.table_x86(ps))
            .collect();
        let mut t = TextTable::new([
            "Micro-operation",
            "P36 (3.6GHz)",
            "P24 (2.4GHz)",
            "P12 (1.2GHz)",
        ]);
        let row = |label: &str, f: &dyn Fn(&analysis::EnergyTable) -> f64| {
            [label.to_owned()]
                .into_iter()
                .chain(tables.iter().map(|tb| format!("{:.2}", f(tb))))
                .collect::<Vec<_>>()
        };
        t.row(row("dE_L1D", &|tb| tb.de_nj(MicroOp::L1d)));
        t.row(row("dE_L2", &|tb| tb.de_nj(MicroOp::L2)));
        t.row(row("dE_L3, dE_pf^L2", &|tb| tb.de_nj(MicroOp::L3)));
        t.row(row("dE_mem, dE_pf^L3", &|tb| tb.de_nj(MicroOp::Mem)));
        t.row(row("dE_Reg2L1D", &|tb| tb.de_nj(MicroOp::Reg2L1d)));
        t.row(row("dE_stall", &|tb| tb.de_nj(MicroOp::Stall)));
        t.row(row("dE_add", &|tb| tb.de_add * 1e9));
        t.row(row("dE_nop", &|tb| tb.de_nop * 1e9));
        let mut r = Report::new();
        writeln!(
            r,
            "== Table 2: solved energy cost of micro-operations (nJ) =="
        )
        .unwrap();
        write!(r, "{}", t.render()).unwrap();
        writeln!(
            r,
            "\nbackground @P36: core {:.2} W, package {:.2} W, memory {:.2} W",
            tables[0].background.core_w,
            tables[0].background.package_w,
            tables[0].background.memory_w
        )
        .unwrap();
        Box::new(r)
    }
}

/// Table 3 — verification micro-benchmarks: estimated vs measured Active
/// energy and per-benchmark accuracy.
pub struct Table3Verification;

impl Experiment for Table3Verification {
    fn name(&self) -> &'static str {
        "table3_verification"
    }

    fn run_shard(&self, _shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let table = ctx.table_x86(PState::P36);
        let cfg = RunConfig {
            target_ops: ctx.cfg.cal_ops,
            ..RunConfig::p36()
        };
        let results = verify_all(&table, &cfg);
        let mut t = TextTable::new(["Verification benchmark", "E_est (J)", "E_meas (J)", "acc%"]);
        for vr in &results {
            t.row([
                vr.name.to_owned(),
                format!("{:.4}", vr.estimated_j),
                format!("{:.4}", vr.measured_j),
                format!("{:.2}", vr.acc * 100.0),
            ]);
        }
        let mut r = Report::new();
        writeln!(r, "== Table 3: verification of solved dE_m (P36) ==").unwrap();
        write!(r, "{}", t.render()).unwrap();
        writeln!(
            r,
            "\naverage accuracy: {:.2}% (paper: 93.47%)",
            mean_accuracy(&results) * 100.0
        )
        .unwrap();
        Box::new(r)
    }
}
