//! The ARM1176JZF-S proof-of-concept experiments: Fig. 13 (DTCM co-design
//! vs baseline SQLite) and the §4.2 strategy ablation.

use std::any::Any;
use std::fmt::Write as _;

use analysis::report::TextTable;
use engines::{DtcmConfig, DtcmDatabase, EngineKind, KnobLevel, Knobs};
use microbench::runner::{bench_cpu, RunConfig};
use microbench::MicroBenchId;
use mjrt::experiment::downcast_shard;
use mjrt::{ExpCtx, Experiment, HarnessConfig, Report};
use simcore::{ArchConfig, ArchKind, Cpu, Measurement, PState};
use storage::Row;
use workloads::{TpchQuery, TpchScale};

use crate::Rig;

const HOT_TABLES: [&str; 8] = [
    "lineitem", "orders", "customer", "part", "partsupp", "supplier", "nation", "region",
];

/// The paper's 10 MB / small-setting ARM rig.
fn arm_rig(ctx: &ExpCtx<'_>) -> Rig {
    Rig::builder(EngineKind::Lite)
        .arch(ArchKind::Arm)
        .knobs(KnobLevel::Small)
        .scale(TpchScale(ctx.cfg.arm_scale))
        .raw_knobs(Knobs::arm_small())
        .build()
}

fn profile<F: FnMut(&mut Cpu, &engines::Plan) -> Vec<Row>>(
    cpu: &mut Cpu,
    plan: &engines::Plan,
    mut run: F,
) -> (Measurement, Vec<Row>) {
    run(cpu, plan); // warm
    let tok = cpu.begin_measure();
    let rows = run(cpu, plan);
    (cpu.end_measure(tok), rows)
}

fn canon(mut rows: Vec<Row>) -> Vec<String> {
    let mut out: Vec<String> = rows.drain(..).map(|r| format!("{r:?}")).collect();
    out.sort();
    out
}

/// §4.3 / Fig. 13 — per-query energy saving and performance improvement of
/// the co-designed Lite engine vs. the unmodified one. Two shards: the peak
/// micro-benchmark saving and the full per-query comparison.
pub struct Fig13DtcmPoc;

/// Shard 1's output: the comparison table plus the aggregates the footer
/// derives its averages from.
struct Fig13Cmp {
    pins: usize,
    table: String,
    savings: Vec<f64>,
    perfs: Vec<f64>,
    rows_checked: usize,
}

impl Experiment for Fig13DtcmPoc {
    fn name(&self) -> &'static str {
        "fig13_dtcm_poc"
    }

    fn arch(&self) -> ArchKind {
        ArchKind::Arm
    }

    fn shards(&self, _cfg: &HarnessConfig) -> usize {
        2
    }

    fn run_shard(&self, shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        if shard == 0 {
            // Peak saving: B_DTCM_array vs B_L1D_array on the ARM part.
            let cfg = RunConfig {
                pstate: PState(7),
                target_ops: ctx.cfg.cal_ops,
                ..RunConfig::p36()
            };
            let run = |id: MicroBenchId| {
                let mut cpu = bench_cpu(ArchConfig::arm1176jzf_s(), &cfg);
                let r = id.run(&mut cpu, &cfg);
                ctx.record(&r.measurement);
                r.measurement.rapl.total_j()
            };
            let pair: (f64, f64) = (run(MicroBenchId::L1dArray), run(MicroBenchId::DtcmArray));
            return Box::new(pair);
        }

        // Per-query comparison (ARM, small knobs, reduced 10 MB stand-in).
        let base = arm_rig(ctx);
        let (mut base_cpu, mut base_db) = (base.cpu, base.db);

        let opt = arm_rig(ctx);
        let (mut opt_cpu, opt_base) = (opt.cpu, opt.db);
        let mut opt_db =
            DtcmDatabase::configure(&mut opt_cpu, opt_base, &HOT_TABLES, DtcmConfig::default())
                .expect("configure DTCM");
        let pins = opt_db.pinned_pages();

        let mut t = TextTable::new([
            "Query",
            "E_base (J)",
            "E_dtcm (J)",
            "saving%",
            "perf_improve%",
        ]);
        let (mut savings, mut perfs, mut rows_checked) = (Vec::new(), Vec::new(), 0usize);
        for q in TpchQuery::all() {
            let plan = q.plan();
            let (m_base, r_base) = profile(&mut base_cpu, &plan, |c, p| {
                base_db.session().run(c, p).expect("base")
            });
            let (m_opt, r_opt) =
                profile(&mut opt_cpu, &plan, |c, p| opt_db.run(c, p).expect("dtcm"));
            ctx.record(&m_base);
            ctx.record(&m_opt);
            assert_eq!(canon(r_base), canon(r_opt), "{} results diverged", q.name());
            rows_checked += 1;
            let saving = (1.0 - m_opt.rapl.total_j() / m_base.rapl.total_j()) * 100.0;
            let perf = (1.0 - m_opt.time_s / m_base.time_s) * 100.0;
            savings.push(saving);
            perfs.push(perf);
            t.row([
                q.name(),
                format!("{:.5}", m_base.rapl.total_j()),
                format!("{:.5}", m_opt.rapl.total_j()),
                format!("{saving:.2}"),
                format!("{perf:.2}"),
            ]);
        }
        Box::new(Fig13Cmp {
            pins,
            table: t.render(),
            savings,
            perfs,
            rows_checked,
        })
    }

    fn assemble(&self, shards: Vec<Box<dyn Any + Send>>, _ctx: &ExpCtx<'_>) -> Report {
        let mut it = shards.into_iter();
        let (e_l1d, e_tcm) =
            downcast_shard::<(f64, f64)>(self.name(), 0, it.next().expect("peak shard"));
        let cmp = downcast_shard::<Fig13Cmp>(self.name(), 1, it.next().expect("cmp shard"));
        let peak = (1.0 - e_tcm / e_l1d) * 100.0;

        let mut r = Report::new();
        writeln!(r, "== Sec 4.3: peak DTCM saving ==").unwrap();
        writeln!(
            r,
            "B_L1D_array {e_l1d:.4} J | B_DTCM_array {e_tcm:.4} J | peak saving {peak:.1}%\n"
        )
        .unwrap();
        writeln!(
            r,
            "DTCM pins: {} pages + 4 KB special variables\n",
            cmp.pins
        )
        .unwrap();
        writeln!(
            r,
            "== Fig. 13: per-query energy saving and performance improvement =="
        )
        .unwrap();
        write!(r, "{}", cmp.table).unwrap();
        let avg_saving = cmp.savings.iter().sum::<f64>() / cmp.savings.len() as f64;
        let avg_perf = cmp.perfs.iter().sum::<f64>() / cmp.perfs.len() as f64;
        let faster = cmp.perfs.iter().filter(|&&p| p > 0.0).count();
        writeln!(
            r,
            "\naverage saving {avg_saving:.2}% (= {:.0}% of the {peak:.1}% peak) | average perf {avg_perf:+.2}% | {faster}/{} queries faster | {} result sets verified equal",
            avg_saving / peak * 100.0,
            cmp.perfs.len(),
            cmp.rows_checked,
        )
        .unwrap();
        r
    }
}

/// One ablation configuration: its table label, the DTCM placement, and the
/// ITCM fetch discount (§5's closing suggestion).
struct Variant {
    label: &'static str,
    cfg: Option<DtcmConfig>,
    itcm: f64,
}

fn variants() -> [Variant; 6] {
    [
        Variant {
            label: "baseline",
            cfg: None,
            itcm: 0.0,
        },
        Variant {
            label: "buffer only (16K)",
            cfg: Some(DtcmConfig {
                buffer_bytes: 16 << 10,
                vars_bytes: 0,
                btree_bytes: 0,
            }),
            itcm: 0.0,
        },
        Variant {
            label: "special vars only (4K)",
            cfg: Some(DtcmConfig {
                buffer_bytes: 0,
                vars_bytes: 4 << 10,
                btree_bytes: 0,
            }),
            itcm: 0.0,
        },
        Variant {
            label: "btree tops only (12K)",
            cfg: Some(DtcmConfig {
                buffer_bytes: 0,
                vars_bytes: 0,
                btree_bytes: 12 << 10,
            }),
            itcm: 0.0,
        },
        Variant {
            label: "full co-design",
            cfg: Some(DtcmConfig::default()),
            itcm: 0.0,
        },
        Variant {
            label: "full + ITCM (sec. 5)",
            cfg: Some(DtcmConfig::default()),
            itcm: 0.4,
        },
    ]
}

/// Ablation of the §4.2 co-design strategies: which of the three DTCM
/// placements buys the energy saving and the performance improvement? One
/// shard per configuration (baseline, three single placements, the full
/// co-design, full + ITCM), each running the whole query suite.
pub struct AblationDtcm;

impl Experiment for AblationDtcm {
    fn name(&self) -> &'static str {
        "ablation_dtcm"
    }

    fn arch(&self) -> ArchKind {
        ArchKind::Arm
    }

    fn shards(&self, _cfg: &HarnessConfig) -> usize {
        variants().len()
    }

    fn run_shard(&self, shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let vs = variants();
        let v = &vs[shard];
        let rig = arm_rig(ctx);
        let (mut cpu, db) = (rig.cpu, rig.db);
        cpu.set_itcm_fetch_discount(v.itcm);

        let (mut e, mut t) = (0.0, 0.0);
        let mut measure_suite = |cpu: &mut Cpu, run: &mut dyn FnMut(&mut Cpu, &engines::Plan)| {
            for q in TpchQuery::all() {
                let plan = q.plan();
                run(cpu, &plan); // warm
                let tok = cpu.begin_measure();
                run(cpu, &plan);
                let m = cpu.end_measure(tok);
                ctx.record(&m);
                e += m.rapl.total_j();
                t += m.time_s;
            }
        };
        match &v.cfg {
            None => {
                let mut db = db;
                measure_suite(&mut cpu, &mut |c, p| {
                    db.session().run(c, p).expect("query");
                });
            }
            Some(cfg) => {
                let mut d =
                    DtcmDatabase::configure(&mut cpu, db, &HOT_TABLES, *cfg).expect("configure");
                measure_suite(&mut cpu, &mut |c, p| {
                    d.run(c, p).expect("query");
                });
            }
        }
        let pair: (f64, f64) = (e, t);
        Box::new(pair)
    }

    fn assemble(&self, shards: Vec<Box<dyn Any + Send>>, _ctx: &ExpCtx<'_>) -> Report {
        let totals: Vec<(f64, f64)> = shards
            .into_iter()
            .enumerate()
            .map(|(i, s)| downcast_shard::<(f64, f64)>(self.name(), i, s))
            .collect();
        let (be, bt) = totals[0];
        let mut t = TextTable::new(["configuration", "energy saving%", "perf improvement%"]);
        t.row(["baseline".to_owned(), "0.0".into(), "0.0".into()]);
        for (v, &(e, tt)) in variants().iter().zip(&totals).skip(1) {
            t.row([
                v.label.to_owned(),
                format!("{:.2}", (1.0 - e / be) * 100.0),
                format!("{:.2}", (1.0 - tt / bt) * 100.0),
            ]);
        }
        let mut r = Report::new();
        writeln!(
            r,
            "== Ablation: DTCM co-design strategies (suite totals) =="
        )
        .unwrap();
        write!(r, "{}", t.render()).unwrap();
        r
    }
}
