//! Extension — row vs column execution energy (`ext_rowcol`).
//!
//! The paper profiles three row stores and attributes their shared L1D
//! bottleneck to per-tuple implementation style (§3.3). This experiment
//! asks the counterfactual the paper leaves open: what happens to the
//! per-micro-op energy distribution when the *same* logical plans run on a
//! vectorized columnar executor ([`engines::batch`], the `vec`
//! personality)? Batches amortize interpreter state traffic over ~1024
//! rows and late materialization touches only the column lanes a query
//! needs, so the prediction is less `E_L1D + E_Reg2L1D` per query and a
//! smaller Active total — measured here, not assumed.
//!
//! One shard per engine personality (the row trio plus `vec`, i.e.
//! [`EngineKind::ALL`]); each shard loads its own TPC-H database at the
//! harness scale, pins P36 and breaks down all 22 query plans against the
//! shared calibration table. The assembled report holds the merged
//! per-micro-op share row per engine, the per-query breakdown of the
//! columnar executor (the row-engine equivalents are Fig. 7), and a
//! row-vs-column footer comparing Active energy and L1D share head to
//! head. Differential testing (`difftest`) guarantees the result sets the
//! energies are attributed to are identical across all four personalities.

use std::any::Any;
use std::fmt::Write as _;

use analysis::report::TextTable;
use analysis::Breakdown;
use engines::EngineKind;
use mjrt::experiment::downcast_shard;
use mjrt::{ExpCtx, Experiment, HarnessConfig, Report};
use simcore::PState;
use workloads::{TpchQuery, TpchScale};

use super::tpch::short;
use crate::{share_header, share_row, Rig};

/// One engine's shard output: the merged TPC-H-average share row, the
/// per-query share rows (reported only for `vec`), and the scalars the
/// comparison footer needs.
struct RowColCell {
    kind: EngineKind,
    merged_row: Vec<String>,
    query_rows: Vec<Vec<String>>,
    active_j: f64,
    time_s: f64,
    l1d_share: f64,
}

/// Row vs column execution: per-micro-op Active-energy breakdown of the 22
/// TPC-H plans on each row personality vs the vectorized `vec` personality.
pub struct ExtRowCol;

impl Experiment for ExtRowCol {
    fn name(&self) -> &'static str {
        "ext_rowcol"
    }

    fn shards(&self, _cfg: &HarnessConfig) -> usize {
        EngineKind::ALL.len()
    }

    fn run_shard(&self, shard: usize, ctx: &ExpCtx<'_>) -> Box<dyn Any + Send> {
        let kind = EngineKind::ALL[shard];
        let table = ctx.table_x86(PState::P36);
        let mut rig = Rig::builder(kind)
            .scale(TpchScale(ctx.cfg.scale))
            .pstate(PState::P36)
            .stats(ctx.stats_sink())
            .build();
        let mut query_rows = Vec::new();
        let mut all = Vec::new();
        for q in TpchQuery::all() {
            // `Rig::profile` warm-runs the plan first, so the vec shard
            // builds its column-chunk images outside the measured window —
            // the breakdown is steady-state execution, not attach cost.
            let bd = rig.breakdown(&table, &q.plan());
            query_rows.push(share_row(&q.name(), &bd));
            all.push(bd);
        }
        let merged = Breakdown::merge(&all).expect("queries ran");
        Box::new(RowColCell {
            kind,
            merged_row: share_row(short(kind), &merged),
            query_rows,
            active_j: merged.active_j(),
            time_s: merged.time_s,
            l1d_share: merged.l1d_share(),
        })
    }

    fn assemble(&self, shards: Vec<Box<dyn Any + Send>>, ctx: &ExpCtx<'_>) -> Report {
        let cells: Vec<RowColCell> = shards
            .into_iter()
            .enumerate()
            .map(|(i, s)| downcast_shard::<RowColCell>(self.name(), i, s))
            .collect();
        let mut t = TextTable::new(share_header());
        for c in &cells {
            t.row(c.merged_row.clone());
        }
        let mut r = Report::new();
        writeln!(
            r,
            "== Ext: row vs column execution — per-micro-op Eactive, TPC-H average =="
        )
        .unwrap();
        write!(r, "{}", t.render()).unwrap();
        ctx.maybe_write_csv("ext_rowcol", &t);

        let vec_cell = cells
            .iter()
            .find(|c| c.kind == EngineKind::Vec)
            .expect("vec shard ran");
        let mut tq = TextTable::new(share_header());
        for row in &vec_cell.query_rows {
            tq.row(row.clone());
        }
        writeln!(r, "\n== Eactive breakdown of TPC-H per query: vec ==").unwrap();
        write!(r, "{}", tq.render()).unwrap();
        ctx.maybe_write_csv("ext_rowcol_vec_queries", &tq);

        writeln!(r).unwrap();
        for c in cells.iter().filter(|c| c.kind != EngineKind::Vec) {
            writeln!(
                r,
                "vec vs {}: Eactive {:.2}x | time {:.2}x | EL1D+EReg2L1D {:.1}% vs {:.1}%",
                short(c.kind),
                vec_cell.active_j / c.active_j,
                vec_cell.time_s / c.time_s,
                vec_cell.l1d_share * 100.0,
                c.l1d_share * 100.0,
            )
            .unwrap();
        }
        r
    }
}
