//! Fig. 11 — impact of CPU frequency/voltage: TPC-H average breakdown at
//! P36 / P24 / P12, each decomposed with a table calibrated at that
//! operating point.
//!
//! Paper reference: Eactive drops 32%±2% at P24 and 51%±1% at P12; the
//! Emem+Epf share roughly doubles at P12; the `E_L1D + E_Reg2L1D` share
//! falls only 4–8.6 pp — L1D stays the bottleneck.

use analysis::report::TextTable;
use analysis::Breakdown;
use bench::{calibrate_at, default_scale, share_header, share_row, Rig};
use engines::{EngineKind, KnobLevel};
use simcore::PState;
use workloads::TpchQuery;

fn main() {
    let scale = default_scale();
    let mut t = TextTable::new(share_header());
    let mut eactive: Vec<(String, f64, f64)> = Vec::new();
    for kind in EngineKind::ALL {
        for ps in [PState::P36, PState::P24, PState::P12] {
            let table = calibrate_at(ps);
            let mut rig = Rig::tpch(kind, KnobLevel::Baseline, scale, ps);
            let all: Vec<Breakdown> =
                TpchQuery::all().map(|q| rig.breakdown(&table, &q.plan())).collect();
            let merged = Breakdown::merge(&all).expect("queries ran");
            let name = format!("{}-{}", kind.name(), ps);
            t.row(share_row(&name, &merged));
            eactive.push((name, merged.active_j(), merged.l1d_share()));
        }
    }
    println!("== Fig. 11: impact of CPU frequency and voltage (TPC-H average) ==");
    print!("{}", t.render());
    bench::maybe_write_csv("fig11", &t);
    println!();
    for chunk in eactive.chunks(3) {
        let base = chunk[0].1;
        println!(
            "{}: Eactive P24 = -{:.0}% vs P36, P12 = -{:.0}% | L1D share P36→P12: {:.1} → {:.1} pp",
            chunk[0].0.split('-').next().expect("name"),
            (1.0 - chunk[1].1 / base) * 100.0,
            (1.0 - chunk[2].1 / base) * 100.0,
            chunk[0].2 * 100.0,
            chunk[2].2 * 100.0,
        );
    }
}
