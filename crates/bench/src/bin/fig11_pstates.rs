//! Thin wrapper over the `fig11_pstates` experiment registered in
//! `bench::experiments`; flags/env are parsed by `mjrt::HarnessConfig`.

fn main() {
    bench::run_bin("fig11_pstates");
}
