//! Fig. 5 / §2.7 — P-state residency of the TPC-H queries with the
//! EIST-like governor enabled.
//!
//! Paper reference: with 96% average CPU usage, most queries sit at P-state
//! 36 for ≥90% of samples; the histogram over "percent of samples at P36"
//! is heavily right-shifted for all three engines.

use analysis::report::TextTable;
use bench::default_scale;
use engines::{EngineKind, KnobLevel};
use simcore::{ArchConfig, Cpu, PState};
use workloads::{build_tpch_db, TpchQuery};

fn main() {
    let scale = default_scale();
    let mut t = TextTable::new(["engine", "<=60", "70", "80", "90", "100", "median P36%"]);
    for kind in EngineKind::ALL {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        cpu.set_prefetch(true);
        let mut db = build_tpch_db(&mut cpu, kind, KnobLevel::Baseline, scale).expect("load");
        // Governor with a window short enough to react inside a query
        // (queries here are ~ms; the paper's real runs are seconds).
        cpu.set_governor(true);
        cpu.set_governor_interval(15e-6);

        let mut buckets = [0u32; 5];
        let mut residencies = Vec::new();
        for q in TpchQuery::all() {
            let plan = q.plan();
            // Cold run unsampled (pool warm-up), then sample steady-state
            // execution, as the paper samples long repeated runs. Idle gaps
            // and spill waits inside execution still drag samples below P36.
            db.run(&mut cpu, &plan).expect("cold");
            // One unsampled warm repetition lets the governor settle — the
            // paper samples within 100 back-to-back runs.
            db.run(&mut cpu, &plan).expect("ramp");
            cpu.attach_sampler(10e-6);
            db.run(&mut cpu, &plan).expect("warm 1");
            cpu.idle_c0(30e-6); // client think-time between repetitions
            db.run(&mut cpu, &plan).expect("warm 2");
            let sampler = cpu.take_sampler().expect("sampler attached");
            let p36 = sampler.residency(PState::P36) * 100.0;
            residencies.push(p36);
            let b = match p36 {
                x if x <= 60.0 => 0,
                x if x <= 70.0 => 1,
                x if x <= 80.0 => 2,
                x if x <= 90.0 => 3,
                _ => 4,
            };
            buckets[b] += 1;
            // Idle gap between queries, as on a real client.
            cpu.idle_c0(2e-3);
        }
        residencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = residencies[residencies.len() / 2];
        t.row([
            kind.name().to_owned(),
            buckets[0].to_string(),
            buckets[1].to_string(),
            buckets[2].to_string(),
            buckets[3].to_string(),
            buckets[4].to_string(),
            format!("{median:.0}%"),
        ]);
    }
    println!("== Fig. 5: query count by percent of samples at P-state 36 (EIST on) ==");
    print!("{}", t.render());
}
