//! Thin wrapper over the `fig05_pstate_distribution` experiment registered in
//! `bench::experiments`; flags/env are parsed by `mjrt::HarnessConfig`.

fn main() {
    bench::run_bin("fig05_pstate_distribution");
}
