//! Table 5 — the energy bottleneck of `B_mem` at P36 / P24 / P12.
//!
//! Paper reference: Estall dominates (79.8% at P36), Emem is nearly
//! frequency-invariant, and lowering the P-state shrinks Eactive
//! super-linearly (1772.5 → 952.9 → 600.5 J) with only mild slowdown —
//! "the energy cost bottleneck is in the CPU, even for non-CPU-bound
//! workloads".

use analysis::active::active_energy;
use analysis::report::TextTable;
use analysis::{MicroOp, MicroOpCounts};
use bench::calibrate_at;
use microbench::runner::{bench_cpu, RunConfig};
use microbench::MicroBenchId;
use simcore::{ArchConfig, PState};

fn main() {
    let mut t = TextTable::new(["P-state", "Emem (J/%)", "Estall (J/%)", "Eactive (J)", "time (s)"]);
    let mut base_time = None;
    for ps in [PState::P36, PState::P24, PState::P12] {
        let table = calibrate_at(ps);
        let cfg = RunConfig { pstate: ps, target_ops: bench::CAL_OPS, ..RunConfig::p36() };
        let mut cpu = bench_cpu(ArchConfig::intel_i7_4790(), &cfg);
        let run = MicroBenchId::Mem.run(&mut cpu, &cfg);
        let counts = MicroOpCounts::from_pmu(&run.measurement.pmu);
        let active = active_energy(&run.measurement, &table.background).active_j;
        let e_mem = table.de(MicroOp::Mem) * counts.mem as f64;
        let e_stall = table.de(MicroOp::Stall) * counts.stall as f64;
        t.row([
            format!("{ps}"),
            format!("{:.4} ({:.1}%)", e_mem, e_mem / active * 100.0),
            format!("{:.4} ({:.1}%)", e_stall, e_stall / active * 100.0),
            format!("{:.4}", active),
            format!("{:.4}", run.measurement.time_s),
        ]);
        base_time.get_or_insert(run.measurement.time_s);
    }
    println!("== Table 5: energy bottleneck of B_mem across P-states ==");
    print!("{}", t.render());
}
