//! Thin wrapper over the `table5_memory_bound` experiment registered in
//! `bench::experiments`; flags/env are parsed by `mjrt::HarnessConfig`.

fn main() {
    bench::run_bin("table5_memory_bound");
}
