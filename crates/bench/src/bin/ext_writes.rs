//! Extension — energy breakdown of write workloads (INSERT/UPDATE/DELETE).
//!
//! The paper scopes writes out (§2.3): "it may involve more micro-operations
//! about writing". This harness shows that empirically: the read-side model
//! `MS` explains much less of a write workload's Busy-CPU energy, and the
//! store/write-back signature dwarfs the read path's.

use analysis::report::TextTable;
use bench::{calibrate_at, default_scale, share_header, share_row, Rig};
use engines::{Dml, EngineKind, KnobLevel};
use simcore::{Event, PState};
use storage::{CmpOp, Expr, Value};
use workloads::tpch::gen::schema_orders;

fn main() {
    let table = calibrate_at(PState::P36);
    let scale = default_scale();
    let o = |c: &str| schema_orders().col_expect(c);

    let statements: Vec<(&str, Dml)> = vec![
        (
            "INSERT 2k orders",
            Dml::Insert {
                table: "orders".into(),
                rows: (0..2000)
                    .map(|i| {
                        vec![
                            Value::Int(10_000_000 + i),
                            Value::Int(i % 100),
                            Value::Str("O".into()),
                            Value::Float(1000.0 + i as f64),
                            Value::Date(9000),
                            Value::Str("3-MEDIUM".into()),
                            Value::Int(0),
                        ]
                    })
                    .collect(),
            },
        ),
        (
            "UPDATE totalprice",
            Dml::Update {
                table: "orders".into(),
                filter: Some(Expr::cmp(CmpOp::Lt, Expr::col(o("o_custkey")), Expr::int(40))),
                set: vec![(
                    o("o_totalprice"),
                    Expr::Bin(
                        storage::BinOp::Mul,
                        Box::new(Expr::col(o("o_totalprice"))),
                        Box::new(Expr::float(1.05)),
                    ),
                )],
            },
        ),
        (
            "DELETE cold orders",
            Dml::Delete {
                table: "orders".into(),
                filter: Some(Expr::cmp(
                    CmpOp::Lt,
                    Expr::col(o("o_orderdate")),
                    Expr::Lit(Value::Date(8200)),
                )),
            },
        ),
    ];

    for kind in EngineKind::ALL {
        let mut rig = Rig::tpch(kind, KnobLevel::Baseline, scale, PState::P36);
        let mut t = TextTable::new(share_header());
        println!("== write workloads: {} ==", kind.name());
        for (name, dml) in &statements {
            let db = &mut rig.db;
            let m = rig.cpu.measure(|c| {
                db.execute(c, dml).expect("dml");
            });
            let bd = table.breakdown(&m);
            t.row(share_row(name, &bd));
            println!(
                "  {name}: store/load ratio {:.2}, write-backs {} | busy explained {:.1}% (reads: ~70-89%)",
                m.pmu.get(Event::StoreIssued) as f64 / m.pmu.get(Event::LoadIssued).max(1) as f64,
                m.pmu.get(Event::WritebackL1)
                    + m.pmu.get(Event::WritebackL2)
                    + m.pmu.get(Event::WritebackL3),
                bd.busy_explained_share() * 100.0,
            );
        }
        print!("{}", t.render());
        println!();
    }
}
