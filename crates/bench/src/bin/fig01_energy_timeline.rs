//! Fig. 1 — energy along a workload's lifetime: idle → busy → idle, with
//! the Busy-CPU window split into Background and Active energy.

use analysis::Background;
use bench::default_scale;
use engines::{EngineKind, KnobLevel};
use simcore::{ArchConfig, Cpu, PState};
use workloads::{build_tpch_db, TpchQuery};

fn main() {
    let arch = ArchConfig::intel_i7_4790();
    let bg = Background::measure(&arch, PState::P36);

    let mut cpu = Cpu::new(arch);
    cpu.set_prefetch(true);
    let mut db = build_tpch_db(&mut cpu, EngineKind::Pg, KnobLevel::Baseline, default_scale())
        .expect("load");
    let plan = TpchQuery(1).plan();
    db.run(&mut cpu, &plan).expect("warm");

    cpu.attach_sampler(100e-6);
    for _ in 0..10 {
        cpu.idle_c0(1e-4); // idle lead-in, chunked so samples see idle power
    }
    let tok = cpu.begin_measure();
    db.run(&mut cpu, &plan).expect("measured");
    let m = cpu.end_measure(tok);
    for _ in 0..10 {
        cpu.idle_c0(1e-4); // idle tail
    }
    let sampler = cpu.take_sampler().expect("sampler");

    println!("== Fig. 1: power over time (PostgreSQL Q1, P36) ==");
    println!("{:>9}  {:>9}  phase", "t (ms)", "pkg+mem W");
    let mut prev: Option<simcore::RaplReading> = None;
    let mut prev_t = 0.0;
    for s in &sampler.samples {
        if let Some(p) = prev {
            let watts = (s.rapl.total_j() - p.total_j()) / (s.t_s - prev_t);
            let phase = if s.utilization > 0.5 { "BUSY" } else { "idle" };
            println!("{:9.3}  {watts:9.2}  {phase}", s.t_s * 1e3);
        }
        prev = Some(s.rapl);
        prev_t = s.t_s;
    }
    let busy = m.rapl.package_j + m.rapl.memory_j;
    let background = (bg.package_w + bg.memory_w) * m.time_s;
    println!(
        "\nBusy-CPU energy {busy:.4} J = Active {:.4} J + Background {background:.4} J ({:.1}% background)",
        busy - background,
        background / busy * 100.0
    );
}
