//! Thin wrapper over the `fig01_energy_timeline` experiment registered in
//! `bench::experiments`; flags/env are parsed by `mjrt::HarnessConfig`.

fn main() {
    bench::run_bin("fig01_energy_timeline");
}
