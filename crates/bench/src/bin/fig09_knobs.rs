//! Fig. 9 — impact of the Table 4 knob settings (small/baseline/large) on
//! the TPC-H average breakdown.
//!
//! Paper reference: "different settings have little impact on the energy
//! cost distribution"; MySQL's `E_stall` shrinks at the large setting.

use analysis::report::TextTable;
use analysis::Breakdown;
use bench::{calibrate_at, default_scale, share_header, share_row, Rig};
use engines::{EngineKind, KnobLevel};
use simcore::PState;
use workloads::TpchQuery;

fn main() {
    let table = calibrate_at(PState::P36);
    let scale = default_scale();
    let mut t = TextTable::new(share_header());
    for kind in EngineKind::ALL {
        for level in KnobLevel::ALL {
            let mut rig = Rig::tpch(kind, level, scale, PState::P36);
            let all: Vec<Breakdown> =
                TpchQuery::all().map(|q| rig.breakdown(&table, &q.plan())).collect();
            let merged = Breakdown::merge(&all).expect("queries ran");
            t.row(share_row(&format!("{}-{}", kind.name(), level.name()), &merged));
        }
    }
    println!("== Fig. 9: impact of database settings (TPC-H average) ==");
    print!("{}", t.render());
    bench::maybe_write_csv("fig09", &t);
}
