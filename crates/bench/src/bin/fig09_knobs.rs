//! Thin wrapper over the `fig09_knobs` experiment registered in
//! `bench::experiments`; flags/env are parsed by `mjrt::HarnessConfig`.

fn main() {
    bench::run_bin("fig09_knobs");
}
