//! Thin wrapper over the `fig07_tpch` experiment registered in
//! `bench::experiments`; flags/env are parsed by `mjrt::HarnessConfig`.

fn main() {
    bench::run_bin("fig07_tpch");
}
