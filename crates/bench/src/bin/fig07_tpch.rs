//! Fig. 7 — Active-energy breakdown of TPC-H Q1–Q22 on the three engines
//! (baseline size + knobs, P36).
//!
//! Paper reference points: movement share 65% (PG) / 75% (SQLite) / 55%
//! (MySQL); `E_L1D + E_Reg2L1D` 46.8% / 60% / 38.6%; 79.2–88.7% of Busy-CPU
//! energy broken down.

use analysis::report::TextTable;
use analysis::Breakdown;
use bench::{calibrate_at, default_scale, share_header, share_row, Rig};
use engines::{EngineKind, KnobLevel};
use simcore::PState;
use workloads::TpchQuery;

fn main() {
    let table = calibrate_at(PState::P36);
    let scale = default_scale();
    for kind in EngineKind::ALL {
        let mut rig = Rig::tpch(kind, KnobLevel::Baseline, scale, PState::P36);
        let mut t = TextTable::new(share_header());
        let mut all = Vec::new();
        for q in TpchQuery::all() {
            let bd = rig.breakdown(&table, &q.plan());
            t.row(share_row(&q.name(), &bd));
            all.push(bd);
        }
        let merged = Breakdown::merge(&all).expect("queries ran");
        println!("== Eactive breakdown of TPC-H: {} ==", kind.name());
        print!("{}", t.render());
        bench::maybe_write_csv(&format!("fig07_{}", kind.name()), &t);
        println!(
            "summary: movement {:.1}% | EL1D+EReg2L1D {:.1}% | busy explained {:.1}% | total Eactive {:.4} J | time {:.4} s\n",
            merged.movement_share() * 100.0,
            merged.l1d_share() * 100.0,
            merged.busy_explained_share() * 100.0,
            merged.active_j(),
            merged.time_s,
        );
    }
}
