//! CI checker for `mjobs` trace artifacts.
//!
//! `trace_check DIR` validates the trace files a `--trace` run left in
//! `DIR` (a run directory or an explicit `--trace=DIR` target):
//!
//! * `trace.jsonl` — every line parses as JSON; `enter`/`exit` lines
//!   balance per (experiment, shard); the `shard` header span counts match
//!   the stream.
//! * `trace.json` — parses as one JSON document with a `traceEvents`
//!   array whose `X` events all carry `pid`/`tid`/`ts`/`dur`/`name` and
//!   non-negative energy widths.
//!
//! Exits 0 when everything holds, 1 with a diagnostic otherwise.

use std::collections::HashMap;
use std::process::ExitCode;

use mjobs::json::{parse, Json};

fn fail(msg: String) -> ExitCode {
    eprintln!("trace_check: {msg}");
    ExitCode::FAILURE
}

fn check_jsonl(text: &str) -> Result<(), String> {
    // (exp, shard) -> (open depth, exits seen, exits promised by header).
    let mut cells: HashMap<(String, u64), (i64, u64, u64)> = HashMap::new();
    let mut lines = 0u64;
    for (n, line) in text.lines().enumerate() {
        let v = parse(line).map_err(|e| format!("line {}: {e}: {line:?}", n + 1))?;
        lines += 1;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing \"type\"", n + 1))?;
        let cell = |v: &Json| -> Result<(String, u64), String> {
            let exp = v
                .get("exp")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: missing \"exp\"", n + 1))?
                .to_owned();
            let shard = v
                .get("shard")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("line {}: missing \"shard\"", n + 1))?;
            Ok((exp, shard as u64))
        };
        match ty {
            "run" => {
                if n != 0 {
                    return Err(format!("line {}: \"run\" header not first", n + 1));
                }
            }
            "shard" => {
                let spans = v
                    .get("spans")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("line {}: shard header missing \"spans\"", n + 1))?;
                cells.entry(cell(&v)?).or_insert((0, 0, 0)).2 += spans as u64;
            }
            "enter" => cells.entry(cell(&v)?).or_insert((0, 0, 0)).0 += 1,
            "exit" => {
                let c = cells.entry(cell(&v)?).or_insert((0, 0, 0));
                c.0 -= 1;
                c.1 += 1;
                if c.0 < 0 {
                    return Err(format!("line {}: exit without matching enter", n + 1));
                }
            }
            other => return Err(format!("line {}: unknown type {other:?}", n + 1)),
        }
    }
    if lines == 0 {
        return Err("trace.jsonl is empty".into());
    }
    for ((exp, shard), (depth, exits, promised)) in &cells {
        if *depth != 0 {
            return Err(format!("{exp} shard {shard}: {depth} span(s) left open"));
        }
        if exits != promised {
            return Err(format!(
                "{exp} shard {shard}: header promised {promised} span(s), stream has {exits}"
            ));
        }
    }
    Ok(())
}

fn check_chrome(text: &str) -> Result<u64, String> {
    let v = parse(text).map_err(|e| format!("trace.json: {e}"))?;
    let events = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("trace.json: missing \"traceEvents\" array")?;
    let mut spans = 0u64;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("trace.json event {i}: missing \"ph\""))?;
        if ph != "X" {
            continue;
        }
        spans += 1;
        for key in ["pid", "tid", "ts", "dur", "name", "args"] {
            if ev.get(key).is_none() {
                return Err(format!("trace.json event {i}: missing {key:?}"));
            }
        }
        let dur = ev.get("dur").and_then(Json::as_f64).unwrap_or(f64::NAN);
        if dur.is_nan() || dur < 0.0 {
            return Err(format!("trace.json event {i}: negative/NaN dur {dur}"));
        }
    }
    Ok(spans)
}

fn main() -> ExitCode {
    let Some(dir) = std::env::args().nth(1) else {
        return fail("usage: trace_check DIR".into());
    };
    let dir = std::path::PathBuf::from(dir);
    let jsonl = match std::fs::read_to_string(dir.join("trace.jsonl")) {
        Ok(t) => t,
        Err(e) => {
            return fail(format!(
                "cannot read {}: {e}",
                dir.join("trace.jsonl").display()
            ))
        }
    };
    if let Err(e) = check_jsonl(&jsonl) {
        return fail(e);
    }
    let chrome = match std::fs::read_to_string(dir.join("trace.json")) {
        Ok(t) => t,
        Err(e) => {
            return fail(format!(
                "cannot read {}: {e}",
                dir.join("trace.json").display()
            ))
        }
    };
    let spans = match check_chrome(&chrome) {
        Ok(n) => n,
        Err(e) => return fail(e),
    };
    println!(
        "trace_check: ok — {} JSONL line(s), {spans} Chrome span event(s)",
        jsonl.lines().count()
    );
    ExitCode::SUCCESS
}
