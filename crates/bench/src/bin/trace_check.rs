//! CI checker for `mjobs` trace artifacts.
//!
//! `trace_check DIR` validates the trace files a `--trace` run left in
//! `DIR` (a run directory or an explicit `--trace=DIR` target):
//!
//! * `trace.jsonl` — every line parses as JSON; `enter`/`exit` lines
//!   balance per (experiment, shard); the `shard` header span counts match
//!   the stream.
//! * `trace.json` — parses as one JSON document with a `traceEvents`
//!   array whose `X` events all carry `pid`/`tid`/`ts`/`dur`/`name` and
//!   non-negative energy widths.
//! * `flame.folded` — every line is a well-formed folded stack with a
//!   positive integer nanojoule weight.
//! * `profile.json` — parses against the mjprof schema; per shard, the
//!   telescoped exclusive-energy sum (and the per-operator `self_j` sum)
//!   reconciles with the root RAPL delta, the folded weights sum to the
//!   same joules (within per-line rounding), and the Eq. 1 estimate sits
//!   inside the difftest bounded-residual band when the shard did enough
//!   Active work to judge.
//!
//! Exits 0 when everything holds, 1 with a diagnostic otherwise.

use std::collections::HashMap;
use std::process::ExitCode;

use mjdiff::invariants::{MAX_ENERGY_RATIO, MIN_ACTIVE_J, MIN_ENERGY_RATIO};
use mjobs::json::{parse, Json};
use mjprof::{parse_folded, parse_profile};

fn fail(msg: String) -> ExitCode {
    eprintln!("trace_check: {msg}");
    ExitCode::FAILURE
}

fn check_jsonl(text: &str) -> Result<(), String> {
    // (exp, shard) -> (open depth, exits seen, exits promised by header).
    let mut cells: HashMap<(String, u64), (i64, u64, u64)> = HashMap::new();
    let mut lines = 0u64;
    for (n, line) in text.lines().enumerate() {
        let v = parse(line).map_err(|e| format!("line {}: {e}: {line:?}", n + 1))?;
        lines += 1;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing \"type\"", n + 1))?;
        let cell = |v: &Json| -> Result<(String, u64), String> {
            let exp = v
                .get("exp")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {}: missing \"exp\"", n + 1))?
                .to_owned();
            let shard = v
                .get("shard")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("line {}: missing \"shard\"", n + 1))?;
            Ok((exp, shard as u64))
        };
        match ty {
            "run" => {
                if n != 0 {
                    return Err(format!("line {}: \"run\" header not first", n + 1));
                }
            }
            "shard" => {
                let spans = v
                    .get("spans")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("line {}: shard header missing \"spans\"", n + 1))?;
                cells.entry(cell(&v)?).or_insert((0, 0, 0)).2 += spans as u64;
            }
            "enter" => cells.entry(cell(&v)?).or_insert((0, 0, 0)).0 += 1,
            "exit" => {
                let c = cells.entry(cell(&v)?).or_insert((0, 0, 0));
                c.0 -= 1;
                c.1 += 1;
                if c.0 < 0 {
                    return Err(format!("line {}: exit without matching enter", n + 1));
                }
            }
            other => return Err(format!("line {}: unknown type {other:?}", n + 1)),
        }
    }
    if lines == 0 {
        return Err("trace.jsonl is empty".into());
    }
    for ((exp, shard), (depth, exits, promised)) in &cells {
        if *depth != 0 {
            return Err(format!("{exp} shard {shard}: {depth} span(s) left open"));
        }
        if exits != promised {
            return Err(format!(
                "{exp} shard {shard}: header promised {promised} span(s), stream has {exits}"
            ));
        }
    }
    Ok(())
}

fn check_chrome(text: &str) -> Result<u64, String> {
    let v = parse(text).map_err(|e| format!("trace.json: {e}"))?;
    let events = v
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("trace.json: missing \"traceEvents\" array")?;
    let mut spans = 0u64;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("trace.json event {i}: missing \"ph\""))?;
        if ph != "X" {
            continue;
        }
        spans += 1;
        for key in ["pid", "tid", "ts", "dur", "name", "args"] {
            if ev.get(key).is_none() {
                return Err(format!("trace.json event {i}: missing {key:?}"));
            }
        }
        let dur = ev.get("dur").and_then(Json::as_f64).unwrap_or(f64::NAN);
        if dur.is_nan() || dur < 0.0 {
            return Err(format!("trace.json event {i}: negative/NaN dur {dur}"));
        }
    }
    Ok(spans)
}

/// Validate `flame.folded`; returns (line count, total nanojoules).
fn check_folded(text: &str) -> Result<(u64, u64), String> {
    let mut lines = 0u64;
    let mut total_nj = 0u64;
    for (n, line) in text.lines().enumerate() {
        let (stack, nj) =
            parse_folded(line).ok_or_else(|| format!("flame.folded line {}: {line:?}", n + 1))?;
        if nj == 0 {
            return Err(format!(
                "flame.folded line {}: zero-weight stack {stack:?}",
                n + 1
            ));
        }
        lines += 1;
        total_nj += nj;
    }
    Ok((lines, total_nj))
}

/// Validate `profile.json`; returns (shard count, telescoped self_j sum,
/// total span count across shards).
fn check_profile(text: &str) -> Result<(u64, f64, u64), String> {
    let p = parse_profile(text)?;
    if p.format != mjprof::PROFILE_FORMAT as u64 {
        return Err(format!("profile.json: unknown format {}", p.format));
    }
    let mut shards = 0u64;
    let mut self_sum = 0.0f64;
    let mut spans = 0u64;
    for (exp, ss) in &p.experiments {
        for s in ss {
            shards += 1;
            spans += s.spans;
            let tag = format!("profile {exp} shard {}", s.shard);
            if let Some(e) = &s.error {
                return Err(format!("{tag}: malformed span stream: {e}"));
            }
            // The exclusive energies must telescope back to the root RAPL
            // delta, both at shard level and summed over the operator rows.
            let tol = 1e-9 * s.total_j.abs() + 1e-12;
            if (s.self_sum_j - s.total_j).abs() > tol {
                return Err(format!(
                    "{tag}: self_sum_j {} != total_j {}",
                    s.self_sum_j, s.total_j
                ));
            }
            let op_sum: f64 = s.operators.iter().map(|o| o.self_j).sum();
            if (op_sum - s.total_j).abs() > tol {
                return Err(format!(
                    "{tag}: operator self_j sum {op_sum} != total_j {}",
                    s.total_j
                ));
            }
            // Eq. 1 estimate vs measured Active: the difftest band, judged
            // only when the shard did enough Active work to be meaningful.
            if s.active_j >= MIN_ACTIVE_J {
                let ratio = s.est_j / s.active_j;
                if !(MIN_ENERGY_RATIO..=MAX_ENERGY_RATIO).contains(&ratio) {
                    return Err(format!(
                        "{tag}: est_j/active_j = {ratio:.3} outside \
                         [{MIN_ENERGY_RATIO}, {MAX_ENERGY_RATIO}]"
                    ));
                }
            }
            self_sum += s.self_sum_j;
        }
    }
    Ok((shards, self_sum, spans))
}

fn main() -> ExitCode {
    let Some(dir) = std::env::args().nth(1) else {
        return fail("usage: trace_check DIR".into());
    };
    let dir = std::path::PathBuf::from(dir);
    let jsonl = match std::fs::read_to_string(dir.join("trace.jsonl")) {
        Ok(t) => t,
        Err(e) => {
            return fail(format!(
                "cannot read {}: {e}",
                dir.join("trace.jsonl").display()
            ))
        }
    };
    if let Err(e) = check_jsonl(&jsonl) {
        return fail(e);
    }
    let chrome = match std::fs::read_to_string(dir.join("trace.json")) {
        Ok(t) => t,
        Err(e) => {
            return fail(format!(
                "cannot read {}: {e}",
                dir.join("trace.json").display()
            ))
        }
    };
    let spans = match check_chrome(&chrome) {
        Ok(n) => n,
        Err(e) => return fail(e),
    };
    let read = |name: &str| {
        std::fs::read_to_string(dir.join(name))
            .map_err(|e| format!("cannot read {}: {e}", dir.join(name).display()))
    };
    let (folded_lines, folded_nj) = match read("flame.folded").and_then(|t| check_folded(&t)) {
        Ok(v) => v,
        Err(e) => return fail(e),
    };
    let (shards, self_sum_j, profile_spans) =
        match read("profile.json").and_then(|t| check_profile(&t)) {
            Ok(v) => v,
            Err(e) => return fail(e),
        };
    // The flamegraph and the profile are two views of the same exclusive
    // energies: their totals must agree within the per-stack nanojoule
    // rounding (one nJ per folded line, plus float accumulation slack).
    let tol_nj = folded_lines as f64 + profile_spans as f64 + 1.0;
    if (folded_nj as f64 - self_sum_j * 1e9).abs() > tol_nj {
        return fail(format!(
            "flame.folded total {folded_nj} nJ disagrees with profile self_sum {} nJ (tol {tol_nj})",
            self_sum_j * 1e9
        ));
    }
    println!(
        "trace_check: ok — {} JSONL line(s), {spans} Chrome span event(s), \
         {folded_lines} folded stack(s), {shards} profiled shard(s) \
         ({:.4} J attributed)",
        jsonl.lines().count(),
        self_sum_j,
    );
    ExitCode::SUCCESS
}
