//! Thin wrapper over the `fig10_cpu2006` experiment registered in
//! `bench::experiments`; flags/env are parsed by `mjrt::HarnessConfig`.

fn main() {
    bench::run_bin("fig10_cpu2006");
}
