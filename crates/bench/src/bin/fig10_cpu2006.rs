//! Fig. 10 — Active-energy breakdown of the nine CPU2006-like kernels.
//!
//! Paper reference: distributions are heterogeneous, `E_L1D + E_Reg2L1D`
//! averages ~11%, and is as low as 5.6% for Mcf and Libquantum — the
//! opposite of query workloads.

use analysis::report::TextTable;
use bench::{calibrate_at, share_header, share_row};
use simcore::{ArchConfig, Cpu, PState};
use workloads::Cpu2006;

fn main() {
    let table = calibrate_at(PState::P36);
    let mut t = TextTable::new(share_header());
    let mut shares = Vec::new();
    for w in Cpu2006::ALL {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        cpu.set_prefetch(true);
        cpu.set_pstate(PState::P36);
        w.run(&mut cpu, 30_000); // warm
        let m = cpu.measure(|c| w.run(c, 120_000));
        let bd = table.breakdown(&m);
        t.row(share_row(w.name(), &bd));
        shares.push(bd.l1d_share());
    }
    println!("== Fig. 10: Eactive breakdown of CPU2006-like workloads ==");
    print!("{}", t.render());
    bench::maybe_write_csv("fig10", &t);
    let avg = shares.iter().sum::<f64>() / shares.len() as f64;
    let min = shares.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "\nEL1D+EReg2L1D: average {:.1}% (paper ~11%), minimum {:.1}% (paper 5.6%)",
        avg * 100.0,
        min * 100.0
    );
}
