//! Fig. 6 — Active-energy breakdown of the 7 basic query operations on the
//! three engine personalities (baseline data size, baseline knobs, P36).
//!
//! Paper reference points: data-movement share 68.1% (PG) / 76.4% (SQLite)
//! / 56.8% (MySQL); `E_L1D + E_Reg2L1D` 41.6% / 66.6% / 43.4%.

use analysis::report::TextTable;
use analysis::MicroOp;
use bench::{calibrate_at, default_scale, share_header, share_row, Rig};
use engines::{EngineKind, KnobLevel};
use simcore::PState;
use workloads::BasicOp;

fn main() {
    let table = calibrate_at(PState::P36);
    let scale = default_scale();

    for kind in EngineKind::ALL {
        let mut rig = Rig::tpch(kind, KnobLevel::Baseline, scale, PState::P36);
        let mut t = TextTable::new(share_header());
        let mut merged = Vec::new();
        for op in BasicOp::ALL {
            let bd = rig.breakdown(&table, &op.plan());
            t.row(share_row(op.name(), &bd));
            merged.push(bd);
        }
        let all = analysis::Breakdown::merge(&merged).expect("non-empty");
        println!("== Eactive breakdown of basic query operations: {} ==", kind.name());
        print!("{}", t.render());
        bench::maybe_write_csv(&format!("fig06_{}", kind.name()), &t);
        println!(
            "summary: movement {:.1}% of Eactive | EL1D+EReg2L1D {:.1}% | stall {:.1}% | busy explained {:.1}%\n",
            all.movement_share() * 100.0,
            all.l1d_share() * 100.0,
            all.share(MicroOp::Stall) * 100.0,
            all.busy_explained_share() * 100.0,
        );
    }
}
