//! Thin wrapper over the `fig06_basic_ops` experiment registered in
//! `bench::experiments`; flags/env are parsed by `mjrt::HarnessConfig`.

fn main() {
    bench::run_bin("fig06_basic_ops");
}
