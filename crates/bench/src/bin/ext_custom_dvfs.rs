//! Extension — the §5 customized DVFS policy in action.
//!
//! A mixed batch of memory-bound and CPU-bound plans runs under three
//! policies: pinned P36, pinned P24, and the plan-aware advisor. The paper's
//! prediction: the advisor captures most of the memory-bound energy saving
//! with almost none of the CPU-bound performance loss.

use analysis::active::active_energy;
use analysis::report::TextTable;
use bench::{calibrate_at, Rig};
use engines::{DvfsAdvisor, EngineKind, KnobLevel, Plan};
use simcore::PState;
use workloads::TpchScale;

fn batch() -> Vec<(&'static str, Plan)> {
    vec![
        ("table scan+agg", workloads::BasicOp::GroupBy.plan()),
        ("index scan", workloads::BasicOp::IndexScan.plan()),
        ("select", workloads::BasicOp::Select.plan()),
        (
            "deep NL pipeline",
            Plan::scan("nation")
                .join(Plan::scan("supplier"), 0, 2)
                .join(Plan::scan("partsupp"), 3, 1)
                .join(Plan::scan("part"), 8, 0),
        ),
    ]
}

fn main() {
    let scale = TpchScale(bench::env_f64("MJ_SCALE", 8.0));
    let t36 = calibrate_at(PState::P36);
    let t24 = calibrate_at(PState::P24);
    let advisor = DvfsAdvisor::default();

    let mut t = TextTable::new(["policy", "time (ms)", "Eactive (J)", "Perf/Energy vs P36"]);
    let mut base_eff = None;
    for policy in ["pinned P36", "pinned P24", "advisor"] {
        let mut rig = Rig::tpch(EngineKind::Pg, KnobLevel::Baseline, scale, PState::P36);
        let profile = EngineKind::Pg.profile();
        let (mut time, mut energy) = (0.0f64, 0.0f64);
        for (_, plan) in batch() {
            let ps = match policy {
                "pinned P36" => PState::P36,
                "pinned P24" => PState::P24,
                _ => advisor.recommend(&plan, profile),
            };
            rig.cpu.set_pstate(ps);
            let m = rig.profile(&plan);
            let table = if ps == PState::P36 { &t36 } else { &t24 };
            time += m.time_s;
            energy += active_energy(&m, &table.background).active_j;
        }
        let eff = 1.0 / (time * energy);
        let rel = base_eff.map_or(100.0, |b| eff / b * 100.0);
        base_eff.get_or_insert(eff);
        t.row([
            policy.to_owned(),
            format!("{:.3}", time * 1e3),
            format!("{energy:.5}"),
            format!("{rel:.1}%"),
        ]);
    }
    println!("== Extension: plan-aware DVFS (PG, mixed batch) ==");
    print!("{}", t.render());
    println!("\nper-plan advisor choices:");
    for (name, plan) in batch() {
        println!("  {:<18} -> {}", name, advisor.recommend(&plan, EngineKind::Pg.profile()));
    }
}
