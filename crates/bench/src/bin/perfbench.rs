//! Wall-clock throughput benchmark for the simcore batched-access fast path.
//!
//! Replays five access traces through the scalar `Cpu::load`/`Cpu::store`
//! verbs and through `Cpu::access_run`, and reports simulated accesses per
//! host second for each, plus the speedup. The two replays issue the
//! *identical* access sequence (the equivalence is proven bit-exact by
//! `tests/access_equiv.rs`); this binary measures only how fast the
//! simulator gets through it. Each arm runs three times with the arms
//! alternated, and the fastest rep per arm is reported — single runs on a
//! shared host swing far too much to gate on.
//!
//! Traces:
//! * `scan_hot`   — repeated passes over an L1-resident window (the shape of
//!   warm page scans; hot batching + memoized replay, ≥5× target),
//! * `scan_cold`  — passes over a window larger than L3 (every line misses;
//!   the fused cold walk with bulk miss-charging, ≥3× target),
//! * `chase`      — pointer chasing (fused chase steps, ≥2× target),
//! * `mixed`      — interleaved warm runs, chases, repeats and stores,
//! * `set_conflict_storm` — stride-4096 accesses hammering one L1D set (L2
//!   hits after warmup): every access walks a full valid set and selects a
//!   victim, pinning the SoA representation's max-way-walk worst case under
//!   its own floor rather than letting the averaged traces hide it,
//! * `columnar_scan` — the vectorized executor's lane shape (per 1024-row
//!   batch: stream the predicate lane, gather the projected lane, store
//!   the materialized batch into a bounded scratch ring), so the `vec`
//!   personality's dominant access pattern has its own floor.
//!
//! `--e2e` additionally runs the full repro_all experiment suite twice
//! in-process — once with the fast paths disabled, once enabled — checks the
//! report streams are byte-identical, and records both wall-clocks. Results
//! are written as JSON (schema v3) to `BENCH_simcore.json` (or the path
//! given as the first non-flag argument) and the file is re-read and
//! validated before exit. `--smoke` shrinks the iteration counts for CI and
//! gates on the `scan_cold` and `columnar_scan` floors; the full mode gates on every
//! trace's hard floor and additionally reports (without failing) any trace
//! that met its floor but not its design target — see [`THRESHOLDS`].

use std::process::ExitCode;
use std::time::Instant;

use mjobs::json::{parse, Json};
use simcore::{set_fastpath, ArchConfig, Cpu, Dep, RunStats, LINE};

/// Wall-clock of the previous release's repro_all (fast paths of PR 3 only,
/// measured on the same reference host before the cold/chase/replay paths
/// landed). Recorded in the JSON so the end-to-end delta is tracked.
const PREV_RELEASE_REPRO_ALL_S: f64 = 471.9;

/// Per-trace speedup thresholds: (trace, hard floor, design target).
///
/// The floor is a regression tripwire — the binary exits non-zero below it.
/// The target is the fast-path design goal; it is recorded per trace in the
/// JSON and a miss is printed as a note, not a failure. The SoA cache
/// arrays (PR 7) moved two of PR 6's missed targets: `scan_cold` now
/// reaches its 3× target on quiet host windows (measured 2.4–3.2× on the
/// shared reference host; floor raised 2.0 → 2.2 to the worst observed run
/// minus noise margin), and `chase` gets a higher floor (1.3 → 1.4) but
/// keeps missing its 2× target for a now-measured structural reason: its
/// batched throughput is invariant under a 4× shrink of the way arrays
/// (12.0 → 12.1 M/s), so the chase step is bound by the bit-identity
/// settle/charge chain plus one step-serialized random LLC access, not by
/// array footprint — see DESIGN.md §9 for the decomposition.
/// `columnar_scan` floors the vectorized executor's lane mix: its 512 KB
/// lanes never fit L1, so every line rides the fused cold walk (measured
/// 2.2× smoke / 2.5× full on the shared reference host; floor set to the
/// worst observed run minus noise margin).
const THRESHOLDS: &[(&str, f64, f64)] = &[
    ("scan_hot", 5.0, 5.0),
    ("scan_cold", 2.2, 3.0),
    ("chase", 1.4, 2.0),
    ("mixed", 1.5, 2.0),
    ("set_conflict_storm", 1.2, 1.5),
    ("columnar_scan", 1.8, 2.5),
];

fn thresholds_for(name: &str) -> (f64, f64) {
    THRESHOLDS
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|&(_, floor, target)| (floor, target))
        .unwrap_or_else(|| panic!("no thresholds for trace {name}"))
}

/// xorshift64* — deterministic chase addresses without external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

struct TraceResult {
    name: &'static str,
    accesses: u64,
    scalar_ns: u128,
    batched_ns: u128,
    stats: RunStats,
}

impl TraceResult {
    fn scalar_aps(&self) -> f64 {
        self.accesses as f64 / (self.scalar_ns as f64 * 1e-9)
    }

    fn batched_aps(&self) -> f64 {
        self.accesses as f64 / (self.batched_ns as f64 * 1e-9)
    }

    fn speedup(&self) -> f64 {
        self.scalar_ns as f64 / self.batched_ns as f64
    }
}

/// End-to-end suite timing: the same repro_all run with the fast paths off
/// and on, plus whether the two report streams matched byte-for-byte.
struct SuiteResult {
    wall_off_s: f64,
    wall_on_s: f64,
    report_identical: bool,
}

impl SuiteResult {
    fn speedup(&self) -> f64 {
        self.wall_off_s / self.wall_on_s
    }
}

fn fresh_cpu() -> (Cpu, u64) {
    let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
    let region = cpu.alloc(32 << 20).expect("bench arena");
    (cpu, region.addr)
}

/// Repetitions per arm. Each rep does identical simulated work, so the
/// fastest one is the closest estimate of the code's actual cost; the
/// others absorb scheduler preemption and host-cache pollution from
/// neighbouring processes (single runs swing ±30% on shared hosts, enough
/// to spuriously trip the speedup gates in either direction).
const REPS: u32 = 3;

/// Time `f(cpu, base)` once on a fresh machine; returns (elapsed ns, run
/// stats). The stats are drained per run so each rep starts clean.
fn timed_once(f: &impl Fn(&mut Cpu, u64)) -> (u128, RunStats) {
    let (mut cpu, base) = fresh_cpu();
    let t0 = Instant::now();
    f(&mut cpu, base);
    let ns = t0.elapsed().as_nanos().max(1);
    (ns, cpu.run_stats())
}

fn run_trace(
    name: &'static str,
    accesses: u64,
    scalar: impl Fn(&mut Cpu, u64),
    batched: impl Fn(&mut Cpu, u64),
) -> TraceResult {
    // Alternate the arms within each rep so a slow host phase (frequency
    // ramp, a neighbour filling the shared LLC) penalises both equally
    // instead of biasing whichever arm it happens to land on.
    let mut scalar_ns = u128::MAX;
    let mut batched_ns = u128::MAX;
    let mut stats = None;
    for _ in 0..REPS {
        let (s, _) = timed_once(&scalar);
        let (b, st) = timed_once(&batched);
        scalar_ns = scalar_ns.min(s);
        batched_ns = batched_ns.min(b);
        // The counters are deterministic — every rep reports the same
        // values — so keeping the first rep's is arbitrary but exact.
        stats.get_or_insert(st);
    }
    TraceResult {
        name,
        accesses,
        scalar_ns,
        batched_ns,
        stats: stats.expect("at least one rep"),
    }
}

fn run_all(scale: u64) -> Vec<TraceResult> {
    let mut results = Vec::new();

    // scan_hot: `passes` full passes over a 256-line (16 KB) window that
    // stays L1D-resident after the first pass.
    let hot_lines: u64 = 256;
    let passes: u64 = 2_000 * scale;
    results.push(run_trace(
        "scan_hot",
        hot_lines * passes,
        |cpu, base| {
            for _ in 0..passes {
                for i in 0..hot_lines {
                    cpu.load(base + i * LINE, Dep::Stream);
                }
            }
        },
        |cpu, base| {
            for _ in 0..passes {
                cpu.access_run(base, hot_lines, false, Dep::Stream);
            }
        },
    ));

    // scan_cold: passes over a 16 MB window (past the 8 MB L3) — nothing
    // stays resident; the batched arm takes the fused cold walk.
    let cold_lines: u64 = (16 << 20) / LINE;
    let cold_passes: u64 = scale.div_ceil(4).max(1);
    results.push(run_trace(
        "scan_cold",
        cold_lines * cold_passes,
        |cpu, base| {
            for _ in 0..cold_passes {
                for i in 0..cold_lines {
                    cpu.load(base + i * LINE, Dep::Stream);
                }
            }
        },
        |cpu, base| {
            for _ in 0..cold_passes {
                cpu.access_run(base, cold_lines, false, Dep::Stream);
            }
        },
    ));

    // chase: dependent loads at pseudo-random lines in a 1 MB window.
    let chases: u64 = 200_000 * scale;
    let chase_at = |r: &mut Rng| (r.next() % ((1 << 20) / LINE)) * LINE;
    results.push(run_trace(
        "chase",
        chases,
        |cpu, base| {
            let mut rng = Rng(0xc4a5e);
            for _ in 0..chases {
                cpu.load(base + chase_at(&mut rng), Dep::Chase);
            }
        },
        |cpu, base| {
            let mut rng = Rng(0xc4a5e);
            for _ in 0..chases {
                cpu.access_run(base + chase_at(&mut rng), 1, false, Dep::Chase);
            }
        },
    ));

    // mixed: warm read run + chase + hot repeat + store run per iteration
    // (roughly the shape of an index-nested-loop over warm pages).
    let iters: u64 = 1_000 * scale;
    let mixed_accesses = iters * (64 + 1 + 32 + 64);
    results.push(run_trace(
        "mixed",
        mixed_accesses,
        |cpu, base| {
            let mut rng = Rng(0x313ed);
            for _ in 0..iters {
                for i in 0..64 {
                    cpu.load(base + i * LINE, Dep::Stream);
                }
                cpu.load(base + chase_at(&mut rng), Dep::Chase);
                for _ in 0..32 {
                    cpu.load(base + 8 * LINE, Dep::Stream);
                }
                for i in 0..64 {
                    cpu.store(base + i * LINE);
                }
            }
        },
        |cpu, base| {
            let mut rng = Rng(0x313ed);
            for _ in 0..iters {
                cpu.access_run(base, 64, false, Dep::Stream);
                cpu.access_run(base + chase_at(&mut rng), 1, false, Dep::Chase);
                cpu.load_repeat(base + 8 * LINE, 32);
                cpu.access_run(base, 64, true, Dep::Stream);
            }
        },
    ));

    // set_conflict_storm: every access at stride 4096 lands in L1D set 0
    // (64 sets × 64 B), with 40 distinct tags so L1 misses forever while L2
    // (8 stormed sets × 5 tags) hits after warmup. Steady state is the
    // representation's worst case: a full 8-way walk over an all-valid set,
    // a rank-word victim selection, an L2 lookup and an L1 fill — per
    // access, with periodic dirty victims rippling a writeback into L2.
    let storm_slots: u64 = 40;
    let storm_passes: u64 = 2_000 * scale;
    results.push(run_trace(
        "set_conflict_storm",
        storm_slots * storm_passes,
        |cpu, base| {
            for p in 0..storm_passes {
                for k in 0..storm_slots {
                    if (p + k) % 3 == 0 {
                        cpu.store(base + k * 4096);
                    } else {
                        cpu.load(base + k * 4096, Dep::Stream);
                    }
                }
            }
        },
        |cpu, base| {
            for p in 0..storm_passes {
                for k in 0..storm_slots {
                    cpu.access_run(base + k * 4096, 1, (p + k) % 3 == 0, Dep::Stream);
                }
            }
        },
    ));

    // columnar_scan: the batch executor's per-batch lane traffic — stream
    // the predicate lane (1024 rows × 8 B = 128 lines), stream the
    // projected lane for late materialization, store the materialized
    // batch into a 32 KB scratch ring. Lanes are 512 KB (L3-resident after
    // the first pass), the ring stays L1-resident — the mix the `vec`
    // personality issues on every scan.
    let batch_lines: u64 = (1024 * 8) / LINE;
    let col_batches: u64 = 64;
    let lane_bytes: u64 = col_batches * batch_lines * LINE;
    let ring_lines: u64 = 512;
    let col_passes: u64 = 30 * scale;
    results.push(run_trace(
        "columnar_scan",
        col_passes * col_batches * batch_lines * 3,
        |cpu, base| {
            for p in 0..col_passes {
                for b in 0..col_batches {
                    let pred = base + b * batch_lines * LINE;
                    let lane = base + lane_bytes + b * batch_lines * LINE;
                    let out = base
                        + 2 * lane_bytes
                        + ((p * col_batches + b) * batch_lines % ring_lines) * LINE;
                    for i in 0..batch_lines {
                        cpu.load(pred + i * LINE, Dep::Stream);
                    }
                    for i in 0..batch_lines {
                        cpu.load(lane + i * LINE, Dep::Stream);
                    }
                    for i in 0..batch_lines {
                        cpu.store(out + i * LINE);
                    }
                }
            }
        },
        |cpu, base| {
            for p in 0..col_passes {
                for b in 0..col_batches {
                    let pred = base + b * batch_lines * LINE;
                    let lane = base + lane_bytes + b * batch_lines * LINE;
                    let out = base
                        + 2 * lane_bytes
                        + ((p * col_batches + b) * batch_lines % ring_lines) * LINE;
                    cpu.access_run(pred, batch_lines, false, Dep::Stream);
                    cpu.access_run(lane, batch_lines, false, Dep::Stream);
                    cpu.access_run(out, batch_lines, true, Dep::Stream);
                }
            }
        },
    ));

    results
}

/// Run the full repro_all suite in-process and return (wall seconds, report
/// bytes). `mjrt::run_suite` drains the fast-path counters itself, so each
/// arm starts clean.
fn run_suite_once() -> (f64, Vec<u8>) {
    let cfg =
        mjrt::HarnessConfig::from_env_and_args(&[] as &[String]).expect("default harness config");
    let mut out = Vec::new();
    let mut summary = std::io::sink();
    let t0 = Instant::now();
    let outcome = mjrt::run_suite(bench::experiments::REGISTRY, &cfg, &mut out, &mut summary)
        .expect("suite report stream");
    let wall = t0.elapsed().as_secs_f64();
    assert!(
        outcome.failures().is_empty(),
        "repro_all failed under perfbench: {:?}",
        outcome.failures()
    );
    (wall, out)
}

fn run_e2e() -> SuiteResult {
    eprintln!("perfbench: e2e arm 1/2 (fast paths off) ...");
    set_fastpath(false);
    let (wall_off_s, report_off) = run_suite_once();
    eprintln!("perfbench: e2e arm 2/2 (fast paths on) ...");
    set_fastpath(true);
    let (wall_on_s, report_on) = run_suite_once();
    SuiteResult {
        wall_off_s,
        wall_on_s,
        report_identical: report_off == report_on,
    }
}

fn to_json(results: &[TraceResult], suite: Option<&SuiteResult>, mode: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"microjoule.perfbench/v3\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str("  \"traces\": [\n");
    for (i, r) in results.iter().enumerate() {
        let (floor, target) = thresholds_for(r.name);
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"accesses\": {}, \
             \"scalar_accesses_per_sec\": {:.1}, \
             \"batched_accesses_per_sec\": {:.1}, \
             \"speedup\": {:.3}, \
             \"floor\": {:.1}, \"target\": {:.1}, \"target_met\": {}, \
             \"batched_lines\": {}, \"cold_batched_lines\": {}, \
             \"replayed_lines\": {}, \"fallback_lines\": {}}}{}\n",
            r.name,
            r.accesses,
            r.scalar_aps(),
            r.batched_aps(),
            r.speedup(),
            floor,
            target,
            r.speedup() >= target,
            r.stats.batched_lines,
            r.stats.cold_batched_lines,
            r.stats.replayed_lines,
            r.stats.fallbacks,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    match suite {
        Some(e) => s.push_str(&format!(
            "  \"suite\": {{\"name\": \"repro_all\", \
             \"wall_s_fastpath_off\": {:.1}, \"wall_s_fastpath_on\": {:.1}, \
             \"speedup\": {:.3}, \"report_identical\": {}, \
             \"prev_release_wall_s\": {:.1}}}\n",
            e.wall_off_s,
            e.wall_on_s,
            e.speedup(),
            e.report_identical,
            PREV_RELEASE_REPRO_ALL_S,
        )),
        None => s.push_str("  \"suite\": null\n"),
    }
    s.push_str("}\n");
    s
}

/// Re-read the written file and check it is valid JSON with sane numbers.
fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot re-read {path}: {e}"))?;
    let v = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let schema = v.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "microjoule.perfbench/v3" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let traces = v
        .get("traces")
        .and_then(Json::as_arr)
        .ok_or("missing \"traces\" array")?;
    if traces.len() != THRESHOLDS.len() {
        return Err(format!(
            "expected {} traces, found {}",
            THRESHOLDS.len(),
            traces.len()
        ));
    }
    for t in traces {
        let name = t.get("name").and_then(Json::as_str).ok_or("trace name")?;
        for key in ["scalar_accesses_per_sec", "batched_accesses_per_sec"] {
            let aps = t.get(key).and_then(Json::as_f64).unwrap_or(0.0);
            if aps.is_nan() || aps <= 0.0 {
                return Err(format!("{name}: {key} = {aps} (must be > 0)"));
            }
        }
    }
    if let Some(suite) = v.get("suite") {
        if !matches!(suite, Json::Null) {
            for key in ["wall_s_fastpath_off", "wall_s_fastpath_on"] {
                let w = suite.get(key).and_then(Json::as_f64).unwrap_or(0.0);
                if w.is_nan() || w <= 0.0 {
                    return Err(format!("suite: {key} = {w} (must be > 0)"));
                }
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut e2e = false;
    let mut path = String::from("BENCH_simcore.json");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--e2e" => e2e = true,
            _ => path = arg,
        }
    }
    // Smoke keeps every trace and the validation but trims the run to a
    // couple of seconds; the committed BENCH_simcore.json comes from full.
    let (mode, scale) = if smoke { ("smoke", 1) } else { ("full", 20) };

    let results = run_all(scale);
    for r in &results {
        println!(
            "{:<10} {:>12} accesses  scalar {:>12.0}/s  batched {:>12.0}/s  speedup {:>6.2}x  ({} batched, {} cold, {} replayed, {} fallback lines)",
            r.name,
            r.accesses,
            r.scalar_aps(),
            r.batched_aps(),
            r.speedup(),
            r.stats.batched_lines,
            r.stats.cold_batched_lines,
            r.stats.replayed_lines,
            r.stats.fallbacks,
        );
    }

    let suite = e2e.then(run_e2e);
    if let Some(e) = &suite {
        println!(
            "repro_all   fastpath off {:>8.1}s  on {:>8.1}s  speedup {:>5.2}x  report_identical {}  (prev release {:.1}s)",
            e.wall_off_s,
            e.wall_on_s,
            e.speedup(),
            e.report_identical,
            PREV_RELEASE_REPRO_ALL_S,
        );
        if !e.report_identical {
            eprintln!("perfbench: fast paths changed the repro_all report stream");
            return ExitCode::FAILURE;
        }
    }

    let json = to_json(&results, suite.as_ref(), mode);
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("perfbench: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = validate(&path) {
        eprintln!("perfbench: invalid output: {e}");
        return ExitCode::FAILURE;
    }
    println!("perfbench: wrote {path}");

    let get = |name: &str| {
        results
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("{name} trace missing"))
    };
    // Gates: smoke is CI's cheap regression tripwire (the scan_cold floor
    // per the roadmap, plus the columnar_scan floor so the `vec`
    // personality's lane path is covered in CI); the full run enforces
    // every floor and reports, without failing, any trace short of its
    // design target.
    let mut failed = false;
    for &(name, floor, target) in THRESHOLDS {
        if smoke && name != "scan_cold" && name != "columnar_scan" {
            continue;
        }
        let s = get(name).speedup();
        if s < floor {
            eprintln!("perfbench: {name} speedup {s:.2}x is below the {floor}x floor");
            failed = true;
        } else if !smoke && s < target {
            eprintln!(
                "perfbench: note: {name} speedup {s:.2}x meets the {floor}x floor \
                 but not the {target}x design target (host-bound; see DESIGN.md §9)"
            );
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
