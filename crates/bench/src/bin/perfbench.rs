//! Wall-clock throughput benchmark for the simcore batched-access fast path.
//!
//! Replays four access traces twice — once through the scalar
//! `Cpu::load`/`Cpu::store` verbs, once through `Cpu::access_run` — and
//! reports simulated accesses per host second for each, plus the speedup.
//! The two replays issue the *identical* access sequence (the equivalence
//! is proven bit-exact by `tests/access_equiv.rs`); this binary measures
//! only how fast the simulator gets through it.
//!
//! Traces:
//! * `scan_hot`   — repeated passes over an L1-resident window (the shape of
//!   warm page scans, the fast path's home turf; the ≥5× target applies here),
//! * `scan_cold`  — passes over a window larger than L3 (every line misses,
//!   so the fast path legitimately falls back per line),
//! * `chase`      — pointer chasing (whole-run scalar fallback by design),
//! * `mixed`      — interleaved warm runs, chases, repeats and stores.
//!
//! Results are written as JSON to `BENCH_simcore.json` (or the path given as
//! the first non-flag argument) and the file is re-read and validated before
//! exit. `--smoke` shrinks the iteration counts for CI: it still exercises
//! every trace and the validation, just without the minutes-long run.

use std::process::ExitCode;
use std::time::Instant;

use mjobs::json::{parse, Json};
use simcore::{ArchConfig, Cpu, Dep, LINE};

/// xorshift64* — deterministic chase addresses without external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

struct TraceResult {
    name: &'static str,
    accesses: u64,
    scalar_ns: u128,
    batched_ns: u128,
    batched_lines: u64,
    fallbacks: u64,
}

impl TraceResult {
    fn scalar_aps(&self) -> f64 {
        self.accesses as f64 / (self.scalar_ns as f64 * 1e-9)
    }

    fn batched_aps(&self) -> f64 {
        self.accesses as f64 / (self.batched_ns as f64 * 1e-9)
    }

    fn speedup(&self) -> f64 {
        self.scalar_ns as f64 / self.batched_ns as f64
    }
}

fn fresh_cpu() -> (Cpu, u64) {
    let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
    let region = cpu.alloc(32 << 20).expect("bench arena");
    (cpu, region.addr)
}

/// Time `f(cpu, base)` on a fresh machine; returns (elapsed ns, run stats).
fn timed(f: impl Fn(&mut Cpu, u64)) -> (u128, u64, u64) {
    let (mut cpu, base) = fresh_cpu();
    let t0 = Instant::now();
    f(&mut cpu, base);
    let ns = t0.elapsed().as_nanos().max(1);
    let (batched, fallbacks) = cpu.run_stats();
    (ns, batched, fallbacks)
}

fn run_trace(
    name: &'static str,
    accesses: u64,
    scalar: impl Fn(&mut Cpu, u64),
    batched: impl Fn(&mut Cpu, u64),
) -> TraceResult {
    let (scalar_ns, _, _) = timed(scalar);
    let (batched_ns, batched_lines, fallbacks) = timed(batched);
    TraceResult {
        name,
        accesses,
        scalar_ns,
        batched_ns,
        batched_lines,
        fallbacks,
    }
}

fn run_all(scale: u64) -> Vec<TraceResult> {
    let mut results = Vec::new();

    // scan_hot: `passes` full passes over a 256-line (16 KB) window that
    // stays L1D-resident after the first pass.
    let hot_lines: u64 = 256;
    let passes: u64 = 2_000 * scale;
    results.push(run_trace(
        "scan_hot",
        hot_lines * passes,
        |cpu, base| {
            for _ in 0..passes {
                for i in 0..hot_lines {
                    cpu.load(base + i * LINE, Dep::Stream);
                }
            }
        },
        |cpu, base| {
            for _ in 0..passes {
                cpu.access_run(base, hot_lines, false, Dep::Stream);
            }
        },
    ));

    // scan_cold: passes over a 16 MB window (past the 8 MB L3) — nothing
    // stays resident, so both replays pay the full per-line machinery.
    let cold_lines: u64 = (16 << 20) / LINE;
    let cold_passes: u64 = scale.div_ceil(4).max(1);
    results.push(run_trace(
        "scan_cold",
        cold_lines * cold_passes,
        |cpu, base| {
            for _ in 0..cold_passes {
                for i in 0..cold_lines {
                    cpu.load(base + i * LINE, Dep::Stream);
                }
            }
        },
        |cpu, base| {
            for _ in 0..cold_passes {
                cpu.access_run(base, cold_lines, false, Dep::Stream);
            }
        },
    ));

    // chase: dependent loads at pseudo-random lines in a 1 MB window.
    let chases: u64 = 200_000 * scale;
    let chase_at = |r: &mut Rng| (r.next() % ((1 << 20) / LINE)) * LINE;
    results.push(run_trace(
        "chase",
        chases,
        |cpu, base| {
            let mut rng = Rng(0xc4a5e);
            for _ in 0..chases {
                cpu.load(base + chase_at(&mut rng), Dep::Chase);
            }
        },
        |cpu, base| {
            let mut rng = Rng(0xc4a5e);
            for _ in 0..chases {
                cpu.access_run(base + chase_at(&mut rng), 1, false, Dep::Chase);
            }
        },
    ));

    // mixed: warm read run + chase + hot repeat + store run per iteration
    // (roughly the shape of an index-nested-loop over warm pages).
    let iters: u64 = 1_000 * scale;
    let mixed_accesses = iters * (64 + 1 + 32 + 64);
    results.push(run_trace(
        "mixed",
        mixed_accesses,
        |cpu, base| {
            let mut rng = Rng(0x313ed);
            for _ in 0..iters {
                for i in 0..64 {
                    cpu.load(base + i * LINE, Dep::Stream);
                }
                cpu.load(base + chase_at(&mut rng), Dep::Chase);
                for _ in 0..32 {
                    cpu.load(base + 8 * LINE, Dep::Stream);
                }
                for i in 0..64 {
                    cpu.store(base + i * LINE);
                }
            }
        },
        |cpu, base| {
            let mut rng = Rng(0x313ed);
            for _ in 0..iters {
                cpu.access_run(base, 64, false, Dep::Stream);
                cpu.access_run(base + chase_at(&mut rng), 1, false, Dep::Chase);
                cpu.load_repeat(base + 8 * LINE, 32);
                cpu.access_run(base, 64, true, Dep::Stream);
            }
        },
    ));

    results
}

fn to_json(results: &[TraceResult], mode: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"microjoule.perfbench/v1\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str("  \"traces\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"accesses\": {}, \
             \"scalar_accesses_per_sec\": {:.1}, \
             \"batched_accesses_per_sec\": {:.1}, \
             \"speedup\": {:.3}, \
             \"batched_lines\": {}, \"fallback_lines\": {}}}{}\n",
            r.name,
            r.accesses,
            r.scalar_aps(),
            r.batched_aps(),
            r.speedup(),
            r.batched_lines,
            r.fallbacks,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Re-read the written file and check it is valid JSON with sane numbers.
fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot re-read {path}: {e}"))?;
    let v = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let traces = v
        .get("traces")
        .and_then(Json::as_arr)
        .ok_or("missing \"traces\" array")?;
    if traces.len() != 4 {
        return Err(format!("expected 4 traces, found {}", traces.len()));
    }
    for t in traces {
        let name = t.get("name").and_then(Json::as_str).ok_or("trace name")?;
        for key in ["scalar_accesses_per_sec", "batched_accesses_per_sec"] {
            let aps = t.get(key).and_then(Json::as_f64).unwrap_or(0.0);
            if aps.is_nan() || aps <= 0.0 {
                return Err(format!("{name}: {key} = {aps} (must be > 0)"));
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut path = String::from("BENCH_simcore.json");
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            path = arg;
        }
    }
    // Smoke keeps every trace and the validation but trims the run to a
    // couple of seconds; the committed BENCH_simcore.json comes from full.
    let (mode, scale) = if smoke { ("smoke", 1) } else { ("full", 20) };

    let results = run_all(scale);
    for r in &results {
        println!(
            "{:<10} {:>12} accesses  scalar {:>12.0}/s  batched {:>12.0}/s  speedup {:>6.2}x  ({} batched, {} fallback lines)",
            r.name,
            r.accesses,
            r.scalar_aps(),
            r.batched_aps(),
            r.speedup(),
            r.batched_lines,
            r.fallbacks,
        );
    }

    let json = to_json(&results, mode);
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("perfbench: cannot write {path}: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = validate(&path) {
        eprintln!("perfbench: invalid output: {e}");
        return ExitCode::FAILURE;
    }
    println!("perfbench: wrote {path}");

    let hot = results.iter().find(|r| r.name == "scan_hot").expect("hot");
    if !smoke && hot.speedup() < 5.0 {
        eprintln!(
            "perfbench: scan_hot speedup {:.2}x is below the 5x target",
            hot.speedup()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
