//! Run every experiment binary in sequence (the full reproduction).
//!
//! `cargo run --release -p bench --bin repro_all` regenerates every table
//! and figure; the output sections match DESIGN.md's experiment index and
//! feed EXPERIMENTS.md.

use std::process::Command;

const BINS: [&str; 18] = [
    "fig01_energy_timeline",
    "fig03_traversal",
    "fig04_structures",
    "table1_microbench_behaviour",
    "table2_microop_energy",
    "table3_verification",
    "fig05_pstate_distribution",
    "fig06_basic_ops",
    "fig07_tpch",
    "fig08_data_size",
    "fig09_knobs",
    "fig10_cpu2006",
    "fig11_pstates",
    "table5_memory_bound",
    "sec5_dvfs_tradeoff",
    "ext_writes",
    "ext_custom_dvfs",
    "future_nosql",
];

const ARM_BINS: [&str; 2] = ["fig13_dtcm_poc", "ablation_dtcm"];

fn main() {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("target dir");
    let mut failures = Vec::new();
    for bin in BINS.into_iter().chain(ARM_BINS) {
        println!("\n########################################################");
        println!("# {bin}");
        println!("########################################################");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failures.push(bin);
        }
    }
    if !failures.is_empty() {
        eprintln!("\nFAILED experiments: {failures:?}");
        std::process::exit(1);
    }
    println!("\nall experiments completed");
}
