//! Run the full reproduction suite through the `mjrt` scheduler.
//!
//! `cargo run --release -p bench --bin repro_all` regenerates every table
//! and figure; the output sections match DESIGN.md's experiment index and
//! feed EXPERIMENTS.md. Useful flags (see `mjrt::config::USAGE`):
//!
//! * `--jobs N` — run experiment shards on N worker threads. The report
//!   stream on stdout is byte-identical for any N; only wall-clock changes.
//! * `--filter SUBSTR` — run only experiments whose name contains SUBSTR.
//! * `--list` — print the registered experiment names and exit.
//! * `--csv` — write plotting-ready CSVs into a fresh per-run directory.
//! * `--trace[=DIR]` — write energy-attributed traces (`trace.jsonl` +
//!   Chrome-format `trace.json`) into the run directory (or DIR).
//! * `--metrics` — print the metrics summary (stderr) and write
//!   `metrics.json` into the run directory.
//!
//! The host-time summary goes to stderr so stdout stays deterministic;
//! `--trace`/`--metrics` never change stdout either.

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--list") {
        args.remove(pos);
        for exp in bench::experiments::REGISTRY {
            println!("{}", exp.name());
        }
        return;
    }
    let cfg = match mjrt::HarnessConfig::from_env_and_args(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };

    // Keep stderr UNLOCKED: workers print csv/panic messages to stderr from
    // their own threads, and a lock held across the whole suite would
    // deadlock them (stdout is safe to lock — only the aggregator writes it).
    let mut stdout = std::io::stdout().lock();
    let mut stderr = std::io::stderr();
    let outcome = mjrt::run_suite(bench::experiments::REGISTRY, &cfg, &mut stdout, &mut stderr)
        .expect("write report stream");
    drop(stdout);

    let failures = outcome.failures();
    if !failures.is_empty() {
        eprintln!("\nFAILED experiments: {failures:?}");
        std::process::exit(1);
    }
    println!("\nall experiments completed");
}
