//! Thin wrapper over the `fig08_data_size` experiment registered in
//! `bench::experiments`; flags/env are parsed by `mjrt::HarnessConfig`.

fn main() {
    bench::run_bin("fig08_data_size");
}
