//! Fig. 8 — impact of data size on the TPC-H average breakdown.
//!
//! The paper runs 100 MB / 500 MB / 1 GB and finds no significant change in
//! the distribution ("the L1D cache load/store is still the energy
//! bottleneck which is hardly affected by the data size"). We sweep 1:5:10
//! relative scales around the harness default.

use analysis::report::TextTable;
use analysis::Breakdown;
use bench::{calibrate_at, default_scale, share_header, share_row, Rig};
use engines::{EngineKind, KnobLevel};
use simcore::PState;
use workloads::{TpchQuery, TpchScale};

fn main() {
    let table = calibrate_at(PState::P36);
    let base = default_scale().0;
    let mut t = TextTable::new(share_header());
    let mut l1d = Vec::new();
    for kind in EngineKind::ALL {
        for (label, factor) in [("100MB", 1.0), ("500MB", 5.0), ("1GB", 10.0)] {
            let scale = TpchScale(base * factor / 2.0);
            let mut rig = Rig::tpch(kind, KnobLevel::Baseline, scale, PState::P36);
            let all: Vec<Breakdown> =
                TpchQuery::all().map(|q| rig.breakdown(&table, &q.plan())).collect();
            let merged = Breakdown::merge(&all).expect("queries ran");
            let name = format!("{}-{}", short(kind), label);
            t.row(share_row(&name, &merged));
            l1d.push((name, merged.l1d_share()));
        }
    }
    println!("== Fig. 8: impact of data size (TPC-H average) ==");
    print!("{}", t.render());
    bench::maybe_write_csv("fig08", &t);
    // Stability check: within each engine, the L1D share must not move much.
    println!();
    for chunk in l1d.chunks(3) {
        let vals: Vec<f64> = chunk.iter().map(|(_, v)| *v).collect();
        let spread = vals.iter().cloned().fold(f64::MIN, f64::max)
            - vals.iter().cloned().fold(f64::MAX, f64::min);
        println!(
            "{}: EL1D+EReg2L1D spread across sizes = {:.1} pp",
            chunk[0].0.split('-').next().expect("name"),
            spread * 100.0
        );
    }
}

fn short(kind: EngineKind) -> &'static str {
    match kind {
        EngineKind::Pg => "PG",
        EngineKind::Lite => "SQLite",
        EngineKind::My => "MySQL",
    }
}
