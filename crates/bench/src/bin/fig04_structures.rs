//! Fig. 4 — the micro-benchmark data structures, rendered from live chains:
//! (a) the array layout, (b) the sequential chain, (d) the εspan-permuted
//! chain whose logical order breaks physical locality.

use microbench::{ArrayBuf, ListChain};
use simcore::{ArchConfig, Cpu};

fn main() {
    let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());

    let arr = ArrayBuf::new(&mut cpu, 16 * 64).expect("array");
    println!("(a) B_L1D_array: {} items x 64 B, visited physically in order:", arr.items);
    println!("    [0][1][2]...[{}]\n", arr.items - 1);

    let seq = ListChain::sequential(&mut cpu, 16 * 64).expect("chain");
    println!("(b) B_L1D_list: f-pointers in physical order (logical = physical):");
    print!("    ");
    let mut p = seq.head;
    for _ in 0..seq.items {
        print!("[{}]→", (p - seq.region.addr) / 64);
        p = cpu.arena().read_u64(p).expect("f");
    }
    println!("(head)\n");

    let perm = ListChain::permuted(&mut cpu, 32 * 64, 4, 7).expect("perm");
    println!("(d) B_m (Algorithm 3): logical order is an espan-constrained permutation;");
    println!("    physical jump per hop (lines):");
    print!("    ");
    let mut p = perm.head;
    for _ in 0..perm.items {
        let next = cpu.arena().read_u64(p).expect("f");
        print!("{:+} ", (next as i64 - p as i64) / 64);
        p = next;
    }
    println!("\n\nThe long jumps are what defeat LRU + the streamer: reuse distance =");
    println!("working-set size, so every access misses all levels smaller than it.");
}
