//! Thin wrapper over the `fig04_structures` experiment registered in
//! `bench::experiments`; flags/env are parsed by `mjrt::HarnessConfig`.

fn main() {
    bench::run_bin("fig04_structures");
}
