//! Table 2 — solved per-micro-op energies (nJ) at P36 / P24 / P12.
//!
//! Paper reference (nJ):
//! ```text
//!              P36    P24    P12
//! ΔE_L1D       1.30   0.90   0.60
//! ΔE_L2        4.37   3.25   1.64
//! ΔE_L3/pf^L2  6.64   5.91   5.33
//! ΔE_mem/pf^L3 103.1  99.1   99.04
//! ΔE_Reg2L1D   2.42   1.60   1.10
//! ΔE_stall     1.72   1.07   0.80
//! ΔE_add       1.03   ΔE_nop 0.65      (P36 only)
//! ```

use analysis::report::TextTable;
use analysis::MicroOp;
use bench::calibrate_at;
use simcore::PState;

fn main() {
    let tables: Vec<_> =
        [PState::P36, PState::P24, PState::P12].iter().map(|&ps| calibrate_at(ps)).collect();
    let mut t = TextTable::new(["Micro-operation", "P36 (3.6GHz)", "P24 (2.4GHz)", "P12 (1.2GHz)"]);
    let row = |label: &str, f: &dyn Fn(&analysis::EnergyTable) -> f64| {
        [label.to_owned()]
            .into_iter()
            .chain(tables.iter().map(|tb| format!("{:.2}", f(tb))))
            .collect::<Vec<_>>()
    };
    t.row(row("dE_L1D", &|tb| tb.de_nj(MicroOp::L1d)));
    t.row(row("dE_L2", &|tb| tb.de_nj(MicroOp::L2)));
    t.row(row("dE_L3, dE_pf^L2", &|tb| tb.de_nj(MicroOp::L3)));
    t.row(row("dE_mem, dE_pf^L3", &|tb| tb.de_nj(MicroOp::Mem)));
    t.row(row("dE_Reg2L1D", &|tb| tb.de_nj(MicroOp::Reg2L1d)));
    t.row(row("dE_stall", &|tb| tb.de_nj(MicroOp::Stall)));
    t.row(row("dE_add", &|tb| tb.de_add * 1e9));
    t.row(row("dE_nop", &|tb| tb.de_nop * 1e9));
    println!("== Table 2: solved energy cost of micro-operations (nJ) ==");
    print!("{}", t.render());
    println!(
        "\nbackground @P36: core {:.2} W, package {:.2} W, memory {:.2} W",
        tables[0].background.core_w, tables[0].background.package_w, tables[0].background.memory_w
    );
}
