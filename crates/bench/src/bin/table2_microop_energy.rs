//! Thin wrapper over the `table2_microop_energy` experiment registered in
//! `bench::experiments`; flags/env are parsed by `mjrt::HarnessConfig`.

fn main() {
    bench::run_bin("table2_microop_energy");
}
