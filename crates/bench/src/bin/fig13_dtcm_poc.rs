//! §4.3 / Fig. 13 — the DTCM proof of concept on the ARM1176JZF-S-like
//! machine: per-query energy saving and performance improvement of the
//! co-designed Lite engine vs. the unmodified Lite engine.
//!
//! Paper reference: `B_DTCM_array` saves ~10% vs `B_L1D_array` (the peak);
//! the optimised SQLite saves 6% on average (60% of peak) and *gains* ~1.5%
//! performance; 64% of queries get faster.

use analysis::report::TextTable;
use engines::{DtcmConfig, DtcmDatabase, EngineKind};
use microbench::runner::{bench_cpu, RunConfig};
use microbench::MicroBenchId;
use simcore::{ArchConfig, Cpu, Measurement, PState};
use storage::Row;
use workloads::tpch::gen::build_tpch_db;
use workloads::{TpchQuery, TpchScale};

/// The paper's 10 MB / small-setting ARM experiment (scale 10 = 10 "paper MB").
fn arm_scale() -> TpchScale {
    TpchScale(bench::env_f64("MJ_ARM_SCALE", 10.0))
}

fn main() {
    // Peak saving: B_DTCM_array vs B_L1D_array on the ARM part.
    let cfg = RunConfig {
        pstate: PState(7),
        target_ops: bench::CAL_OPS,
        ..RunConfig::p36()
    };
    let run = |id: MicroBenchId| {
        let mut cpu = bench_cpu(ArchConfig::arm1176jzf_s(), &cfg);
        let r = id.run(&mut cpu, &cfg);
        r.measurement.rapl.total_j()
    };
    let e_l1d = run(MicroBenchId::L1dArray);
    let e_tcm = run(MicroBenchId::DtcmArray);
    let peak = (1.0 - e_tcm / e_l1d) * 100.0;
    println!("== Sec 4.3: peak DTCM saving ==");
    println!("B_L1D_array {e_l1d:.4} J | B_DTCM_array {e_tcm:.4} J | peak saving {peak:.1}%\n");

    // Per-query comparison (ARM, small knobs, reduced 10 MB stand-in).
    let scale = arm_scale();
    let hot: Vec<&str> = vec![
        "lineitem", "orders", "customer", "part", "partsupp", "supplier", "nation", "region",
    ];

    let mut base_cpu = Cpu::new(ArchConfig::arm1176jzf_s());
    base_cpu.set_prefetch(true);
    let mut base_db = {
        let mut db = build_tpch_db(&mut base_cpu, EngineKind::Lite, engines::KnobLevel::Small, scale)
            .expect("load baseline");
        db.knobs = engines::Knobs::arm_small();
        db
    };

    let mut opt_cpu = Cpu::new(ArchConfig::arm1176jzf_s());
    opt_cpu.set_prefetch(true);
    let opt_base = {
        let mut db =
            build_tpch_db(&mut opt_cpu, EngineKind::Lite, engines::KnobLevel::Small, scale)
                .expect("load optimised");
        db.knobs = engines::Knobs::arm_small();
        db
    };
    let mut opt_db = DtcmDatabase::configure(&mut opt_cpu, opt_base, &hot, DtcmConfig::default())
        .expect("configure DTCM");
    println!("DTCM pins: {} pages + 4 KB special variables\n", opt_db.pinned_pages());

    let mut t = TextTable::new(["Query", "E_base (J)", "E_dtcm (J)", "saving%", "perf_improve%"]);
    let (mut savings, mut perfs, mut rows_checked) = (Vec::new(), Vec::new(), 0usize);
    for q in TpchQuery::all() {
        let plan = q.plan();
        let (m_base, r_base) = profile(&mut base_cpu, &plan, |c, p| base_db.run(c, p).expect("base"));
        let (m_opt, r_opt) = profile(&mut opt_cpu, &plan, |c, p| opt_db.run(c, p).expect("dtcm"));
        assert_eq!(canon(r_base), canon(r_opt), "{} results diverged", q.name());
        rows_checked += 1;
        let saving = (1.0 - m_opt.rapl.total_j() / m_base.rapl.total_j()) * 100.0;
        let perf = (1.0 - m_opt.time_s / m_base.time_s) * 100.0;
        savings.push(saving);
        perfs.push(perf);
        t.row([
            q.name(),
            format!("{:.5}", m_base.rapl.total_j()),
            format!("{:.5}", m_opt.rapl.total_j()),
            format!("{saving:.2}"),
            format!("{perf:.2}"),
        ]);
    }
    println!("== Fig. 13: per-query energy saving and performance improvement ==");
    print!("{}", t.render());
    let avg_saving = savings.iter().sum::<f64>() / savings.len() as f64;
    let avg_perf = perfs.iter().sum::<f64>() / perfs.len() as f64;
    let faster = perfs.iter().filter(|&&p| p > 0.0).count();
    println!(
        "\naverage saving {avg_saving:.2}% (= {:.0}% of the {peak:.1}% peak) | average perf {avg_perf:+.2}% | {faster}/{} queries faster | {rows_checked} result sets verified equal",
        avg_saving / peak * 100.0,
        perfs.len(),
    );
}

fn profile<F: FnMut(&mut Cpu, &engines::Plan) -> Vec<Row>>(
    cpu: &mut Cpu,
    plan: &engines::Plan,
    mut run: F,
) -> (Measurement, Vec<Row>) {
    run(cpu, plan); // warm
    let tok = cpu.begin_measure();
    let rows = run(cpu, plan);
    (cpu.end_measure(tok), rows)
}

fn canon(mut rows: Vec<Row>) -> Vec<String> {
    let mut out: Vec<String> = rows.drain(..).map(|r| format!("{r:?}")).collect();
    out.sort();
    out
}
