//! Thin wrapper over the `fig13_dtcm_poc` experiment registered in
//! `bench::experiments`; flags/env are parsed by `mjrt::HarnessConfig`.

fn main() {
    bench::run_bin("fig13_dtcm_poc");
}
