//! Thin wrapper over the `table3_verification` experiment registered in
//! `bench::experiments`; flags/env are parsed by `mjrt::HarnessConfig`.

fn main() {
    bench::run_bin("table3_verification");
}
