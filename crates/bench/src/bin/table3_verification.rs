//! Table 3 — verification micro-benchmarks: estimated vs measured Active
//! energy and per-benchmark accuracy.
//!
//! Paper reference: accuracies 87.22–97.08%, average 93.47%.

use analysis::report::TextTable;
use analysis::verify::{mean_accuracy, verify_all};
use bench::calibrate_at;
use microbench::RunConfig;
use simcore::PState;

fn main() {
    let table = calibrate_at(PState::P36);
    let cfg = RunConfig { target_ops: bench::CAL_OPS, ..RunConfig::p36() };
    let results = verify_all(&table, &cfg);
    let mut t = TextTable::new(["Verification benchmark", "E_est (J)", "E_meas (J)", "acc%"]);
    for r in &results {
        t.row([
            r.name.to_owned(),
            format!("{:.4}", r.estimated_j),
            format!("{:.4}", r.measured_j),
            format!("{:.2}", r.acc * 100.0),
        ]);
    }
    println!("== Table 3: verification of solved dE_m (P36) ==");
    print!("{}", t.render());
    println!("\naverage accuracy: {:.2}% (paper: 93.47%)", mean_accuracy(&results) * 100.0);
}
