//! Thin wrapper over the `sec5_dvfs_tradeoff` experiment registered in
//! `bench::experiments`; flags/env are parsed by `mjrt::HarnessConfig`.

fn main() {
    bench::run_bin("sec5_dvfs_tradeoff");
}
