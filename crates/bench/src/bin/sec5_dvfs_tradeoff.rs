//! §5 — DVFS trade-offs for memory-bound vs CPU-bound query scenarios.
//!
//! Paper reference: lowering P36→P24,
//!
//! * `B_mem`: −7% performance for −46% Eactive (energy-efficiency +70%),
//! * PG index scan: −20% performance for −27% Eactive (efficiency +10%),
//! * PG table scan: −30% performance for −28% Eactive (efficiency −3%),
//!
//! so a customized DVFS policy should downclock index-intensive plans only.

use analysis::active::active_energy;
use bench::{calibrate_at, Rig};
use engines::{EngineKind, KnobLevel};
use microbench::runner::{bench_cpu, RunConfig};
use microbench::MicroBenchId;
use simcore::{ArchConfig, PState};
use workloads::BasicOp;

struct Outcome {
    time_s: f64,
    active_j: f64,
}

fn main() {
    println!("== Sec. 5: trading frequency for energy (P36 -> P24) ==");
    println!();
    let t36 = calibrate_at(PState::P36);
    let t24 = calibrate_at(PState::P24);

    // B_mem micro-benchmark.
    let bmem = |ps: PState, table: &analysis::EnergyTable| {
        let cfg = RunConfig { pstate: ps, target_ops: bench::CAL_OPS, ..RunConfig::p36() };
        let mut cpu = bench_cpu(ArchConfig::intel_i7_4790(), &cfg);
        let run = MicroBenchId::Mem.run(&mut cpu, &cfg);
        Outcome {
            time_s: run.measurement.time_s,
            active_j: active_energy(&run.measurement, &table.background).active_j,
        }
    };
    report("B_mem (memory-bound)", bmem(PState::P36, &t36), bmem(PState::P24, &t24));

    // PG index scan vs table scan. A larger-than-default scale makes the
    // index scan genuinely memory-bound (its random fetches overflow L3),
    // which is the regime the paper's Sec. 5 experiment probes.
    let scale = workloads::TpchScale(bench::env_f64("MJ_SEC5_SCALE", 96.0));
    let pg = |op: BasicOp, ps: PState, table: &analysis::EnergyTable| {
        let mut rig = Rig::tpch(EngineKind::Pg, KnobLevel::Baseline, scale, ps);
        let m = rig.profile(&op.plan());
        Outcome { time_s: m.time_s, active_j: active_energy(&m, &table.background).active_j }
    };
    report(
        "PostgreSQL index scan",
        pg(BasicOp::IndexScan, PState::P36, &t36),
        pg(BasicOp::IndexScan, PState::P24, &t24),
    );
    report(
        "PostgreSQL table scan",
        pg(BasicOp::TableScan, PState::P36, &t36),
        pg(BasicOp::TableScan, PState::P24, &t24),
    );
}

fn report(name: &str, hi: Outcome, lo: Outcome) {
    let perf_loss = (lo.time_s / hi.time_s - 1.0) * 100.0;
    let energy_saving = (1.0 - lo.active_j / hi.active_j) * 100.0;
    // Energy-efficiency = Perf/Energy (the paper's [14] metric).
    let eff_hi = 1.0 / (hi.time_s * hi.active_j);
    let eff_lo = 1.0 / (lo.time_s * lo.active_j);
    println!(
        "{name}:\n  perf loss {perf_loss:+.1}% | Eactive saving {energy_saving:.1}% | energy-efficiency {:+.1}%\n",
        (eff_lo / eff_hi - 1.0) * 100.0
    );
}
