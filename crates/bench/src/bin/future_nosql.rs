//! Extension (the paper's §7 future work) — profile the energy cost of a
//! NoSQL system: the §2 methodology applied to an LSM key-value store under
//! YCSB-like mixes.
//!
//! The question the paper poses: does the L1D energy bottleneck generalise
//! beyond relational query workloads? The answer here: partially. Scan-
//! and compaction-heavy mixes look like relational scans (L1D-leaning);
//! point-read mixes spend their energy on bloom probes, index descents and
//! skip-list chases (stall-leaning) — between the paper's query workloads
//! and its CPU-bound workloads.

use analysis::report::TextTable;
use bench::{calibrate_at, share_header, share_row};
use nosql::{LsmConfig, LsmStore, Workload, YcsbMix};
use simcore::{ArchConfig, Cpu, PState};

fn main() {
    let table = calibrate_at(PState::P36);
    let mut t = TextTable::new(share_header());
    let mut summary = Vec::new();
    for mix in YcsbMix::ALL {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        cpu.set_prefetch(true);
        let mut store = LsmStore::open(&mut cpu, LsmConfig::default()).expect("open");
        let mut w =
            Workload::load(&mut cpu, &mut store, mix, 20_000, 100).expect("load");
        // Warm the read path.
        w.run(&mut cpu, &mut store, 1_000).expect("warm");
        let m = cpu.measure(|c| {
            w.run(c, &mut store, 5_000).expect("run");
        });
        let bd = table.breakdown(&m);
        t.row(share_row(mix.name(), &bd));
        summary.push((mix, bd.l1d_share(), bd.share(analysis::MicroOp::Stall)));
    }
    println!("== Future work (sec. 7): Eactive breakdown of an LSM KV store under YCSB ==");
    print!("{}", t.render());
    println!();
    for (mix, l1d, stall) in summary {
        println!(
            "{}: EL1D+EReg2L1D {:.1}% | Estall {:.1}%",
            mix.name(),
            l1d * 100.0,
            stall * 100.0
        );
    }
    println!("\nRelational query workloads sit at 39-67% L1D share (Figs. 6-7); CPU-bound at ~9% (Fig. 10).");
}
