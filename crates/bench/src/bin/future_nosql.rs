//! Thin wrapper over the `future_nosql` experiment registered in
//! `bench::experiments`; flags/env are parsed by `mjrt::HarnessConfig`.

fn main() {
    bench::run_bin("future_nosql");
}
