//! Thin wrapper over the `ext_rowcol` experiment registered in
//! `bench::experiments`; flags/env are parsed by `mjrt::HarnessConfig`.

fn main() {
    bench::run_bin("ext_rowcol");
}
