//! Table 1 — runtime behaviours of the micro-benchmarks: BLI, per-level
//! miss rates, IPC.
//!
//! Paper reference: B_L1D_list BLI 98.9 / IPC 0.26; B_L1D_array IPC 2.02;
//! B_L2 L1D-miss 99.93% / L2-miss 0.02%; B_mem L3-miss 97.45% / IPC 0.005;
//! B_Reg2L1D IPC 1.01; B_add IPC 2.01; B_nop IPC 3.99.

use analysis::report::TextTable;
use microbench::runner::{bench_cpu, RunConfig};
use microbench::MicroBenchId;
use simcore::ArchConfig;

fn main() {
    let cfg = RunConfig { target_ops: bench::CAL_OPS, ..RunConfig::p36() };
    let mut t = TextTable::new(["Micro-benchmark", "BLI%", "L1D miss%", "L2 miss%", "L3 miss%", "IPC"]);
    let pct = |o: Option<f64>| o.map_or("-".to_owned(), |v| format!("{:.2}", v * 100.0));
    for id in MicroBenchId::X86_SET {
        let mut cpu = bench_cpu(ArchConfig::intel_i7_4790(), &cfg);
        let r = id.run(&mut cpu, &cfg);
        let p = &r.measurement.pmu;
        t.row([
            r.name.to_owned(),
            format!("{:.1}", r.bli * 100.0),
            pct(p.l1d_miss_rate()),
            pct(p.l2_miss_rate()),
            pct(p.l3_miss_rate()),
            format!("{:.3}", r.ipc()),
        ]);
    }
    println!("== Table 1: runtime behaviours of micro-benchmarks (P36, prefetch off) ==");
    print!("{}", t.render());
}
