//! Thin wrapper over the `table1_microbench_behaviour` experiment registered in
//! `bench::experiments`; flags/env are parsed by `mjrt::HarnessConfig`.

fn main() {
    bench::run_bin("table1_microbench_behaviour");
}
