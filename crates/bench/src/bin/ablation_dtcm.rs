//! Ablation of the §4.2 co-design strategies: which of the three DTCM
//! placements (database buffer / special variables / B-tree tops) buys the
//! energy saving and the performance improvement?

use analysis::report::TextTable;
use engines::{DtcmConfig, DtcmDatabase, EngineKind, KnobLevel, Knobs};
use simcore::{ArchConfig, Cpu};
use workloads::tpch::gen::build_tpch_db;
use workloads::{TpchQuery, TpchScale};

fn scale() -> TpchScale {
    TpchScale(bench::env_f64("MJ_ARM_SCALE", 10.0))
}

fn build(cpu: &mut Cpu) -> engines::Database {
    let mut db = build_tpch_db(cpu, EngineKind::Lite, KnobLevel::Small, scale()).expect("load");
    db.knobs = Knobs::arm_small();
    db
}

/// Suite totals (energy, time) for one DTCM configuration.
fn run_suite_with(cfg: DtcmConfig, itcm: f64) -> (f64, f64) {
    let mut cpu = Cpu::new(ArchConfig::arm1176jzf_s());
    cpu.set_prefetch(true);
    cpu.set_itcm_fetch_discount(itcm);
    let db = build(&mut cpu);
    let hot: Vec<&str> = vec![
        "lineitem", "orders", "customer", "part", "partsupp", "supplier", "nation", "region",
    ];
    let mut d = DtcmDatabase::configure(&mut cpu, db, &hot, cfg).expect("configure");
    let (mut e, mut t) = (0.0, 0.0);
    for q in TpchQuery::all() {
        let plan = q.plan();
        d.run(&mut cpu, &plan).expect("warm");
        let tok = cpu.begin_measure();
        d.run(&mut cpu, &plan).expect("measured");
        let m = cpu.end_measure(tok);
        e += m.rapl.total_j();
        t += m.time_s;
    }
    (e, t)
}

/// Baseline (no DTCM) suite totals.
fn run_baseline() -> (f64, f64) {
    let mut cpu = Cpu::new(ArchConfig::arm1176jzf_s());
    cpu.set_prefetch(true);
    let mut db = build(&mut cpu);
    let (mut e, mut t) = (0.0, 0.0);
    for q in TpchQuery::all() {
        let plan = q.plan();
        db.run(&mut cpu, &plan).expect("warm");
        let tok = cpu.begin_measure();
        db.run(&mut cpu, &plan).expect("measured");
        let m = cpu.end_measure(tok);
        e += m.rapl.total_j();
        t += m.time_s;
    }
    (e, t)
}

fn main() {
    let (be, bt) = run_baseline();
    let variants: [(&str, DtcmConfig); 4] = [
        ("buffer only (16K)", DtcmConfig { buffer_bytes: 16 << 10, vars_bytes: 0, btree_bytes: 0 }),
        ("special vars only (4K)", DtcmConfig { buffer_bytes: 0, vars_bytes: 4 << 10, btree_bytes: 0 }),
        ("btree tops only (12K)", DtcmConfig { buffer_bytes: 0, vars_bytes: 0, btree_bytes: 12 << 10 }),
        ("full co-design", DtcmConfig::default()),
    ];
    let mut t = TextTable::new(["configuration", "energy saving%", "perf improvement%"]);
    t.row(["baseline".to_owned(), "0.0".into(), "0.0".into()]);
    for (name, cfg) in variants {
        let (e, tt) = run_suite_with(cfg, 0.0);
        t.row([
            name.to_owned(),
            format!("{:.2}", (1.0 - e / be) * 100.0),
            format!("{:.2}", (1.0 - tt / bt) * 100.0),
        ]);
    }
    // §5's closing suggestion: add an instruction TCM on top.
    let (e, tt) = run_suite_with(DtcmConfig::default(), 0.4);
    t.row([
        "full + ITCM (sec. 5)".to_owned(),
        format!("{:.2}", (1.0 - e / be) * 100.0),
        format!("{:.2}", (1.0 - tt / bt) * 100.0),
    ]);
    println!("== Ablation: DTCM co-design strategies (suite totals) ==");
    print!("{}", t.render());
}
