//! Thin wrapper over the `ablation_dtcm` experiment registered in
//! `bench::experiments`; flags/env are parsed by `mjrt::HarnessConfig`.

fn main() {
    bench::run_bin("ablation_dtcm");
}
