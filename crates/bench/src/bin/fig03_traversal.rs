//! Fig. 3 — CPU execution behaviour of list vs array traversal over an
//! L1D-resident working set: the list's back-and-forth dependency forces
//! the pipeline to stall; the array dual-issues with no bubbles.

use microbench::runner::{bench_cpu, RunConfig};
use microbench::{ArrayBuf, ListChain};
use simcore::{ArchConfig, Event};

fn main() {
    let cfg = RunConfig::p36();
    println!("== Fig. 3: list vs array traversal (31 KB working set, P36) ==\n");

    let mut cpu = bench_cpu(ArchConfig::intel_i7_4790(), &cfg);
    let chain = ListChain::sequential(&mut cpu, 31 * 1024).expect("chain");
    chain.traverse(&mut cpu, 1).expect("warm");
    let m = cpu.measure(|c| chain.traverse(c, 40).expect("run"));
    let loads = m.pmu.get(Event::LoadIssued) as f64;
    println!(
        "list traversal:  {:.2} cycles/load = 1 busy + {:.2} stalled | IPC {:.2}",
        m.cycles / loads,
        m.pmu.get(Event::StallCycles) as f64 / loads,
        m.pmu.ipc()
    );
    per_load_diagram(m.cycles / loads);

    let mut cpu = bench_cpu(ArchConfig::intel_i7_4790(), &cfg);
    let arr = ArrayBuf::new(&mut cpu, 31 * 1024).expect("array");
    arr.traverse(&mut cpu, 1);
    let m = cpu.measure(|c| arr.traverse(c, 40));
    let loads = m.pmu.get(Event::LoadIssued) as f64;
    println!(
        "\narray traversal: {:.2} cycles/load, {} stalls | IPC {:.2}",
        m.cycles / loads,
        m.pmu.get(Event::StallCycles),
        m.pmu.ipc()
    );
    per_load_diagram(m.cycles / loads);
}

fn per_load_diagram(cycles_per_load: f64) {
    let total = cycles_per_load.round().max(1.0) as usize;
    let mut line = String::from("  per load: ");
    line.push('B');
    for _ in 1..total {
        line.push('S');
    }
    if total == 1 {
        line.push_str("  (dual-issued: two loads share a cycle)");
    }
    println!("{line}");
}
