//! Thin wrapper over the `fig03_traversal` experiment registered in
//! `bench::experiments`; flags/env are parsed by `mjrt::HarnessConfig`.

fn main() {
    bench::run_bin("fig03_traversal");
}
