//! # bench — the experiment harness
//!
//! Shared plumbing for the binaries that regenerate every table and figure
//! in the paper (see DESIGN.md §4 for the experiment index). Each binary
//! prints the paper-style rows; `repro_all` chains them and captures the
//! output for EXPERIMENTS.md.
//!
//! The simulator is deterministic, so one warm measured run replaces the
//! paper's 100 averaged runs; result display is disabled exactly as the
//! paper disables it (results are counted, never printed per-row).

use analysis::{Breakdown, CalibrationBuilder, EnergyTable};
use engines::{Database, EngineKind, KnobLevel, Plan};
use simcore::{ArchConfig, Cpu, Measurement, PState};
use workloads::{build_tpch_db, TpchScale};

/// Calibration op budget for harness runs (larger than the unit-test quick
/// budget; still seconds, not minutes).
pub const CAL_OPS: u64 = 120_000;

/// Calibrate the i7-4790 energy table at a P-state.
pub fn calibrate_at(ps: PState) -> EnergyTable {
    CalibrationBuilder::new(ArchConfig::intel_i7_4790())
        .pstate(ps)
        .target_ops(CAL_OPS)
        .calibrate()
}

/// A loaded engine + machine pair ready to profile plans.
pub struct Rig {
    /// The simulated machine.
    pub cpu: Cpu,
    /// The loaded database.
    pub db: Database,
}

impl Rig {
    /// Build a TPC-H rig for one engine (prefetcher on, P-state pinned —
    /// the paper's trunk configuration, §3).
    pub fn tpch(kind: EngineKind, level: KnobLevel, scale: TpchScale, ps: PState) -> Rig {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        cpu.set_prefetch(true);
        cpu.set_governor(false);
        cpu.set_pstate(ps);
        let db = build_tpch_db(&mut cpu, kind, level, scale).expect("load TPC-H");
        Rig { cpu, db }
    }

    /// Run `plan` once to warm caches/pool, then measure one run.
    pub fn profile(&mut self, plan: &Plan) -> Measurement {
        self.db.run(&mut self.cpu, plan).expect("warm run");
        let db = &mut self.db;
        self.cpu.measure(|c| {
            db.run(c, plan).expect("measured run");
        })
    }

    /// Profile and break down against a calibration table.
    pub fn breakdown(&mut self, table: &EnergyTable, plan: &Plan) -> Breakdown {
        let m = self.profile(plan);
        table.breakdown(&m)
    }
}

/// Format a share row: name + 8 percentages.
pub fn share_row(name: &str, bd: &Breakdown) -> Vec<String> {
    let mut cells = vec![name.to_owned()];
    cells.extend(analysis::report::share_cells(bd));
    cells
}

/// Standard table header for breakdown tables.
pub fn share_header() -> Vec<String> {
    let mut h = vec!["workload".to_owned()];
    h.extend(analysis::report::SHARE_HEADERS.iter().map(|s| s.to_string()));
    h
}

/// Simple environment override with default, for harness knobs
/// (`MJ_SCALE`, ...).
pub fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// When `MJ_CSV` is set, also write `table` to `results/<name>.csv`
/// (plotting-ready). Errors are reported but never fatal.
pub fn maybe_write_csv(name: &str, table: &analysis::report::TextTable) {
    if std::env::var("MJ_CSV").is_err() {
        return;
    }
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("MJ_CSV: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    if let Err(e) = std::fs::write(&path, table.to_csv()) {
        eprintln!("MJ_CSV: cannot write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
}

/// The harness's default TPC-H scale (override with `MJ_SCALE`, in "paper
/// megabytes").
pub fn default_scale() -> TpchScale {
    TpchScale(env_f64("MJ_SCALE", TpchScale::baseline().0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_f64_parses_and_defaults() {
        std::env::remove_var("MJ_TEST_KNOB");
        assert_eq!(env_f64("MJ_TEST_KNOB", 4.5), 4.5);
        std::env::set_var("MJ_TEST_KNOB", "2.25");
        assert_eq!(env_f64("MJ_TEST_KNOB", 4.5), 2.25);
        std::env::set_var("MJ_TEST_KNOB", "junk");
        assert_eq!(env_f64("MJ_TEST_KNOB", 4.5), 4.5);
        std::env::remove_var("MJ_TEST_KNOB");
    }

    #[test]
    fn share_row_has_header_arity() {
        // Header has 9 columns: workload + 8 shares.
        assert_eq!(share_header().len(), 9);
    }
}
