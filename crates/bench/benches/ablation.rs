//! Ablations of the design choices DESIGN.md §5 calls out, measured as
//! *simulated* time and energy (printed) while Criterion tracks host time.
//!
//! 1. Dependency-tagged loads vs a naive all-chase model (DESIGN §5.2): the
//!    tagged model is what lets array traversal hit IPC 2 while list
//!    traversal sits at 0.25 — without it, Table 1 and Fig. 3 collapse.
//! 2. Prefetcher on vs off for a streaming scan: the L2 streamer is what
//!    turns scan DRAM hits into L2/L3 hits (and moves energy into `E_pf`).
//! 3. DRAM row-buffer model on sequential vs random misses.

use criterion::{criterion_group, criterion_main, Criterion};
use simcore::{ArchConfig, Cpu, Dep};
use std::sync::Once;

/// Print each configuration's simulated cost once, not per criterion pass.
fn print_once(once: &Once, msg: String) {
    once.call_once(|| println!("{msg}"));
}

const LINES: u64 = 64 * 1024; // 4 MB sweep

fn sweep(cpu: &mut Cpu, region: simcore::Region, dep: Dep) -> (f64, f64) {
    let t = cpu.measure(|c| {
        for i in 0..LINES {
            c.load(region.addr + (i % (region.len / 64)) * 64, dep);
        }
    });
    (t.time_s, t.rapl.total_j())
}

fn ablation_dependency_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation-dependency-model");
    g.sample_size(10);
    static ONCE_A: Once = Once::new();
    static ONCE_B: Once = Once::new();
    for (name, dep, once) in [
        ("tagged_stream", Dep::Stream, &ONCE_A),
        ("naive_all_chase", Dep::Chase, &ONCE_B),
    ] {
        g.bench_function(name, |b| {
            let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
            cpu.set_prefetch(true);
            let r = cpu.alloc(4 << 20).unwrap();
            let (t, e) = sweep(&mut cpu, r, dep);
            print_once(
                once,
                format!("{name}: simulated {t:.6} s, {e:.6} J for a 4 MB sweep"),
            );
            b.iter(|| sweep(&mut cpu, r, dep))
        });
    }
    g.finish();
}

fn ablation_prefetcher(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation-prefetcher");
    g.sample_size(10);
    static ONCE_ON: Once = Once::new();
    static ONCE_OFF: Once = Once::new();
    for (name, pf, once) in [
        ("prefetch_on", true, &ONCE_ON),
        ("prefetch_off", false, &ONCE_OFF),
    ] {
        g.bench_function(name, |b| {
            let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
            cpu.set_prefetch(pf);
            let r = cpu.alloc(16 << 20).unwrap();
            let (t, e) = sweep(&mut cpu, r, Dep::Stream);
            print_once(
                once,
                format!("{name}: simulated {t:.6} s, {e:.6} J for a 4 MB streaming sweep"),
            );
            b.iter(|| sweep(&mut cpu, r, Dep::Stream))
        });
    }
    g.finish();
}

fn ablation_row_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation-row-buffer");
    g.sample_size(10);
    // Sequential misses ride the open row; a large-stride pattern breaks it.
    static ONCE_SEQ: Once = Once::new();
    static ONCE_STR: Once = Once::new();
    for (name, stride, once) in [
        ("sequential_row_hits", 1u64, &ONCE_SEQ),
        ("strided_row_misses", 129, &ONCE_STR),
    ] {
        g.bench_function(name, |b| {
            let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
            cpu.set_prefetch(false);
            let r = cpu.alloc(64 << 20).unwrap();
            let lines = r.len / 64;
            let run = |cpu: &mut Cpu| {
                let m = cpu.measure(|c| {
                    let mut pos = 0u64;
                    for _ in 0..LINES {
                        c.load(r.addr + pos * 64, Dep::Stream);
                        pos = (pos + stride) % lines;
                    }
                });
                m.rapl.memory_j
            };
            let e = run(&mut cpu);
            print_once(once, format!("{name}: {e:.6} J in the memory domain"));
            b.iter(|| run(&mut cpu))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_dependency_model,
    ablation_prefetcher,
    ablation_row_buffer
);
criterion_main!(benches);
