//! Criterion benchmarks of the simulator substrate itself: how fast the
//! simulated machine retires simulated work. These guard the harness's own
//! performance (a slow simulator makes the experiment suite impractical).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use engines::{EngineKind, KnobLevel};
use simcore::{ArchConfig, Cpu, Dep};
use storage::{BTree, BufferPool, PageStore};
use workloads::tpch::gen::build_tpch_db;
use workloads::{TpchQuery, TpchScale};

fn bench_loads(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulated-loads");
    g.throughput(Throughput::Elements(4096));

    g.bench_function("stream_l1_resident", |b| {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let r = cpu.alloc(16 * 1024).unwrap();
        b.iter(|| {
            for i in 0..4096u64 {
                cpu.load(r.addr + (i % 256) * 64, Dep::Stream);
            }
        })
    });

    g.bench_function("chase_l1_resident", |b| {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let r = cpu.alloc(16 * 1024).unwrap();
        b.iter(|| {
            for i in 0..4096u64 {
                cpu.load(r.addr + (i % 256) * 64, Dep::Chase);
            }
        })
    });

    g.bench_function("stream_dram_with_prefetch", |b| {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        cpu.set_prefetch(true);
        let r = cpu.alloc(64 * 1024 * 1024).unwrap();
        let mut pos = 0u64;
        b.iter(|| {
            for _ in 0..4096u64 {
                cpu.load(r.addr + pos * 64, Dep::Stream);
                pos = (pos + 1) % (r.len / 64);
            }
        })
    });
    g.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulated-btree");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("lookup_100k", |b| {
        let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
        let mut store = PageStore::new(8192);
        let mut pool = BufferPool::new(64 << 20, 8192);
        let pairs: Vec<(i64, u64)> = (0..100_000).map(|k| (k, k as u64)).collect();
        let tree = BTree::bulk_load(&mut cpu, &mut store, &pairs).unwrap();
        let mut k = 0i64;
        b.iter(|| {
            for _ in 0..1000 {
                k = (k + 99_991) % 100_000;
                assert!(tree.lookup(&mut cpu, &store, &mut pool, k).is_some());
            }
        })
    });
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulated-query");
    g.sample_size(10);
    for kind in EngineKind::ALL {
        g.bench_function(format!("tpch_q6_{}", kind.name()), |b| {
            let mut cpu = Cpu::new(ArchConfig::intel_i7_4790());
            cpu.set_prefetch(true);
            let mut db =
                build_tpch_db(&mut cpu, kind, KnobLevel::Baseline, TpchScale::tiny()).unwrap();
            let plan = TpchQuery(6).plan();
            db.session().run(&mut cpu, &plan).unwrap();
            b.iter(|| db.session().run(&mut cpu, &plan).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_loads, bench_btree, bench_query);
criterion_main!(benches);
