//! A set-associative, write-back, write-allocate cache with true-LRU
//! replacement.
//!
//! The cache tracks *which lines are resident*, not their contents — data
//! bytes live in the [`crate::Arena`]. Residency is what determines hit/miss
//! counts, timing and energy, which is all the paper's methodology consumes.

use crate::arch::CacheConfig;

/// One cache way.
#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic per-cache stamp for LRU ordering.
    lru: u64,
    /// Set when the line was filled by the prefetcher and not yet demanded.
    prefetched: bool,
}

const EMPTY: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    lru: 0,
    prefetched: false,
};

/// Result of a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Line was resident.
    Hit {
        /// Whether this is the first demand touch of a prefetched line
        /// (a useful prefetch).
        was_prefetched: bool,
    },
    /// Line was absent.
    Miss,
}

/// Outcome of inserting a line: the victim, if a dirty line was evicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fill {
    /// Dirty victim line address that must be written back, if any.
    pub writeback: Option<u64>,
    /// Clean victim line address, if a valid line was displaced.
    pub evicted: Option<u64>,
}

/// Shift that turns a byte address into a line number (lines are
/// power-of-two sized, so division is a shift).
const LINE_SHIFT: u32 = crate::LINE.trailing_zeros();

/// A single cache level.
pub struct Cache {
    lines: Vec<Line>,
    ways: usize,
    sets: u64,
    /// `log2(sets)`, precomputed so `tag_of` is two shifts, not two divides.
    set_shift: u32,
    stamp: u64,
}

impl Cache {
    /// Build a cache from its geometry.
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            lines: vec![EMPTY; (sets * cfg.ways as u64) as usize],
            ways: cfg.ways as usize,
            sets,
            set_shift: sets.trailing_zeros(),
            stamp: 0,
        }
    }

    fn set_of(&self, line_addr: u64) -> usize {
        ((line_addr >> LINE_SHIFT) & (self.sets - 1)) as usize
    }

    fn tag_of(&self, line_addr: u64) -> u64 {
        (line_addr >> LINE_SHIFT) >> self.set_shift
    }

    fn set_slice(&mut self, set: usize) -> &mut [Line] {
        let s = set * self.ways;
        &mut self.lines[s..s + self.ways]
    }

    /// Demand access to the line containing `line_addr`. Updates LRU on hit;
    /// does **not** fill on miss (the hierarchy decides what to fill where).
    pub fn access(&mut self, line_addr: u64, write: bool) -> Lookup {
        self.stamp += 1;
        let stamp = self.stamp;
        let tag = self.tag_of(line_addr);
        let set = self.set_of(line_addr);
        for l in self.set_slice(set) {
            if l.valid && l.tag == tag {
                l.lru = stamp;
                if write {
                    l.dirty = true;
                }
                let was_prefetched = l.prefetched;
                l.prefetched = false;
                return Lookup::Hit { was_prefetched };
            }
        }
        Lookup::Miss
    }

    /// Demand-access up to `max_lines` *sequential* lines starting at the
    /// line containing `line_addr`, stopping at the first miss. Returns the
    /// number of leading hits.
    ///
    /// Each counted hit is state-identical to one [`Cache::access`] call:
    /// the stamp advances by one, the way is restamped most-recent, a write
    /// dirties it and the `prefetched` flag is cleared. The terminating miss
    /// probe consumes **no** stamp — the caller re-drives that line through
    /// the scalar path, whose own `access` performs the stamp increment the
    /// scalar sequence would have seen.
    pub fn access_run(&mut self, line_addr: u64, max_lines: u64, write: bool) -> u64 {
        let mut ln = line_addr >> LINE_SHIFT;
        let mask = self.sets - 1;
        let mut hits = 0u64;
        while hits < max_lines {
            let set = (ln & mask) as usize;
            let tag = ln >> self.set_shift;
            let s = set * self.ways;
            let stamp = self.stamp + 1;
            let mut hit = false;
            for l in &mut self.lines[s..s + self.ways] {
                if l.valid && l.tag == tag {
                    l.lru = stamp;
                    if write {
                        l.dirty = true;
                    }
                    l.prefetched = false;
                    hit = true;
                    break;
                }
            }
            if !hit {
                break;
            }
            self.stamp = stamp;
            hits += 1;
            ln += 1;
        }
        hits
    }

    /// `n` repeated demand accesses to one resident line, in O(1). Returns
    /// `false` (no state change) if the line is not resident.
    ///
    /// Equivalent to `n` [`Cache::access`] calls: the stamp advances by `n`
    /// and the way ends up stamped with the final value — the intermediate
    /// stamps are unobservable because no other access interleaves.
    pub fn access_repeat(&mut self, line_addr: u64, n: u64, write: bool) -> bool {
        if n == 0 {
            return true;
        }
        let ln = line_addr >> LINE_SHIFT;
        let set = ((ln & (self.sets - 1)) as usize) * self.ways;
        let tag = ln >> self.set_shift;
        let stamp = self.stamp + n;
        let mut hit = false;
        for l in &mut self.lines[set..set + self.ways] {
            if l.valid && l.tag == tag {
                l.lru = stamp;
                if write {
                    l.dirty = true;
                }
                l.prefetched = false;
                hit = true;
                break;
            }
        }
        if hit {
            self.stamp = stamp;
        }
        hit
    }

    /// Probe without touching LRU or dirty state.
    pub fn probe(&self, line_addr: u64) -> bool {
        let tag = self.tag_of(line_addr);
        let set = self.set_of(line_addr);
        let s = set * self.ways;
        self.lines[s..s + self.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Insert the line containing `line_addr`, evicting the LRU way if the
    /// set is full. `prefetch` marks the line as prefetcher-filled.
    pub fn fill(&mut self, line_addr: u64, dirty: bool, prefetch: bool) -> Fill {
        self.stamp += 1;
        let stamp = self.stamp;
        let tag = self.tag_of(line_addr);
        let set = self.set_of(line_addr);
        let sets = self.sets;
        let set_lines = self.set_slice(set);

        // Already resident (e.g. racing prefetch): refresh flags only.
        if let Some(l) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.lru = stamp;
            l.dirty |= dirty;
            return Fill {
                writeback: None,
                evicted: None,
            };
        }

        let victim = set_lines
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("cache set has at least one way");

        let mut out = Fill {
            writeback: None,
            evicted: None,
        };
        if victim.valid {
            let victim_addr = (victim.tag * sets + set as u64) * crate::LINE;
            if victim.dirty {
                out.writeback = Some(victim_addr);
            } else {
                out.evicted = Some(victim_addr);
            }
        }
        *victim = Line {
            tag,
            valid: true,
            dirty,
            lru: stamp,
            prefetched: prefetch,
        };
        out
    }

    /// Drop the line if resident, reporting a dirty writeback address.
    pub fn invalidate(&mut self, line_addr: u64) -> Option<u64> {
        let tag = self.tag_of(line_addr);
        let set = self.set_of(line_addr);
        for l in self.set_slice(set) {
            if l.valid && l.tag == tag {
                l.valid = false;
                return if l.dirty { Some(line_addr) } else { None };
            }
        }
        None
    }

    /// Drop every line (used between independent measurement runs).
    pub fn flush(&mut self) {
        self.lines.fill(EMPTY);
        self.stamp = 0;
    }

    /// Number of valid lines (test/diagnostic helper).
    pub fn resident(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.lines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways = 8 lines of 64B.
        Cache::new(&CacheConfig {
            size: 8 * 64,
            ways: 2,
            latency_cycles: 1,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(0, false), Lookup::Miss);
        c.fill(0, false, false);
        assert_eq!(
            c.access(0, false),
            Lookup::Hit {
                was_prefetched: false
            }
        );
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Addresses mapping to set 0: line numbers 0, 4, 8 -> addrs 0, 256, 512.
        c.fill(0, false, false);
        c.fill(256, false, false);
        c.access(0, false); // make line 0 most recent
        let f = c.fill(512, false, false);
        assert_eq!(f.evicted, Some(256));
        assert!(c.probe(0));
        assert!(!c.probe(256));
        assert!(c.probe(512));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(0, true, false);
        c.fill(256, false, false);
        let f = c.fill(512, false, false);
        assert_eq!(f.writeback, Some(0));
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = tiny();
        c.fill(0, false, false);
        c.access(0, true); // dirty line 0, refresh LRU
        c.fill(256, false, false);
        // Set 0 holds {0 (older), 256 (newer)}: victim is the dirty line 0.
        let f = c.fill(512, false, false);
        assert_eq!(f.writeback, Some(0));
        assert_eq!(f.evicted, None);
    }

    #[test]
    fn prefetched_flag_cleared_on_first_demand_touch() {
        let mut c = tiny();
        c.fill(0, false, true);
        assert_eq!(
            c.access(0, false),
            Lookup::Hit {
                was_prefetched: true
            }
        );
        assert_eq!(
            c.access(0, false),
            Lookup::Hit {
                was_prefetched: false
            }
        );
    }

    #[test]
    fn sub_line_addresses_map_to_same_line() {
        let mut c = tiny();
        c.fill(0, false, false);
        assert_eq!(
            c.access(63, false),
            Lookup::Hit {
                was_prefetched: false
            }
        );
        assert_eq!(c.access(64, false), Lookup::Miss);
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.fill(0, false, false);
        c.flush();
        assert_eq!(c.resident(), 0);
        assert_eq!(c.access(0, false), Lookup::Miss);
    }

    #[test]
    fn permutation_traversal_bigger_than_cache_always_misses_after_warmup() {
        // Reuse-distance argument from DESIGN.md §5.3: a permutation cycle over
        // N lines > capacity misses every access under LRU.
        let mut c = tiny(); // 8 lines capacity
        let lines: Vec<u64> = (0..16u64).map(|i| i * 64).collect();
        for &a in &lines {
            if c.access(a, false) == Lookup::Miss {
                c.fill(a, false, false);
            }
        }
        let mut misses = 0;
        for &a in &lines {
            if c.access(a, false) == Lookup::Miss {
                misses += 1;
                c.fill(a, false, false);
            }
        }
        assert_eq!(misses, 16);
    }

    /// Drive the same line sequence through `access` and `access_run` on two
    /// caches and require identical observable state afterwards.
    fn assert_state_equal(a: &mut Cache, b: &mut Cache, probe_lines: &[u64]) {
        assert_eq!(a.stamp, b.stamp, "stamp must match");
        for &p in probe_lines {
            assert_eq!(a.probe(p), b.probe(p), "residency differs at {p}");
        }
        // LRU order must match: evict by filling and compare victims.
        for &p in probe_lines {
            assert_eq!(a.invalidate(p), b.invalidate(p), "dirtiness differs at {p}");
        }
    }

    #[test]
    fn access_run_counts_hit_prefix_and_matches_scalar_state() {
        let mut a = tiny();
        let mut b = tiny();
        // Lines 0..5 resident, line 5 absent.
        for i in 0..5u64 {
            a.fill(i * 64, false, false);
            b.fill(i * 64, false, false);
        }
        // Scalar: five hits then a miss (which consumes a stamp).
        let mut scalar_hits = 0;
        for i in 0..8u64 {
            match a.access(i * 64, true) {
                Lookup::Hit { .. } => scalar_hits += 1,
                Lookup::Miss => break,
            }
        }
        // Batched: hit prefix, then the caller replays the miss line
        // through scalar `access`.
        let hits = b.access_run(0, 8, true);
        assert_eq!(hits, scalar_hits);
        assert_eq!(hits, 5);
        assert_eq!(b.access(5 * 64, true), Lookup::Miss);
        let probes: Vec<u64> = (0..8u64).map(|i| i * 64).collect();
        assert_state_equal(&mut a, &mut b, &probes);
    }

    #[test]
    fn access_run_clears_prefetched_like_scalar() {
        let mut c = tiny();
        c.fill(0, false, true);
        assert_eq!(c.access_run(0, 1, false), 1);
        // A later demand access must not see the prefetched flag.
        assert_eq!(
            c.access(0, false),
            Lookup::Hit {
                was_prefetched: false
            }
        );
    }

    #[test]
    fn access_repeat_equals_n_scalar_accesses() {
        let mut a = tiny();
        let mut b = tiny();
        a.fill(0, false, false);
        b.fill(0, false, false);
        for _ in 0..7 {
            assert!(matches!(a.access(0, true), Lookup::Hit { .. }));
        }
        assert!(b.access_repeat(0, 7, true));
        assert_state_equal(&mut a, &mut b, &[0]);
        // Non-resident line: no state change, caller falls back.
        let stamp_before = b.stamp;
        assert!(!b.access_repeat(512, 3, false));
        assert_eq!(b.stamp, stamp_before);
    }
}
